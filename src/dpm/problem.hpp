// Design problems and the design-object hierarchy.
//
// "A design problem p_i is given by (I_i, O_i, T_i), where I_i is the set of
// input properties, O_i is the set of output properties, and T_i is a set of
// constraints relating a subset of p_i's properties.  A solution for p_i is
// an assignment for p_i's outputs that satisfies all constraints in T_i."
// (paper, Section 2.1)
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "constraint/ids.hpp"

namespace adpm::dpm {

struct ProblemId {
  std::uint32_t value = 0;
  constexpr auto operator<=>(const ProblemId&) const = default;
};

/// Lifecycle of a problem.  `Waiting` problems (unsatisfied predecessor
/// ordering) are skipped by the designer model's problem selection f_p.
enum class ProblemStatus : std::uint8_t {
  Unassigned,  ///< created but not yet released by a decomposition
  Ready,       ///< available to its owner
  InProgress,  ///< has received at least one operation
  Waiting,     ///< blocked on predecessor problems
  Solved,      ///< outputs bound, no known violated constraint in T_i
};

const char* problemStatusName(ProblemStatus s) noexcept;

/// A node in the problem hierarchy.
struct DesignProblem {
  ProblemId id{};
  std::string name;
  /// The design object this problem develops (subsystem name).
  std::string object;
  /// Owning designer (empty until assigned).
  std::string owner;

  std::vector<constraint::PropertyId> inputs;   // I_i
  std::vector<constraint::PropertyId> outputs;  // O_i
  std::vector<constraint::ConstraintId> constraints;  // T_i

  std::optional<ProblemId> parent;
  std::vector<ProblemId> children;
  /// Partial order: this problem is Waiting until all predecessors solve.
  std::vector<ProblemId> predecessors;

  ProblemStatus status = ProblemStatus::Unassigned;

  bool hasOutput(constraint::PropertyId p) const noexcept {
    for (auto o : outputs) {
      if (o == p) return true;
    }
    return false;
  }
};

/// A design object: a named part of the design, holding properties.
/// (The paper's object hierarchy; Fig. 2's browser shows one object.)
struct DesignObject {
  std::string name;
  std::string parent;  // empty for the root
  std::string version = "1.0.1";
  std::vector<constraint::PropertyId> properties;
};

}  // namespace adpm::dpm

template <>
struct std::hash<adpm::dpm::ProblemId> {
  std::size_t operator()(const adpm::dpm::ProblemId& id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};
