// Scenario specifications: the problem-scenario description instantiated by
// TeamSim's initialisation script.
//
// "Each simulation has an initial problem scenario given by a top-level
// problem formulation, an initial decomposition into subproblems, a set of
// designers, an assignment of subproblems to designers, and initial values
// for top-level requirements." (paper, Section 3.1.2)
//
// A ScenarioSpec is a plain-data description: it can be built directly in
// C++ (src/scenarios) or parsed from DDDL text (src/dddl).  Indices within
// the spec are positional; instantiation into an empty DesignProcessManager
// maps property index i to PropertyId{i}, constraint index j to
// ConstraintId{j}, and problem index k to ProblemId{k}.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "constraint/constraint.hpp"
#include "dpm/manager.hpp"
#include "interval/domain.hpp"

namespace adpm::dpm {

struct ScenarioSpec {
  struct Object {
    std::string name;
    std::string parent;  // empty = root
  };

  struct Prop {
    std::string name;
    std::string object;
    interval::Domain initial;
    std::string unit;
    std::vector<std::string> levels;
    /// -1 prefer small values, +1 prefer large, 0 none (DDDL "prefer").
    int preference = 0;
  };

  struct Cons {
    std::string name;
    /// Variable ids inside lhs/rhs are indices into `properties`.
    expr::Expr lhs;
    constraint::Relation rel = constraint::Relation::Le;
    expr::Expr rhs;
    /// Declared monotonicity: (property index, true = increasing the
    /// property helps satisfy the constraint).
    std::vector<std::pair<std::size_t, bool>> monotone;
    /// When set, the constraint is *generated* by the DPM once this problem
    /// (index) enters the process (paper §2.2), rather than existing from
    /// the initial state.
    std::optional<std::size_t> generatedBy;
  };

  struct Prob {
    std::string name;
    std::string object;
    std::string owner;
    std::vector<std::size_t> inputs;       // property indices
    std::vector<std::size_t> outputs;      // property indices
    std::vector<std::size_t> constraints;  // constraint indices
    std::optional<std::size_t> parent;     // problem index
    std::vector<std::size_t> predecessors; // problem indices
    bool startReady = true;
  };

  struct Requirement {
    std::size_t property;  // property index
    double value;
  };

  std::string name;
  std::vector<Object> objects;
  std::vector<Prop> properties;
  std::vector<Cons> constraints;
  std::vector<Prob> problems;
  std::vector<Requirement> requirements;

  // -- builder helpers --------------------------------------------------------

  std::size_t addObject(std::string objName, std::string parent = "");
  std::size_t addProperty(std::string propName, std::string object,
                          interval::Domain initial, std::string unit = "",
                          std::vector<std::string> levels = {});
  std::size_t addConstraint(Cons c);
  std::size_t addProblem(Prob p);
  void require(std::size_t property, double value);

  /// Expression variable for property index i (named after the property).
  expr::Expr pvar(std::size_t i) const;

  std::optional<std::size_t> propertyIndex(std::string_view propName) const;
  std::optional<std::size_t> constraintIndex(std::string_view consName) const;
  std::optional<std::size_t> problemIndex(std::string_view probName) const;

  /// Structural validation; returns human-readable problems (empty = valid).
  std::vector<std::string> validate() const;
};

/// Instantiates a spec into an empty manager (throws if the manager already
/// holds properties, or if the spec fails validation).
void instantiate(const ScenarioSpec& spec, DesignProcessManager& dpm);

}  // namespace adpm::dpm
