#include "dpm/history.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace adpm::dpm {

void DesignHistory::append(HistoryEntry entry) {
  entry.stage = entries_.size() + 1;
  entries_.push_back(std::move(entry));
}

const HistoryEntry& DesignHistory::entry(std::size_t stage) const {
  if (stage == 0 || stage > entries_.size()) {
    throw adpm::InvalidArgumentError("history stage out of range: " +
                                     std::to_string(stage));
  }
  return entries_[stage - 1];
}

std::optional<double> DesignHistory::valueAt(constraint::PropertyId p,
                                             std::size_t stage) const {
  std::optional<double> value;
  for (const auto& [pid, v] : initialBindings_) {
    if (pid == p) value = v;
  }
  const std::size_t upTo = std::min(stage, entries_.size());
  for (std::size_t i = 0; i < upTo; ++i) {
    for (const AssignmentDelta& a : entries_[i].assignments) {
      if (a.property == p) value = a.after;
    }
  }
  return value;
}

std::vector<std::size_t> DesignHistory::assignmentStages(
    constraint::PropertyId p) const {
  std::vector<std::size_t> stages;
  for (const HistoryEntry& e : entries_) {
    for (const AssignmentDelta& a : e.assignments) {
      if (a.property == p) {
        stages.push_back(e.stage);
        break;
      }
    }
  }
  return stages;
}

std::size_t DesignHistory::assignmentCount(constraint::PropertyId p) const {
  std::size_t count = 0;
  for (const HistoryEntry& e : entries_) {
    for (const AssignmentDelta& a : e.assignments) {
      if (a.property == p) ++count;
    }
  }
  return count;
}

std::vector<std::size_t> DesignHistory::spinStages() const {
  std::vector<std::size_t> stages;
  for (const HistoryEntry& e : entries_) {
    if (e.record.spin) stages.push_back(e.stage);
  }
  return stages;
}

std::size_t DesignHistory::violationsAfter(std::size_t stage) const {
  if (stage == 0 || entries_.empty()) return 0;
  const std::size_t upTo = std::min(stage, entries_.size());
  return entries_[upTo - 1].record.violationsKnownAfter;
}

std::optional<std::size_t> DesignHistory::firstViolation(
    constraint::ConstraintId c) const {
  for (const HistoryEntry& e : entries_) {
    for (const StatusDelta& d : e.statusChanges) {
      if (d.constraint == c && d.after == constraint::Status::Violated) {
        return e.stage;
      }
    }
  }
  return std::nullopt;
}

std::vector<std::size_t> DesignHistory::stagesBy(
    const std::string& designer) const {
  std::vector<std::size_t> stages;
  for (const HistoryEntry& e : entries_) {
    if (e.record.op.designer == designer) stages.push_back(e.stage);
  }
  return stages;
}

void DesignHistory::recordInitialBinding(constraint::PropertyId p,
                                         double value) {
  initialBindings_.emplace_back(p, value);
}

}  // namespace adpm::dpm
