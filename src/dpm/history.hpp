// The design process history H_n.
//
// "The design process history at stage n is given by
//  H_n = {(<s_i, θ_i>, i=1..n-1) ∪ s_n}" (paper, eq. before (2)).
//
// Storing full deep state snapshots per stage would be wasteful; the history
// instead journals the *deltas* each operation produced — value assignments
// (with the previous binding), constraint status changes, and problem status
// changes — which is enough to reconstruct any past stage's bindings and
// status vector, answer the designer model's history queries, and export the
// whole process for post-simulation analysis.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "constraint/constraint.hpp"
#include "dpm/operation.hpp"
#include "dpm/problem.hpp"

namespace adpm::dpm {

/// One property assignment performed by an operation, with its previous
/// binding (nullopt = was unbound).
struct AssignmentDelta {
  constraint::PropertyId property{};
  std::optional<double> before;
  double after = 0.0;
};

/// One constraint status transition caused by an operation.
struct StatusDelta {
  constraint::ConstraintId constraint{};
  constraint::Status before = constraint::Status::Consistent;
  constraint::Status after = constraint::Status::Consistent;
};

/// One problem status transition.
struct ProblemDelta {
  ProblemId problem{};
  ProblemStatus before = ProblemStatus::Unassigned;
  ProblemStatus after = ProblemStatus::Unassigned;
};

/// Everything recorded about one stage transition <s_n, θ_n> -> s_{n+1}.
struct HistoryEntry {
  std::size_t stage = 0;  // 1-based, matches OperationRecord::stage
  OperationRecord record;
  std::vector<AssignmentDelta> assignments;
  std::vector<StatusDelta> statusChanges;
  std::vector<ProblemDelta> problemChanges;
};

/// Journal of the whole design process.
class DesignHistory {
 public:
  void append(HistoryEntry entry);

  std::size_t stages() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }
  const HistoryEntry& entry(std::size_t stage) const;  // 1-based
  const std::vector<HistoryEntry>& entries() const noexcept { return entries_; }

  /// The value property p held *after* the given stage (nullopt = unbound).
  /// Stage 0 queries the initial state.
  std::optional<double> valueAt(constraint::PropertyId p,
                                std::size_t stage) const;

  /// All stages at which property p was assigned, ascending.
  std::vector<std::size_t> assignmentStages(constraint::PropertyId p) const;

  /// Number of times property p was assigned in total.
  std::size_t assignmentCount(constraint::PropertyId p) const;

  /// Stages whose operation was a spin, ascending.
  std::vector<std::size_t> spinStages() const;

  /// The count of constraints known-violated after the given stage (0 for
  /// stage 0).
  std::size_t violationsAfter(std::size_t stage) const;

  /// First stage at which constraint c was discovered violated (nullopt =
  /// never).
  std::optional<std::size_t> firstViolation(constraint::ConstraintId c) const;

  /// Stages in [from, to] (1-based, inclusive) whose operations were issued
  /// by the given designer.
  std::vector<std::size_t> stagesBy(const std::string& designer) const;

  /// Initial requirement bindings (stage 0 script), recorded separately so
  /// valueAt(p, 0) can answer correctly.
  void recordInitialBinding(constraint::PropertyId p, double value);

 private:
  std::vector<HistoryEntry> entries_;
  std::vector<std::pair<constraint::PropertyId, double>> initialBindings_;
};

}  // namespace adpm::dpm
