// The Design Constraint Manager (DCM).
//
// In ADPM's transition model, after every applied operation "the resulting
// C_{n+1} ... is then sent to the DCM for evaluation.  The DCM then runs a
// constraint propagation algorithm to compute infeasible property values and
// the status of all constraints ... The result is sent back to the DPM."
// (paper, Section 2.2).  The DCM here is a thin orchestration of the
// propagation engine plus the heuristic miner.
#pragma once

#include "constraint/miner.hpp"
#include "constraint/propagate.hpp"

namespace adpm::dpm {

class DesignConstraintManager {
 public:
  struct Options {
    constraint::Propagator::Options propagation{};
    constraint::HeuristicMiner::Options miner{};
  };

  struct Evaluation {
    constraint::PropagationResult propagation;
    constraint::GuidanceReport guidance;
    /// Total evaluations this DCM pass consumed (propagation + mining).
    std::size_t evaluations = 0;
  };

  DesignConstraintManager() = default;
  explicit DesignConstraintManager(Options options)
      : options_(options),
        propagator_(options.propagation),
        miner_(options.miner) {}

  /// Full DCM pass over the network's current state.
  Evaluation evaluate(constraint::Network& net) const;

  const Options& options() const noexcept { return options_; }

 private:
  Options options_{};
  constraint::Propagator propagator_{};
  constraint::HeuristicMiner miner_{};
};

}  // namespace adpm::dpm
