// Design operators and operations.
//
// "A design operator f_i is a function that helps solve a problem p_i by
// (a) computing values for p_i's outputs (synthesis and optimization
// operators), (b) verifying that a solution meets one or more constraints in
// T_i (verification operators), or (c) decomposing p_i into a
// partially-ordered subproblem set (decomposition operators).  A design
// operation θ is given by an operator f_i, a problem p_i to which f_i is
// applied, and f_i's parameter values." (paper, Section 2.1)
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "constraint/ids.hpp"
#include "dpm/problem.hpp"

namespace adpm::dpm {

enum class OperatorKind : std::uint8_t {
  Synthesis,      ///< binds values to problem outputs
  Verification,   ///< evaluates constraints in T_i (a tool run request)
  Decomposition,  ///< releases a problem's children
};

const char* operatorKindName(OperatorKind k) noexcept;

/// One operation request θ sent by a designer to the DPM.
struct Operation {
  OperatorKind kind = OperatorKind::Synthesis;
  ProblemId problem{};
  /// Requesting designer.
  std::string designer;

  /// Synthesis payload: output assignments (property, value).
  std::vector<std::pair<constraint::PropertyId, double>> assignments;

  /// Verification payload: specific constraints to check; empty means all of
  /// the problem's T_i whose arguments are bound.
  std::vector<constraint::ConstraintId> checks;

  /// The known violation this operation is meant to fix, if any.  The DPM
  /// uses this to classify the operation as a *spin* when the triggering
  /// violation involves properties from multiple subsystems.
  std::optional<constraint::ConstraintId> triggeredBy;

  /// Designer's stated reason for the operation ("smallest feasible
  /// subspace", "alpha=2, repairing X", ...).  Display-only; lets traces
  /// explain which heuristic drove each step.
  std::string rationale;
};

/// What the DPM recorded about one executed operation (one history entry).
struct OperationRecord {
  /// Stage index n (1-based operation number; Fig. 7's x axis).
  std::size_t stage = 0;
  Operation op;
  /// Constraint evaluations consumed by this operation, including any
  /// propagation and guidance mining (Fig. 7(b)'s y axis).
  std::size_t evaluations = 0;
  /// Constraints newly discovered to be violated by this operation
  /// (Fig. 7(a)'s y axis counts these).
  std::vector<constraint::ConstraintId> violationsFound;
  /// Violations known to exist after this operation.
  std::size_t violationsKnownAfter = 0;
  /// True when the operation was provoked by a violation spanning multiple
  /// subsystems — the paper's design "spin" (expensive late iteration).
  bool spin = false;
  /// Constraints the DPM generated (activated) during this transition.
  std::vector<constraint::ConstraintId> constraintsGenerated;
};

}  // namespace adpm::dpm
