// The Design Process Manager (DPM) and ADPM's transition function δ.
//
// The DPM executes design operations against the current design state s_n
// and produces s_{n+1} (eq. 2 of the paper).  Two flows are implemented,
// selected by the λ option exactly as in TeamSim's evaluation:
//
//  * λ = true (ADPM):  after every operation the DPM sends the constraint
//    network to the DCM, which propagates constraints, computes all
//    statuses, and mines heuristic-support data (v_F, α, β, monotone lists);
//    the NM then notifies the affected designers.  Cross-subproblem
//    constraints are propagated from the moment they exist.
//
//  * λ = false (conventional): no propagation.  Designers learn about
//    violations and infeasible values only by requesting verification
//    operations, which evaluate a problem's constraints whose inputs are
//    bound.  Status knowledge goes stale when an involved property is
//    rebound.
//
// All constraint evaluations are charged to the network's counter; each
// operation's consumption is recorded in its OperationRecord — these are the
// quantities behind every figure in the paper's Section 3.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "constraint/network.hpp"
#include "dpm/dcm.hpp"
#include "dpm/history.hpp"
#include "dpm/notification.hpp"
#include "dpm/operation.hpp"
#include "dpm/problem.hpp"

namespace adpm::dpm {

/// Value snapshot of every mutable field δ touches: what a durable
/// checkpoint must capture so a manager restored from it replays the tail
/// of an operation log bit-identically to a full replay.  Static model
/// structure (objects, properties, constraints, problems) is *not* here —
/// it is rebuilt by re-instantiating the scenario; the state only carries
/// what operations changed since stage 0.  DCM caches are deliberately
/// absent: they are pure memoization, so a cold-cache manager recomputes
/// identical values (only the evaluation counter would drift, and that is
/// restored explicitly).
struct ManagerState {
  /// Operations applied when the snapshot was taken.
  std::size_t stage = 0;
  /// Network evaluation counter at the snapshot.
  std::size_t evaluations = 0;
  /// (property, value) for every bound property, ascending by id.
  std::vector<std::pair<constraint::PropertyId, double>> bindings;
  /// Every active constraint id, ascending (activation is monotonic:
  /// staged constraints activate, nothing ever deactivates).
  std::vector<constraint::ConstraintId> activeConstraints;
  /// Per-object version strings (synthesis bumps the touched objects).
  std::vector<std::string> objectVersions;
  std::vector<ProblemStatus> problemStatuses;
  std::vector<constraint::Status> knownStatuses;
  std::vector<bool> stale;
  bool guidanceValid = false;
  constraint::GuidanceReport guidance;
  /// The NM diffs consecutive guidance reports, so the previous one must
  /// survive a restore or the first post-restore operation would notify
  /// against the wrong baseline.
  bool previousGuidanceValid = false;
  constraint::GuidanceReport previousGuidance;
  /// Staged constraints not yet generated, with their trigger problems.
  std::vector<std::pair<constraint::ConstraintId, ProblemId>> staged;
  std::map<constraint::PropertyId, std::vector<double>> failedAssignments;
};

class DesignProcessManager {
 public:
  struct Options {
    /// The paper's λ: true simulates ADPM, false the conventional approach.
    bool adpm = true;
    DesignConstraintManager::Options dcm{};
    NotificationManager::Sizes nm{};
  };

  DesignProcessManager() : DesignProcessManager(Options{}) {}
  explicit DesignProcessManager(Options options);

  DesignProcessManager(const DesignProcessManager&) = delete;
  DesignProcessManager& operator=(const DesignProcessManager&) = delete;

  bool adpmEnabled() const noexcept { return options_.adpm; }

  constraint::Network& network() noexcept { return net_; }
  const constraint::Network& network() const noexcept { return net_; }

  // -- model building (the scenario initialisation script) -------------------

  void addObject(std::string name, std::string parent = "");
  /// Adds a property; its `object` must already exist.
  constraint::PropertyId addProperty(constraint::PropertySpec spec);
  /// Adds a constraint to the network.  New constraints are propagated from
  /// the next operation on (ADPM) or verified on request (conventional).
  constraint::ConstraintId addConstraint(std::string name, expr::Expr lhs,
                                         constraint::Relation rel,
                                         expr::Expr rhs);

  /// Registers a constraint that the DPM *generates* later in the process
  /// (paper §2.2: "this DPM also generates any necessary constraints and
  /// incorporates them in C_n").  The constraint gets a stable id now but
  /// stays inactive until its generating problem leaves the Unassigned
  /// state (typically via a decomposition operation).
  constraint::ConstraintId stageConstraint(std::string name, expr::Expr lhs,
                                           constraint::Relation rel,
                                           expr::Expr rhs,
                                           ProblemId generatedBy);

  struct ProblemSpec {
    std::string name;
    std::string object;
    std::string owner;
    std::vector<constraint::PropertyId> inputs;
    std::vector<constraint::PropertyId> outputs;
    std::vector<constraint::ConstraintId> constraints;
    std::optional<ProblemId> parent;
    std::vector<ProblemId> predecessors;
    /// Problems start Ready unless released by a decomposition operation.
    bool startReady = true;
  };
  ProblemId addProblem(ProblemSpec spec);

  /// Binds a top-level requirement during scenario initialisation (stage 0,
  /// not an operation).  Requirement properties are *frozen*: simulated
  /// designers never pick them as repair or binding targets (relaxing the
  /// spec to dodge a conflict would be cheating); only scripted operations
  /// (e.g. the team leader tightening a requirement) may rebind them.
  void initializeRequirement(constraint::PropertyId p, double value);

  /// True for properties bound by initializeRequirement.
  bool isFrozen(constraint::PropertyId p) const noexcept;

  // -- process ----------------------------------------------------------------

  struct ExecResult {
    OperationRecord record;
    std::vector<Notification> notifications;
  };

  /// Evaluates the initial state s_0 (ADPM only): runs the DCM over the
  /// freshly-instantiated network so designers start with guidance instead
  /// of flying blind until the first operation.  The evaluations consumed
  /// are part of ADPM's cost and stay on the network counter.  No-op in the
  /// conventional flow.
  void bootstrap();

  /// Applies one operation: the next-state function δ.
  ExecResult execute(Operation op);

  std::size_t stage() const noexcept { return baseStage_ + history_.size(); }
  /// Operation records since the last restoreState (the full run when the
  /// manager was never restored).  A restored manager's history restarts at
  /// the checkpoint horizon — the complete record lives in the WAL segments.
  const std::vector<OperationRecord>& history() const noexcept {
    return history_;
  }
  /// Stage the in-memory history starts at (> 0 only after restoreState).
  std::size_t historyBaseStage() const noexcept { return baseStage_; }

  /// The full journaled history H_n: per-stage assignment, constraint-status
  /// and problem-status deltas with query API (see dpm/history.hpp).
  const DesignHistory& designHistory() const noexcept { return designHistory_; }

  // -- queries ----------------------------------------------------------------

  const DesignProblem& problem(ProblemId id) const;
  std::vector<ProblemId> problemIds() const;
  std::vector<ProblemId> problemsOf(const std::string& designer) const;
  const DesignObject* object(const std::string& name) const noexcept;
  std::vector<std::string> objectNames() const;
  std::vector<std::string> designers() const;

  /// Current status knowledge: ADPM keeps every constraint fresh via
  /// propagation; conventional knows only what verification reported (and
  /// loses it when an involved property is rebound).
  const std::vector<constraint::Status>& knownStatuses() const noexcept {
    return knownStatus_;
  }
  std::vector<constraint::ConstraintId> knownViolations() const;
  std::size_t knownViolationCount() const;
  /// True when the constraint's last known status may be out of date
  /// (conventional mode only).
  bool isStale(constraint::ConstraintId c) const;

  /// Latest heuristic guidance; null when running the conventional flow.
  const constraint::GuidanceReport* latestGuidance() const noexcept {
    return options_.adpm && guidanceValid_ ? &guidance_ : nullptr;
  }

  /// A constraint is cross-subsystem when its arguments span more than one
  /// design object — the basis of spin classification.
  bool crossSubsystem(constraint::ConstraintId c) const;

  std::string ownerOfObject(const std::string& objectName) const;
  std::string ownerOfProperty(constraint::PropertyId p) const;

  bool allOutputsBound() const;
  /// Termination condition: every problem solved, every output bound, no
  /// known violation, and (conventional) no stale constraint left unverified.
  bool designComplete() const;

  // -- design history consulted by designers (tabu) ---------------------------

  /// "The design history is consulted to avoid combinations of assignments
  /// that have previously led to violations." (paper, Section 3.1.1)
  void recordFailedAssignment(constraint::PropertyId p, double value);
  bool isFailedAssignment(constraint::PropertyId p, double value,
                          double tolerance) const;

  // -- checkpointing ----------------------------------------------------------

  /// Captures the complete mutable state (see ManagerState).
  ManagerState exportState() const;

  /// Restores a snapshot onto a freshly instantiated manager (same scenario
  /// script, bootstrap not required — every field it would set is
  /// overwritten).  Shape mismatches (wrong counts, out-of-range ids, an
  /// init-active constraint the state claims inactive) throw
  /// InvalidArgumentError — the caller treats the checkpoint as damaged and
  /// falls back.  After the restore, stage() == state.stage and in-memory
  /// history restarts empty at that horizon.
  void restoreState(const ManagerState& state);

 private:
  void generateStagedConstraints(OperationRecord& record);
  void applySynthesis(const Operation& op);
  void applyVerification(const Operation& op, OperationRecord& record);
  void applyDecomposition(const Operation& op);
  void runDcmPass(OperationRecord& record,
                  std::vector<constraint::Status>& before);
  void refreshProblemStatuses();
  bool refreshProblemStatusesOnce();
  void markStaleFor(constraint::PropertyId p);

  Options options_;
  constraint::Network net_;
  DesignConstraintManager dcm_;
  NotificationManager nm_;

  std::vector<DesignObject> objects_;
  std::vector<DesignProblem> problems_;
  std::vector<OperationRecord> history_;
  /// Stage the in-memory history starts at; nonzero only after restoreState.
  std::size_t baseStage_ = 0;
  DesignHistory designHistory_;

  std::vector<constraint::Status> knownStatus_;
  std::vector<bool> stale_;  // conventional-mode staleness per constraint
  constraint::GuidanceReport guidance_;
  bool guidanceValid_ = false;
  constraint::GuidanceReport previousGuidance_;
  bool previousGuidanceValid_ = false;

  std::map<constraint::PropertyId, std::vector<double>> failedAssignments_;
  std::vector<bool> frozen_;  // indexed by PropertyId::value
  /// Staged (not yet generated) constraints and their generating problems.
  std::vector<std::pair<constraint::ConstraintId, ProblemId>> staged_;
};

}  // namespace adpm::dpm
