#include "dpm/manager.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <set>

#include "util/error.hpp"

namespace adpm::dpm {

const char* problemStatusName(ProblemStatus s) noexcept {
  switch (s) {
    case ProblemStatus::Unassigned: return "Unassigned";
    case ProblemStatus::Ready: return "Ready";
    case ProblemStatus::InProgress: return "InProgress";
    case ProblemStatus::Waiting: return "Waiting";
    case ProblemStatus::Solved: return "Solved";
  }
  return "?";
}

const char* operatorKindName(OperatorKind k) noexcept {
  switch (k) {
    case OperatorKind::Synthesis: return "Synthesis";
    case OperatorKind::Verification: return "Verification";
    case OperatorKind::Decomposition: return "Decomposition";
  }
  return "?";
}

DesignProcessManager::DesignProcessManager(Options options)
    : options_(options), dcm_(options.dcm), nm_(options.nm) {}

void DesignProcessManager::addObject(std::string name, std::string parent) {
  if (object(name) != nullptr) {
    throw adpm::InvalidArgumentError("duplicate object '" + name + "'");
  }
  if (!parent.empty() && object(parent) == nullptr) {
    throw adpm::InvalidArgumentError("unknown parent object '" + parent + "'");
  }
  DesignObject obj;
  obj.name = std::move(name);
  obj.parent = std::move(parent);
  objects_.push_back(std::move(obj));
}

constraint::PropertyId DesignProcessManager::addProperty(
    constraint::PropertySpec spec) {
  DesignObject* obj = nullptr;
  for (auto& o : objects_) {
    if (o.name == spec.object) obj = &o;
  }
  if (obj == nullptr) {
    throw adpm::InvalidArgumentError("property '" + spec.name +
                                     "' references unknown object '" +
                                     spec.object + "'");
  }
  const constraint::PropertyId id = net_.addProperty(std::move(spec));
  obj->properties.push_back(id);
  return id;
}

constraint::ConstraintId DesignProcessManager::addConstraint(
    std::string name, expr::Expr lhs, constraint::Relation rel,
    expr::Expr rhs) {
  const constraint::ConstraintId id =
      net_.addConstraint(std::move(name), std::move(lhs), rel, std::move(rhs));
  knownStatus_.resize(net_.constraintCount(), constraint::Status::Consistent);
  stale_.resize(net_.constraintCount(), !options_.adpm);
  return id;
}

constraint::ConstraintId DesignProcessManager::stageConstraint(
    std::string name, expr::Expr lhs, constraint::Relation rel,
    expr::Expr rhs, ProblemId generatedBy) {
  const constraint::ConstraintId id = net_.addConstraint(
      std::move(name), std::move(lhs), rel, std::move(rhs), /*active=*/false);
  knownStatus_.resize(net_.constraintCount(), constraint::Status::Consistent);
  stale_.resize(net_.constraintCount(), false);  // stale only once generated
  staged_.emplace_back(id, generatedBy);
  return id;
}

ProblemId DesignProcessManager::addProblem(ProblemSpec spec) {
  if (object(spec.object) == nullptr) {
    throw adpm::InvalidArgumentError("problem '" + spec.name +
                                     "' references unknown object '" +
                                     spec.object + "'");
  }
  const ProblemId id{static_cast<std::uint32_t>(problems_.size())};
  DesignProblem p;
  p.id = id;
  p.name = std::move(spec.name);
  p.object = std::move(spec.object);
  p.owner = std::move(spec.owner);
  p.inputs = std::move(spec.inputs);
  p.outputs = std::move(spec.outputs);
  p.constraints = std::move(spec.constraints);
  p.parent = spec.parent;
  p.predecessors = std::move(spec.predecessors);
  p.status = spec.startReady ? ProblemStatus::Ready : ProblemStatus::Unassigned;
  if (p.parent) {
    if (p.parent->value >= problems_.size()) {
      throw adpm::InvalidArgumentError("problem '" + p.name +
                                       "' has unknown parent");
    }
    problems_[p.parent->value].children.push_back(id);
  }
  problems_.push_back(std::move(p));
  refreshProblemStatuses();
  return id;
}

void DesignProcessManager::initializeRequirement(constraint::PropertyId p,
                                                 double value) {
  net_.bind(p, value);
  markStaleFor(p);
  if (frozen_.size() < net_.propertyCount()) {
    frozen_.resize(net_.propertyCount(), false);
  }
  frozen_[p.value] = true;
  designHistory_.recordInitialBinding(p, value);
}

bool DesignProcessManager::isFrozen(constraint::PropertyId p) const noexcept {
  return p.value < frozen_.size() && frozen_[p.value];
}

void DesignProcessManager::bootstrap() {
  if (!options_.adpm) return;
  OperationRecord ignored;
  std::vector<constraint::Status> before = knownStatus_;
  runDcmPass(ignored, before);
  refreshProblemStatuses();
}

DesignProcessManager::ExecResult DesignProcessManager::execute(Operation op) {
  if (op.problem.value >= problems_.size()) {
    throw adpm::InvalidArgumentError("operation targets unknown problem");
  }

  OperationRecord record;
  record.stage = stage() + 1;
  record.op = op;

  // Spin classification: the operation was provoked by a violation that
  // spans subsystems (the paper's costly late iteration).
  if (op.triggeredBy && crossSubsystem(*op.triggeredBy)) record.spin = true;

  const std::size_t evalsBefore = net_.evaluationCount();
  std::vector<constraint::Status> statusBefore = knownStatus_;

  // Journal inputs for the history deltas.
  HistoryEntry historyEntry;
  for (const auto& [pid, value] : op.assignments) {
    AssignmentDelta delta;
    delta.property = pid;
    delta.before = net_.property(pid).value;
    delta.after = value;
    historyEntry.assignments.push_back(delta);
  }
  std::vector<ProblemStatus> problemStatusBefore;
  problemStatusBefore.reserve(problems_.size());
  for (const DesignProblem& p : problems_) {
    problemStatusBefore.push_back(p.status);
  }

  switch (op.kind) {
    case OperatorKind::Synthesis:
      applySynthesis(op);
      break;
    case OperatorKind::Verification:
      applyVerification(op, record);
      break;
    case OperatorKind::Decomposition:
      applyDecomposition(op);
      break;
  }

  // "This DPM also generates any necessary constraints and incorporates
  // them in C_n": staged constraints whose generating problem is now part
  // of the process become active before the DCM sees the new state.
  generateStagedConstraints(record);

  // ADPM: DCM pass after *every* operation.
  if (options_.adpm) runDcmPass(record, statusBefore);

  // Newly discovered violations = Violated now, not Violated before.
  for (std::uint32_t i = 0; i < knownStatus_.size(); ++i) {
    const bool was = i < statusBefore.size() &&
                     statusBefore[i] == constraint::Status::Violated;
    if (!was && knownStatus_[i] == constraint::Status::Violated) {
      record.violationsFound.push_back(constraint::ConstraintId{i});
    }
  }
  record.violationsKnownAfter = knownViolationCount();
  record.evaluations = net_.evaluationCount() - evalsBefore;

  refreshProblemStatuses();

  ExecResult result;
  result.notifications = nm_.diff(
      record.stage, net_, statusBefore, knownStatus_,
      previousGuidanceValid_ ? &previousGuidance_ : nullptr,
      guidanceValid_ ? &guidance_ : nullptr,
      [this](const constraint::Constraint& c) {
        std::set<std::string> audience;
        for (constraint::PropertyId arg : c.arguments()) {
          const std::string owner = ownerOfProperty(arg);
          if (!owner.empty()) audience.insert(owner);
        }
        return std::vector<std::string>(audience.begin(), audience.end());
      },
      [this](constraint::PropertyId p) { return ownerOfProperty(p); });

  // Requirement changes (e.g. the walkthrough's team leader tightening the
  // input impedance spec) are broadcast to every other designer.
  for (const auto& [pid, value] : op.assignments) {
    if (!isFrozen(pid)) continue;
    for (const std::string& designer : designers()) {
      if (designer == op.designer) continue;
      Notification n;
      n.kind = NotificationKind::RequirementChanged;
      n.designer = designer;
      n.stage = record.stage;
      n.propertyId = pid;
      n.text = "RequirementChanged: " + net_.property(pid).name + " = " +
               std::to_string(value);
      result.notifications.push_back(std::move(n));
    }
  }

  // Journal the status and problem deltas.
  for (std::uint32_t i = 0; i < knownStatus_.size(); ++i) {
    const constraint::Status before =
        i < statusBefore.size() ? statusBefore[i]
                                : constraint::Status::Consistent;
    if (before != knownStatus_[i]) {
      historyEntry.statusChanges.push_back(
          {constraint::ConstraintId{i}, before, knownStatus_[i]});
    }
  }
  for (std::uint32_t i = 0; i < problems_.size(); ++i) {
    if (problemStatusBefore[i] != problems_[i].status) {
      historyEntry.problemChanges.push_back(
          {ProblemId{i}, problemStatusBefore[i], problems_[i].status});
    }
  }
  // Problem completions are announced to the owner and the parent's owner.
  for (const ProblemDelta& d : historyEntry.problemChanges) {
    if (d.after != ProblemStatus::Solved) continue;
    const DesignProblem& solved = problems_[d.problem.value];
    std::set<std::string> audience;
    if (!solved.owner.empty()) audience.insert(solved.owner);
    if (solved.parent) {
      const std::string& parentOwner = problems_[solved.parent->value].owner;
      if (!parentOwner.empty()) audience.insert(parentOwner);
    }
    for (const std::string& designer : audience) {
      Notification n;
      n.kind = NotificationKind::ProblemSolved;
      n.designer = designer;
      n.stage = record.stage;
      n.text = "ProblemSolved: " + solved.name;
      result.notifications.push_back(std::move(n));
    }
  }

  historyEntry.record = record;
  designHistory_.append(std::move(historyEntry));

  history_.push_back(record);
  result.record = record;
  return result;
}

void DesignProcessManager::generateStagedConstraints(OperationRecord& record) {
  for (auto it = staged_.begin(); it != staged_.end();) {
    const auto [cid, trigger] = *it;
    if (trigger.value >= problems_.size() ||
        problems_[trigger.value].status == ProblemStatus::Unassigned) {
      ++it;
      continue;
    }
    net_.activate(cid);
    // The freshly generated constraint has never been evaluated.
    knownStatus_[cid.value] = constraint::Status::Consistent;
    stale_[cid.value] = !options_.adpm;
    record.constraintsGenerated.push_back(cid);
    it = staged_.erase(it);
  }
}

void DesignProcessManager::applySynthesis(const Operation& op) {
  DesignProblem& p = problems_[op.problem.value];
  std::set<std::string> touchedObjects;
  for (const auto& [pid, value] : op.assignments) {
    net_.bind(pid, value);
    markStaleFor(pid);
    touchedObjects.insert(net_.property(pid).object);
  }
  // Every synthesis creates a new version of the touched design objects
  // (Fig. 2's browser shows "Version number: 1.0.1 (current)").
  for (DesignObject& obj : objects_) {
    if (!touchedObjects.contains(obj.name)) continue;
    const auto dot = obj.version.rfind('.');
    if (dot != std::string::npos) {
      const int revision = std::atoi(obj.version.c_str() + dot + 1);
      obj.version = obj.version.substr(0, dot + 1) +
                    std::to_string(revision + 1);
    }
  }
  if (p.status == ProblemStatus::Ready || p.status == ProblemStatus::Solved) {
    p.status = ProblemStatus::InProgress;
  }
}

void DesignProcessManager::applyVerification(const Operation& op,
                                             OperationRecord& record) {
  (void)record;
  const DesignProblem& p = problems_[op.problem.value];

  std::vector<constraint::ConstraintId> toCheck = op.checks;
  if (toCheck.empty()) toCheck = p.constraints;

  for (constraint::ConstraintId cid : toCheck) {
    if (!net_.isActive(cid)) continue;  // not generated yet
    // A verification tool can only run once its inputs exist: skip
    // constraints with unbound arguments (no charge — the tool never ran).
    const constraint::Constraint& c = net_.constraint(cid);
    const bool runnable = std::all_of(
        c.arguments().begin(), c.arguments().end(),
        [&](constraint::PropertyId a) { return net_.property(a).bound(); });
    if (!runnable) continue;

    knownStatus_[cid.value] = net_.evaluate(cid);
    stale_[cid.value] = false;
  }
}

void DesignProcessManager::applyDecomposition(const Operation& op) {
  DesignProblem& p = problems_[op.problem.value];
  p.status = ProblemStatus::InProgress;
  for (ProblemId child : p.children) {
    DesignProblem& c = problems_[child.value];
    if (c.status == ProblemStatus::Unassigned) c.status = ProblemStatus::Ready;
  }
}

void DesignProcessManager::runDcmPass(
    OperationRecord& record, std::vector<constraint::Status>& before) {
  (void)record;
  (void)before;
  const DesignConstraintManager::Evaluation eval = dcm_.evaluate(net_);
  knownStatus_ = eval.propagation.status;
  std::fill(stale_.begin(), stale_.end(), false);

  previousGuidance_ = std::move(guidance_);
  previousGuidanceValid_ = guidanceValid_;
  guidance_ = std::move(eval.guidance);
  guidanceValid_ = true;
}

void DesignProcessManager::refreshProblemStatuses() {
  // Solved status flows child -> parent and predecessor -> successor, so
  // iterate to a fixpoint (bounded by the problem count).
  for (std::size_t pass = 0; pass <= problems_.size(); ++pass) {
    if (!refreshProblemStatusesOnce()) break;
  }
}

bool DesignProcessManager::refreshProblemStatusesOnce() {
  bool changed = false;
  for (DesignProblem& p : problems_) {
    if (p.status == ProblemStatus::Unassigned) continue;

    // Predecessor ordering.
    const bool blocked = std::any_of(
        p.predecessors.begin(), p.predecessors.end(), [&](ProblemId pre) {
          return problems_[pre.value].status != ProblemStatus::Solved;
        });
    if (blocked) {
      if (p.status != ProblemStatus::Solved &&
          p.status != ProblemStatus::Waiting) {
        p.status = ProblemStatus::Waiting;
        changed = true;
      }
      continue;
    }
    if (p.status == ProblemStatus::Waiting) {
      p.status = ProblemStatus::Ready;
      changed = true;
    }

    // Solved check: outputs bound and T_i clean (known fresh non-violated).
    const bool outputsBound = std::all_of(
        p.outputs.begin(), p.outputs.end(),
        [&](constraint::PropertyId o) { return net_.property(o).bound(); });
    bool clean = outputsBound && !p.outputs.empty();
    if (clean) {
      for (constraint::ConstraintId cid : p.constraints) {
        if (!net_.isActive(cid)) continue;  // not generated yet
        if (knownStatus_[cid.value] == constraint::Status::Violated ||
            stale_[cid.value]) {
          clean = false;
          break;
        }
      }
    }
    // Children must be solved before a parent can be.
    if (clean) {
      clean = std::all_of(p.children.begin(), p.children.end(),
                          [&](ProblemId ch) {
                            return problems_[ch.value].status ==
                                   ProblemStatus::Solved;
                          });
    }
    if (clean && p.status != ProblemStatus::Solved) {
      p.status = ProblemStatus::Solved;
      changed = true;
    } else if (!clean && p.status == ProblemStatus::Solved) {
      p.status = ProblemStatus::InProgress;
      changed = true;
    }
  }
  return changed;
}

void DesignProcessManager::markStaleFor(constraint::PropertyId p) {
  if (options_.adpm) return;  // propagation refreshes everything anyway
  for (constraint::ConstraintId cid : net_.constraintsOf(p)) {
    if (!net_.isActive(cid)) continue;  // not generated yet
    stale_[cid.value] = true;
    // The last verified verdict no longer applies to the new value.
    knownStatus_[cid.value] = constraint::Status::Consistent;
  }
}

const DesignProblem& DesignProcessManager::problem(ProblemId id) const {
  if (id.value >= problems_.size()) {
    throw adpm::InvalidArgumentError("unknown problem id " +
                                     std::to_string(id.value));
  }
  return problems_[id.value];
}

std::vector<ProblemId> DesignProcessManager::problemIds() const {
  std::vector<ProblemId> ids;
  ids.reserve(problems_.size());
  for (const auto& p : problems_) ids.push_back(p.id);
  return ids;
}

std::vector<ProblemId> DesignProcessManager::problemsOf(
    const std::string& designer) const {
  std::vector<ProblemId> ids;
  for (const auto& p : problems_) {
    if (p.owner == designer) ids.push_back(p.id);
  }
  return ids;
}

const DesignObject* DesignProcessManager::object(
    const std::string& name) const noexcept {
  for (const auto& o : objects_) {
    if (o.name == name) return &o;
  }
  return nullptr;
}

std::vector<std::string> DesignProcessManager::objectNames() const {
  std::vector<std::string> names;
  names.reserve(objects_.size());
  for (const auto& o : objects_) names.push_back(o.name);
  return names;
}

std::vector<std::string> DesignProcessManager::designers() const {
  std::set<std::string> names;
  for (const auto& p : problems_) {
    if (!p.owner.empty()) names.insert(p.owner);
  }
  return {names.begin(), names.end()};
}

std::vector<constraint::ConstraintId> DesignProcessManager::knownViolations()
    const {
  std::vector<constraint::ConstraintId> out;
  for (std::uint32_t i = 0; i < knownStatus_.size(); ++i) {
    if (knownStatus_[i] == constraint::Status::Violated) {
      out.push_back(constraint::ConstraintId{i});
    }
  }
  return out;
}

std::size_t DesignProcessManager::knownViolationCount() const {
  return static_cast<std::size_t>(
      std::count(knownStatus_.begin(), knownStatus_.end(),
                 constraint::Status::Violated));
}

bool DesignProcessManager::isStale(constraint::ConstraintId c) const {
  return c.value < stale_.size() && stale_[c.value];
}

bool DesignProcessManager::crossSubsystem(constraint::ConstraintId c) const {
  const constraint::Constraint& con = net_.constraint(c);
  std::set<std::string> objects;
  for (constraint::PropertyId arg : con.arguments()) {
    objects.insert(net_.property(arg).object);
  }
  return objects.size() > 1;
}

std::string DesignProcessManager::ownerOfObject(
    const std::string& objectName) const {
  for (const auto& p : problems_) {
    if (p.object == objectName && !p.owner.empty()) return p.owner;
  }
  return {};
}

std::string DesignProcessManager::ownerOfProperty(
    constraint::PropertyId p) const {
  // Prefer a problem that outputs the property; fall back to the object's
  // owner.
  for (const auto& prob : problems_) {
    if (prob.hasOutput(p) && !prob.owner.empty()) return prob.owner;
  }
  return ownerOfObject(net_.property(p).object);
}

bool DesignProcessManager::allOutputsBound() const {
  for (const auto& p : problems_) {
    for (constraint::PropertyId o : p.outputs) {
      if (!net_.property(o).bound()) return false;
    }
  }
  return true;
}

bool DesignProcessManager::designComplete() const {
  if (!allOutputsBound()) return false;
  if (knownViolationCount() > 0) return false;
  if (!staged_.empty()) return false;  // constraints still to be generated
  if (!options_.adpm) {
    // Conventional flow: every *generated* constraint must have been
    // verified since the last change of any involved property.
    for (std::uint32_t i = 0; i < stale_.size(); ++i) {
      if (stale_[i] && net_.isActive(constraint::ConstraintId{i})) {
        return false;
      }
    }
  }
  return std::all_of(problems_.begin(), problems_.end(),
                     [](const DesignProblem& p) {
                       return p.status == ProblemStatus::Solved ||
                              p.status == ProblemStatus::Unassigned;
                     });
}

void DesignProcessManager::recordFailedAssignment(constraint::PropertyId p,
                                                  double value) {
  failedAssignments_[p].push_back(value);
}

bool DesignProcessManager::isFailedAssignment(constraint::PropertyId p,
                                              double value,
                                              double tolerance) const {
  const auto it = failedAssignments_.find(p);
  if (it == failedAssignments_.end()) return false;
  return std::any_of(it->second.begin(), it->second.end(), [&](double v) {
    return std::fabs(v - value) <= tolerance;
  });
}

ManagerState DesignProcessManager::exportState() const {
  ManagerState s;
  s.stage = stage();
  s.evaluations = net_.evaluationCount();
  for (std::uint32_t i = 0; i < net_.propertyCount(); ++i) {
    const constraint::PropertyId pid{i};
    const constraint::Property& p = net_.property(pid);
    if (p.bound()) s.bindings.emplace_back(pid, *p.value);
  }
  for (std::uint32_t i = 0; i < net_.constraintCount(); ++i) {
    const constraint::ConstraintId cid{i};
    if (net_.isActive(cid)) s.activeConstraints.push_back(cid);
  }
  s.objectVersions.reserve(objects_.size());
  for (const DesignObject& o : objects_) s.objectVersions.push_back(o.version);
  s.problemStatuses.reserve(problems_.size());
  for (const DesignProblem& p : problems_) s.problemStatuses.push_back(p.status);
  s.knownStatuses = knownStatus_;
  s.stale = stale_;
  s.guidanceValid = guidanceValid_;
  if (guidanceValid_) s.guidance = guidance_;
  s.previousGuidanceValid = previousGuidanceValid_;
  if (previousGuidanceValid_) s.previousGuidance = previousGuidance_;
  s.staged = staged_;
  s.failedAssignments = failedAssignments_;
  return s;
}

void DesignProcessManager::restoreState(const ManagerState& state) {
  // Validate every shape before mutating anything, so a damaged checkpoint
  // leaves the manager untouched and the caller can fall back.
  if (state.objectVersions.size() != objects_.size() ||
      state.problemStatuses.size() != problems_.size() ||
      state.knownStatuses.size() != net_.constraintCount() ||
      state.stale.size() != net_.constraintCount()) {
    throw adpm::InvalidArgumentError(
        "manager state shape does not match the instantiated scenario");
  }
  for (const auto& [pid, value] : state.bindings) {
    (void)value;
    if (pid.value >= net_.propertyCount()) {
      throw adpm::InvalidArgumentError("manager state binds unknown property");
    }
  }
  std::vector<bool> shouldBeActive(net_.constraintCount(), false);
  for (constraint::ConstraintId cid : state.activeConstraints) {
    if (cid.value >= net_.constraintCount()) {
      throw adpm::InvalidArgumentError(
          "manager state activates unknown constraint");
    }
    shouldBeActive[cid.value] = true;
  }
  for (std::uint32_t i = 0; i < net_.constraintCount(); ++i) {
    // Activation is monotonic (nothing ever deactivates), so a constraint
    // active right after instantiation cannot be inactive at a later stage.
    if (net_.isActive(constraint::ConstraintId{i}) && !shouldBeActive[i]) {
      throw adpm::InvalidArgumentError(
          "manager state deactivates an init-active constraint");
    }
  }
  for (const auto& [cid, trigger] : state.staged) {
    if (cid.value >= net_.constraintCount() ||
        trigger.value >= problems_.size()) {
      throw adpm::InvalidArgumentError(
          "manager state stages unknown constraint or problem");
    }
  }
  for (const auto& [pid, values] : state.failedAssignments) {
    (void)values;
    if (pid.value >= net_.propertyCount()) {
      throw adpm::InvalidArgumentError(
          "manager state records failed assignments for unknown property");
    }
  }

  std::vector<bool> shouldBeBound(net_.propertyCount(), false);
  for (const auto& [pid, value] : state.bindings) {
    (void)value;
    shouldBeBound[pid.value] = true;
  }
  for (std::uint32_t i = 0; i < net_.propertyCount(); ++i) {
    const constraint::PropertyId pid{i};
    if (!shouldBeBound[i] && net_.property(pid).bound()) net_.unbind(pid);
  }
  for (const auto& [pid, value] : state.bindings) net_.bind(pid, value);
  for (constraint::ConstraintId cid : state.activeConstraints) {
    if (!net_.isActive(cid)) net_.activate(cid);
  }
  for (std::size_t i = 0; i < objects_.size(); ++i) {
    objects_[i].version = state.objectVersions[i];
  }
  for (std::size_t i = 0; i < problems_.size(); ++i) {
    problems_[i].status = state.problemStatuses[i];
  }
  knownStatus_ = state.knownStatuses;
  stale_ = state.stale;
  guidanceValid_ = state.guidanceValid;
  guidance_ = state.guidance;
  previousGuidanceValid_ = state.previousGuidanceValid;
  previousGuidance_ = state.previousGuidance;
  staged_ = state.staged;
  failedAssignments_ = state.failedAssignments;
  // The counter restarts at the snapshot's total: post-restore operations
  // charge exactly what they would have charged in the original run.
  net_.resetEvaluationCount();
  net_.chargeEvaluations(state.evaluations);
  history_.clear();
  baseStage_ = state.stage;
}

}  // namespace adpm::dpm
