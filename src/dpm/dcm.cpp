#include "dpm/dcm.hpp"

namespace adpm::dpm {

DesignConstraintManager::Evaluation DesignConstraintManager::evaluate(
    constraint::Network& net) const {
  Evaluation out;
  const std::size_t before = net.evaluationCount();
  out.propagation = propagator_.run(net);
  out.guidance = miner_.mine(net, out.propagation);
  out.evaluations = net.evaluationCount() - before;
  return out;
}

}  // namespace adpm::dpm
