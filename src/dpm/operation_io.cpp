#include "dpm/operation_io.hpp"

#include <cmath>
#include <cstring>

#include "util/error.hpp"

namespace adpm::dpm {

namespace {

std::uint32_t asId(const util::json::Value& v, const char* what) {
  const double n = v.asNumber();
  if (n < 0 || n != std::floor(n)) {
    throw adpm::InvalidArgumentError(std::string("operation json: bad ") +
                                     what);
  }
  return static_cast<std::uint32_t>(n);
}

OperatorKind kindFromName(const std::string& name) {
  if (name == "Synthesis") return OperatorKind::Synthesis;
  if (name == "Verification") return OperatorKind::Verification;
  if (name == "Decomposition") return OperatorKind::Decomposition;
  throw adpm::InvalidArgumentError("operation json: unknown kind '" + name +
                                   "'");
}

}  // namespace

util::json::Value operationToJson(const Operation& op) {
  util::json::Value v{util::json::Object{}};
  v.set("kind", operatorKindName(op.kind));
  v.set("problem", static_cast<std::size_t>(op.problem.value));
  v.set("designer", op.designer);
  if (!op.assignments.empty()) {
    util::json::Array assign;
    assign.reserve(op.assignments.size());
    for (const auto& [pid, value] : op.assignments) {
      assign.push_back(util::json::Array{
          util::json::Value(static_cast<std::size_t>(pid.value)),
          util::json::Value(value)});
    }
    v.set("assign", std::move(assign));
  }
  if (!op.checks.empty()) {
    util::json::Array checks;
    checks.reserve(op.checks.size());
    for (const constraint::ConstraintId cid : op.checks) {
      checks.push_back(util::json::Value(static_cast<std::size_t>(cid.value)));
    }
    v.set("checks", std::move(checks));
  }
  if (op.triggeredBy) {
    v.set("trigger", static_cast<std::size_t>(op.triggeredBy->value));
  }
  if (!op.rationale.empty()) v.set("rationale", op.rationale);
  return v;
}

Operation operationFromJson(const util::json::Value& v) {
  Operation op;
  op.kind = kindFromName(v.at("kind").asString());
  op.problem = ProblemId{asId(v.at("problem"), "problem id")};
  op.designer = v.at("designer").asString();
  if (const util::json::Value* assign = v.find("assign")) {
    for (const util::json::Value& pair : assign->asArray()) {
      const util::json::Array& items = pair.asArray();
      if (items.size() != 2) {
        throw adpm::InvalidArgumentError("operation json: bad assignment");
      }
      op.assignments.emplace_back(
          constraint::PropertyId{asId(items[0], "property id")},
          items[1].asNumber());
    }
  }
  if (const util::json::Value* checks = v.find("checks")) {
    for (const util::json::Value& cid : checks->asArray()) {
      op.checks.push_back(constraint::ConstraintId{asId(cid, "constraint id")});
    }
  }
  if (const util::json::Value* trigger = v.find("trigger")) {
    op.triggeredBy = constraint::ConstraintId{asId(*trigger, "trigger id")};
  }
  if (const util::json::Value* rationale = v.find("rationale")) {
    op.rationale = rationale->asString();
  }
  return op;
}

std::string operationToJsonLine(const Operation& op) {
  return util::json::serialize(operationToJson(op));
}

Operation operationFromJsonLine(const std::string& line) {
  return operationFromJson(util::json::parse(line));
}

}  // namespace adpm::dpm
