#include "dpm/browser.hpp"

#include "constraint/univariate.hpp"

#include <functional>
#include <set>
#include <sstream>

#include "util/strings.hpp"
#include "util/table.hpp"

namespace adpm::dpm {

namespace {

/// The value set constraint `c` alone would require of argument `arg`,
/// holding everything else at its current extent.  Set-valued: disjunctive
/// constraints (abs windows, even powers) report their lobes, e.g.
/// "[114, 130] u [220, 236]".  Display-only bookkeeping on state the DCM
/// already surfaced, so it is not charged as an evaluation.
interval::IntervalSet requiredWindow(const DesignProcessManager& dpm,
                                     constraint::ConstraintId cid,
                                     constraint::PropertyId arg) {
  // Rendering needs mutable access to the compiled scratch only;
  // solveUnivariate does not charge the evaluation counter.
  auto& net = const_cast<DesignProcessManager&>(dpm).network();
  return constraint::solveUnivariate(net, cid, arg);
}

std::string feasibleText(const DesignProcessManager& dpm,
                         constraint::PropertyId pid) {
  if (const constraint::GuidanceReport* g = dpm.latestGuidance()) {
    return g->of(pid).feasible.str();
  }
  // Conventional flow: no propagation, so the browser can only show the
  // initial range (or the bound value).
  const constraint::Property& p = dpm.network().property(pid);
  if (p.bound()) return util::formatNumber(*p.value);
  return p.initial.str();
}

}  // namespace

std::string renderObjectBrowser(const DesignProcessManager& dpm,
                                const std::string& objectName) {
  const DesignObject* obj = dpm.object(objectName);
  std::ostringstream out;
  if (obj == nullptr) {
    out << "Object name: " << objectName << " (unknown)\n";
    return out.str();
  }
  out << "Object name: " << obj->name << "\n";
  out << "Version number: " << obj->version << " (current)\n";
  out << std::string(64, '-') << "\n";
  for (constraint::PropertyId pid : obj->properties) {
    const constraint::Property& p = dpm.network().property(pid);
    out << p.name;
    if (!p.unit.empty()) out << " [" << p.unit << "]";
    out << "\n";
    if (!p.abstractionLevels.empty()) {
      out << "    Abstraction Levels: "
          << util::join(p.abstractionLevels, ",") << "\n";
    }
    out << "    Consistent values: " << feasibleText(dpm, pid);
    if (p.bound()) out << "    (bound: " << util::formatNumber(*p.value) << ")";
    out << "\n";
  }
  return out.str();
}

std::string renderConstraintBrowser(const DesignProcessManager& dpm,
                                    const std::string& designer) {
  const constraint::Network& net = dpm.network();
  const constraint::GuidanceReport* guidance = dpm.latestGuidance();

  // Scope: the designer's objects' properties; empty designer = everything.
  std::set<std::uint32_t> visibleProps;
  for (const std::string& objName : dpm.objectNames()) {
    if (!designer.empty() && dpm.ownerOfObject(objName) != designer) continue;
    const DesignObject* obj = dpm.object(objName);
    for (constraint::PropertyId pid : obj->properties) {
      visibleProps.insert(pid.value);
    }
  }
  std::set<std::uint32_t> visibleCons;
  for (std::uint32_t pv : visibleProps) {
    for (constraint::ConstraintId cid :
         net.constraintsOf(constraint::PropertyId{pv})) {
      visibleCons.insert(cid.value);
    }
  }

  std::ostringstream out;
  out << "CONSTRAINTS\n";
  util::TextTable cons;
  cons.header({"Constraint", "Status", "Relation"});
  const auto& statuses = dpm.knownStatuses();
  for (std::uint32_t cv : visibleCons) {
    if (!net.isActive(constraint::ConstraintId{cv})) continue;
    const constraint::Constraint& c = net.constraint(constraint::ConstraintId{cv});
    std::string status = constraint::statusName(statuses[cv]);
    if (dpm.isStale(constraint::ConstraintId{cv})) status += " (stale)";
    cons.row({c.name(), status, c.str()});
  }
  out << cons.render() << "\n";

  // Fig. 4's top pane: for each violated constraint, the window each
  // argument would have to move into for that constraint alone to hold.
  bool anyViolated = false;
  for (std::uint32_t cv : visibleCons) {
    if (!net.isActive(constraint::ConstraintId{cv})) continue;
    if (statuses[cv] != constraint::Status::Violated) continue;
    const constraint::ConstraintId cid{cv};
    const constraint::Constraint& c = net.constraint(cid);
    if (!anyViolated) {
      out << "REQUIRED WINDOWS (per violated constraint)\n";
      anyViolated = true;
    }
    for (constraint::PropertyId arg : c.arguments()) {
      const constraint::Property& p = net.property(arg);
      const interval::IntervalSet window = requiredWindow(dpm, cid, arg);
      out << "  P." << p.name << "  "
          << (window.empty() ? std::string("<no value works>")
                             : window.str())
          << " required by " << c.name() << "\n";
    }
  }
  if (anyViolated) out << "\n";

  out << "PROPERTIES\n";
  util::TextTable props;
  props.header({"Property", "# c's", "Value/Status", "Object",
                "Connected violations"});
  for (std::uint32_t pv : visibleProps) {
    const constraint::PropertyId pid{pv};
    const constraint::Property& p = net.property(pid);
    const std::string value =
        p.bound() ? util::formatNumber(*p.value) : "<No value assigned>";
    std::string alpha;
    std::string beta = std::to_string(net.constraintsOf(pid).size());
    if (guidance != nullptr) {
      const auto& g = guidance->of(pid);
      if (g.alpha > 0) alpha = std::to_string(g.alpha);
      beta = std::to_string(g.beta);
    }
    props.row({"P." + p.name, beta, value, p.object, alpha});
  }
  out << props.render();
  return out.str();
}

std::string renderProblemTree(const DesignProcessManager& dpm) {
  std::ostringstream out;
  out << "PROBLEMS\n";
  std::function<void(ProblemId, int)> render = [&](ProblemId id, int depth) {
    const DesignProblem& p = dpm.problem(id);
    out << std::string(static_cast<std::size_t>(depth) * 2, ' ') << p.name
        << "  [" << problemStatusName(p.status) << "]";
    if (!p.owner.empty()) out << "  owner: " << p.owner;
    out << "  outputs: " << p.outputs.size()
        << "  constraints: " << p.constraints.size() << "\n";
    for (const ProblemId child : p.children) render(child, depth + 1);
  };
  for (const ProblemId id : dpm.problemIds()) {
    if (!dpm.problem(id).parent) render(id, 0);
  }
  return out.str();
}

}  // namespace adpm::dpm
