#include "dpm/state_io.hpp"

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "util/error.hpp"

namespace adpm::dpm {
namespace {

using util::json::Array;
using util::json::Object;
using util::json::Value;

// %.17g round-trips every double; unlike json::formatNumber this accepts
// ±inf (Interval bounds are often infinite) because the result lands in a
// JSON *string*, never a JSON number.
std::string encodeDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

double decodeDouble(const Value& v) {
  const std::string& s = v.asString();
  const char* c = s.c_str();
  char* end = nullptr;
  const double parsed = std::strtod(c, &end);
  if (end != c + s.size() || s.empty()) {
    throw adpm::InvalidArgumentError("state: bad double '" + s + "'");
  }
  return parsed;
}

std::size_t decodeSize(const Value& v) {
  const double n = v.asNumber();
  if (n < 0 || n != static_cast<double>(static_cast<std::size_t>(n))) {
    throw adpm::InvalidArgumentError("state: bad non-negative integer");
  }
  return static_cast<std::size_t>(n);
}

int decodeInt(const Value& v) {
  const double n = v.asNumber();
  if (n != static_cast<double>(static_cast<int>(n))) {
    throw adpm::InvalidArgumentError("state: bad integer");
  }
  return static_cast<int>(n);
}

std::uint32_t decodeId(const Value& v) {
  const double n = v.asNumber();
  if (n < 0 || n != static_cast<double>(static_cast<std::uint32_t>(n))) {
    throw adpm::InvalidArgumentError("state: bad id");
  }
  return static_cast<std::uint32_t>(n);
}

Value domainToJson(const interval::Domain& d) {
  Value out{Object{}};
  if (d.isDiscrete()) {
    out.set("k", "d");
    Array vals;
    vals.reserve(d.values().size());
    for (double v : d.values()) vals.emplace_back(encodeDouble(v));
    out.set("vals", Value(std::move(vals)));
  } else {
    out.set("k", "c");
    const interval::Interval hull = d.hull();
    out.set("lo", encodeDouble(hull.lo()));
    out.set("hi", encodeDouble(hull.hi()));
  }
  return out;
}

interval::Domain domainFromJson(const Value& v) {
  const std::string& kind = v.at("k").asString();
  if (kind == "d") {
    std::vector<double> vals;
    for (const Value& e : v.at("vals").asArray()) vals.push_back(decodeDouble(e));
    return interval::Domain::discrete(std::move(vals));
  }
  if (kind == "c") {
    // Interval(lo, hi) with lo > hi canonicalizes to the empty set, so an
    // empty continuous domain round-trips through its (inverted) hull.
    return interval::Domain::continuous(decodeDouble(v.at("lo")),
                                        decodeDouble(v.at("hi")));
  }
  throw adpm::InvalidArgumentError("state: bad domain kind '" + kind + "'");
}

Value idArrayToJson(const std::vector<constraint::ConstraintId>& ids) {
  Array out;
  out.reserve(ids.size());
  for (constraint::ConstraintId id : ids) {
    out.emplace_back(static_cast<std::size_t>(id.value));
  }
  return Value(std::move(out));
}

std::vector<constraint::ConstraintId> idArrayFromJson(const Value& v) {
  std::vector<constraint::ConstraintId> out;
  for (const Value& e : v.asArray()) {
    out.push_back(constraint::ConstraintId{decodeId(e)});
  }
  return out;
}

Value guidanceToJson(const constraint::GuidanceReport& g) {
  Value out{Object{}};
  Array props;
  props.reserve(g.properties.size());
  for (const constraint::PropertyGuidance& p : g.properties) {
    Value pj{Object{}};
    pj.set("id", Value(static_cast<std::size_t>(p.id.value)));
    pj.set("feasible", domainToJson(p.feasible));
    pj.set("rel", encodeDouble(p.relativeFeasibleSize));
    pj.set("alpha", Value(p.alpha));
    pj.set("beta", Value(p.beta));
    pj.set("inc", idArrayToJson(p.increasing));
    pj.set("dec", idArrayToJson(p.decreasing));
    pj.set("up", Value(p.repairVotesUp));
    pj.set("down", Value(p.repairVotesDown));
    props.push_back(std::move(pj));
  }
  out.set("props", Value(std::move(props)));
  out.set("violated", idArrayToJson(g.violated));
  out.set("extra", Value(g.extraEvaluations));
  return out;
}

constraint::GuidanceReport guidanceFromJson(const Value& v) {
  constraint::GuidanceReport g;
  for (const Value& pj : v.at("props").asArray()) {
    constraint::PropertyGuidance p;
    p.id = constraint::PropertyId{decodeId(pj.at("id"))};
    p.feasible = domainFromJson(pj.at("feasible"));
    p.relativeFeasibleSize = decodeDouble(pj.at("rel"));
    p.alpha = decodeInt(pj.at("alpha"));
    p.beta = decodeInt(pj.at("beta"));
    p.increasing = idArrayFromJson(pj.at("inc"));
    p.decreasing = idArrayFromJson(pj.at("dec"));
    p.repairVotesUp = decodeInt(pj.at("up"));
    p.repairVotesDown = decodeInt(pj.at("down"));
    g.properties.push_back(std::move(p));
  }
  g.violated = idArrayFromJson(v.at("violated"));
  g.extraEvaluations = decodeSize(v.at("extra"));
  return g;
}

constraint::Status statusFromInt(std::uint32_t n) {
  switch (n) {
    case 0: return constraint::Status::Satisfied;
    case 1: return constraint::Status::Violated;
    case 2: return constraint::Status::Consistent;
  }
  throw adpm::InvalidArgumentError("state: bad constraint status");
}

ProblemStatus problemStatusFromInt(std::uint32_t n) {
  switch (n) {
    case 0: return ProblemStatus::Unassigned;
    case 1: return ProblemStatus::Ready;
    case 2: return ProblemStatus::InProgress;
    case 3: return ProblemStatus::Waiting;
    case 4: return ProblemStatus::Solved;
  }
  throw adpm::InvalidArgumentError("state: bad problem status");
}

}  // namespace

Value managerStateToJson(const ManagerState& state) {
  Value out{Object{}};
  out.set("stage", Value(state.stage));
  out.set("evals", Value(state.evaluations));

  Array bindings;
  bindings.reserve(state.bindings.size());
  for (const auto& [pid, value] : state.bindings) {
    bindings.emplace_back(Array{Value(static_cast<std::size_t>(pid.value)),
                                Value(encodeDouble(value))});
  }
  out.set("bindings", Value(std::move(bindings)));
  out.set("active", idArrayToJson(state.activeConstraints));

  Array versions;
  versions.reserve(state.objectVersions.size());
  for (const std::string& v : state.objectVersions) versions.emplace_back(v);
  out.set("versions", Value(std::move(versions)));

  Array problems;
  problems.reserve(state.problemStatuses.size());
  for (ProblemStatus s : state.problemStatuses) {
    problems.emplace_back(static_cast<std::size_t>(s));
  }
  out.set("problems", Value(std::move(problems)));

  Array known;
  known.reserve(state.knownStatuses.size());
  for (constraint::Status s : state.knownStatuses) {
    known.emplace_back(static_cast<std::size_t>(s));
  }
  out.set("known", Value(std::move(known)));

  Array stale;
  stale.reserve(state.stale.size());
  for (bool b : state.stale) stale.emplace_back(b);
  out.set("stale", Value(std::move(stale)));

  out.set("guidance", state.guidanceValid ? guidanceToJson(state.guidance)
                                          : Value(nullptr));
  out.set("prevGuidance", state.previousGuidanceValid
                              ? guidanceToJson(state.previousGuidance)
                              : Value(nullptr));

  Array staged;
  staged.reserve(state.staged.size());
  for (const auto& [cid, pid] : state.staged) {
    staged.emplace_back(Array{Value(static_cast<std::size_t>(cid.value)),
                              Value(static_cast<std::size_t>(pid.value))});
  }
  out.set("staged", Value(std::move(staged)));

  Array failed;
  failed.reserve(state.failedAssignments.size());
  for (const auto& [pid, values] : state.failedAssignments) {
    Array vals;
    vals.reserve(values.size());
    for (double v : values) vals.emplace_back(encodeDouble(v));
    failed.emplace_back(Array{Value(static_cast<std::size_t>(pid.value)),
                              Value(std::move(vals))});
  }
  out.set("failed", Value(std::move(failed)));
  return out;
}

ManagerState managerStateFromJson(const Value& v) {
  ManagerState state;
  state.stage = decodeSize(v.at("stage"));
  state.evaluations = decodeSize(v.at("evals"));

  for (const Value& e : v.at("bindings").asArray()) {
    const Array& pair = e.asArray();
    if (pair.size() != 2) {
      throw adpm::InvalidArgumentError("state: bad binding pair");
    }
    state.bindings.emplace_back(constraint::PropertyId{decodeId(pair[0])},
                                decodeDouble(pair[1]));
  }
  state.activeConstraints = idArrayFromJson(v.at("active"));

  for (const Value& e : v.at("versions").asArray()) {
    state.objectVersions.push_back(e.asString());
  }
  for (const Value& e : v.at("problems").asArray()) {
    state.problemStatuses.push_back(problemStatusFromInt(decodeId(e)));
  }
  for (const Value& e : v.at("known").asArray()) {
    state.knownStatuses.push_back(statusFromInt(decodeId(e)));
  }
  for (const Value& e : v.at("stale").asArray()) {
    state.stale.push_back(e.asBool());
  }

  const Value& guidance = v.at("guidance");
  state.guidanceValid = !guidance.isNull();
  if (state.guidanceValid) state.guidance = guidanceFromJson(guidance);
  const Value& prev = v.at("prevGuidance");
  state.previousGuidanceValid = !prev.isNull();
  if (state.previousGuidanceValid) {
    state.previousGuidance = guidanceFromJson(prev);
  }

  for (const Value& e : v.at("staged").asArray()) {
    const Array& pair = e.asArray();
    if (pair.size() != 2) {
      throw adpm::InvalidArgumentError("state: bad staged pair");
    }
    state.staged.emplace_back(constraint::ConstraintId{decodeId(pair[0])},
                              ProblemId{decodeId(pair[1])});
  }
  for (const Value& e : v.at("failed").asArray()) {
    const Array& pair = e.asArray();
    if (pair.size() != 2) {
      throw adpm::InvalidArgumentError("state: bad failed-assignment pair");
    }
    std::vector<double> values;
    for (const Value& fe : pair[1].asArray()) values.push_back(decodeDouble(fe));
    state.failedAssignments.emplace(constraint::PropertyId{decodeId(pair[0])},
                                    std::move(values));
  }
  return state;
}

}  // namespace adpm::dpm
