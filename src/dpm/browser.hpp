// Text renderings of Minerva III's browser windows (Figs. 2-4 of the paper).
//
// The paper's screenshots show three designer-facing views:
//   Fig. 2 — object browser: per property, abstraction levels and the values
//            "not found to be infeasible" (consistent values),
//   Fig. 3 — constraint & property browser: constraints with statuses and,
//            per property, the number of constraints it appears in (β),
//   Fig. 4 — conflict-resolution view: violated constraints plus the
//            "Connected violations" column (α).
// These renderers produce the equivalent ASCII panels from live state.
#pragma once

#include <string>

#include "dpm/manager.hpp"

namespace adpm::dpm {

/// Fig. 2: the object browser for one design object.
std::string renderObjectBrowser(const DesignProcessManager& dpm,
                                const std::string& objectName);

/// Figs. 3 / 4: the constraint & property browser scoped to the properties
/// and constraints a designer can see (their objects' properties plus every
/// constraint touching them).  Pass an empty designer for the global view.
/// Violated constraints additionally list, per argument, the value window
/// that constraint alone would require — the paper's
/// "[48.000000 48.000000] required by LNAGain-C10" lines.
std::string renderConstraintBrowser(const DesignProcessManager& dpm,
                                    const std::string& designer = {});

/// The design problem hierarchy with statuses and owners (Minerva III's
/// problem browser): an indented tree, one problem per line.
std::string renderProblemTree(const DesignProcessManager& dpm);

}  // namespace adpm::dpm
