// Operation serialization hooks: the JSON wire/journal form of a design
// operation θ.
//
// The service layer's durable operation log stores one operation per JSONL
// line; replaying those lines through a fresh DesignProcessManager must
// reproduce the live run bit-identically, so the encoding is canonical
// (insertion-ordered fields, %.17g doubles — see util/json.hpp) and total:
// every field of Operation round-trips, including the optional triggeredBy
// and the display-only rationale.
#pragma once

#include <string>

#include "dpm/operation.hpp"
#include "util/json.hpp"

namespace adpm::dpm {

/// Encodes an operation as a JSON object:
///   {"kind":"Synthesis","problem":2,"designer":"ana",
///    "assign":[[1,30.5],...],"checks":[0,4],"trigger":3,
///    "rationale":"alpha=2, repairing budget"}
/// `assign`/`checks` are omitted when empty, `trigger` when absent,
/// `rationale` when empty.
util::json::Value operationToJson(const Operation& op);

/// Inverse of operationToJson; throws adpm::InvalidArgumentError on a
/// malformed object (unknown kind, non-integral ids, ...).
Operation operationFromJson(const util::json::Value& v);

/// Canonical single-line form (serialize(operationToJson(op))).
std::string operationToJsonLine(const Operation& op);
Operation operationFromJsonLine(const std::string& line);

}  // namespace adpm::dpm
