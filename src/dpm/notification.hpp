// The Notification Manager (NM).
//
// "The NM alerts designers of constraint-related events, including
// violations and reductions of a property's feasible subspace.  It selects
// subsets of H_{n+1} relevant to each designer and includes them in
// notifications." (paper, Section 2.2)
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "constraint/miner.hpp"

namespace adpm::dpm {

enum class NotificationKind : std::uint8_t {
  ViolationDetected,
  ViolationResolved,
  FeasibleSubspaceReduced,
  ProblemSolved,
  RequirementChanged,
  /// Service-level: the subscriber's queue saturated and per-event delivery
  /// was coalesced; the client should refetch a session snapshot instead of
  /// trusting its event stream to be complete (service/bus.hpp degraded
  /// mode).  Never produced by NotificationManager::diff.
  ResyncRequired,
};

const char* notificationKindName(NotificationKind k) noexcept;

struct Notification {
  NotificationKind kind{};
  /// Recipient designer.
  std::string designer;
  /// Stage at which the event happened.
  std::size_t stage = 0;
  /// Constraint involved (Violation*), if any.
  std::optional<constraint::ConstraintId> constraintId;
  /// Property involved (FeasibleSubspaceReduced / RequirementChanged).
  std::optional<constraint::PropertyId> propertyId;
  /// Human-readable one-liner.
  std::string text;
};

/// Computes the notification fan-out for one state transition.  Relevance
/// routing: a designer is notified about a constraint event when one of the
/// constraint's argument properties belongs to an object they own a problem
/// for; subspace reductions go to the owner of the property's object.
class NotificationManager {
 public:
  struct Sizes {
    /// A feasible-subspace reduction below this fraction of the previous
    /// size triggers a notification.
    double reductionThreshold = 0.95;
  };

  NotificationManager() = default;
  explicit NotificationManager(Sizes sizes) : sizes_(sizes) {}

  /// Diffs known statuses and guidance between consecutive states.
  /// `ownerOfObject` maps an object name to the owning designer ("" when
  /// unowned); notifications without a resolvable owner are dropped.
  std::vector<Notification> diff(
      std::size_t stage, constraint::Network& net,
      const std::vector<constraint::Status>& before,
      const std::vector<constraint::Status>& after,
      const constraint::GuidanceReport* guidanceBefore,
      const constraint::GuidanceReport* guidanceAfter,
      const std::function<std::vector<std::string>(
          const constraint::Constraint&)>& audienceOf,
      const std::function<std::string(constraint::PropertyId)>& ownerOf) const;

 private:
  Sizes sizes_;
};

}  // namespace adpm::dpm
