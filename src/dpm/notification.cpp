#include "dpm/notification.hpp"

#include <algorithm>

namespace adpm::dpm {

const char* notificationKindName(NotificationKind k) noexcept {
  switch (k) {
    case NotificationKind::ViolationDetected: return "ViolationDetected";
    case NotificationKind::ViolationResolved: return "ViolationResolved";
    case NotificationKind::FeasibleSubspaceReduced:
      return "FeasibleSubspaceReduced";
    case NotificationKind::ProblemSolved: return "ProblemSolved";
    case NotificationKind::RequirementChanged: return "RequirementChanged";
    case NotificationKind::ResyncRequired: return "ResyncRequired";
  }
  return "?";
}

std::vector<Notification> NotificationManager::diff(
    std::size_t stage, constraint::Network& net,
    const std::vector<constraint::Status>& before,
    const std::vector<constraint::Status>& after,
    const constraint::GuidanceReport* guidanceBefore,
    const constraint::GuidanceReport* guidanceAfter,
    const std::function<std::vector<std::string>(
        const constraint::Constraint&)>& audienceOf,
    const std::function<std::string(constraint::PropertyId)>& ownerOf) const {
  std::vector<Notification> out;

  // Constraint status transitions.
  const std::size_t nc = std::min(before.size(), after.size());
  auto emitStatus = [&](std::uint32_t i, NotificationKind kind) {
    const constraint::Constraint& c =
        net.constraint(constraint::ConstraintId{i});
    for (const std::string& designer : audienceOf(c)) {
      if (designer.empty()) continue;
      Notification n;
      n.kind = kind;
      n.designer = designer;
      n.stage = stage;
      n.constraintId = c.id();
      n.text = std::string(notificationKindName(kind)) + ": " + c.name();
      out.push_back(std::move(n));
    }
  };
  for (std::uint32_t i = 0; i < nc; ++i) {
    const bool wasViolated = before[i] == constraint::Status::Violated;
    const bool isViolated = after[i] == constraint::Status::Violated;
    if (!wasViolated && isViolated) {
      emitStatus(i, NotificationKind::ViolationDetected);
    } else if (wasViolated && !isViolated) {
      emitStatus(i, NotificationKind::ViolationResolved);
    }
  }
  // Constraints added since the previous state start as not-violated; report
  // any that arrive violated.
  for (std::uint32_t i = static_cast<std::uint32_t>(nc); i < after.size();
       ++i) {
    if (after[i] == constraint::Status::Violated) {
      emitStatus(i, NotificationKind::ViolationDetected);
    }
  }

  // Feasible-subspace reductions.
  if (guidanceBefore && guidanceAfter) {
    const std::size_t np = std::min(guidanceBefore->properties.size(),
                                    guidanceAfter->properties.size());
    for (std::size_t i = 0; i < np; ++i) {
      const auto& gb = guidanceBefore->properties[i];
      const auto& ga = guidanceAfter->properties[i];
      if (ga.relativeFeasibleSize <
          gb.relativeFeasibleSize * sizes_.reductionThreshold) {
        const std::string owner = ownerOf(ga.id);
        if (owner.empty()) continue;
        Notification n;
        n.kind = NotificationKind::FeasibleSubspaceReduced;
        n.designer = owner;
        n.stage = stage;
        n.propertyId = ga.id;
        n.text = "FeasibleSubspaceReduced: " + net.property(ga.id).name +
                 " now " + ga.feasible.str();
        out.push_back(std::move(n));
      }
    }
  }
  return out;
}

}  // namespace adpm::dpm
