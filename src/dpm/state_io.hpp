// JSON codec for ManagerState — the payload of a durable checkpoint.
//
// Builds/consumes util::json Values only; serialization to bytes stays in
// the WAL layer (the canonical-JSON discipline lives there).  All doubles
// are encoded as %.17g *strings*, not JSON numbers: Interval and Domain
// bounds can be ±inf, which the canonical serializer (correctly) refuses as
// JSON numbers, and the string form round-trips every IEEE-754 double
// bit-exactly via strtod.
#pragma once

#include "dpm/manager.hpp"
#include "util/json.hpp"

namespace adpm::dpm {

util::json::Value managerStateToJson(const ManagerState& state);

/// Inverse of managerStateToJson.  Any structural problem (missing field,
/// wrong kind, out-of-range enum, unparseable number) throws
/// InvalidArgumentError — recovery treats the checkpoint as damaged and
/// falls back.
ManagerState managerStateFromJson(const util::json::Value& v);

}  // namespace adpm::dpm
