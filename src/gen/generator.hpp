// Procedural scenario synthesis: seeded, deterministic generation of valid
// ScenarioSpecs with a planted feasibility witness.
//
// The paper evaluates ADPM on two hand-built MEMS cases; growing the
// workload zoo beyond hand-written DDDL needs scenarios that are (a) valid
// by construction, (b) reproducible bit-for-bit from a seed, and (c) of
// *known* satisfiability, so λ=T vs λ=F experiments have ground truth.  The
// generator guarantees all three:
//
//  * Witness planting.  Every property is created together with a witness
//    value; its initial range is widened around the witness.  Equality
//    ("model") constraints only ever *define* a fresh derived property whose
//    witness is the defining expression evaluated at the witness point, and
//    inequality bounds are derived from the witness evaluation plus a
//    tightness-controlled slack.  The witness point therefore satisfies
//    every constraint — the scenario is feasibility-certified by
//    construction (unless `infeasibleConstraints` plants negatives).
//
//  * Hierarchy ("zoom").  In the spirit of genetIC's multi-level
//    initial-conditions grids, a coarse subsystem-level network is generated
//    first and selected subsystems are then refined into dense component
//    subnetworks; linking constraints couple each component back to its
//    parent's properties, and refined problems enter the process through
//    decomposition operations with DPM-generated constraints (paper §2.2).
//
//  * Determinism.  All randomness flows through util::Rng (xoshiro256**)
//    and double arithmetic sticks to IEEE-exact operations (+,-,*,/,sqrt)
//    unless `useLibmOps` opts into exp/log, so the emitted DDDL is
//    byte-identical across platforms for a fixed (params, seed).
#pragma once

#include <cstdint>
#include <vector>

#include "dpm/scenario.hpp"
#include "gen/params.hpp"

namespace adpm::gen {

struct GeneratedScenario {
  dpm::ScenarioSpec spec;
  /// Planted witness value per property (indexed like spec.properties).
  /// Satisfies every constraint except the planted infeasible ones; frozen
  /// requirement properties have witness == required value.
  std::vector<double> witness;
  /// Spec indices of the constraints planted infeasible (empty when the
  /// scenario is feasibility-certified).
  std::vector<std::size_t> infeasible;
};

/// Generates a scenario from `params` with the given seed.  The result
/// passes ScenarioSpec::validate() and round-trips through dddl::write /
/// dddl::parse.  Throws InvalidArgumentError for unsatisfiable parameter
/// combinations.
GeneratedScenario generate(const GenParams& params, std::uint64_t seed);

/// Same, using params.seed.
GeneratedScenario generate(const GenParams& params);

/// Evaluates an expression at a point (indexed by VarId).  Plain double
/// arithmetic; the generator uses it to compute witness values and derived
/// bounds, and tests use it to check planted witnesses against constraints.
double evaluateAt(const expr::Expr& e, const std::vector<double>& point);

/// True when the witness point satisfies constraint `c` of `spec` within
/// `tol` (relative).  Equality holds when |lhs-rhs| <= tol*(1+|rhs|).
bool witnessSatisfies(const dpm::ScenarioSpec& spec, std::size_t c,
                      const std::vector<double>& witness, double tol = 1e-9);

}  // namespace adpm::gen
