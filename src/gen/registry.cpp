#include "gen/registry.hpp"

#include "gen/generator.hpp"
#include "gen/presets.hpp"
#include "scenarios/accelerometer.hpp"
#include "scenarios/receiver.hpp"
#include "scenarios/sensing.hpp"
#include "scenarios/walkthrough.hpp"
#include "util/error.hpp"

namespace adpm::gen {

const std::vector<RegistryEntry>& scenarioRegistry() {
  static const std::vector<RegistryEntry> entries = [] {
    std::vector<RegistryEntry> out = {
        {"sensing", "builtin", "sensing-system walkthrough case (paper §4.1)"},
        {"receiver", "builtin", "MEMS receiver case, 2 designers"},
        {"receiver4", "builtin", "MEMS receiver case, 4-designer team"},
        {"accelerometer", "builtin", "MEMS accelerometer case"},
        {"walkthrough", "builtin", "minimal two-property walkthrough"},
    };
    for (const ZooPreset& preset : zooPresets()) {
      out.push_back({preset.name, "generated", preset.description});
    }
    return out;
  }();
  return entries;
}

dpm::ScenarioSpec scenarioByName(const std::string& name) {
  if (name == "sensing") return scenarios::sensingSystemScenario();
  if (name == "receiver") return scenarios::receiverScenario();
  if (name == "receiver4") return scenarios::receiverLargeTeamScenario();
  if (name == "accelerometer") return scenarios::accelerometerScenario();
  if (name == "walkthrough") return scenarios::walkthroughScenario();
  for (const ZooPreset& preset : zooPresets()) {
    if (preset.name == name) {
      return generate(parseParams(preset.paramfile)).spec;
    }
  }
  throw InvalidArgumentError("unknown scenario '" + name + "' (expected " +
                             registeredScenarioNames() + ")");
}

bool isRegisteredScenario(const std::string& name) {
  for (const RegistryEntry& entry : scenarioRegistry()) {
    if (entry.name == name) return true;
  }
  return false;
}

std::string registeredScenarioNames() {
  std::string out;
  for (const RegistryEntry& entry : scenarioRegistry()) {
    if (!out.empty()) out += ", ";
    out += entry.name;
  }
  return out;
}

}  // namespace adpm::gen
