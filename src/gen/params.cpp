#include "gen/params.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/json.hpp"

namespace adpm::gen {

namespace {

using util::json::Value;

std::size_t asCount(const Value& v, const char* key) {
  const double n = v.asNumber();
  if (!(n >= 0) || n != std::floor(n) || n > 1e9) {
    throw InvalidArgumentError(std::string("paramfile: '") + key +
                               "' must be a non-negative integer");
  }
  return static_cast<std::size_t>(n);
}

double asFraction(const Value& v, const char* key) {
  const double f = v.asNumber();
  if (!(f >= 0.0 && f <= 1.0)) {
    throw InvalidArgumentError(std::string("paramfile: '") + key +
                               "' must be in [0, 1]");
  }
  return f;
}

ZoomSpec parseZoom(const Value& v) {
  ZoomSpec z;
  for (const auto& [key, field] : v.asObject()) {
    if (key == "refine") {
      z.refine = asCount(field, "zoom.refine");
    } else if (key == "components") {
      z.components = asCount(field, "zoom.components");
    } else if (key == "propertiesPerComponent") {
      z.propertiesPerComponent = asCount(field, "zoom.propertiesPerComponent");
    } else if (key == "constraintsPerComponent") {
      z.constraintsPerComponent =
          asCount(field, "zoom.constraintsPerComponent");
    } else if (key == "links") {
      z.links = asCount(field, "zoom.links");
    } else if (key == "deferred") {
      z.deferred = field.asBool();
    } else {
      throw InvalidArgumentError("paramfile: unknown zoom key '" + key + "'");
    }
  }
  return z;
}

}  // namespace

bool operator==(const ZoomSpec& a, const ZoomSpec& b) {
  return a.refine == b.refine && a.components == b.components &&
         a.propertiesPerComponent == b.propertiesPerComponent &&
         a.constraintsPerComponent == b.constraintsPerComponent &&
         a.links == b.links && a.deferred == b.deferred;
}

bool operator==(const GenParams& a, const GenParams& b) {
  return a.name == b.name && a.seed == b.seed &&
         a.subsystems == b.subsystems &&
         a.propertiesPerSubsystem == b.propertiesPerSubsystem &&
         a.constraintsPerSubsystem == b.constraintsPerSubsystem &&
         a.crossConstraints == b.crossConstraints &&
         a.requirements == b.requirements && a.degree == b.degree &&
         a.nonlinearFraction == b.nonlinearFraction &&
         a.eqFraction == b.eqFraction &&
         a.discreteFraction == b.discreteFraction &&
         a.monotoneDeclFraction == b.monotoneDeclFraction &&
         a.tightness == b.tightness && a.useLibmOps == b.useLibmOps &&
         a.teamSize == b.teamSize && a.zoom == b.zoom &&
         a.infeasibleConstraints == b.infeasibleConstraints;
}

GenParams parseParams(const std::string& text) {
  const Value root = util::json::parse(text);
  GenParams p;
  for (const auto& [key, field] : root.asObject()) {
    if (key == "name") {
      p.name = field.asString();
      if (p.name.empty()) {
        throw InvalidArgumentError("paramfile: 'name' must not be empty");
      }
    } else if (key == "seed") {
      p.seed = static_cast<std::uint64_t>(asCount(field, "seed"));
    } else if (key == "subsystems") {
      p.subsystems = asCount(field, "subsystems");
    } else if (key == "propertiesPerSubsystem") {
      p.propertiesPerSubsystem = asCount(field, "propertiesPerSubsystem");
    } else if (key == "constraintsPerSubsystem") {
      p.constraintsPerSubsystem = asCount(field, "constraintsPerSubsystem");
    } else if (key == "crossConstraints") {
      p.crossConstraints = asCount(field, "crossConstraints");
    } else if (key == "requirements") {
      p.requirements = asCount(field, "requirements");
    } else if (key == "degree") {
      p.degree = field.asNumber();
      if (!(p.degree >= 1.0 && p.degree <= 8.0)) {
        throw InvalidArgumentError("paramfile: 'degree' must be in [1, 8]");
      }
    } else if (key == "nonlinearFraction") {
      p.nonlinearFraction = asFraction(field, "nonlinearFraction");
    } else if (key == "eqFraction") {
      p.eqFraction = asFraction(field, "eqFraction");
    } else if (key == "discreteFraction") {
      p.discreteFraction = asFraction(field, "discreteFraction");
    } else if (key == "monotoneDeclFraction") {
      p.monotoneDeclFraction = asFraction(field, "monotoneDeclFraction");
    } else if (key == "tightness") {
      p.tightness = asFraction(field, "tightness");
    } else if (key == "useLibmOps") {
      p.useLibmOps = field.asBool();
    } else if (key == "teamSize") {
      p.teamSize = asCount(field, "teamSize");
      if (p.teamSize == 0) {
        throw InvalidArgumentError("paramfile: 'teamSize' must be >= 1");
      }
    } else if (key == "zoom") {
      for (const Value& z : field.asArray()) p.zoom.push_back(parseZoom(z));
    } else if (key == "infeasibleConstraints") {
      p.infeasibleConstraints = asCount(field, "infeasibleConstraints");
    } else {
      throw InvalidArgumentError("paramfile: unknown key '" + key + "'");
    }
  }
  if (p.subsystems == 0) {
    throw InvalidArgumentError("paramfile: 'subsystems' must be >= 1");
  }
  if (p.propertiesPerSubsystem < 2) {
    throw InvalidArgumentError(
        "paramfile: 'propertiesPerSubsystem' must be >= 2");
  }
  return p;
}

GenParams loadParams(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw InvalidArgumentError("cannot open paramfile '" + path + "'");
  }
  std::ostringstream text;
  text << in.rdbuf();
  try {
    return parseParams(text.str());
  } catch (const Error& e) {
    throw InvalidArgumentError(path + ": " + e.what());
  }
}

std::string serializeParams(const GenParams& p) {
  Value root{util::json::Object{}};
  root.set("name", p.name);
  root.set("seed", static_cast<std::size_t>(p.seed));
  root.set("subsystems", p.subsystems);
  root.set("propertiesPerSubsystem", p.propertiesPerSubsystem);
  root.set("constraintsPerSubsystem", p.constraintsPerSubsystem);
  root.set("crossConstraints", p.crossConstraints);
  root.set("requirements", p.requirements);
  root.set("degree", p.degree);
  root.set("nonlinearFraction", p.nonlinearFraction);
  root.set("eqFraction", p.eqFraction);
  root.set("discreteFraction", p.discreteFraction);
  root.set("monotoneDeclFraction", p.monotoneDeclFraction);
  root.set("tightness", p.tightness);
  root.set("useLibmOps", p.useLibmOps);
  root.set("teamSize", p.teamSize);
  util::json::Array zoom;
  for (const ZoomSpec& z : p.zoom) {
    Value level{util::json::Object{}};
    level.set("refine", z.refine);
    level.set("components", z.components);
    level.set("propertiesPerComponent", z.propertiesPerComponent);
    level.set("constraintsPerComponent", z.constraintsPerComponent);
    level.set("links", z.links);
    level.set("deferred", z.deferred);
    zoom.push_back(std::move(level));
  }
  root.set("zoom", std::move(zoom));
  root.set("infeasibleConstraints", p.infeasibleConstraints);
  return util::json::serialize(root);
}

}  // namespace adpm::gen
