// Generator parameters: the paramfile that drives procedural scenario
// synthesis (src/gen/generator.hpp).
//
// A paramfile is a single JSON object; every field has a default, so `{}`
// is a valid (tiny) scenario.  The knobs mirror the quantities the paper
// reports for its hand-built cases — property/constraint counts,
// connectivity degree, nonlinearity mix, discrete-value fraction, team size
// and ownership partition, requirement tightness — plus a hierarchical
// "zoom" list in the spirit of genetIC's multi-level initial-conditions
// grids: a coarse subsystem-level network with selected subsystems refined
// into dense component subnetworks released by decomposition operations.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace adpm::gen {

/// One zoom (refinement) level.  Level k refines the first `refine`
/// subsystems of level k-1 (level 0 = the coarse subsystems): each refined
/// parent gains `components` child objects, each carrying its own property
/// set, internal constraints, and `links` constraints coupling the child
/// back to its parent's properties.
struct ZoomSpec {
  /// How many parents of the previous level to refine (clamped to what
  /// exists).
  std::size_t refine = 1;
  /// Child objects added under each refined parent.
  std::size_t components = 2;
  /// Properties per component (free + derived; at least 2).
  std::size_t propertiesPerComponent = 4;
  /// Internal constraints per component.
  std::size_t constraintsPerComponent = 3;
  /// Linking constraints per component: each defines a fresh component
  /// property from the parent's properties (the zoom boundary condition).
  std::size_t links = 1;
  /// When true (the default) component problems start Unassigned and their
  /// internal + linking constraints are *generated* by the DPM when the
  /// parent's owner executes a decomposition operation (paper §2.2);
  /// when false everything is active from the initial state.
  bool deferred = true;
};

struct GenParams {
  /// Scenario name; the seed is appended ("zoo-toy-s7") so fleets over a
  /// seed grid get distinct names.
  std::string name = "generated";
  /// Default seed; CLIs may override per invocation.
  std::uint64_t seed = 1;

  // -- coarse level -----------------------------------------------------------
  std::size_t subsystems = 2;
  std::size_t propertiesPerSubsystem = 4;
  std::size_t constraintsPerSubsystem = 3;
  /// Cross-subsystem coupling constraints (inter-designer coupling; they
  /// live on the top-level problem and span >= 2 subsystems).
  std::size_t crossConstraints = 2;
  /// Top-level requirements: frozen properties bound at initialisation,
  /// each the right-hand side of one spec constraint.
  std::size_t requirements = 2;

  // -- shape ------------------------------------------------------------------
  /// Mean number of distinct variables in an inequality constraint
  /// (connectivity degree); actual counts are 1..round(2*degree-1).
  double degree = 2.0;
  /// Fraction of constraint *terms* drawn from the nonlinear palette
  /// (sqrt, sqr, pow, 1/x, abs, min, max) instead of linear c*x.
  double nonlinearFraction = 0.35;
  /// Fraction of equality ("model") constraints among per-subsystem
  /// constraints; each defines a fresh derived property.
  double eqFraction = 0.4;
  /// Fraction of properties with a finite discrete value set.
  double discreteFraction = 0.1;
  /// Fraction of monotone inequality incidences that get an explicit
  /// `monotone` declaration (the DDDL guidance hints).
  double monotoneDeclFraction = 0.5;
  /// Requirement/spec slack: 0 = loose (wide margins around the planted
  /// witness), 1 = tight (small margins).  Drives the paper's Fig. 10 axis.
  double tightness = 0.5;
  /// Opt-in exp/log terms.  Off by default so generated scenarios are
  /// bit-identical across libm implementations (sqrt and arithmetic are
  /// IEEE-exact; exp/log are not).
  bool useLibmOps = false;

  // -- team -------------------------------------------------------------------
  /// Designers besides the team leader; subsystem/component problems are
  /// partitioned round-robin over "designer-1".."designer-N".
  std::size_t teamSize = 2;

  // -- hierarchy --------------------------------------------------------------
  std::vector<ZoomSpec> zoom;

  // -- negative-path knob -----------------------------------------------------
  /// Plant this many provably infeasible constraints (a property forced
  /// beyond its entire initial range); 0 = feasibility-certified scenario.
  std::size_t infeasibleConstraints = 0;
};

/// Parses a paramfile (JSON object text).  Unknown keys are an error, so a
/// typo'd knob cannot silently fall back to its default.  Throws
/// adpm::ParseError / adpm::InvalidArgumentError.
GenParams parseParams(const std::string& text);

/// Reads and parses a paramfile from disk.  Throws
/// adpm::InvalidArgumentError when the file cannot be read.
GenParams loadParams(const std::string& path);

/// Canonical JSON rendering of the params (every field, insertion order
/// fixed); parseParams(serializeParams(p)) == p.
std::string serializeParams(const GenParams& params);

bool operator==(const GenParams& a, const GenParams& b);
bool operator==(const ZoomSpec& a, const ZoomSpec& b);

}  // namespace adpm::gen
