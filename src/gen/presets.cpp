#include "gen/presets.hpp"

#include "util/error.hpp"

namespace adpm::gen {

namespace {

// Paramfile JSON for each preset, embedded verbatim.  scenarios/zoo/<name>.json
// holds the identical bytes; tests/gen/presets_test.cpp keeps them in sync.

const char* kToy = R"({
  "name": "zoo-toy",
  "seed": 1,
  "subsystems": 2,
  "propertiesPerSubsystem": 4,
  "constraintsPerSubsystem": 4,
  "crossConstraints": 2,
  "requirements": 1,
  "degree": 2.0,
  "nonlinearFraction": 0.3,
  "eqFraction": 0.4,
  "discreteFraction": 0.1,
  "tightness": 0.4,
  "teamSize": 2
}
)";

const char* kSmall = R"({
  "name": "zoo-small",
  "seed": 1,
  "subsystems": 5,
  "propertiesPerSubsystem": 6,
  "constraintsPerSubsystem": 10,
  "crossConstraints": 5,
  "requirements": 5,
  "degree": 2.5,
  "nonlinearFraction": 0.35,
  "eqFraction": 0.4,
  "discreteFraction": 0.1,
  "tightness": 0.5,
  "teamSize": 3
}
)";

const char* kMedium = R"({
  "name": "zoo-medium",
  "seed": 1,
  "subsystems": 6,
  "propertiesPerSubsystem": 8,
  "constraintsPerSubsystem": 12,
  "crossConstraints": 8,
  "requirements": 6,
  "degree": 2.5,
  "nonlinearFraction": 0.35,
  "eqFraction": 0.4,
  "discreteFraction": 0.1,
  "tightness": 0.5,
  "teamSize": 4,
  "zoom": [
    {
      "refine": 4,
      "components": 4,
      "propertiesPerComponent": 6,
      "constraintsPerComponent": 12,
      "links": 2,
      "deferred": true
    }
  ]
}
)";

const char* kLarge = R"({
  "name": "zoo-large",
  "seed": 1,
  "subsystems": 10,
  "propertiesPerSubsystem": 10,
  "constraintsPerSubsystem": 15,
  "crossConstraints": 15,
  "requirements": 10,
  "degree": 3.0,
  "nonlinearFraction": 0.35,
  "eqFraction": 0.35,
  "discreteFraction": 0.08,
  "tightness": 0.5,
  "teamSize": 6,
  "zoom": [
    {
      "refine": 8,
      "components": 5,
      "propertiesPerComponent": 8,
      "constraintsPerComponent": 12,
      "links": 2,
      "deferred": true
    },
    {
      "refine": 20,
      "components": 4,
      "propertiesPerComponent": 6,
      "constraintsPerComponent": 8,
      "links": 1,
      "deferred": true
    }
  ]
}
)";

const char* kXl = R"({
  "name": "zoo-xl",
  "seed": 1,
  "subsystems": 20,
  "propertiesPerSubsystem": 10,
  "constraintsPerSubsystem": 20,
  "crossConstraints": 25,
  "requirements": 15,
  "degree": 3.0,
  "nonlinearFraction": 0.3,
  "eqFraction": 0.35,
  "discreteFraction": 0.05,
  "tightness": 0.5,
  "teamSize": 8,
  "zoom": [
    {
      "refine": 16,
      "components": 8,
      "propertiesPerComponent": 8,
      "constraintsPerComponent": 15,
      "links": 2,
      "deferred": true
    },
    {
      "refine": 100,
      "components": 4,
      "propertiesPerComponent": 6,
      "constraintsPerComponent": 8,
      "links": 1,
      "deferred": true
    }
  ]
}
)";

}  // namespace

const std::vector<ZooPreset>& zooPresets() {
  static const std::vector<ZooPreset> presets = {
      {"zoo-toy", kToy, "2 flat subsystems, ~11 constraints"},
      {"zoo-small", kSmall, "5 flat subsystems, ~60 constraints"},
      {"zoo-medium", kMedium, "6 subsystems, 1 zoom level, ~300 constraints"},
      {"zoo-large", kLarge, "10 subsystems, 2 zoom levels, ~1500 constraints"},
      {"zoo-xl", kXl, "20 subsystems, 2 zoom levels, >5000 constraints"},
  };
  return presets;
}

GenParams zooPreset(const std::string& name) {
  for (const ZooPreset& preset : zooPresets()) {
    if (preset.name == name) return parseParams(preset.paramfile);
  }
  std::string known;
  for (const ZooPreset& preset : zooPresets()) {
    if (!known.empty()) known += ", ";
    known += preset.name;
  }
  throw InvalidArgumentError("unknown zoo preset '" + name + "' (expected " +
                             known + ")");
}

}  // namespace adpm::gen
