// One scenario registry for every front-end.
//
// teamsim_cli, session_service_cli, session_server_cli and dddl_tool each
// used to carry their own name -> ScenarioSpec table; this registry is the
// single source, covering both the hand-built paper cases and the generated
// zoo presets (src/gen/presets.hpp).  Generated entries are produced on
// demand from their embedded paramfile and are byte-deterministic.
#pragma once

#include <string>
#include <vector>

#include "dpm/scenario.hpp"
#include "gen/params.hpp"

namespace adpm::gen {

struct RegistryEntry {
  std::string name;
  /// "builtin" (hand-built in src/scenarios) or "generated" (zoo preset).
  std::string kind;
  std::string description;
};

/// All registered scenarios: the five hand-built cases followed by the zoo
/// presets, in registration order.
const std::vector<RegistryEntry>& scenarioRegistry();

/// Builds the named scenario (hand-built factory call or preset generation).
/// Throws InvalidArgumentError for unknown names, listing what exists.
dpm::ScenarioSpec scenarioByName(const std::string& name);

/// True when `name` is registered.
bool isRegisteredScenario(const std::string& name);

/// Comma-separated registered names (for usage strings).
std::string registeredScenarioNames();

}  // namespace adpm::gen
