#include "gen/stats.hpp"

#include <cstdio>
#include <sstream>

namespace adpm::gen {

namespace {

void countOps(const expr::Expr& e, ScenarioStats& stats) {
  if (!e.valid()) return;
  const expr::Node& n = e.node();
  stats.opCounts[static_cast<std::size_t>(n.kind)]++;
  for (const expr::Expr& child : n.children) countOps(child, stats);
}

bool hasNonlinearOp(const expr::Expr& e) {
  if (!e.valid()) return false;
  const expr::Node& n = e.node();
  switch (n.kind) {
    case expr::OpKind::Mul: {
      // Linear scaling (const * x) does not count; x * y does.
      const bool leftConst = n.children[0].kind() == expr::OpKind::Const;
      const bool rightConst = n.children[1].kind() == expr::OpKind::Const;
      if (!leftConst && !rightConst) return true;
      break;
    }
    case expr::OpKind::Div:
      if (n.children[1].kind() != expr::OpKind::Const) return true;
      break;
    case expr::OpKind::Sqrt:
    case expr::OpKind::Sqr:
    case expr::OpKind::Pow:
    case expr::OpKind::Exp:
    case expr::OpKind::Log:
    case expr::OpKind::Abs:
    case expr::OpKind::Min:
    case expr::OpKind::Max:
      return true;
    default:
      break;
  }
  for (const expr::Expr& child : n.children) {
    if (hasNonlinearOp(child)) return true;
  }
  return false;
}

}  // namespace

ScenarioStats computeStats(const dpm::ScenarioSpec& spec) {
  ScenarioStats stats;
  stats.objects = spec.objects.size();
  stats.properties = spec.properties.size();
  stats.constraints = spec.constraints.size();
  stats.problems = spec.problems.size();
  stats.requirements = spec.requirements.size();

  for (const auto& prop : spec.properties) {
    if (prop.initial.isDiscrete()) stats.discreteProperties++;
  }
  for (const auto& prob : spec.problems) {
    if (!prob.startReady) stats.deferredProblems++;
  }

  std::size_t degreeSum = 0;
  for (const auto& cons : spec.constraints) {
    switch (cons.rel) {
      case constraint::Relation::Eq: stats.eqConstraints++; break;
      case constraint::Relation::Le: stats.leConstraints++; break;
      case constraint::Relation::Ge: stats.geConstraints++; break;
    }
    if (cons.generatedBy) stats.generatedConstraints++;
    stats.monotoneDecls += cons.monotone.size();

    const expr::Expr diff = cons.lhs - cons.rhs;
    const std::size_t degree = expr::variablesOf(diff).size();
    if (stats.degreeHistogram.size() <= degree) {
      stats.degreeHistogram.resize(degree + 1, 0);
    }
    stats.degreeHistogram[degree]++;
    degreeSum += degree;

    countOps(cons.lhs, stats);
    countOps(cons.rhs, stats);
    if (hasNonlinearOp(cons.lhs) || hasNonlinearOp(cons.rhs)) {
      stats.nonlinearConstraints++;
    }
  }
  stats.meanDegree =
      spec.constraints.empty()
          ? 0.0
          : static_cast<double>(degreeSum) /
                static_cast<double>(spec.constraints.size());
  return stats;
}

std::string formatStats(const ScenarioStats& stats,
                        const std::string& scenarioName) {
  std::ostringstream out;
  out << "scenario:     " << scenarioName << "\n";
  out << "objects:      " << stats.objects << "\n";
  out << "properties:   " << stats.properties << " (" << stats.discreteProperties
      << " discrete)\n";
  out << "constraints:  " << stats.constraints << " (" << stats.eqConstraints
      << " eq, " << stats.leConstraints << " le, " << stats.geConstraints
      << " ge; " << stats.nonlinearConstraints << " nonlinear, "
      << stats.generatedConstraints << " generated)\n";
  out << "problems:     " << stats.problems << " (" << stats.deferredProblems
      << " deferred)\n";
  out << "requirements: " << stats.requirements << "\n";
  out << "monotone:     " << stats.monotoneDecls << " declarations\n";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", stats.meanDegree);
  out << "degree:       mean " << buf << ", histogram";
  for (std::size_t d = 0; d < stats.degreeHistogram.size(); ++d) {
    if (stats.degreeHistogram[d] == 0) continue;
    out << " " << d << ":" << stats.degreeHistogram[d];
  }
  out << "\n";
  out << "op mix:      ";
  bool any = false;
  for (std::size_t k = 0; k < stats.opCounts.size(); ++k) {
    if (stats.opCounts[k] == 0) continue;
    out << " " << expr::opName(static_cast<expr::OpKind>(k)) << ":"
        << stats.opCounts[k];
    any = true;
  }
  if (!any) out << " (none)";
  out << "\n";
  return out.str();
}

}  // namespace adpm::gen
