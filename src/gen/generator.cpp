#include "gen/generator.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <optional>
#include <string>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace adpm::gen {

namespace {

using constraint::Relation;
using dpm::ScenarioSpec;
using expr::Expr;
using interval::Domain;

/// Unit pool cycled over generated properties (display-only flavour).
const char* kUnits[] = {"um", "mW", "pF", "kHz", "MHz", "V", "Ohm", "%", "dB"};

/// Constant in parser-normal form: DDDL's grammar has no negative number
/// literals (unary minus is an operator), so a negative constant must be
/// built as Neg(positive) or the emitted text would not re-parse to a
/// structurally identical tree.
Expr genConst(double v) {
  return v < 0 ? -Expr::constant(-v) : Expr::constant(v);
}

/// Abstraction-level tag per hierarchy depth (coarse = Subsystem, then the
/// refinement levels mirror the paper's Device/Geometry ladder).
std::vector<std::string> levelTags(std::size_t level) {
  switch (level) {
    case 0: return {"Subsystem"};
    case 1: return {"Device"};
    case 2: return {"Device", "Geometry"};
    default: return {"L" + std::to_string(level)};
  }
}

class Builder {
 public:
  Builder(const GenParams& p, std::uint64_t seed) : p_(p), rng_(seed ^ 0x9e3779b97f4a7c15ull), seed_(seed) {}

  GeneratedScenario build();

 private:
  /// One generated object + its problem: a coarse subsystem or a zoomed
  /// component.
  struct Region {
    std::string object;
    std::size_t problem = 0;
    std::vector<std::size_t> props;
    /// generatedBy problem for constraints of a deferred region.
    std::optional<std::size_t> genBy;
    std::size_t level = 0;
  };

  /// A constraint-expression term with what we know about its monotonicity:
  /// dirs[i] = (+1 term increases with var, -1 decreases, 0 unknown).
  struct BuiltExpr {
    Expr e;
    std::vector<std::pair<std::size_t, int>> dirs;
  };

  std::string nextDesigner() {
    const std::size_t i = ownerCursor_++ % p_.teamSize;
    return "designer-" + std::to_string(i + 1);
  }

  std::size_t addFreeProperty(const std::string& object,
                              const std::string& name, std::size_t level);
  std::size_t addDerivedProperty(const std::string& object,
                                 const std::string& name, std::size_t level,
                                 double value);
  void decorate(ScenarioSpec::Prop& prop, std::size_t level);

  std::vector<std::size_t> sample(const std::vector<std::size_t>& pool,
                                  std::size_t k);
  std::size_t degreeCount();
  double slackFor(double value);

  Expr unaryTerm(std::size_t var, int& dir);
  BuiltExpr makeExpr(const std::vector<std::size_t>& vars);

  std::size_t addInequality(const std::string& name,
                            const std::vector<std::size_t>& vars,
                            std::size_t problem,
                            std::optional<std::size_t> genBy);
  std::size_t addModel(Region& region, const std::string& name,
                       const std::vector<std::size_t>& operands);

  void fillRegion(Region& region, std::size_t nProps, std::size_t nCons,
                  std::size_t nLinks, const std::vector<std::size_t>& linkPool);
  void addRequirement(std::size_t k);
  void addCross(std::size_t k);
  void addInfeasible(std::size_t k);

  double witnessOf(const Expr& e) const { return evaluateAt(e, witness_); }

  const GenParams& p_;
  util::Rng rng_;
  std::uint64_t seed_;
  ScenarioSpec spec_;
  std::vector<double> witness_;
  /// Property ranges entirely above zero are safe under 1/x, sqrt, log.
  std::vector<bool> positive_;
  std::vector<std::size_t> propOwner_;  // property index -> problem index
  std::vector<std::vector<std::size_t>> problemCons_;
  std::vector<std::size_t> infeasible_;
  std::vector<std::vector<Region>> levels_;
  std::size_t ownerCursor_ = 0;
  std::size_t unitCursor_ = 0;
};

void Builder::decorate(ScenarioSpec::Prop& prop, std::size_t level) {
  if (rng_.chance(0.7)) {
    prop.unit = kUnits[unitCursor_++ % (sizeof(kUnits) / sizeof(kUnits[0]))];
  }
  prop.levels = levelTags(level);
}

std::size_t Builder::addFreeProperty(const std::string& object,
                                     const std::string& name,
                                     std::size_t level) {
  const double w = rng_.uniform(0.5, 20.0);
  Domain initial;
  if (rng_.chance(p_.discreteFraction)) {
    const double lo = w * rng_.uniform(0.15, 0.7);
    const double hi = w * rng_.uniform(1.4, 6.0);
    std::vector<double> values{w};
    const std::size_t extra = 2 + rng_.index(5);
    for (std::size_t i = 0; i < extra; ++i) {
      values.push_back(rng_.uniform(lo, hi));
    }
    initial = Domain::discrete(std::move(values));
  } else {
    initial = Domain::continuous(w * rng_.uniform(0.15, 0.7),
                                 w * rng_.uniform(1.4, 6.0));
  }
  const std::size_t idx = spec_.addProperty(name, object, initial);
  decorate(spec_.properties[idx], level);
  if (rng_.chance(0.2)) {
    spec_.properties[idx].preference = rng_.chance(0.5) ? -1 : 1;
  }
  witness_.push_back(w);
  positive_.push_back(initial.hull().lo() > 0.0);
  propOwner_.push_back(0);  // rebound by the caller
  return idx;
}

std::size_t Builder::addDerivedProperty(const std::string& object,
                                        const std::string& name,
                                        std::size_t level, double value) {
  const double width = std::max(std::fabs(value), 1.0);
  const double lo = value - width * rng_.uniform(0.5, 2.0);
  const double hi = value + width * rng_.uniform(0.5, 2.0);
  const std::size_t idx =
      spec_.addProperty(name, object, Domain::continuous(lo, hi));
  decorate(spec_.properties[idx], level);
  witness_.push_back(value);
  positive_.push_back(lo > 0.0);
  propOwner_.push_back(0);
  return idx;
}

std::vector<std::size_t> Builder::sample(const std::vector<std::size_t>& pool,
                                         std::size_t k) {
  std::vector<std::size_t> out = pool;
  rng_.shuffle(out);
  out.resize(std::min(k, out.size()));
  return out;
}

std::size_t Builder::degreeCount() {
  const auto span = static_cast<std::size_t>(
      std::max<long long>(1, std::llround(2.0 * p_.degree - 1.0)));
  return 1 + rng_.index(span);
}

double Builder::slackFor(double value) {
  const double scale = std::max(1.0, std::fabs(value));
  return (0.02 + 0.98 * (1.0 - p_.tightness) * rng_.uniform(0.25, 1.0)) *
         scale;
}

/// One term over `var`: c * g(var) with the coefficient normalised so the
/// term's witness value lands in a friendly magnitude band regardless of
/// how deep a derived-property chain the operand sits on.
Expr Builder::unaryTerm(std::size_t var, int& dir) {
  const Expr x = spec_.pvar(var);
  const double w = witness_[var];
  const double m = rng_.uniform(0.5, 20.0);
  const double sign = rng_.chance(0.3) ? -1.0 : 1.0;
  const bool positive = positive_[var];

  enum class Kind { Linear, Sqrt, Sqr, Pow3, Inv, Abs, Exp, Log };
  Kind kind = Kind::Linear;
  if (rng_.chance(p_.nonlinearFraction)) {
    if (positive) {
      // sqrt/1/x/log need a strictly positive operand range.
      const Kind pool[] = {Kind::Sqrt, Kind::Sqr,  Kind::Pow3, Kind::Inv,
                           Kind::Abs,  Kind::Sqrt, Kind::Exp,  Kind::Log};
      const std::size_t n = p_.useLibmOps ? 8 : 6;
      kind = pool[rng_.index(n)];
    } else {
      kind = rng_.chance(0.5) ? Kind::Sqr : Kind::Abs;
    }
  }

  auto coeff = [&](double unary) {
    return genConst(sign * m / std::max(std::fabs(unary), 1e-3));
  };
  switch (kind) {
    case Kind::Linear:
      dir = sign > 0 ? 1 : -1;
      return coeff(w) * x;
    case Kind::Sqrt:
      dir = sign > 0 ? 1 : -1;
      return coeff(std::sqrt(w)) * expr::sqrt(x);
    case Kind::Sqr:
      // Monotone increasing only over a positive range.
      dir = positive ? (sign > 0 ? 1 : -1) : 0;
      return coeff(w * w) * expr::sqr(x);
    case Kind::Pow3:
      dir = positive ? (sign > 0 ? 1 : -1) : 0;
      return coeff(w * w * w) * expr::pow(x, 3);
    case Kind::Inv:
      dir = sign > 0 ? -1 : 1;
      return genConst(sign * m * w) / x;
    case Kind::Abs: {
      const auto hull = spec_.properties[var].initial.hull();
      const double pivot = rng_.uniform(hull.lo(), hull.hi());
      dir = 0;
      return coeff(std::fabs(w - pivot)) * expr::abs(x - genConst(pivot));
    }
    case Kind::Exp: {
      const double scale =
          std::max(1.0, spec_.properties[var].initial.hull().hi());
      dir = sign > 0 ? 1 : -1;
      return coeff(std::exp(w / scale)) * expr::exp(x / scale);
    }
    case Kind::Log:
      dir = sign > 0 ? 1 : -1;
      return coeff(std::log(std::max(w, 1e-3))) * expr::log(x);
  }
  dir = 0;
  return x;
}

Builder::BuiltExpr Builder::makeExpr(const std::vector<std::size_t>& vars) {
  BuiltExpr out;
  std::size_t i = 0;
  while (i < vars.size()) {
    Expr term;
    if (i + 1 < vars.size() && rng_.chance(p_.nonlinearFraction * 0.25)) {
      // Binary min/max coupling two operands; monotonicity left undeclared.
      const Expr a = spec_.pvar(vars[i]);
      const Expr b = spec_.pvar(vars[i + 1]);
      const Expr mm = rng_.chance(0.5) ? expr::min(a, b) : expr::max(a, b);
      const double m = rng_.uniform(0.5, 20.0);
      const double sign = rng_.chance(0.3) ? -1.0 : 1.0;
      term = genConst(sign * m / std::max(std::fabs(witnessOf(mm)), 1e-3)) * mm;
      out.dirs.push_back({vars[i], 0});
      out.dirs.push_back({vars[i + 1], 0});
      i += 2;
    } else {
      int dir = 0;
      term = unaryTerm(vars[i], dir);
      out.dirs.push_back({vars[i], dir});
      i += 1;
    }
    out.e = out.e.valid() ? out.e + term : term;
  }
  if (!out.e.valid() || rng_.chance(0.25)) {
    const Expr offset = genConst(rng_.uniform(-5.0, 5.0));
    out.e = out.e.valid() ? out.e + offset : offset;
  }
  return out;
}

std::size_t Builder::addInequality(const std::string& name,
                                   const std::vector<std::size_t>& vars,
                                   std::size_t problem,
                                   std::optional<std::size_t> genBy) {
  BuiltExpr b = makeExpr(vars);
  const double v = witnessOf(b.e);
  const Relation rel = rng_.chance(0.5) ? Relation::Le : Relation::Ge;
  const double slack = slackFor(v);
  const double bound = rel == Relation::Le ? v + slack : v - slack;

  ScenarioSpec::Cons cons;
  cons.name = name;
  cons.lhs = b.e;
  cons.rel = rel;
  cons.rhs = genConst(bound);
  for (const auto& [var, dir] : b.dirs) {
    if (dir == 0 || !rng_.chance(p_.monotoneDeclFraction)) continue;
    // `monotone increasing in X` = increasing X helps satisfy: for f <= C
    // that is dir < 0 (the term shrinks f), for f >= C it is dir > 0.
    const bool helpsUp = rel == Relation::Le ? dir < 0 : dir > 0;
    cons.monotone.push_back({var, helpsUp});
  }
  cons.generatedBy = genBy;
  const std::size_t idx = spec_.addConstraint(std::move(cons));
  problemCons_[problem].push_back(idx);
  return idx;
}

std::size_t Builder::addModel(Region& region, const std::string& name,
                              const std::vector<std::size_t>& operands) {
  BuiltExpr b = makeExpr(operands);
  const double v = witnessOf(b.e);
  const std::size_t derived = addDerivedProperty(
      region.object, name, region.level, v);
  propOwner_[derived] = region.problem;
  region.props.push_back(derived);

  ScenarioSpec::Cons cons;
  cons.name = name + ".def";
  cons.lhs = spec_.pvar(derived);
  cons.rel = Relation::Eq;
  cons.rhs = b.e;
  cons.generatedBy = region.genBy;
  const std::size_t idx = spec_.addConstraint(std::move(cons));
  problemCons_[region.problem].push_back(idx);
  return idx;
}

/// Populates one region: `nLinks` linking models whose operands come from
/// `linkPool` (the parent's properties), then free properties, then internal
/// models and inequalities over the region's own pool.
void Builder::fillRegion(Region& region, std::size_t nProps, std::size_t nCons,
                         std::size_t nLinks,
                         const std::vector<std::size_t>& linkPool) {
  nLinks = std::min(nLinks, nProps > 1 ? nProps - 1 : 0);
  std::size_t nEq = static_cast<std::size_t>(
      std::llround(p_.eqFraction * static_cast<double>(nCons)));
  nEq = std::min({nEq, nCons, nProps - nLinks - 1});
  const std::size_t nFree = nProps - nLinks - nEq;

  for (std::size_t j = 0; j < nFree; ++j) {
    const std::size_t prop = addFreeProperty(
        region.object, region.object + ".p" + std::to_string(j + 1),
        region.level);
    propOwner_[prop] = region.problem;
    region.props.push_back(prop);
  }
  for (std::size_t j = 0; j < nLinks; ++j) {
    // Boundary condition of the zoom: a fresh component property defined
    // from the parent's coarse properties (plus, sometimes, a sibling).
    std::vector<std::size_t> operands =
        sample(linkPool, 1 + rng_.index(2));
    if (!region.props.empty() && rng_.chance(0.5)) {
      operands.push_back(region.props[rng_.index(region.props.size())]);
    }
    addModel(region, region.object + ".l" + std::to_string(j + 1), operands);
  }
  for (std::size_t j = 0; j < nCons; ++j) {
    if (j < nEq) {
      const std::vector<std::size_t> operands =
          sample(region.props, std::max<std::size_t>(1, degreeCount()));
      addModel(region, region.object + ".m" + std::to_string(j + 1),
               operands);
    } else {
      const std::vector<std::size_t> vars =
          sample(region.props, std::max<std::size_t>(1, degreeCount()));
      addInequality(region.object + ".c" + std::to_string(j + 1), vars,
                    region.problem, region.genBy);
    }
  }
}

void Builder::addRequirement(std::size_t k) {
  // Spec constraint f(subsystem props) rel Req-k, requirement bound derived
  // from the witness so the required value is feasible by construction.
  const auto& coarse = levels_[0];
  std::vector<std::size_t> pool = coarse[rng_.index(coarse.size())].props;
  if (coarse.size() > 1 && rng_.chance(0.5)) {
    const auto& other = coarse[rng_.index(coarse.size())].props;
    pool.insert(pool.end(), other.begin(), other.end());
    std::sort(pool.begin(), pool.end());
    pool.erase(std::unique(pool.begin(), pool.end()), pool.end());
  }
  const std::vector<std::size_t> vars =
      sample(pool, 1 + rng_.index(3));
  BuiltExpr b = makeExpr(vars);
  const double v = witnessOf(b.e);
  const Relation rel = rng_.chance(0.5) ? Relation::Le : Relation::Ge;
  const double slack = slackFor(v);
  const double required = rel == Relation::Le ? v + slack : v - slack;

  const std::size_t req = addDerivedProperty(
      "system", "Req-" + std::to_string(k + 1), 0, required);
  spec_.properties[req].levels = {"System"};
  spec_.problems[0].outputs.push_back(req);

  ScenarioSpec::Cons cons;
  cons.name = "spec." + std::to_string(k + 1);
  cons.lhs = b.e;
  cons.rel = rel;
  cons.rhs = spec_.pvar(req);
  for (const auto& [var, dir] : b.dirs) {
    if (dir == 0 || !rng_.chance(p_.monotoneDeclFraction)) continue;
    cons.monotone.push_back({var, rel == Relation::Le ? dir < 0 : dir > 0});
  }
  const std::size_t idx = spec_.addConstraint(std::move(cons));
  problemCons_[0].push_back(idx);
  spec_.require(req, required);
}

void Builder::addCross(std::size_t k) {
  // Inter-designer coupling: one property from each of >= 2 subsystems.
  const auto& coarse = levels_[0];
  std::vector<std::size_t> ssIdx(coarse.size());
  for (std::size_t i = 0; i < ssIdx.size(); ++i) ssIdx[i] = i;
  rng_.shuffle(ssIdx);
  const std::size_t span =
      std::min<std::size_t>(2 + rng_.index(3), ssIdx.size());
  std::vector<std::size_t> vars;
  for (std::size_t i = 0; i < span; ++i) {
    const auto& props = coarse[ssIdx[i]].props;
    vars.push_back(props[rng_.index(props.size())]);
  }
  addInequality("cross." + std::to_string(k + 1), vars, 0, std::nullopt);
}

void Builder::addInfeasible(std::size_t k) {
  // A property forced beyond its entire initial range: provably infeasible,
  // detected by hull propagation alone.  Negative-path ground truth.
  const std::size_t prop = rng_.index(spec_.properties.size());
  const double hi = spec_.properties[prop].initial.hull().hi();
  const double bound = hi + std::max(1.0, std::fabs(hi) * 0.5);

  ScenarioSpec::Cons cons;
  cons.name = "infeasible." + std::to_string(k + 1);
  cons.lhs = spec_.pvar(prop);
  cons.rel = Relation::Ge;
  cons.rhs = genConst(bound);
  const std::size_t idx = spec_.addConstraint(std::move(cons));
  problemCons_[propOwner_[prop]].push_back(idx);
  infeasible_.push_back(idx);
}

GeneratedScenario Builder::build() {
  spec_.name = p_.name + "-s" + std::to_string(seed_);
  spec_.addObject("system");

  // Problem 0 is the top-level problem; outputs/constraints fill in as
  // requirements and cross constraints are generated.
  spec_.addProblem({"System", "system", "team-leader", {}, {}, {},
                    std::nullopt, {}, true});
  problemCons_.emplace_back();

  // -- coarse subsystem level -------------------------------------------------
  levels_.emplace_back();
  for (std::size_t i = 0; i < p_.subsystems; ++i) {
    Region region;
    region.object = "ss" + std::to_string(i + 1);
    region.level = 0;
    spec_.addObject(region.object, "system");
    region.problem = spec_.addProblem({"Design-" + region.object,
                                       region.object, nextDesigner(), {}, {},
                                       {}, 0, {}, true});
    problemCons_.emplace_back();
    fillRegion(region, p_.propertiesPerSubsystem, p_.constraintsPerSubsystem,
               0, {});
    levels_[0].push_back(std::move(region));
  }

  // -- requirements + coupling ------------------------------------------------
  for (std::size_t k = 0; k < p_.requirements; ++k) addRequirement(k);
  for (std::size_t k = 0; k < p_.crossConstraints; ++k) addCross(k);

  // -- zoom refinement --------------------------------------------------------
  for (std::size_t levelIdx = 0; levelIdx < p_.zoom.size(); ++levelIdx) {
    const ZoomSpec& z = p_.zoom[levelIdx];
    const std::vector<Region>& parents = levels_.back();
    const std::size_t refine = std::min(z.refine, parents.size());
    std::vector<Region> children;
    for (std::size_t pi = 0; pi < refine; ++pi) {
      const Region parent = parents[pi];  // copy: levels_ grows below
      for (std::size_t c = 0; c < z.components; ++c) {
        Region region;
        region.object = parent.object + ".c" + std::to_string(c + 1);
        region.level = levelIdx + 1;
        spec_.addObject(region.object, parent.object);
        region.problem = spec_.addProblem(
            {"Design-" + region.object, region.object, nextDesigner(), {}, {},
             {}, parent.problem, {}, !z.deferred});
        problemCons_.emplace_back();
        if (z.deferred) region.genBy = region.problem;
        fillRegion(region,
                   std::max<std::size_t>(z.propertiesPerComponent, 2),
                   z.constraintsPerComponent, z.links, parent.props);
        children.push_back(std::move(region));
      }
    }
    levels_.push_back(std::move(children));
  }

  // -- planted negatives ------------------------------------------------------
  for (std::size_t k = 0; k < p_.infeasibleConstraints; ++k) addInfeasible(k);

  // -- finalize problems ------------------------------------------------------
  for (std::size_t pi = 0; pi < spec_.problems.size(); ++pi) {
    spec_.problems[pi].constraints = problemCons_[pi];
  }
  for (const auto& level : levels_) {
    for (const Region& region : level) {
      spec_.problems[region.problem].outputs = region.props;
    }
  }
  // Inputs: properties a problem's constraints reference but does not own.
  for (std::size_t pi = 1; pi < spec_.problems.size(); ++pi) {
    auto& prob = spec_.problems[pi];
    std::vector<std::size_t> inputs;
    for (const std::size_t ci : prob.constraints) {
      const auto& c = spec_.constraints[ci];
      for (const expr::VarId v : expr::variablesOf(c.lhs - c.rhs)) {
        const std::size_t prop = v;
        if (std::find(prob.outputs.begin(), prob.outputs.end(), prop) !=
            prob.outputs.end()) {
          continue;
        }
        if (std::find(inputs.begin(), inputs.end(), prop) == inputs.end()) {
          inputs.push_back(prop);
        }
      }
    }
    std::sort(inputs.begin(), inputs.end());
    prob.inputs = std::move(inputs);
  }

  const std::vector<std::string> errors = spec_.validate();
  if (!errors.empty()) {
    throw Error("generator produced an invalid scenario (bug): " + errors[0]);
  }

  GeneratedScenario out;
  out.spec = std::move(spec_);
  out.witness = std::move(witness_);
  out.infeasible = std::move(infeasible_);
  return out;
}

}  // namespace

double evaluateAt(const expr::Expr& e, const std::vector<double>& point) {
  const expr::Node& n = e.node();
  auto child = [&](std::size_t i) { return evaluateAt(n.children[i], point); };
  switch (n.kind) {
    case expr::OpKind::Const: return n.value;
    case expr::OpKind::Var: return point.at(n.var);
    case expr::OpKind::Add: return child(0) + child(1);
    case expr::OpKind::Sub: return child(0) - child(1);
    case expr::OpKind::Mul: return child(0) * child(1);
    case expr::OpKind::Div: return child(0) / child(1);
    case expr::OpKind::Neg: return -child(0);
    case expr::OpKind::Sqrt: return std::sqrt(child(0));
    case expr::OpKind::Sqr: {
      const double v = child(0);
      return v * v;
    }
    case expr::OpKind::Pow: {
      const double base = child(0);
      const int exponent = n.exponent;
      double out = 1.0;
      for (int i = 0; i < std::abs(exponent); ++i) out *= base;
      return exponent < 0 ? 1.0 / out : out;
    }
    case expr::OpKind::Exp: return std::exp(child(0));
    case expr::OpKind::Log: return std::log(child(0));
    case expr::OpKind::Abs: return std::fabs(child(0));
    case expr::OpKind::Min: return std::fmin(child(0), child(1));
    case expr::OpKind::Max: return std::fmax(child(0), child(1));
  }
  throw InvalidArgumentError("evaluateAt: unknown operator");
}

bool witnessSatisfies(const dpm::ScenarioSpec& spec, std::size_t c,
                      const std::vector<double>& witness, double tol) {
  const auto& cons = spec.constraints.at(c);
  const double lhs = evaluateAt(cons.lhs, witness);
  const double rhs = evaluateAt(cons.rhs, witness);
  const double eps = tol * (1.0 + std::fabs(rhs));
  switch (cons.rel) {
    case constraint::Relation::Le: return lhs <= rhs + eps;
    case constraint::Relation::Ge: return lhs >= rhs - eps;
    case constraint::Relation::Eq: return std::fabs(lhs - rhs) <= eps;
  }
  return false;
}

GeneratedScenario generate(const GenParams& params, std::uint64_t seed) {
  return Builder(params, seed).build();
}

GeneratedScenario generate(const GenParams& params) {
  return generate(params, params.seed);
}

}  // namespace adpm::gen
