// Structural scenario statistics: the quantities the generator's paramfile
// targets (property/constraint counts, connectivity-degree histogram,
// nonlinearity mix), computed from any ScenarioSpec.
//
// Used by `dddl_tool check --stats` and by the generator tests to validate
// that generated scenarios hit their paramfile targets within tolerance.
#pragma once

#include <array>
#include <cstddef>
#include <string>

#include "dpm/scenario.hpp"
#include "expr/expr.hpp"

namespace adpm::gen {

struct ScenarioStats {
  std::size_t objects = 0;
  std::size_t properties = 0;
  std::size_t constraints = 0;
  std::size_t problems = 0;
  std::size_t requirements = 0;

  std::size_t eqConstraints = 0;
  std::size_t leConstraints = 0;
  std::size_t geConstraints = 0;
  /// Constraints with generatedBy set (enter via decomposition).
  std::size_t generatedConstraints = 0;
  /// Problems with startReady == false (released by decomposition).
  std::size_t deferredProblems = 0;

  std::size_t discreteProperties = 0;
  std::size_t monotoneDecls = 0;
  /// Constraints whose expression uses at least one non-linear operator.
  std::size_t nonlinearConstraints = 0;

  /// degreeHistogram[d] = number of constraints over exactly d distinct
  /// properties (index 0 = constant constraints).
  std::vector<std::size_t> degreeHistogram;
  double meanDegree = 0.0;

  /// Operator occurrence counts across all constraint expressions, indexed
  /// by static_cast<std::size_t>(expr::OpKind).
  std::array<std::size_t, 15> opCounts{};
};

ScenarioStats computeStats(const dpm::ScenarioSpec& spec);

/// Human-readable rendering (the `dddl_tool check --stats` output).
std::string formatStats(const ScenarioStats& stats,
                        const std::string& scenarioName);

}  // namespace adpm::gen
