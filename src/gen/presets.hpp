// The scenario zoo: checked-in paramfile presets spanning three orders of
// magnitude in constraint count (zoo-toy ~10 constraints, zoo-xl >5000).
//
// Each preset's paramfile JSON is embedded here verbatim and mirrored on
// disk under scenarios/zoo/<name>.json (a test keeps the two in sync), so
// the same scenario can be produced from the CLI (`dddl_tool gen
// scenarios/zoo/zoo-toy.json`) or from code (`zooPreset("zoo-toy")`).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "gen/params.hpp"

namespace adpm::gen {

struct ZooPreset {
  std::string name;
  /// Verbatim paramfile JSON (identical to scenarios/zoo/<name>.json).
  std::string paramfile;
  std::string description;
};

/// All presets, smallest first.
const std::vector<ZooPreset>& zooPresets();

/// Parsed params for one preset; throws InvalidArgumentError for unknown
/// names.
GenParams zooPreset(const std::string& name);

}  // namespace adpm::gen
