// Design case 2: the MEMS-based wireless receiver front-end.
//
// "The second case is the design of a MEMS-based wireless receiver
// front-end, composed of mixed-signal circuitry and a MEMS-based
// channel-selection filter that are designed concurrently.  This case
// includes constraints on channel bandwidth, system gain, input impedance,
// frequency selection precision, and power consumption.  During simulations,
// up to 35 properties and 30 constraints exist, most of which are
// non-linear.  Thus this case can be viewed as 'harder' than the sensing
// system case." (paper, Section 3.2)
//
// Circuit models are the usual first-order RF sizing equations (square-law
// transconductance, 1/gm input matching, log-compressed tuned-load gain);
// the MEMS filter uses clamped-clamped-beam resonator relations (f ∝ t/L²,
// Q ∝ L/w, insertion loss falling with √Q — the DDDL monotonicity example in
// the paper: loss decreasing in resonator length, increasing in beam width).
#pragma once

#include "dpm/scenario.hpp"

namespace adpm::scenarios {

struct ReceiverConfig {
  /// Minimum end-to-end gain (dB); Fig. 10 sweeps this tightness.
  double gainMin = 27.0;
  /// Total power budget (mW).
  double powerMax = 16.0;
  /// Maximum LNA input impedance for matching (Ω); the walkthrough's leader
  /// tightens this mid-process.
  double zinMax = 65.0;
  /// Channel bandwidth window (kHz).
  double bwMin = 150.0;
  double bwMax = 240.0;
  /// Channel-selection target frequency (MHz) and allowed deviation.
  double fTarget = 120.0;
  /// Frequency-precision requirement (kHz).
  double dfMax = 135.0;
};

/// Builds the receiver scenario: 35 properties, 30 constraints, 3 designers
/// (team-leader, circuit-designer, device-engineer).
dpm::ScenarioSpec receiverScenario(const ReceiverConfig& config = {});

/// The same receiver with a larger team, as the paper envisions ("although
/// ADPM is envisioned for use by larger teams, this example is large enough
/// ..."): the analog side splits into an LNA designer and a mixer/
/// deserializer designer, giving 4 designers, 4 objects and 4 problems.
/// The LNA-vs-mixer couplings (shared gain and power budgets) become
/// cross-subsystem, so late conflicts multiply in the conventional flow.
dpm::ScenarioSpec receiverLargeTeamScenario(const ReceiverConfig& config = {});

}  // namespace adpm::scenarios
