// Design case 1: the MEMS-based pressure sensing system.
//
// "The first case is the design of a MEMS-based pressure sensing system,
// composed of a capacitive pressure sensor and a mixed-signal interface
// circuit that are designed concurrently.  This case includes top-level
// constraints on sensing resolution, estimated yield, and achievable
// pressure range.  During simulations, the entire network contains up to 26
// properties and 21 constraints, most of them linear and monotonic."
// (paper, Section 3.2)
//
// The sensor models are standard first-order capacitive-sensor equations
// (parallel-plate capacitance, sensitivity, touch pressure, membrane
// stress); the interface models are first-order amplifier/ADC budgets.
// Coefficients are chosen so that a comfortable feasible region exists with
// the default requirements while leaving plenty of room for conventional
// designers to guess wrong.
#pragma once

#include "dpm/scenario.hpp"

namespace adpm::scenarios {

struct SensingConfig {
  /// Required sensing resolution (kPa, smaller = tighter).
  double resolutionMax = 0.10;
  /// Required measurable pressure range (kPa, larger = tighter).
  double rangeMin = 180.0;
  /// Required estimated yield (%).
  double yieldMin = 80.0;
  /// Total power budget (mW).
  double powerMax = 28.0;
};

/// Builds the sensing-system scenario: 26 properties, 21 constraints,
/// 3 designers (team-leader, device-engineer, circuit-designer).
dpm::ScenarioSpec sensingSystemScenario(const SensingConfig& config = {});

}  // namespace adpm::scenarios
