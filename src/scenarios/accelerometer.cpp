#include "scenarios/accelerometer.hpp"

namespace adpm::scenarios {

using constraint::Relation;
using dpm::ScenarioSpec;
using expr::Expr;
using interval::Domain;

dpm::ScenarioSpec accelerometerScenario(const AccelerometerConfig& config) {
  ScenarioSpec s;
  s.name = "mems-accelerometer";

  s.addObject("system");
  s.addObject("proof-mass", "system");
  s.addObject("readout", "system");

  // -- system requirements (5) --------------------------------------------------
  const auto sensMin = s.addProperty("Sens-min", "system",
                                     Domain::continuous(0.5, 20.0), "mV/g");
  const auto noiseMax = s.addProperty("Noise-max", "system",
                                      Domain::continuous(2.0, 50.0),
                                      "ug/rtHz");
  const auto bwMin = s.addProperty("BW-min", "system",
                                   Domain::continuous(0.2, 10.0), "kHz");
  const auto powerMax = s.addProperty("Power-max", "system",
                                      Domain::continuous(2.0, 30.0), "mW");
  const auto rangeMin = s.addProperty("Range-min", "system",
                                      Domain::continuous(1.0, 100.0), "g");

  // -- proof mass (10) ------------------------------------------------------------
  const auto mass = s.addProperty("Mass-M", "proof-mass",
                                  Domain::continuous(1.0, 50.0), "ug",
                                  {"Device", "Geometry"});
  const auto spring = s.addProperty("Spring-k", "proof-mass",
                                    Domain::continuous(0.5, 20.0), "N/m",
                                    {"Device", "Geometry"});
  const auto gap = s.addProperty("Gap", "proof-mass",
                                 Domain::continuous(1.0, 5.0), "um",
                                 {"Device", "Geometry"});
  const auto area = s.addProperty("Area-A", "proof-mass",
                                  Domain::continuous(0.2, 4.0), "mm2",
                                  {"Device", "Geometry"});
  s.properties[area].preference = -1;  // die area is money
  const auto fRes = s.addProperty("F-res", "proof-mass",
                                  Domain::continuous(0.1, 50.0), "kHz",
                                  {"Device"});
  const auto cSense = s.addProperty("C-sense", "proof-mass",
                                    Domain::continuous(0.3, 40.0), "pF",
                                    {"Device"});
  const auto dispSens = s.addProperty("Disp-sens", "proof-mass",
                                      Domain::continuous(0.5, 1000.0), "nm/g");
  const auto capSens = s.addProperty("Cap-sens", "proof-mass",
                                     Domain::continuous(0.005, 40.0), "fF/g");
  const auto rangeG = s.addProperty("Range-g", "proof-mass",
                                    Domain::continuous(0.3, 3400.0), "g");
  const auto noiseMech = s.addProperty("Noise-mech", "proof-mass",
                                       Domain::continuous(0.5, 250.0),
                                       "ug/rtHz");

  // -- readout ASIC (5) -------------------------------------------------------------
  const auto gainRo = s.addProperty("Gain-ro", "readout",
                                    Domain::continuous(1.0, 50.0), "mV/fF",
                                    {"Circuit"});
  const auto bwRo = s.addProperty("BW-ro", "readout",
                                  Domain::continuous(0.5, 50.0), "kHz",
                                  {"Circuit"});
  const auto powerRo = s.addProperty("Power-ro", "readout",
                                     Domain::continuous(0.0, 15.0), "mW");
  const auto noiseEl = s.addProperty("Noise-el", "readout",
                                     Domain::continuous(0.01, 1.0), "fF");
  const auto vbias = s.addProperty("V-bias", "readout",
                                   Domain::continuous(1.0, 10.0), "V");
  s.properties[vbias].preference = -1;  // bias voltage costs power/reliability

  const auto P = [&](std::size_t i) { return s.pvar(i); };

  // -- proof-mass models (6) ---------------------------------------------------------
  // Resonance f = (1/2pi) sqrt(k/m), scaled to kHz for ug masses.
  const auto cFres = s.addConstraint(
      {"Fres-model", P(fRes), Relation::Eq,
       5.03 * expr::sqrt(P(spring) / P(mass)), {}});
  // Parallel-plate sense capacitance.
  const auto cCsense = s.addConstraint(
      {"Csense-model", P(cSense), Relation::Eq,
       8.85 * P(area) / P(gap), {}});
  // Static displacement per g.
  const auto cDisp = s.addConstraint(
      {"Disp-model", P(dispSens), Relation::Eq,
       9.8 * P(mass) / P(spring), {}});
  // Capacitance change per g, referred through the gap.
  const auto cCap = s.addConstraint(
      {"CapSens-model", P(capSens), Relation::Eq,
       P(cSense) * P(dispSens) / (1000.0 * P(gap)), {}});
  // Full-scale range: displacement stays under a third of the gap.
  const auto cRange = s.addConstraint(
      {"Range-model", P(rangeG), Relation::Eq,
       1000.0 * P(gap) / (3.0 * P(dispSens)), {}});
  // Brownian noise floor.
  const auto cNoiseM = s.addConstraint(
      {"NoiseMech-model", P(noiseMech), Relation::Eq,
       50.0 * expr::sqrt(P(spring)) / P(mass), {}});

  // -- readout models (2) ---------------------------------------------------------------
  const auto cPowerRo = s.addConstraint(
      {"PowerRo-model", P(powerRo), Relation::Eq,
       0.15 * P(gainRo) + 0.1 * P(bwRo), {}});
  const auto cNoiseEl = s.addConstraint(
      {"NoiseEl-model", P(noiseEl), Relation::Eq,
       0.8 / P(gainRo) + 0.02, {}});

  // -- cross-subsystem specifications (6) --------------------------------------------------
  const auto cSens2 = s.addConstraint(
      {"Sens-spec", P(capSens) * P(gainRo), Relation::Ge, P(sensMin),
       {{capSens, true}, {gainRo, true}, {sensMin, false}}});
  const auto cNoise = s.addConstraint(
      {"Noise-spec",
       P(noiseMech) + 10.0 * P(noiseEl) / P(capSens), Relation::Le,
       P(noiseMax),
       {{noiseMech, false}, {noiseEl, false}, {capSens, true},
        {noiseMax, true}}});
  // System bandwidth is whichever of the mechanics and the electronics is
  // slower.
  const auto cBw = s.addConstraint(
      {"BW-spec", expr::min(P(fRes), P(bwRo)), Relation::Ge, P(bwMin),
       {{fRes, true}, {bwRo, true}, {bwMin, false}}});
  const auto cPower = s.addConstraint(
      {"Power-spec", P(powerRo) + 0.1 * P(vbias), Relation::Le, P(powerMax),
       {{powerRo, false}, {vbias, false}, {powerMax, true}}});
  const auto cRangeS = s.addConstraint(
      {"Range-spec", P(rangeG), Relation::Ge, P(rangeMin),
       {{rangeG, true}, {rangeMin, false}}});
  // Electrostatic pull-in: the bias voltage the readout wants is capped by
  // the mechanical gap.
  const auto cPullIn = s.addConstraint(
      {"PullIn-spec", P(vbias), Relation::Le, 2.0 + 3.0 * P(gap),
       {{vbias, false}, {gap, true}}});

  // -- problems --------------------------------------------------------------------------
  const auto top = s.addProblem(
      {"Accelerometer", "system", "team-leader",
       {},
       {sensMin, noiseMax, bwMin, powerMax, rangeMin},
       {cSens2, cNoise, cBw, cPower, cRangeS, cPullIn},
       std::nullopt, {}, true});
  const auto memsProblem = s.addProblem(
      {"ProofMass", "proof-mass", "mems-engineer",
       {noiseMax, rangeMin, bwMin},
       {mass, spring, gap, area, fRes, cSense, dispSens, capSens, rangeG,
        noiseMech},
       {cFres, cCsense, cDisp, cCap, cRange, cNoiseM},
       top, {}, false});
  const auto asicProblem = s.addProblem(
      {"Readout", "readout", "asic-designer",
       {sensMin, powerMax, bwMin},
       {gainRo, bwRo, powerRo, noiseEl, vbias},
       {cPowerRo, cNoiseEl},
       top, {}, false});
  for (const std::size_t ci :
       {cFres, cCsense, cDisp, cCap, cRange, cNoiseM}) {
    s.constraints[ci].generatedBy = memsProblem;
  }
  for (const std::size_t ci : {cPowerRo, cNoiseEl}) {
    s.constraints[ci].generatedBy = asicProblem;
  }

  s.require(sensMin, config.sensMin);
  s.require(noiseMax, config.noiseMax);
  s.require(bwMin, config.bwMin);
  s.require(powerMax, config.powerMax);
  s.require(rangeMin, config.rangeMin);
  return s;
}

}  // namespace adpm::scenarios
