#include "scenarios/walkthrough.hpp"

#include "util/error.hpp"

namespace adpm::scenarios {

using constraint::Relation;
using dpm::ScenarioSpec;
using expr::Expr;
using interval::Domain;

dpm::ScenarioSpec walkthroughScenario() {
  ScenarioSpec s;
  s.name = "receiver-walkthrough";

  s.addObject("system");
  s.addObject("LNA+Mixer", "system");
  s.addObject("MEMS-filter", "system");

  // Requirements.
  const auto minGain = s.addProperty("Min-gain", "system",
                                     Domain::continuous(30, 60), "dB");
  const auto maxPower = s.addProperty("Max-power", "system",
                                      Domain::continuous(100, 300), "mW");
  const auto maxZin = s.addProperty("Max-Zin", "system",
                                    Domain::continuous(20, 80), "Ohm");

  // LNA + mixer.
  const auto diffPairW = s.addProperty("Diff-pair-W", "LNA+Mixer",
                                       Domain::continuous(2.0, 6.0), "um",
                                       {"Transistor", "Geometry"});
  s.properties[diffPairW].preference = -1;  // smaller pair -> less power
  const auto freqInd = s.addProperty("Freq-ind", "LNA+Mixer",
                                     Domain::continuous(0.05, 2.0), "uH",
                                     {"Transistor", "Geometry"});
  const auto lnaGain = s.addProperty("LNA-gain", "LNA+Mixer",
                                     Domain::continuous(0, 300), "",
                                     {"Geometry"});
  const auto lnaPower = s.addProperty("LNA-power", "LNA+Mixer",
                                      Domain::continuous(0, 400), "mW",
                                      {"Geometry"});
  const auto lnaZin = s.addProperty("LNA-Zin", "LNA+Mixer",
                                    Domain::continuous(10, 200), "Ohm",
                                    {"Geometry"});

  // MEMS filter.
  const auto beamLength = s.addProperty("Beam-length", "MEMS-filter",
                                        Domain::continuous(8, 20), "um",
                                        {"Device", "Geometry"});
  const auto centerFreq = s.addProperty("Center-freq", "MEMS-filter",
                                        Domain::continuous(50, 330), "MHz",
                                        {"Device"});
  const auto insertionLoss = s.addProperty("Insertion-loss", "MEMS-filter",
                                           Domain::continuous(5, 35), "dB",
                                           {"Device"});

  const auto P = [&](std::size_t i) { return s.pvar(i); };

  // LNA models: tuned-load gain, power, 1/gm input impedance.  Coefficients
  // put the propagated windows where the paper's Fig. 2 shows them:
  // Diff-pair-W consistent ≈ [2.5, 3.70] (impedance floor, power ceiling),
  // Freq-ind consistent ≈ [0.174, 0.5] (gain floor, inductor cap).
  const auto cGain = s.addConstraint(
      {"LNAGain-C10", P(lnaGain), Relation::Eq,
       104.0 * P(diffPairW) * P(freqInd), {}});
  const auto cPower = s.addConstraint(
      {"LNAPower-C7", P(lnaPower), Relation::Eq,
       54.08 * P(diffPairW), {}});
  const auto cZin = s.addConstraint(
      {"LNAZin-C12", P(lnaZin), Relation::Eq, 125.0 / P(diffPairW), {}});
  // Specs on the LNA side.
  const auto cMaxPower = s.addConstraint(
      {"MaxPower-C8", P(lnaPower), Relation::Le, P(maxPower),
       {{lnaPower, false}}});
  // The impedance spec constrains the pair width directly (1/gm matching),
  // exactly as the paper's Fig. 3 lists Diff-pair-W among the impedance
  // constraint's arguments.
  const auto cZinSpec = s.addConstraint(
      {"LNA-Zin-C9", 125.0 / P(diffPairW), Relation::Le, P(maxZin),
       {{diffPairW, true}}});
  const auto cMaxInd = s.addConstraint(
      {"MaxInd-C6", P(freqInd), Relation::Le, Expr::constant(0.5),
       {{freqInd, false}}});

  // MEMS filter models: clamped-beam frequency (thickness folded into the
  // coefficient), loss falling with beam length.
  const auto cFc = s.addConstraint(
      {"FilterFc-C3", P(centerFreq), Relation::Eq,
       20600.0 / expr::sqr(P(beamLength)), {}});
  const auto cLoss = s.addConstraint(
      {"FilterLoss-C4", P(insertionLoss), Relation::Eq,
       248.6 / P(beamLength), {{beamLength, false}}});
  const auto cFcTarget = s.addConstraint(
      {"FcTarget-C5", expr::abs(P(centerFreq) - 122.0), Relation::Le,
       Expr::constant(3.0), {}});

  // The global gain requirement ties both subsystems together; it reads the
  // LNA gain straight off the sizing model so Diff-pair-W is an argument
  // (the paper's alpha(Diff-pair-W) = 2 comes from this constraint plus the
  // impedance spec).
  const auto cTotalGain = s.addConstraint(
      {"TotalGain-C13",
       104.0 * P(diffPairW) * P(freqInd) - P(insertionLoss), Relation::Ge,
       P(minGain),
       {{diffPairW, true}, {freqInd, true}, {insertionLoss, false}}});

  const auto top = s.addProblem(
      {"Transceiver", "system", "team-leader",
       {},
       {minGain, maxPower, maxZin},
       {cTotalGain, cMaxPower, cZinSpec},
       std::nullopt, {}, true});
  s.addProblem({"LNA+Mixer-design", "LNA+Mixer", "circuit-designer",
                {minGain, maxPower, maxZin},
                {diffPairW, freqInd, lnaGain, lnaPower, lnaZin},
                {cGain, cPower, cZin, cMaxInd},
                top, {}, true});
  s.addProblem({"Filter-design", "MEMS-filter", "device-engineer",
                {minGain},
                {beamLength, centerFreq, insertionLoss},
                {cFc, cLoss, cFcTarget},
                top, {}, true});

  s.require(minGain, 48.0);
  s.require(maxPower, 200.0);
  s.require(maxZin, 50.0);
  return s;
}

WalkthroughIds walkthroughIds(const dpm::ScenarioSpec& spec) {
  auto prop = [&](const char* name) {
    const auto i = spec.propertyIndex(name);
    if (!i) throw adpm::InvalidArgumentError(std::string("missing ") + name);
    return *i;
  };
  auto prob = [&](const char* name) {
    const auto i = spec.problemIndex(name);
    if (!i) throw adpm::InvalidArgumentError(std::string("missing ") + name);
    return *i;
  };
  WalkthroughIds ids{};
  ids.minGain = prop("Min-gain");
  ids.maxPower = prop("Max-power");
  ids.maxZin = prop("Max-Zin");
  ids.diffPairW = prop("Diff-pair-W");
  ids.freqInd = prop("Freq-ind");
  ids.lnaGain = prop("LNA-gain");
  ids.lnaPower = prop("LNA-power");
  ids.lnaZin = prop("LNA-Zin");
  ids.beamLength = prop("Beam-length");
  ids.centerFreq = prop("Center-freq");
  ids.insertionLoss = prop("Insertion-loss");
  ids.topProblem = prob("Transceiver");
  ids.lnaProblem = prob("LNA+Mixer-design");
  ids.filterProblem = prob("Filter-design");
  return ids;
}

}  // namespace adpm::scenarios
