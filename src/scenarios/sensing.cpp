#include "scenarios/sensing.hpp"

namespace adpm::scenarios {

using constraint::Relation;
using dpm::ScenarioSpec;
using expr::Expr;
using interval::Domain;

dpm::ScenarioSpec sensingSystemScenario(const SensingConfig& config) {
  ScenarioSpec s;
  s.name = "pressure-sensing-system";

  s.addObject("system");
  s.addObject("sensor", "system");
  s.addObject("interface", "system");

  // -- system requirements (frozen at initialisation) --------------------------
  const auto resMax = s.addProperty("Res-max", "system",
                                    Domain::continuous(0.01, 0.5), "kPa");
  const auto rangeMin = s.addProperty("Range-min", "system",
                                      Domain::continuous(50, 1000), "kPa");
  const auto yieldMin = s.addProperty("Yield-min", "system",
                                      Domain::continuous(50, 95), "%");
  const auto powerMax = s.addProperty("Power-max", "system",
                                      Domain::continuous(5, 60), "mW");

  // -- capacitive pressure sensor ----------------------------------------------
  const auto membA = s.addProperty("Memb-A", "sensor",
                                   Domain::continuous(0.5, 4.0), "mm2",
                                   {"Device", "Geometry"});
  const auto membT = s.addProperty("Memb-t", "sensor",
                                   Domain::continuous(2.0, 20.0), "um",
                                   {"Device", "Geometry"});
  const auto gapG = s.addProperty("Gap-g", "sensor",
                                  Domain::continuous(0.5, 5.0), "um",
                                  {"Device", "Geometry"});
  const auto c0 = s.addProperty("C0", "sensor",
                                Domain::continuous(0.5, 80.0), "pF",
                                {"Device"});
  const auto sSens = s.addProperty("S-sens", "sensor",
                                   Domain::continuous(0.1, 130.0), "fF/kPa",
                                   {"Device"});
  const auto pTouch = s.addProperty("P-touch", "sensor",
                                    Domain::continuous(20.0, 25000.0), "kPa",
                                    {"Device"});
  const auto sensYield = s.addProperty("Sens-yield", "sensor",
                                       Domain::continuous(0.0, 100.0), "%");
  const auto sensNoise = s.addProperty("Sens-noise", "sensor",
                                       Domain::continuous(0.0, 3.0), "fF");
  const auto membStress = s.addProperty("Memb-stress", "sensor",
                                        Domain::continuous(0.0, 2100.0), "MPa");
  const auto biasPower = s.addProperty("Bias-power", "sensor",
                                       Domain::continuous(0.0, 10.0), "mW");
  const auto sensLin = s.addProperty("Sens-lin", "sensor",
                                     Domain::continuous(0.1, 6.0), "%FS");

  // -- mixed-signal interface circuit ------------------------------------------
  const auto ampGain = s.addProperty("Amp-gain", "interface",
                                     Domain::continuous(1.0, 100.0), "",
                                     {"Circuit"});
  const auto ampBw = s.addProperty("Amp-BW", "interface",
                                   Domain::continuous(1.0, 100.0), "kHz",
                                   {"Circuit"});
  const auto ampPower = s.addProperty("Amp-power", "interface",
                                      Domain::continuous(0.0, 40.0), "mW");
  const auto adcBits = s.addProperty("ADC-bits", "interface",
                                     Domain::discrete({8, 10, 12, 14, 16}),
                                     "bit");
  const auto adcPower = s.addProperty("ADC-power", "interface",
                                      Domain::continuous(0.0, 15.0), "mW");
  const auto adcNoise = s.addProperty("ADC-noise", "interface",
                                      Domain::continuous(0.0, 5.0), "fF");
  const auto circNoise = s.addProperty("Circ-noise", "interface",
                                       Domain::continuous(0.0, 6.0), "fF");
  const auto sampleRate = s.addProperty("Sample-rate", "interface",
                                        Domain::continuous(1.0, 400.0), "kHz");
  const auto circPower = s.addProperty("Circ-power", "interface",
                                       Domain::continuous(0.0, 55.0), "mW");
  const auto vref = s.addProperty("Vref", "interface",
                                  Domain::continuous(1.0, 3.3), "V");
  const auto ampOffset = s.addProperty("Amp-offset", "interface",
                                       Domain::continuous(0.1, 50.0), "mV");

  const auto P = [&](std::size_t i) { return s.pvar(i); };

  // -- sensor models (parallel-plate first-order equations) --------------------
  // C0 = eps * A / g (scaled).
  const auto cC0 = s.addConstraint(
      {"C0-model", P(c0), Relation::Eq, 9.0 * P(membA) / P(gapG), {}});
  // Sensitivity rises with area, falls with gap and thickness.
  const auto cSens = s.addConstraint(
      {"S-model", P(sSens), Relation::Eq,
       30.0 * P(membA) / (P(gapG) * P(membT)), {}});
  // Touch (collapse) pressure: stiffer, larger-gap, smaller membranes touch
  // later.
  const auto cTouch = s.addConstraint(
      {"Ptouch-model", P(pTouch), Relation::Eq,
       120.0 * P(membT) * P(gapG) / P(membA), {}});
  // Yield degrades for narrow gaps and thin membranes.
  const auto cYield = s.addConstraint(
      {"Yield-model", P(sensYield), Relation::Eq,
       98.0 - 8.0 / P(gapG) - 30.0 / P(membT), {}});
  // Sensor noise floor grows with capacitance.
  const auto cNoise = s.addConstraint(
      {"SensNoise-model", P(sensNoise), Relation::Eq,
       0.02 * P(c0) + 0.05, {}});
  // Peak membrane stress.
  const auto cStressM = s.addConstraint(
      {"Stress-model", P(membStress), Relation::Eq,
       2000.0 * P(membA) / expr::sqr(P(membT)), {}});
  const auto cStressS = s.addConstraint(
      {"Stress-spec", P(membStress), Relation::Le, Expr::constant(300.0),
       {{membStress, false}}});
  // Sensor bias power follows capacitance.
  const auto cBias = s.addConstraint(
      {"Bias-model", P(biasPower), Relation::Eq, 0.05 * P(c0) + 0.2, {}});
  // Linearity error (its narrow range doubles as the spec).
  const auto cLin = s.addConstraint(
      {"Lin-model", P(sensLin), Relation::Eq,
       1.5 * P(membA) / P(gapG), {}});

  // -- interface models ---------------------------------------------------------
  const auto cAmpP = s.addConstraint(
      {"AmpPower-model", P(ampPower), Relation::Eq,
       0.2 * P(ampGain) + 0.15 * P(ampBw), {}});
  const auto cAdcP = s.addConstraint(
      {"AdcPower-model", P(adcPower), Relation::Eq,
       0.4 * P(adcBits) + 0.02 * P(sampleRate), {}});
  const auto cAdcN = s.addConstraint(
      {"AdcNoise-model", P(adcNoise), Relation::Eq,
       80.0 * P(vref) / expr::sqr(P(adcBits)), {}});
  const auto cCircN = s.addConstraint(
      {"CircNoise-model", P(circNoise), Relation::Eq,
       P(adcNoise) / P(ampGain) + 0.05, {}});
  const auto cNyq = s.addConstraint(
      {"Nyquist", P(sampleRate), Relation::Ge, 4.0 * P(ampBw),
       {{sampleRate, true}, {ampBw, false}}});
  const auto cVref = s.addConstraint(
      {"Vref-min", P(vref), Relation::Ge, Expr::constant(1.2),
       {{vref, true}}});
  const auto cCircP = s.addConstraint(
      {"CircPower-model", P(circPower), Relation::Eq,
       P(ampPower) + P(adcPower), {}});
  const auto cOffset = s.addConstraint(
      {"Offset-model", P(ampOffset), Relation::Eq, 50.0 / P(ampGain), {}});

  // -- cross-subsystem specifications ------------------------------------------
  const auto cRes = s.addConstraint(
      {"Resolution-spec",
       (P(sensNoise) + P(circNoise)) / P(sSens), Relation::Le, P(resMax),
       {{sSens, true}, {sensNoise, false}, {circNoise, false}}});
  const auto cRange = s.addConstraint(
      {"Range-spec", 0.8 * P(pTouch), Relation::Ge, P(rangeMin),
       {{pTouch, true}}});
  const auto cYieldS = s.addConstraint(
      {"Yield-spec", P(sensYield), Relation::Ge, P(yieldMin),
       {{sensYield, true}}});
  const auto cPower = s.addConstraint(
      {"Power-spec", P(biasPower) + P(circPower), Relation::Le, P(powerMax),
       {{biasPower, false}, {circPower, false}}});

  // -- problems ------------------------------------------------------------------
  // Children start deferred and are released by the team leader's
  // decomposition operation; their internal model constraints are
  // *generated* by the DPM at that point (paper §2.2), so the constraint
  // network grows from the 4 top-level requirements "up to 21 constraints".
  const auto top = s.addProblem(
      {"System", "system", "team-leader",
       {},
       {resMax, rangeMin, yieldMin, powerMax},
       {cRes, cRange, cYieldS, cPower},
       std::nullopt, {}, true});
  const auto sensorProblem = s.addProblem(
      {"Sensor", "sensor", "device-engineer",
       {resMax, rangeMin, yieldMin},
       {membA, membT, gapG, c0, sSens, pTouch, sensYield, sensNoise,
        membStress, biasPower, sensLin},
       {cC0, cSens, cTouch, cYield, cNoise, cStressM, cStressS,
        cBias, cLin},
       top, {}, false});
  const auto interfaceProblem = s.addProblem(
      {"Interface", "interface", "circuit-designer",
       {resMax, powerMax},
       {ampGain, ampBw, ampPower, adcBits, adcPower, adcNoise,
        circNoise, sampleRate, circPower, vref, ampOffset},
       {cAmpP, cAdcP, cAdcN, cCircN, cNyq, cVref, cCircP, cOffset},
       top, {}, false});
  for (const std::size_t ci : {cC0, cSens, cTouch, cYield, cNoise, cStressM,
                               cStressS, cBias, cLin}) {
    s.constraints[ci].generatedBy = sensorProblem;
  }
  for (const std::size_t ci : {cAmpP, cAdcP, cAdcN, cCircN, cNyq, cVref,
                               cCircP, cOffset}) {
    s.constraints[ci].generatedBy = interfaceProblem;
  }

  s.require(resMax, config.resolutionMax);
  s.require(rangeMin, config.rangeMin);
  s.require(yieldMin, config.yieldMin);
  s.require(powerMax, config.powerMax);
  return s;
}

}  // namespace adpm::scenarios
