#include "scenarios/receiver.hpp"

namespace adpm::scenarios {

using constraint::Relation;
using dpm::ScenarioSpec;
using expr::Expr;
using interval::Domain;

namespace {

ScenarioSpec buildReceiver(const ReceiverConfig& config, bool largeTeam) {
  ScenarioSpec s;
  s.name = largeTeam ? "mems-wireless-receiver-4team"
                     : "mems-wireless-receiver";

  // With the larger team the analog front-end splits into two objects owned
  // by different designers; their couplings then count as cross-subsystem.
  const std::string lnaObj = largeTeam ? "LNA" : "LNA+Mixer";
  const std::string mixObj = largeTeam ? "Mixer" : "LNA+Mixer";

  s.addObject("system");
  s.addObject(lnaObj, "system");
  if (largeTeam) s.addObject(mixObj, "system");
  s.addObject("MEMS-filter", "system");

  // -- system requirements (7) --------------------------------------------------
  const auto gainMin = s.addProperty("Gain-min", "system",
                                     Domain::continuous(10, 45), "dB");
  const auto pMax = s.addProperty("P-max", "system",
                                  Domain::continuous(8, 60), "mW");
  const auto zinNom = s.addProperty("Zin-max", "system",
                                    Domain::continuous(25, 150), "Ohm");
  const auto bwMin = s.addProperty("BW-min", "system",
                                   Domain::continuous(40, 400), "kHz");
  const auto bwMax = s.addProperty("BW-max", "system",
                                   Domain::continuous(60, 600), "kHz");
  const auto fTarget = s.addProperty("F-target", "system",
                                     Domain::continuous(60, 300), "MHz");
  const auto dfMax = s.addProperty("dF-max", "system",
                                   Domain::continuous(40, 400), "kHz");

  // -- analog front-end: LNA + mixer + deserializer (15) -------------------------
  const auto wDiff = s.addProperty("Diff-pair-W", lnaObj,
                                   Domain::continuous(0.5, 10.0), "um",
                                   {"Transistor", "Geometry"});
  const auto iBias = s.addProperty("I-bias", lnaObj,
                                   Domain::continuous(0.1, 10.0), "mA",
                                   {"Transistor"});
  s.properties[iBias].preference = -1;  // bias current costs power
  const auto lLoad = s.addProperty("Freq-ind", lnaObj,
                                   Domain::continuous(0.05, 0.5), "uH",
                                   {"Transistor", "Geometry"});
  const auto gm = s.addProperty("gm", lnaObj,
                                Domain::continuous(0.5, 45.0), "mS");
  const auto qInd = s.addProperty("Q-ind", lnaObj,
                                  Domain::continuous(5.0, 50.0), "");
  const auto lnaGain = s.addProperty("LNA-gain", lnaObj,
                                     Domain::continuous(5.0, 40.0), "dB",
                                     {"Geometry"});
  const auto lnaNf = s.addProperty("LNA-NF", lnaObj,
                                   Domain::continuous(1.0, 12.0), "dB");
  const auto lnaPower = s.addProperty("LNA-power", lnaObj,
                                      Domain::continuous(0.0, 30.0), "mW",
                                      {"Geometry"});
  const auto lnaZin = s.addProperty("LNA-Zin", lnaObj,
                                    Domain::continuous(20.0, 1200.0), "Ohm",
                                    {"Geometry"});
  const auto vLo = s.addProperty("V-LO", mixObj,
                                 Domain::continuous(0.1, 1.2), "V");
  const auto mixGain = s.addProperty("Mix-gain", mixObj,
                                     Domain::continuous(0.0, 12.0), "dB");
  const auto mixPower = s.addProperty("Mix-power", mixObj,
                                      Domain::continuous(0.0, 4.0), "mW");
  const auto ip3 = s.addProperty("LNA-IP3", lnaObj,
                                 Domain::continuous(0.0, 35.0), "dBm");
  const auto dataRate = s.addProperty("Data-rate", mixObj,
                                      Domain::continuous(10.0, 400.0),
                                      "ksym/s");
  const auto pSer = s.addProperty("Deser-power", mixObj,
                                  Domain::continuous(1.0, 15.0), "mW");

  // -- MEMS channel-selection filter (13) -----------------------------------------
  const auto beamL = s.addProperty("Beam-L", "MEMS-filter",
                                   Domain::continuous(8.0, 25.0), "um",
                                   {"Device", "Geometry"});
  const auto beamW = s.addProperty("Beam-w", "MEMS-filter",
                                   Domain::continuous(0.5, 4.0), "um",
                                   {"Device", "Geometry"});
  const auto beamT = s.addProperty("Beam-t", "MEMS-filter",
                                   Domain::continuous(1.0, 4.0), "um",
                                   {"Device", "Geometry"});
  const auto nRes = s.addProperty("N-res", "MEMS-filter",
                                  Domain::discrete({2, 3, 4, 5}), "");
  const auto fC = s.addProperty("F-center", "MEMS-filter",
                                Domain::continuous(10.0, 700.0), "MHz",
                                {"Device"});
  const auto qRes = s.addProperty("Q-res", "MEMS-filter",
                                  Domain::continuous(200.0, 6500.0), "");
  const auto fltBw = s.addProperty("Filter-BW", "MEMS-filter",
                                   Domain::continuous(10.0, 2000.0), "kHz");
  const auto insLoss = s.addProperty("Insertion-loss", "MEMS-filter",
                                     Domain::continuous(0.5, 30.0), "dB");
  const auto dfErr = s.addProperty("dF-err", "MEMS-filter",
                                   Domain::continuous(5.0, 3000.0), "kHz");
  const auto fltPower = s.addProperty("Filter-power", "MEMS-filter",
                                      Domain::continuous(0.0, 3.0), "mW");
  const auto vDrive = s.addProperty("V-drive", "MEMS-filter",
                                    Domain::continuous(1.0, 20.0), "V");
  const auto rMot = s.addProperty("R-motional", "MEMS-filter",
                                  Domain::continuous(0.3, 110.0), "kOhm");
  const auto fltArea = s.addProperty("Filter-area", "MEMS-filter",
                                     Domain::continuous(0.05, 5.0), "mm2");

  const auto P = [&](std::size_t i) { return s.pvar(i); };

  // -- analog models & specs (12) --------------------------------------------------
  const auto cGm = s.addConstraint(
      {"Gm-model-C1", P(gm), Relation::Eq,
       4.0 * expr::sqrt(P(wDiff) * P(iBias)), {}});
  const auto cQind = s.addConstraint(
      {"Qind-model-C2", P(qInd), Relation::Eq,
       60.0 * P(lLoad) / (P(lLoad) + 0.2), {}});
  const auto cLnaGain = s.addConstraint(
      {"LNAGain-C10", P(lnaGain), Relation::Eq,
       4.3 * expr::log(1.0 + P(gm) * P(qInd)), {}});
  const auto cNf = s.addConstraint(
      {"NF-model-C3", P(lnaNf), Relation::Eq, 1.5 + 6.0 / P(gm), {}});
  const auto cLnaPower = s.addConstraint(
      {"LNAPower-C7", P(lnaPower), Relation::Eq, 2.7 * P(iBias), {}});
  const auto cZin = s.addConstraint(
      {"Zin-model-C9", P(lnaZin), Relation::Eq, 1000.0 / P(gm), {}});
  const auto cMixGain = s.addConstraint(
      {"MixGain-C11", P(mixGain), Relation::Eq,
       12.0 * P(vLo) / (P(vLo) + 0.4), {}});
  const auto cMixPower = s.addConstraint(
      {"MixPower-C12", P(mixPower), Relation::Eq,
       1.8 * P(vLo) + 0.4, {}});
  const auto cIp3 = s.addConstraint(
      {"IP3-model-C14", P(ip3), Relation::Eq,
       8.7 * expr::log(1.0 + 3.0 * P(iBias)), {}});
  const auto cIp3Spec = s.addConstraint(
      {"IP3-spec-C15", P(ip3), Relation::Ge, Expr::constant(5.0),
       {{ip3, true}}});
  const auto cNfSpec = s.addConstraint(
      {"NF-spec-C16", P(lnaNf), Relation::Le, Expr::constant(4.0),
       {{lnaNf, false}}});
  const auto cSer = s.addConstraint(
      {"Deser-model-C17", P(pSer), Relation::Eq,
       3.0 + 0.02 * P(dataRate), {}});

  // -- filter models & specs (10) ----------------------------------------------------
  // Clamped-clamped beam: f0 ∝ t / L².
  const auto cFc = s.addConstraint(
      {"Fc-model-C3f", P(fC), Relation::Eq,
       10300.0 * P(beamT) / expr::sqr(P(beamL)), {}});
  const auto cQres = s.addConstraint(
      {"Qres-model-C4f", P(qRes), Relation::Eq,
       120.0 * P(beamL) / P(beamW), {}});
  const auto cFltBw = s.addConstraint(
      {"FilterBW-C5f", P(fltBw), Relation::Eq,
       500.0 * P(nRes) * P(fC) / P(qRes), {}});
  // The paper's DDDL example: loss decreasing in resonator length,
  // increasing in beam width (via Q ∝ L/w).
  const auto cLoss = s.addConstraint(
      {"FilterLoss-C4", P(insLoss), Relation::Eq,
       40.0 * P(nRes) / expr::sqrt(P(qRes)), {}});
  const auto cDfErr = s.addConstraint(
      {"dFerr-model-C6f", P(dfErr), Relation::Eq,
       2.0 * P(fC) / P(beamW), {}});
  const auto cFltPower = s.addConstraint(
      {"FilterPower-C7f", P(fltPower), Relation::Eq,
       0.1 * P(nRes) + 0.003 * expr::sqr(P(vDrive)), {}});
  const auto cRm = s.addConstraint(
      {"Rm-model-C8f", P(rMot), Relation::Eq,
       50.0 / (P(vDrive) * P(beamW)), {}});
  const auto cRmSpec = s.addConstraint(
      {"Rm-spec-C9f", P(rMot), Relation::Le, Expr::constant(2.0),
       {{rMot, false}}});
  const auto cArea = s.addConstraint(
      {"Area-model-C10f", P(fltArea), Relation::Eq,
       0.01 * P(nRes) * P(beamL) * P(beamW), {}});
  const auto cAreaSpec = s.addConstraint(
      {"Area-spec-C11f", P(fltArea), Relation::Le, Expr::constant(2.5),
       {{fltArea, false}}});

  // -- cross-subsystem specifications (8) ----------------------------------------------
  const auto cTotalGain = s.addConstraint(
      {"TotalGain-C13", P(lnaGain) + P(mixGain) - P(insLoss), Relation::Ge,
       P(gainMin),
       {{lnaGain, true}, {mixGain, true}, {insLoss, false}, {gainMin, false}}});
  const auto cPowerSpec = s.addConstraint(
      {"Power-spec-C18",
       P(lnaPower) + P(mixPower) + P(fltPower) + P(pSer), Relation::Le,
       P(pMax),
       {{lnaPower, false}, {mixPower, false}, {fltPower, false},
        {pSer, false}, {pMax, true}}});
  const auto cZinSpec = s.addConstraint(
      {"Zin-spec-C19", P(lnaZin), Relation::Le, P(zinNom),
       {{lnaZin, false}, {zinNom, true}}});
  const auto cBwLo = s.addConstraint(
      {"BW-lo-spec-C20", P(fltBw), Relation::Ge, P(bwMin),
       {{fltBw, true}}});
  const auto cBwHi = s.addConstraint(
      {"BW-hi-spec-C21", P(fltBw), Relation::Le, P(bwMax),
       {{fltBw, false}}});
  const auto cFcSpec = s.addConstraint(
      {"Fc-spec-C22", expr::abs(P(fC) - P(fTarget)), Relation::Le,
       Expr::constant(8.0), {}});
  const auto cDfSpec = s.addConstraint(
      {"dF-spec-C23", P(dfErr), Relation::Le, P(dfMax),
       {{dfErr, false}}});
  const auto cCap = s.addConstraint(
      {"Capacity-spec-C24", P(dataRate), Relation::Le, 1.6 * P(fltBw),
       {{dataRate, false}, {fltBw, true}}});

  // -- problems ---------------------------------------------------------------------
  const auto top = s.addProblem(
      {"Receiver", "system", "team-leader",
       {},
       {gainMin, pMax, zinNom, bwMin, bwMax, fTarget, dfMax},
       {cTotalGain, cPowerSpec, cZinSpec, cBwLo, cBwHi, cFcSpec, cDfSpec,
        cCap},
       std::nullopt, {}, true});
  // Children start deferred; the leader's decomposition operation releases
  // them and the DPM then generates their internal model constraints
  // (paper §2.2: "this DPM also generates any necessary constraints"), so
  // the network grows from the 8 requirements "up to 30 constraints".
  if (largeTeam) {
    const auto lnaProblem = s.addProblem(
        {"LNA", lnaObj, "lna-designer",
         {gainMin, pMax, zinNom},
         {wDiff, iBias, lLoad, gm, qInd, lnaGain, lnaNf, lnaPower,
          lnaZin, ip3},
         {cGm, cQind, cLnaGain, cNf, cLnaPower, cZin, cIp3,
          cIp3Spec, cNfSpec},
         top, {}, false});
    const auto mixerProblem = s.addProblem(
        {"Mixer", mixObj, "mixer-designer",
         {gainMin, pMax},
         {vLo, mixGain, mixPower, dataRate, pSer},
         {cMixGain, cMixPower, cSer},
         top, {}, false});
    for (const std::size_t ci : {cGm, cQind, cLnaGain, cNf, cLnaPower, cZin,
                                 cIp3, cIp3Spec, cNfSpec}) {
      s.constraints[ci].generatedBy = lnaProblem;
    }
    for (const std::size_t ci : {cMixGain, cMixPower, cSer}) {
      s.constraints[ci].generatedBy = mixerProblem;
    }
  } else {
    const auto analogProblem = s.addProblem(
        {"Analog", lnaObj, "circuit-designer",
         {gainMin, pMax, zinNom},
         {wDiff, iBias, lLoad, gm, qInd, lnaGain, lnaNf, lnaPower,
          lnaZin, vLo, mixGain, mixPower, ip3, dataRate, pSer},
         {cGm, cQind, cLnaGain, cNf, cLnaPower, cZin, cMixGain,
          cMixPower, cIp3, cIp3Spec, cNfSpec, cSer},
         top, {}, false});
    for (const std::size_t ci : {cGm, cQind, cLnaGain, cNf, cLnaPower, cZin,
                                 cMixGain, cMixPower, cIp3, cIp3Spec,
                                 cNfSpec, cSer}) {
      s.constraints[ci].generatedBy = analogProblem;
    }
  }
  const auto filterProblem = s.addProblem(
      {"Filter", "MEMS-filter", "device-engineer",
       {fTarget, bwMin, bwMax, dfMax},
       {beamL, beamW, beamT, nRes, fC, qRes, fltBw, insLoss, dfErr,
        fltPower, vDrive, rMot, fltArea},
       {cFc, cQres, cFltBw, cLoss, cDfErr, cFltPower, cRm, cRmSpec,
        cArea, cAreaSpec},
       top, {}, false});
  for (const std::size_t ci : {cFc, cQres, cFltBw, cLoss, cDfErr, cFltPower,
                               cRm, cRmSpec, cArea, cAreaSpec}) {
    s.constraints[ci].generatedBy = filterProblem;
  }

  s.require(gainMin, config.gainMin);
  s.require(pMax, config.powerMax);
  s.require(zinNom, config.zinMax);
  s.require(bwMin, config.bwMin);
  s.require(bwMax, config.bwMax);
  s.require(fTarget, config.fTarget);
  s.require(dfMax, config.dfMax);
  return s;
}

}  // namespace

dpm::ScenarioSpec receiverScenario(const ReceiverConfig& config) {
  return buildReceiver(config, /*largeTeam=*/false);
}

dpm::ScenarioSpec receiverLargeTeamScenario(const ReceiverConfig& config) {
  return buildReceiver(config, /*largeTeam=*/true);
}

}  // namespace adpm::scenarios
