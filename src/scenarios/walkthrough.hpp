// The Section 2.4 walkthrough: team-based design of a MEMS-based wireless
// receiver front-end (LNA+mixer concurrently with a MEMS filtering device),
// reduced to the handful of properties the paper's Figs. 2-4 display.
//
// The models are tuned so the paper's storyline reproduces quantitatively:
//  * the device engineer sets the beam length to ~13 um to hit the channel
//    frequency (Fc-target admits beam lengths in ≈[12.8, 13.2] um),
//  * the circuit designer sees a small feasible window for the load inductor
//    and a wider one for the differential-pair width (Fig. 2),
//  * Diff-pair-W appears in 3 constraints, β = 3 (Fig. 3),
//  * choosing W = 2.5 um violates the total-gain requirement; the leader
//    tightening the Zin requirement to 40 Ω adds an impedance violation
//    (α(Diff-pair-W) = 2, Fig. 4),
//  * widening the differential pair to 3.5 um fixes both violations in a
//    single operation (Section 2.4.3).
#pragma once

#include "dpm/scenario.hpp"

namespace adpm::scenarios {

/// Builds the walkthrough scenario (3 designers: team-leader,
/// circuit-designer, device-engineer).
dpm::ScenarioSpec walkthroughScenario();

/// Property indices within the walkthrough spec, for scripted drivers.
struct WalkthroughIds {
  std::size_t minGain, maxPower, maxZin;            // system requirements
  std::size_t diffPairW, freqInd, lnaGain, lnaPower, lnaZin;  // LNA+Mixer
  std::size_t beamLength, centerFreq, insertionLoss;          // MEMS filter
  std::size_t topProblem, lnaProblem, filterProblem;          // problems
};
WalkthroughIds walkthroughIds(const dpm::ScenarioSpec& spec);

}  // namespace adpm::scenarios
