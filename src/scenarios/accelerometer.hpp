// Design case 3 (extension): a capacitive MEMS accelerometer with a readout
// ASIC, designed concurrently by a proof-mass engineer and a circuit
// designer.
//
// The paper's conclusion calls for evaluating "other types of problems and
// heuristics"; this case differs from the two shipped with the paper in
// kind: a min() bandwidth coupling (system bandwidth is limited by whichever
// of the mechanical resonance and the readout bandwidth is smaller), an
// electro-mechanical cross constraint (the readout bias voltage must stay
// under the proof-mass pull-in limit), and a noise budget mixing mechanical
// Brownian noise with electrical noise referred through the sense
// capacitance.
#pragma once

#include "dpm/scenario.hpp"

namespace adpm::scenarios {

struct AccelerometerConfig {
  /// Minimum system sensitivity (mV/g).
  double sensMin = 3.0;
  /// Total noise ceiling (ug/sqrt(Hz)).
  double noiseMax = 15.0;
  /// Minimum usable bandwidth (kHz).
  double bwMin = 1.0;
  /// Power budget (mW).
  double powerMax = 10.0;
  /// Minimum full-scale range (g).
  double rangeMin = 10.0;
};

/// Builds the accelerometer scenario: 20 properties, 14 constraints,
/// 3 designers (team-leader, mems-engineer, asic-designer).
dpm::ScenarioSpec accelerometerScenario(const AccelerometerConfig& config = {});

}  // namespace adpm::scenarios
