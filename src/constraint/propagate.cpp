#include "constraint/propagate.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#ifdef ADPM_DEBUG_CHECKS
#include <cstdio>
#include <cstdlib>
#endif

namespace adpm::constraint {

namespace {

#ifdef ADPM_DEBUG_CHECKS
/// RAII claim on the propagator's scratch arena.  compare_exchange from the
/// empty thread id detects a second thread entering while a run is in
/// flight; that is the exact corruption scenario the scratch arena's
/// single-owner contract forbids, so fail fast rather than let two runs
/// interleave over the same buffers.
class ScratchClaim {
 public:
  explicit ScratchClaim(std::atomic<std::thread::id>& owner) : owner_(owner) {
    std::thread::id expected{};
    if (!owner_.compare_exchange_strong(expected, std::this_thread::get_id(),
                                        std::memory_order_acquire,
                                        std::memory_order_relaxed)) {
      std::fprintf(stderr,
                   "adpm: Propagator used concurrently from two threads; "
                   "the scratch arena is single-owner — give each "
                   "engine/session its own Propagator\n");
      std::abort();
    }
  }
  ~ScratchClaim() { owner_.store(std::thread::id{}, std::memory_order_release); }
  ScratchClaim(const ScratchClaim&) = delete;
  ScratchClaim& operator=(const ScratchClaim&) = delete;

 private:
  std::atomic<std::thread::id>& owner_;
};
#endif

/// True when a bound moved by more than the significance tolerance.
bool movedSignificantly(const interval::Interval& before,
                        const interval::Interval& after, double tol) {
  if (before.empty() && after.empty()) return false;
  if (before.empty() != after.empty()) return true;
  const double eps = [&](double bound) {
    return tol * (1.0 + std::fabs(bound));
  }(std::max(std::fabs(before.lo()), std::fabs(before.hi())));
  return std::fabs(before.lo() - after.lo()) > eps ||
         std::fabs(before.hi() - after.hi()) > eps;
}

}  // namespace

PropagationResult Propagator::run(Network& net) const {
  return runOnBox(net, net.currentBox());
}

PropagationResult Propagator::runRelaxed(Network& net, PropertyId p) const {
  auto box = net.currentBox();
  box[p.value] = net.property(p).initial.hull();
  return runOnBox(net, std::move(box));
}

PropagationResult Propagator::runOnBox(
    Network& net, std::vector<interval::Interval> box) const {
#ifdef ADPM_DEBUG_CHECKS
  const ScratchClaim claim(scratchOwner_.id);
#endif
  return options_.referenceMode ? runOnBoxReference(net, std::move(box))
                                : runOnBoxFast(net, std::move(box));
}

// The production hot path: identical algorithm and revise order to the
// reference below, but every per-revise and per-candidate buffer lives in
// the reused scratch arena, so steady-state propagation performs no heap
// allocation beyond the result it returns.  The differential tests hold the
// two paths to bit-identical results and charges.
PropagationResult Propagator::runOnBoxFast(
    Network& net, std::vector<interval::Interval> box) const {
  const std::size_t nc = net.constraintCount();
  PropagationResult result;
  result.status.assign(nc, Status::Consistent);

  // FIFO queue: vector + head cursor.  Entries are appended at the tail and
  // consumed at the head; the backing storage is recycled across runs.  The
  // total number of pushes per run is bounded by the revise cap times the
  // network degree, so the tail never runs away.
  Scratch& s = scratch_;
  s.queue.clear();
  s.queueHead = 0;
  s.queued.assign(nc, 0);
  for (std::uint32_t i = 0; i < nc; ++i) {
    if (!net.isActive(ConstraintId{i})) continue;  // not generated yet
    s.queue.push_back(ConstraintId{i});
    s.queued[i] = 1;
  }

  const std::size_t maxRevises =
      std::max<std::size_t>(nc * options_.maxRevisesPerConstraint, nc);
  std::size_t revises = 0;
  std::size_t sweepBoundary = s.queue.size();
  bool sweptOnce = false;

  while (s.queueHead < s.queue.size() && revises < maxRevises) {
    if (sweepBoundary == 0) {
      ++result.passes;
      sweepBoundary = s.queue.size() - s.queueHead;
      if (!options_.fixpoint && sweptOnce) break;
      sweptOnce = true;
    }
    --sweepBoundary;

    const ConstraintId cid = s.queue[s.queueHead++];
    s.queued[cid.value] = 0;

    Constraint& c = net.constraint(cid);

    // Snapshot the arguments to detect significant narrowing (reused
    // buffer; capacity persists across revises and runs).
    s.before.clear();
    for (PropertyId arg : c.arguments()) s.before.push_back(box[arg.value]);

    // Revise against a tolerance-padded target: a first forward sweep sizes
    // the pad to the residual's magnitude so boundary-exact designs are not
    // flipped to Violated by rounding.
    const interval::Interval forward =
        c.compiled().evaluate({box.data(), box.size()});
    const interval::Interval target = tolerancedTarget(c.target(), forward);
    const expr::ReviseResult r =
        c.compiled().revise(target, {box.data(), box.size()});
    ++revises;

    if (!r.feasible) {
      result.status[cid.value] = Status::Violated;
      continue;  // no narrowing to propagate from a violated constraint
    }
    result.status[cid.value] = classify(r.value, target);

    if (!r.narrowed || !options_.fixpoint) continue;

    for (std::size_t i = 0; i < c.arguments().size(); ++i) {
      const PropertyId arg = c.arguments()[i];
      if (!movedSignificantly(s.before[i], box[arg.value],
                              options_.tolerance)) {
        continue;
      }
      for (ConstraintId neighbour : net.constraintsOf(arg)) {
        if (neighbour == cid || s.queued[neighbour.value]) continue;
        if (!net.isActive(neighbour)) continue;
        s.queue.push_back(neighbour);
        s.queued[neighbour.value] = 1;
      }
    }
  }
  if (result.passes == 0) result.passes = 1;

  result.evaluations = revises;
  net.chargeEvaluations(revises);

  result.hulls = std::move(box);
  result.feasible.reserve(net.propertyCount());
  for (std::uint32_t i = 0; i < net.propertyCount(); ++i) {
    const Property& p = net.property(PropertyId{i});
    result.feasible.push_back(p.initial.intersect(result.hulls[i]));
  }

  // Discrete shaving: drop values of unbound discrete properties that no
  // consistent constraint supports.  One probe box is built per run and
  // patched in place per candidate value (shaving edits result.feasible
  // only, never the hulls the probe mirrors).
  if (options_.filterDiscrete) {
    s.probe.assign(result.hulls.begin(), result.hulls.end());
    for (std::uint32_t i = 0; i < net.propertyCount(); ++i) {
      const Property& p = net.property(PropertyId{i});
      if (!p.initial.isDiscrete() || p.bound()) continue;
      if (result.feasible[i].empty()) continue;

      std::vector<double> supported;
      for (const double v : result.feasible[i].values()) {
        bool ok = true;
        s.probe[i] = interval::Interval(v);
        for (ConstraintId cid : net.constraintsOf(PropertyId{i})) {
          if (!net.isActive(cid)) continue;
          if (result.status[cid.value] == Status::Violated) continue;
          Constraint& c = net.constraint(cid);
          const interval::Interval residual =
              c.compiled().evaluate({s.probe.data(), s.probe.size()});
          ++result.evaluations;
          net.chargeEvaluations(1);
          if (!residual.intersects(tolerancedTarget(c.target(), residual))) {
            ok = false;
            break;
          }
        }
        if (ok) supported.push_back(v);
      }
      s.probe[i] = result.hulls[i];
      result.feasible[i] = interval::Domain::discrete(std::move(supported));
    }
  }
  for (std::uint32_t i = 0; i < nc; ++i) {
    if (result.status[i] == Status::Violated) {
      result.violated.push_back(ConstraintId{i});
    }
  }
  return result;
}

// The pre-optimization implementation, kept verbatim as the differential
// baseline (Options::referenceMode).  Any edit to the fast path above must
// keep the differential tests against this path green.
PropagationResult Propagator::runOnBoxReference(
    Network& net, std::vector<interval::Interval> box) const {
  const std::size_t nc = net.constraintCount();
  PropagationResult result;
  result.status.assign(nc, Status::Consistent);

  std::deque<ConstraintId> queue;
  std::vector<bool> queued(nc, false);
  for (std::uint32_t i = 0; i < nc; ++i) {
    if (!net.isActive(ConstraintId{i})) continue;  // not generated yet
    queue.push_back(ConstraintId{i});
    queued[i] = true;
  }

  const std::size_t maxRevises =
      std::max<std::size_t>(nc * options_.maxRevisesPerConstraint, nc);
  std::size_t revises = 0;
  std::size_t sweepBoundary = queue.size();
  bool sweptOnce = false;

  while (!queue.empty() && revises < maxRevises) {
    if (sweepBoundary == 0) {
      ++result.passes;
      sweepBoundary = queue.size();
      if (!options_.fixpoint && sweptOnce) break;
      sweptOnce = true;
    }
    --sweepBoundary;

    const ConstraintId cid = queue.front();
    queue.pop_front();
    queued[cid.value] = false;

    Constraint& c = net.constraint(cid);

    // Snapshot the arguments to detect significant narrowing.
    std::vector<interval::Interval> before;
    before.reserve(c.arguments().size());
    for (PropertyId arg : c.arguments()) before.push_back(box[arg.value]);

    // Revise against a tolerance-padded target: a first forward sweep sizes
    // the pad to the residual's magnitude so boundary-exact designs are not
    // flipped to Violated by rounding.
    const interval::Interval forward =
        c.compiled().evaluate({box.data(), box.size()});
    const interval::Interval target = tolerancedTarget(c.target(), forward);
    const expr::ReviseResult r =
        c.compiled().revise(target, {box.data(), box.size()});
    ++revises;

    if (!r.feasible) {
      result.status[cid.value] = Status::Violated;
      continue;  // no narrowing to propagate from a violated constraint
    }
    result.status[cid.value] = classify(r.value, target);

    if (!r.narrowed || !options_.fixpoint) continue;

    for (std::size_t i = 0; i < c.arguments().size(); ++i) {
      const PropertyId arg = c.arguments()[i];
      if (!movedSignificantly(before[i], box[arg.value], options_.tolerance)) {
        continue;
      }
      for (ConstraintId neighbour : net.constraintsOf(arg)) {
        if (neighbour == cid || queued[neighbour.value]) continue;
        if (!net.isActive(neighbour)) continue;
        queue.push_back(neighbour);
        queued[neighbour.value] = true;
      }
    }
  }
  if (result.passes == 0) result.passes = 1;

  result.evaluations = revises;
  net.chargeEvaluations(revises);

  result.hulls = std::move(box);
  result.feasible.reserve(net.propertyCount());
  for (std::uint32_t i = 0; i < net.propertyCount(); ++i) {
    const Property& p = net.property(PropertyId{i});
    result.feasible.push_back(p.initial.intersect(result.hulls[i]));
  }

  // Discrete shaving: drop values of unbound discrete properties that no
  // consistent constraint supports.
  if (options_.filterDiscrete) {
    for (std::uint32_t i = 0; i < net.propertyCount(); ++i) {
      const Property& p = net.property(PropertyId{i});
      if (!p.initial.isDiscrete() || p.bound()) continue;
      if (result.feasible[i].empty()) continue;

      std::vector<double> supported;
      for (const double v : result.feasible[i].values()) {
        bool ok = true;
        for (ConstraintId cid : net.constraintsOf(PropertyId{i})) {
          if (!net.isActive(cid)) continue;
          if (result.status[cid.value] == Status::Violated) continue;
          Constraint& c = net.constraint(cid);
          auto probe = result.hulls;
          probe[i] = interval::Interval(v);
          const interval::Interval residual =
              c.compiled().evaluate({probe.data(), probe.size()});
          ++result.evaluations;
          net.chargeEvaluations(1);
          if (!residual.intersects(tolerancedTarget(c.target(), residual))) {
            ok = false;
            break;
          }
        }
        if (ok) supported.push_back(v);
      }
      result.feasible[i] = interval::Domain::discrete(std::move(supported));
    }
  }
  for (std::uint32_t i = 0; i < nc; ++i) {
    if (result.status[i] == Status::Violated) {
      result.violated.push_back(ConstraintId{i});
    }
  }
  return result;
}

}  // namespace adpm::constraint
