#include "constraint/network.hpp"

#include <utility>

#include "util/error.hpp"

namespace adpm::constraint {

PropertyId Network::addProperty(PropertySpec spec) {
  if (findProperty(spec.name)) {
    throw adpm::InvalidArgumentError("duplicate property name '" + spec.name +
                                     "'");
  }
  const PropertyId id{static_cast<std::uint32_t>(properties_.size())};
  Property p;
  p.id = id;
  p.name = std::move(spec.name);
  p.object = std::move(spec.object);
  p.initial = std::move(spec.initial);
  p.unit = std::move(spec.unit);
  p.abstractionLevels = std::move(spec.abstractionLevels);
  p.preference = spec.preference;
  properties_.push_back(std::move(p));
  byProperty_.emplace_back();
  ++generation_;
  return id;
}

ConstraintId Network::addConstraint(std::string name, expr::Expr lhs,
                                    Relation rel, expr::Expr rhs,
                                    bool active) {
  if (findConstraint(name)) {
    throw adpm::InvalidArgumentError("duplicate constraint name '" + name +
                                     "'");
  }
  const ConstraintId id{static_cast<std::uint32_t>(constraints_.size())};
  auto c = std::make_unique<Constraint>(id, std::move(name), std::move(lhs),
                                        rel, std::move(rhs));
  for (PropertyId arg : c->arguments()) {
    if (arg.value >= properties_.size()) {
      throw adpm::InvalidArgumentError(
          "constraint '" + c->name() + "' references unknown property id " +
          std::to_string(arg.value));
    }
    byProperty_[arg.value].push_back(id);
  }
  constraints_.push_back(std::move(c));
  active_.push_back(active);
  ++generation_;
  return id;
}

bool Network::isActive(ConstraintId c) const {
  if (c.value >= active_.size()) {
    throw adpm::InvalidArgumentError("unknown constraint id " +
                                     std::to_string(c.value));
  }
  return active_[c.value];
}

void Network::activate(ConstraintId c) {
  if (c.value >= active_.size()) {
    throw adpm::InvalidArgumentError("unknown constraint id " +
                                     std::to_string(c.value));
  }
  if (!active_[c.value]) ++generation_;
  active_[c.value] = true;
}

std::size_t Network::activeConstraintCount() const noexcept {
  std::size_t n = 0;
  for (const bool a : active_) n += a ? 1 : 0;
  return n;
}

expr::Expr Network::var(PropertyId p) const {
  return expr::Expr::variable(p.value, property(p).name);
}

const Property& Network::property(PropertyId p) const {
  if (p.value >= properties_.size()) {
    throw adpm::InvalidArgumentError("unknown property id " +
                                     std::to_string(p.value));
  }
  return properties_[p.value];
}

Property& Network::property(PropertyId p) {
  return const_cast<Property&>(std::as_const(*this).property(p));
}

const Constraint& Network::constraint(ConstraintId c) const {
  if (c.value >= constraints_.size()) {
    throw adpm::InvalidArgumentError("unknown constraint id " +
                                     std::to_string(c.value));
  }
  return *constraints_[c.value];
}

Constraint& Network::constraint(ConstraintId c) {
  return const_cast<Constraint&>(std::as_const(*this).constraint(c));
}

std::optional<PropertyId> Network::findProperty(
    std::string_view name) const noexcept {
  for (const auto& p : properties_) {
    if (p.name == name) return p.id;
  }
  return std::nullopt;
}

std::optional<ConstraintId> Network::findConstraint(
    std::string_view name) const noexcept {
  for (const auto& c : constraints_) {
    if (c->name() == name) return c->id();
  }
  return std::nullopt;
}

const std::vector<ConstraintId>& Network::constraintsOf(PropertyId p) const {
  if (p.value >= byProperty_.size()) {
    throw adpm::InvalidArgumentError("unknown property id " +
                                     std::to_string(p.value));
  }
  return byProperty_[p.value];
}

std::vector<PropertyId> Network::propertyIds() const {
  std::vector<PropertyId> ids;
  ids.reserve(properties_.size());
  for (const auto& p : properties_) ids.push_back(p.id);
  return ids;
}

std::vector<ConstraintId> Network::constraintIds() const {
  std::vector<ConstraintId> ids;
  ids.reserve(constraints_.size());
  for (const auto& c : constraints_) ids.push_back(c->id());
  return ids;
}

void Network::bind(PropertyId p, double v) {
  property(p).value = v;
  ++generation_;
}

void Network::unbind(PropertyId p) {
  property(p).value.reset();
  ++generation_;
}

std::vector<interval::Interval> Network::currentBox() const {
  std::vector<interval::Interval> box;
  box.reserve(properties_.size());
  for (const auto& p : properties_) box.push_back(p.currentHull());
  return box;
}

Status Network::evaluate(ConstraintId c) {
  if (!isActive(c)) {
    throw adpm::InvalidArgumentError(
        "evaluate: constraint '" + constraint(c).name() +
        "' has not been generated yet");
  }
  Constraint& con = constraint(c);
  const auto box = currentBox();
  const interval::Interval value = con.compiled().evaluate(box);
  ++evaluations_;
  return classify(value, tolerancedTarget(con.target(), value));
}

std::vector<Status> Network::evaluate(const std::vector<ConstraintId>& ids) {
  std::vector<Status> out;
  out.reserve(ids.size());
  for (ConstraintId id : ids) out.push_back(evaluate(id));
  return out;
}

}  // namespace adpm::constraint
