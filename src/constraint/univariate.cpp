#include "constraint/univariate.hpp"

#include <vector>

namespace adpm::constraint {

interval::IntervalSet solveUnivariate(Network& net, ConstraintId c,
                                      PropertyId arg,
                                      const UnivariateOptions& options) {
  Constraint& con = net.constraint(c);
  auto box = net.currentBox();
  const interval::Interval range = net.property(arg).initial.hull();
  if (range.empty() || !range.isBounded()) {
    // Unbounded ranges cannot be sliced uniformly; fall back to one revise.
    box[arg.value] = range;
    const auto r = con.compiled().revise(
        tolerancedTarget(con.target(),
                         con.compiled().evaluate({box.data(), box.size()})),
        {box.data(), box.size()});
    return r.feasible ? interval::IntervalSet(box[arg.value])
                      : interval::IntervalSet();
  }

  const int slices = std::max(options.slices, 1);
  const double width = range.width();
  std::vector<interval::Interval> feasible;

  for (int i = 0; i < slices; ++i) {
    interval::Interval slice(range.lo() + width * i / slices,
                             range.lo() + width * (i + 1) / slices);
    auto working = box;
    working[arg.value] = slice;
    const interval::Interval forward =
        con.compiled().evaluate({working.data(), working.size()});
    const auto target = tolerancedTarget(con.target(), forward);
    const auto r =
        con.compiled().revise(target, {working.data(), working.size()});
    if (!r.feasible) continue;
    // Refine the slice a few times to tighten lobe edges.
    interval::Interval kept = working[arg.value];
    for (int step = 0; step < options.refinements; ++step) {
      auto inner = box;
      inner[arg.value] = kept;
      const auto rr =
          con.compiled().revise(target, {inner.data(), inner.size()});
      if (!rr.feasible) break;
      if (inner[arg.value] == kept) break;
      kept = inner[arg.value];
    }
    feasible.push_back(kept);
  }
  return interval::IntervalSet::fromPieces(std::move(feasible));
}

}  // namespace adpm::constraint
