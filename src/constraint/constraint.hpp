// Design constraints and their three-valued status.
//
// "A constraint c_i is satisfied if it holds for all combinations of the
// current argument values; violated if it returns False for all
// combinations; and consistent otherwise." (paper, Section 2.1)
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "constraint/ids.hpp"
#include "expr/compiled.hpp"
#include "expr/derivative.hpp"
#include "expr/expr.hpp"

namespace adpm::constraint {

enum class Relation : std::uint8_t { Le, Ge, Eq };

const char* relationSymbol(Relation r) noexcept;

/// Status values; `Consistent` is the paper's s(c_i) = Unknown case.
enum class Status : std::uint8_t { Satisfied, Violated, Consistent };

const char* statusName(Status s) noexcept;

/// A relation lhs REL rhs over properties, kept in the canonical residual
/// form g = lhs - rhs with a target interval (g <= 0, g >= 0, or g = 0).
class Constraint {
 public:
  Constraint(ConstraintId id, std::string name, expr::Expr lhs, Relation rel,
             expr::Expr rhs);

  ConstraintId id() const noexcept { return id_; }
  const std::string& name() const noexcept { return name_; }
  Relation relation() const noexcept { return rel_; }
  const expr::Expr& lhs() const noexcept { return lhs_; }
  const expr::Expr& rhs() const noexcept { return rhs_; }
  /// Canonical residual g = lhs - rhs.
  const expr::Expr& residual() const noexcept { return residual_; }
  /// Target interval for the residual ([-inf,0], [0,inf], or [0,0]).
  interval::Interval target() const noexcept;

  /// Argument properties a_i (variable ids of the residual).
  const std::vector<PropertyId>& arguments() const noexcept { return args_; }

  bool involves(PropertyId p) const noexcept;

  /// The compiled residual for evaluation/HC4; one instance per constraint,
  /// so a Constraint is not safe for concurrent evaluation.
  expr::CompiledExpr& compiled() noexcept { return *compiled_; }

  /// Miner cache: residual enclosure and per-argument derived direction from
  /// the last compiled-AD sweep, keyed on the network's box generation
  /// counter (`Network::generation()`).  A mine over an unchanged box — the
  /// common case for what-if reporting and repeated browser refreshes —
  /// reuses this instead of re-sweeping the expression.  None of the cached
  /// quantities are charged evaluations (mining bookkeeping never is), so
  /// the cache cannot perturb the paper's cost metric.
  struct MiningCache {
    std::uint64_t generation = std::numeric_limits<std::uint64_t>::max();
    interval::Interval residual;
    /// Parallel to `arguments()`.
    std::vector<expr::Direction> argDirection;
  };
  MiningCache& miningCache() noexcept { return miningCache_; }

  /// Declared monotonicity (from DDDL "monotone increasing/decreasing in"):
  /// the direction of the *property* movement that helps satisfy the
  /// constraint.  Empty entries fall back to derived monotonicity.
  void declareHelpDirection(PropertyId p, bool increaseHelps);
  /// Returns +1 if increasing p helps satisfy this constraint, -1 if
  /// decreasing helps, 0 if undeclared.
  int declaredHelpDirection(PropertyId p) const noexcept;

  /// Human-readable rendering "lhs <= rhs".
  std::string str() const;

 private:
  ConstraintId id_;
  std::string name_;
  expr::Expr lhs_;
  Relation rel_;
  expr::Expr rhs_;
  expr::Expr residual_;
  std::vector<PropertyId> args_;
  std::unique_ptr<expr::CompiledExpr> compiled_;
  std::map<PropertyId, int> declaredHelp_;
  MiningCache miningCache_;
};

/// Classifies a residual enclosure against a target interval per the paper's
/// three-valued semantics.
Status classify(const interval::Interval& residual,
                const interval::Interval& target) noexcept;

/// Default relative feasibility tolerance.  Equality constraints between
/// values that travelled through chains of floating-point models are never
/// met *exactly*; a verification tool would report them as passing within
/// its numeric tolerance, and so does this library.
inline constexpr double kFeasibilityTolerance = 1e-7;

/// The target interval padded by a tolerance scaled to the residual's
/// magnitude; use for classification and propagation so boundary-exact
/// designs do not flip to Violated through rounding.
interval::Interval tolerancedTarget(const interval::Interval& target,
                                    const interval::Interval& residual,
                                    double tol = kFeasibilityTolerance) noexcept;

}  // namespace adpm::constraint
