// Strong id types for properties and constraints.
//
// Properties and constraints live in one ConstraintNetwork per design
// process; ids are dense indices into its tables, wrapped so they cannot be
// mixed up.  A property's id doubles as the expression-variable id (VarId)
// used inside constraint expressions.
#pragma once

#include <cstdint>
#include <functional>

namespace adpm::constraint {

struct PropertyId {
  std::uint32_t value = 0;
  constexpr auto operator<=>(const PropertyId&) const = default;
};

struct ConstraintId {
  std::uint32_t value = 0;
  constexpr auto operator<=>(const ConstraintId&) const = default;
};

}  // namespace adpm::constraint

template <>
struct std::hash<adpm::constraint::PropertyId> {
  std::size_t operator()(const adpm::constraint::PropertyId& id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};

template <>
struct std::hash<adpm::constraint::ConstraintId> {
  std::size_t operator()(const adpm::constraint::ConstraintId& id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};
