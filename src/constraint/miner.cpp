#include "constraint/miner.hpp"

#include "expr/derivative.hpp"

namespace adpm::constraint {

namespace {

/// Which way the residual must move to reach the target: +1 up, -1 down,
/// 0 already overlapping (not violated) or no verdict.
int neededResidualShift(const interval::Interval& residual,
                        const interval::Interval& target) noexcept {
  if (residual.empty() || target.empty()) return 0;
  if (residual.lo() > target.hi()) return -1;  // residual entirely above
  if (residual.hi() < target.lo()) return +1;  // entirely below
  return 0;
}

/// Sign of ∂residual/∂p over the box: +1, -1, or 0 when unproven.
int residualSlopeSign(const Constraint& c, PropertyId p,
                      const std::vector<interval::Interval>& box) {
  switch (expr::monotonicity(c.residual(), box, p.value)) {
    case expr::Direction::Increasing:
      return +1;
    case expr::Direction::Decreasing:
      return -1;
    default:
      return 0;
  }
}

}  // namespace

int helpDirection(Network& net, Constraint& c, PropertyId p,
                  const std::vector<interval::Interval>& box) {
  (void)net;
  // Decide which way the residual needs to move.  For a violated constraint
  // the side is determined by where the residual enclosure sits relative to
  // the target; for a non-violated one we use the relation's natural side
  // (Le wants the residual lower, Ge higher).  This reuses the state the
  // propagation pass just computed, so it is bookkeeping, not a tool run —
  // no evaluation charge.
  const interval::Interval residual = c.compiled().evaluate(box);
  int shift = neededResidualShift(residual, c.target());
  if (shift == 0) {
    switch (c.relation()) {
      case Relation::Le: shift = -1; break;
      case Relation::Ge: shift = +1; break;
      case Relation::Eq: return 0;  // no natural side
    }
  }

  const int slope = residualSlopeSign(c, p, box);
  if (slope != 0) return shift * slope;

  // Derived monotonicity is inconclusive over this box; fall back to the
  // DDDL-declared help direction if the scenario provided one.
  return c.declaredHelpDirection(p);
}

GuidanceReport HeuristicMiner::mine(Network& net,
                                    const PropagationResult& prop) const {
  GuidanceReport report;
  report.violated = prop.violated;
  report.properties.resize(net.propertyCount());

  const auto box = net.currentBox();
  const Propagator propagator(options_.propagation);

  for (std::uint32_t pi = 0; pi < net.propertyCount(); ++pi) {
    const PropertyId pid{pi};
    PropertyGuidance& g = report.properties[pi];
    g.id = pid;

    const Property& p = net.property(pid);
    g.feasible = prop.feasible.at(pi);
    g.relativeFeasibleSize = g.feasible.relativeMeasure(p.initial);
    // A bound property's propagated subspace degenerates to its point value;
    // without a what-if range its *rebinding* freedom is simply unknown, so
    // report full size rather than zero (zero would make every later genuine
    // reduction invisible to the NM's diff).
    if (p.bound()) g.relativeFeasibleSize = 1.0;

    g.beta = 0;
    for (ConstraintId cid : net.constraintsOf(pid)) {
      if (!net.isActive(cid)) continue;  // not generated yet
      ++g.beta;
      Constraint& c = net.constraint(cid);
      const bool violated = prop.isViolated(cid);
      if (violated) ++g.alpha;

      const int dir = helpDirection(net, c, pid, box);
      if (dir > 0) {
        g.increasing.push_back(cid);
        if (violated) ++g.repairVotesUp;
      } else if (dir < 0) {
        g.decreasing.push_back(cid);
        if (violated) ++g.repairVotesDown;
      }
    }

    // For a bound property caught in violations, the propagated feasible
    // subspace degenerates to its own point; the designer needs the what-if
    // range ("what could this be rebound to?").  That requires a relaxed
    // re-propagation — more tool runs, charged to the network.
    if (options_.whatIfForViolated && p.bound() && g.alpha > 0) {
      const PropagationResult relaxed = propagator.runRelaxed(net, pid);
      report.extraEvaluations += relaxed.evaluations;
      g.feasible = relaxed.feasible.at(pi);
      g.relativeFeasibleSize = g.feasible.relativeMeasure(p.initial);
    }
  }
  return report;
}

}  // namespace adpm::constraint
