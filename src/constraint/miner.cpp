#include "constraint/miner.hpp"

#include <algorithm>

#include "expr/derivative.hpp"

namespace adpm::constraint {

namespace {

/// Which way the residual must move to reach the target: +1 up, -1 down,
/// 0 already overlapping (not violated) or no verdict.
int neededResidualShift(const interval::Interval& residual,
                        const interval::Interval& target) noexcept {
  if (residual.empty() || target.empty()) return 0;
  if (residual.lo() > target.hi()) return -1;  // residual entirely above
  if (residual.hi() < target.lo()) return +1;  // entirely below
  return 0;
}

/// Combines the residual's position, the relation's natural side, and the
/// derived slope direction into a help direction.  Shared by the reference
/// and fast engines so the two differ only in how `residual` and `slope`
/// were obtained.  Precedence (see helpDirection's doc comment): proven
/// sign > proven Constant (0, no fallback) > declared fallback for Unknown.
int combineHelpDirection(const Constraint& c, PropertyId p,
                         const interval::Interval& residual,
                         expr::Direction slope) {
  // Decide which way the residual needs to move.  For a violated constraint
  // the side is determined by where the residual enclosure sits relative to
  // the target; for a non-violated one we use the relation's natural side
  // (Le wants the residual lower, Ge higher).  This reuses the state the
  // propagation pass just computed, so it is bookkeeping, not a tool run —
  // no evaluation charge.
  int shift = neededResidualShift(residual, c.target());
  if (shift == 0) {
    switch (c.relation()) {
      case Relation::Le: shift = -1; break;
      case Relation::Ge: shift = +1; break;
      case Relation::Eq: return 0;  // no natural side
    }
  }

  switch (slope) {
    case expr::Direction::Increasing:
      return shift;
    case expr::Direction::Decreasing:
      return -shift;
    case expr::Direction::Constant:
    case expr::Direction::None:
      // Proven ineffective over this box (or not an argument at all): no
      // direction, and no declared fallback — a declaration must not
      // override a proof that moving p cannot change the residual.
      return 0;
    case expr::Direction::Unknown:
      break;
  }
  // Derived monotonicity is inconclusive over this box; fall back to the
  // DDDL-declared help direction if the scenario provided one.
  return c.declaredHelpDirection(p);
}

/// Fast-engine help direction: reads the constraint's mining cache,
/// refreshing it with one fused AD sweep when the box generation moved.
int cachedHelpDirection(Constraint& c, PropertyId p, std::uint64_t generation,
                        const std::vector<interval::Interval>& box) {
  Constraint::MiningCache& cache = c.miningCache();
  if (cache.generation != generation) {
    const expr::DerivativeSweep sweep = c.compiled().derivatives(box);
    cache.residual = sweep.value;
    cache.argDirection.resize(c.arguments().size());
    for (std::size_t k = 0; k < cache.argDirection.size(); ++k) {
      cache.argDirection[k] = expr::directionOf(sweep.derivatives[k]);
    }
    cache.generation = generation;
  }
  // arguments() is ascending by id (it mirrors the compiled expression's
  // variable list), so the argument slot is a binary search away.
  const auto& args = c.arguments();
  const auto it = std::lower_bound(args.begin(), args.end(), p);
  const auto k = static_cast<std::size_t>(it - args.begin());
  return combineHelpDirection(c, p, cache.residual, cache.argDirection[k]);
}

}  // namespace

int helpDirection(Network& net, Constraint& c, PropertyId p,
                  const std::vector<interval::Interval>& box) {
  (void)net;
  const interval::Interval residual = c.compiled().evaluate(box);
  return combineHelpDirection(c, p, residual,
                              expr::monotonicity(c.residual(), box, p.value));
}

GuidanceReport HeuristicMiner::mine(Network& net,
                                    const PropagationResult& prop) const {
  GuidanceReport report;
  report.violated = prop.violated;
  report.properties.resize(net.propertyCount());

  const auto box = net.currentBox();
  const std::uint64_t generation = net.generation();

  for (std::uint32_t pi = 0; pi < net.propertyCount(); ++pi) {
    const PropertyId pid{pi};
    PropertyGuidance& g = report.properties[pi];
    g.id = pid;

    const Property& p = net.property(pid);
    g.feasible = prop.feasible.at(pi);
    g.relativeFeasibleSize = g.feasible.relativeMeasure(p.initial);
    // A bound property's propagated subspace degenerates to its point value;
    // without a what-if range its *rebinding* freedom is simply unknown, so
    // report full size rather than zero (zero would make every later genuine
    // reduction invisible to the NM's diff).
    if (p.bound()) g.relativeFeasibleSize = 1.0;

    g.beta = 0;
    for (ConstraintId cid : net.constraintsOf(pid)) {
      if (!net.isActive(cid)) continue;  // not generated yet
      ++g.beta;
      Constraint& c = net.constraint(cid);
      const bool violated = prop.isViolated(cid);
      if (violated) ++g.alpha;

      const int dir = options_.engine == MinerEngine::Fast
                          ? cachedHelpDirection(c, pid, generation, box)
                          : helpDirection(net, c, pid, box);
      if (dir > 0) {
        g.increasing.push_back(cid);
        if (violated) ++g.repairVotesUp;
      } else if (dir < 0) {
        g.decreasing.push_back(cid);
        if (violated) ++g.repairVotesDown;
      }
    }

    // For a bound property caught in violations, the propagated feasible
    // subspace degenerates to its own point; the designer needs the what-if
    // range ("what could this be rebound to?").  That requires a relaxed
    // re-propagation — more tool runs, charged to the network.
    if (options_.whatIfForViolated && p.bound() && g.alpha > 0) {
      const PropagationResult relaxed = propagator_.runRelaxed(net, pid);
      report.extraEvaluations += relaxed.evaluations;
      g.feasible = relaxed.feasible.at(pi);
      g.relativeFeasibleSize = g.feasible.relativeMeasure(p.initial);
    }
  }
  return report;
}

}  // namespace adpm::constraint
