// Heuristic support data mining.
//
// "Constraint information is consolidated into data that explicitly supports
// heuristics ... e.g. the number of violations related to each design
// variable." (paper, Sections 2.2-2.3)
//
// For every property a_i the miner produces:
//   * v_F(a_i)  — feasible subspace (Section 2.3.1),
//   * β_i       — number of constraints where a_i appears (Section 2.3.2),
//   * α_i       — number of violated constraints where a_i appears (eq. 3),
//   * the lists of constraints monotonically increasing/decreasing in a_i
//     (designer model, Section 3.1.1), and
//   * repair direction votes: for the currently-violated monotonic
//     constraints, which direction of value change is likely to fix most
//     violations (target property selection function f_a).
#pragma once

#include <vector>

#include "constraint/propagate.hpp"

namespace adpm::constraint {

/// Per-property heuristic guidance record.
struct PropertyGuidance {
  PropertyId id{};
  /// Feasible subspace v_F(a_i).
  interval::Domain feasible;
  /// |v_F| / |E_i| in [0,1]; the smallest-feasible-subspace heuristic ranks
  /// ascending on this (raw sizes are unit-dependent, as the paper notes).
  double relativeFeasibleSize = 1.0;
  /// β_i: number of constraints where a_i appears.
  int beta = 0;
  /// α_i: number of violated constraints where a_i appears.
  int alpha = 0;
  /// Constraints that moving a_i up / down helps satisfy (monotone lists).
  std::vector<ConstraintId> increasing;
  std::vector<ConstraintId> decreasing;
  /// Among currently-violated constraints involving a_i: how many an
  /// increase (resp. decrease) of a_i would move toward satisfaction.
  int repairVotesUp = 0;
  int repairVotesDown = 0;

  /// Net preferred repair direction: +1 up, -1 down, 0 no signal/tie.
  int preferredRepairDirection() const noexcept {
    if (repairVotesUp > repairVotesDown) return 1;
    if (repairVotesDown > repairVotesUp) return -1;
    return 0;
  }
};

/// Guidance for all properties plus bookkeeping.
struct GuidanceReport {
  /// Indexed by PropertyId::value.
  std::vector<PropertyGuidance> properties;
  std::vector<ConstraintId> violated;
  /// Extra evaluations spent on what-if (relaxed) propagation for bound
  /// properties involved in violations.
  std::size_t extraEvaluations = 0;

  const PropertyGuidance& of(PropertyId p) const { return properties.at(p.value); }
};

/// The direction of property movement that helps satisfy a constraint, given
/// the current violation side: +1 increase helps, -1 decrease helps, 0 no
/// verdict.
///
/// Derived-direction precedence (intended semantics, also what the fast
/// engine reproduces): a *proven* sign (Increasing/Decreasing) wins; a
/// proven Constant — derivative identically zero over the box, so moving p
/// provably cannot help — yields 0 with **no** fallback; only an *unproven*
/// sign (Unknown) falls back to the DDDL-declared direction.  Earlier code
/// conflated Constant with Unknown and let declared directions override a
/// proof of ineffectiveness.
///
/// This is the tree-walking reference implementation (one `evaluate` plus
/// one `monotonicity` walk per call); the miner's fast engine computes the
/// same answer from one compiled AD sweep per constraint.
int helpDirection(Network& net, Constraint& c, PropertyId p,
                  const std::vector<interval::Interval>& box);

/// Which machinery the miner uses to derive help directions.  Both engines
/// produce bit-identical GuidanceReports and charge identical evaluation
/// counts; the reference engine is retained purely as the baseline for the
/// differential tests (keeping the optimized path provably equivalent to
/// the naive one, after Mieścicki et al.'s verification methodology).
enum class MinerEngine : std::uint8_t {
  /// One fused value+derivative sweep per constraint per mine
  /// (`CompiledExpr::derivatives`), cached across mines on the network's box
  /// generation counter: Θ(nc) expression sweeps per mine, Θ(0) when the box
  /// is unchanged.
  Fast,
  /// One `evaluate` plus one symbolic `monotonicity` tree walk per
  /// (property, constraint) incidence: Θ(Σβᵢ) sweeps per mine.
  Reference,
};

class HeuristicMiner {
 public:
  struct Options {
    /// Compute what-if feasible subspaces (relaxed re-propagation) for bound
    /// properties involved in violations — the "Consistent values" ranges a
    /// designer uses when rebinding.  Costs extra evaluations, which is part
    /// of ADPM's computational-penalty story.
    bool whatIfForViolated = true;
    Propagator::Options propagation;
    MinerEngine engine = MinerEngine::Fast;
  };

  HeuristicMiner() = default;
  explicit HeuristicMiner(Options options)
      : options_(options), propagator_(options.propagation) {}

  /// Consolidates one propagation result into per-property guidance.
  GuidanceReport mine(Network& net, const PropagationResult& prop) const;

 private:
  Options options_;
  /// What-if propagator, held (not rebuilt per mine) so its scratch arena
  /// survives across mines.
  Propagator propagator_;
};

}  // namespace adpm::constraint
