#include "constraint/constraint.hpp"

#include <algorithm>
#include <cmath>

#include "expr/simplify.hpp"
#include "util/error.hpp"

namespace adpm::constraint {

const char* relationSymbol(Relation r) noexcept {
  switch (r) {
    case Relation::Le: return "<=";
    case Relation::Ge: return ">=";
    case Relation::Eq: return "==";
  }
  return "?";
}

const char* statusName(Status s) noexcept {
  switch (s) {
    case Status::Satisfied: return "Satisfied";
    case Status::Violated: return "Violated";
    case Status::Consistent: return "Consistent";
  }
  return "?";
}

Constraint::Constraint(ConstraintId id, std::string name, expr::Expr lhs,
                       Relation rel, expr::Expr rhs)
    : id_(id),
      name_(std::move(name)),
      lhs_(std::move(lhs)),
      rel_(rel),
      rhs_(std::move(rhs)) {
  if (!lhs_.valid() || !rhs_.valid()) {
    throw adpm::InvalidArgumentError("Constraint '" + name_ +
                                     "': invalid expression");
  }
  // Simplifying the residual shrinks the compiled node count: every folded
  // node is a projection saved in each of the many HC4 revises to come.
  residual_ = expr::simplify(lhs_ - rhs_);
  compiled_ = std::make_unique<expr::CompiledExpr>(residual_);
  args_.reserve(compiled_->variables().size());
  for (expr::VarId v : compiled_->variables()) {
    args_.push_back(PropertyId{v});
  }
}

interval::Interval Constraint::target() const noexcept {
  switch (rel_) {
    case Relation::Le: return interval::Interval::nonPositive();
    case Relation::Ge: return interval::Interval::nonNegative();
    case Relation::Eq: return interval::Interval(0.0);
  }
  return interval::Interval::emptySet();
}

bool Constraint::involves(PropertyId p) const noexcept {
  return std::find(args_.begin(), args_.end(), p) != args_.end();
}

void Constraint::declareHelpDirection(PropertyId p, bool increaseHelps) {
  if (!involves(p)) {
    throw adpm::InvalidArgumentError(
        "Constraint '" + name_ +
        "': monotonicity declared for a property that is not an argument");
  }
  declaredHelp_[p] = increaseHelps ? 1 : -1;
}

int Constraint::declaredHelpDirection(PropertyId p) const noexcept {
  const auto it = declaredHelp_.find(p);
  return it == declaredHelp_.end() ? 0 : it->second;
}

std::string Constraint::str() const {
  return lhs_.str() + " " + relationSymbol(rel_) + " " + rhs_.str();
}

Status classify(const interval::Interval& residual,
                const interval::Interval& target) noexcept {
  if (!residual.intersects(target)) return Status::Violated;
  if (target.contains(residual)) return Status::Satisfied;
  return Status::Consistent;
}

interval::Interval tolerancedTarget(const interval::Interval& target,
                                    const interval::Interval& residual,
                                    double tol) noexcept {
  double scale = 1.0;
  if (!residual.empty()) {
    const double lo = std::abs(residual.lo());
    const double hi = std::abs(residual.hi());
    const double mag = std::max(lo, hi);
    if (std::isfinite(mag)) scale = std::max(scale, mag);
  }
  return target.inflate(0.0, tol * scale);
}

}  // namespace adpm::constraint
