// Design properties.
//
// "A design property a_i is a variable that can take one or more values from
// a range E_i.  A property to which a single value has been assigned is said
// to be bound; otherwise it is unbound with an implicit value of a_i ≡ E_i."
// (paper, Section 2.1)
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "constraint/ids.hpp"
#include "interval/domain.hpp"

namespace adpm::constraint {

/// One design variable: identity, its initial range E_i, and its binding.
struct Property {
  PropertyId id;
  std::string name;
  /// Owning design object (subsystem); used for spin detection — a violation
  /// whose arguments span objects owned by different designers is a
  /// cross-subsystem conflict.
  std::string object;
  /// Abstraction levels the property belongs to (display metadata shown in
  /// Minerva III's object browser, e.g. "Transistor, Geometry").
  std::vector<std::string> abstractionLevels;
  /// Measurement unit, display-only ("um", "mW", "dB", ...).
  std::string unit;

  /// The initial range E_i.
  interval::Domain initial;
  /// Designer economy preference: -1 = smaller values preferred (e.g. power,
  /// area), +1 = larger preferred (e.g. yield margin), 0 = none.  The
  /// walkthrough's designer sizes the pair at "the smallest potentially
  /// feasible value ... [to] reduce power consumption" — this is that bias.
  int preference = 0;
  /// Bound value, if any.
  std::optional<double> value;

  bool bound() const noexcept { return value.has_value(); }

  /// The property's current extent: the point [v, v] when bound, else E_i's
  /// hull.  This is the box constraint evaluation runs over.
  interval::Interval currentHull() const noexcept {
    if (value) return interval::Interval(*value);
    return initial.hull();
  }
};

}  // namespace adpm::constraint
