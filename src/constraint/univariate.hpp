// Set-valued single-variable solving.
//
// HC4 over plain intervals can only report the *hull* of the values a
// property may take under a constraint.  For disjunctive constraints — an
// |x - target| <= tol window, an even power, an abs() — the true answer is a
// union of lobes.  solveUnivariate recovers it by branch-and-prune: split
// the variable's range, revise the single constraint on each slice, keep
// the feasible (narrowed) slices, and merge.  Used for analysis and display
// (the browser's REQUIRED WINDOWS pane); the propagation fixpoint itself
// stays hull-based.
#pragma once

#include "constraint/network.hpp"
#include "interval/interval_set.hpp"

namespace adpm::constraint {

struct UnivariateOptions {
  /// Number of initial slices of the variable's range.
  int slices = 64;
  /// Subdivision depth per slice when a slice is only partially feasible.
  int refinements = 16;
};

/// The set of values of `arg` compatible with constraint `c`, holding every
/// other property at its current extent (bound value or full range).  The
/// result is a subset of arg's current hull and a superset of the true
/// solution set intersected with it (outer enclosure per lobe).
/// Not charged to the network's evaluation counter — callers decide whether
/// the computation counts as tool runs.
interval::IntervalSet solveUnivariate(Network& net, ConstraintId c,
                                      PropertyId arg,
                                      const UnivariateOptions& options = {});

}  // namespace adpm::constraint
