// The constraint network C_n: all properties and constraints of the current
// design state, with binding operations and status evaluation.
//
// This module is the equivalent of the paper's CCM constraint-management
// infrastructure (Carballo & Director, DAC'99): constraints are generated
// into the network as the design process runs, and the Design Constraint
// Manager evaluates/propagates them.  Every status evaluation and every
// HC4 revise increments the network's evaluation counter — the paper's
// "number of constraint evaluations" cost metric (a proxy for verification
// tool runs).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "constraint/constraint.hpp"
#include "constraint/property.hpp"

namespace adpm::constraint {

/// Everything needed to register a property.
struct PropertySpec {
  std::string name;
  std::string object;
  interval::Domain initial;
  std::string unit;
  std::vector<std::string> abstractionLevels;
  /// -1 prefer small, +1 prefer large, 0 no preference.
  int preference = 0;
};

class Network {
 public:
  Network() = default;

  // Non-copyable (constraints hold compiled scratch); movable.
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;
  Network(Network&&) = default;
  Network& operator=(Network&&) = default;

  // -- construction ----------------------------------------------------------

  PropertyId addProperty(PropertySpec spec);

  /// Adds lhs REL rhs.  All variables in the expressions must be ids of
  /// already-registered properties.  An inactive constraint is registered
  /// (stable id, adjacency) but invisible to evaluation and propagation
  /// until activated — the paper's DPM "generates any necessary constraints"
  /// as the process unfolds, which is modelled as activation.
  ConstraintId addConstraint(std::string name, expr::Expr lhs, Relation rel,
                             expr::Expr rhs, bool active = true);

  bool isActive(ConstraintId c) const;
  void activate(ConstraintId c);
  /// Number of currently active constraints (what the Fig. 8 statistics
  /// window displays as "number of constraints").
  std::size_t activeConstraintCount() const noexcept;

  /// Expression variable for a property (names the variable after it).
  expr::Expr var(PropertyId p) const;

  // -- lookup ----------------------------------------------------------------

  std::size_t propertyCount() const noexcept { return properties_.size(); }
  std::size_t constraintCount() const noexcept { return constraints_.size(); }

  const Property& property(PropertyId p) const;
  Property& property(PropertyId p);
  const Constraint& constraint(ConstraintId c) const;
  Constraint& constraint(ConstraintId c);

  std::optional<PropertyId> findProperty(std::string_view name) const noexcept;
  std::optional<ConstraintId> findConstraint(std::string_view name) const noexcept;

  /// Constraints mentioning property p (the basis of β_i).
  const std::vector<ConstraintId>& constraintsOf(PropertyId p) const;

  std::vector<PropertyId> propertyIds() const;
  std::vector<ConstraintId> constraintIds() const;

  // -- binding ---------------------------------------------------------------

  /// Binds p to value v (v need not lie in E_i; designers can and do pick
  /// out-of-range values in conventional mode, which is how conflicts arise).
  void bind(PropertyId p, double v);
  void unbind(PropertyId p);

  /// The evaluation box: bound properties appear as points, unbound ones as
  /// their full range hull.
  std::vector<interval::Interval> currentBox() const;

  // -- evaluation ------------------------------------------------------------

  /// Forward-evaluates one constraint over the current box; counts one
  /// evaluation.  This is the conventional flow's primitive (a verification
  /// tool run).
  Status evaluate(ConstraintId c);

  /// Evaluates a set of constraints; returns their statuses in order.
  std::vector<Status> evaluate(const std::vector<ConstraintId>& ids);

  /// Total evaluations since construction or the last reset.
  std::size_t evaluationCount() const noexcept { return evaluations_; }
  void resetEvaluationCount() noexcept { evaluations_ = 0; }
  /// Used by the propagation engine to charge its revises to this network.
  void chargeEvaluations(std::size_t n) noexcept { evaluations_ += n; }

  /// Box generation: bumped by every mutation routed through this API that
  /// can change `currentBox()` or the active set (add/bind/unbind/activate).
  /// The miner keys its per-constraint residual/monotonicity caches on this,
  /// so repeated mines over an unchanged box (what-if reporting, repeated
  /// browser refreshes) skip recomputation.  Mutating a Property obtained
  /// from the non-const `property()` accessor bypasses the counter — bind
  /// through the network, as all in-tree code does.
  std::uint64_t generation() const noexcept { return generation_; }

 private:
  std::vector<Property> properties_;
  std::vector<std::unique_ptr<Constraint>> constraints_;
  std::vector<bool> active_;
  std::vector<std::vector<ConstraintId>> byProperty_;
  std::size_t evaluations_ = 0;
  std::uint64_t generation_ = 0;
};

}  // namespace adpm::constraint
