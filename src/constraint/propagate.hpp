// Constraint propagation: the Design Constraint Manager's core algorithm.
//
// "The DCM runs a constraint propagation algorithm to compute infeasible
// property values and the status of all constraints." (paper, Section 2.2)
//
// The algorithm is an AC-3-style fixpoint over HC4-revise: constraints are
// revised against the current box (bound properties pinned to their values,
// unbound ones spanning their range E_i); every revise that narrows a
// property's interval requeues the constraints sharing that property.  Every
// revise is charged to the network's evaluation counter — this is exactly
// the "extra tool runs" cost the paper attributes to ADPM.
#pragma once

#include <cstdint>
#include <vector>

#ifdef ADPM_DEBUG_CHECKS
#include <atomic>
#include <thread>
#endif

#include "constraint/network.hpp"
#include "interval/domain.hpp"

namespace adpm::constraint {

/// Output of one propagation run.
struct PropagationResult {
  /// Narrowed hull per property (indexed by PropertyId::value).  For bound
  /// properties this is their point value.
  std::vector<interval::Interval> hulls;
  /// Feasible subspace v_F(a_i) per property: the initial domain filtered to
  /// the narrowed hull.
  std::vector<interval::Domain> feasible;
  /// Status per constraint (indexed by ConstraintId::value).
  std::vector<Status> status;
  /// Constraints found violated, ascending by id.
  std::vector<ConstraintId> violated;
  /// Revises performed by this run (also charged to the network counter).
  std::size_t evaluations = 0;
  /// Number of fixpoint sweeps that performed at least one revise.
  std::size_t passes = 0;

  bool anyViolation() const noexcept { return !violated.empty(); }
  bool isViolated(ConstraintId c) const {
    return status.at(c.value) == Status::Violated;
  }
};

class Propagator {
 public:
  struct Options {
    /// Iterate to fixpoint (AC-3) when true; single sweep when false.  The
    /// single-sweep mode exists for the ablation benchmarks.
    bool fixpoint = true;
    /// Hard cap: at most maxRevisesPerConstraint * |C| revises per run, to
    /// bound slowly-converging nonlinear networks.
    std::size_t maxRevisesPerConstraint = 40;
    /// A bound movement below tol*(1+|bound|) does not requeue neighbours.
    double tolerance = 1e-9;
    /// After the interval fixpoint, shave discrete domains value-by-value:
    /// each remaining value of an unbound discrete property is tested
    /// against every active constraint touching it (one evaluation each),
    /// and unsupported values are dropped from the feasible set.  Hull
    /// consistency alone cannot remove interior values of a discrete set.
    bool filterDiscrete = true;
    /// Run the pre-optimization implementation (fresh allocations per
    /// revise, per-candidate box copies in discrete shaving) instead of the
    /// zero-allocation path.  Results are identical; the naive path is
    /// retained solely as the baseline the differential tests compare the
    /// optimized hot path against.
    bool referenceMode = false;
  };

  Propagator() = default;
  explicit Propagator(Options options) : options_(options) {}

  const Options& options() const noexcept { return options_; }

  /// Runs propagation over the network's current box.  Does not modify any
  /// property binding; evaluation cost is charged to the network.
  PropagationResult run(Network& net) const;

  /// "What-if" feasible subspace: the values property `p` could be rebound
  /// to, given everything else in the current state.  Computed by relaxing p
  /// to its initial range and re-propagating.  The evaluations consumed are
  /// charged to the network and reported in the result.
  PropagationResult runRelaxed(Network& net, PropertyId p) const;

 private:
  PropagationResult runOnBox(Network& net,
                             std::vector<interval::Interval> box) const;
  PropagationResult runOnBoxFast(Network& net,
                                 std::vector<interval::Interval> box) const;
  PropagationResult runOnBoxReference(
      Network& net, std::vector<interval::Interval> box) const;

  Options options_;

  /// Scratch arena reused across runs so the steady-state hot path performs
  /// no heap allocation: the per-revise `before` snapshot, the AC-3 FIFO
  /// and its membership bitmap, and the discrete-shaving probe box.  All
  /// buffers keep their capacity between runs.  Mutable because the public
  /// entry points are const (they do not change *observable* propagator
  /// state); consequently a Propagator instance is not safe for concurrent
  /// use — every engine/thread owns its own, as the parallel seed sweep
  /// already guarantees.
  struct Scratch {
    std::vector<interval::Interval> before;
    /// FIFO as vector + head cursor (std::deque churns block allocations).
    std::vector<ConstraintId> queue;
    std::size_t queueHead = 0;
    /// Queued-set membership; std::uint8_t, not vector<bool>, so tests and
    /// clears are single byte ops without bit masking.
    std::vector<std::uint8_t> queued;
    std::vector<interval::Interval> probe;
  };
  mutable Scratch scratch_;

#ifdef ADPM_DEBUG_CHECKS
  /// Debug builds enforce the "one engine, one propagator" contract above:
  /// the thread entering a run claims the scratch arena and releases it on
  /// exit, so *concurrent* use from two threads aborts loudly instead of
  /// silently corrupting the shared buffers.  Sequential use from different
  /// threads (a session strand hopping pool threads) remains legal.  The
  /// guard is identity, not state — copies start unclaimed.
  struct ScratchOwner {
    std::atomic<std::thread::id> id{};
    ScratchOwner() = default;
    ScratchOwner(const ScratchOwner&) noexcept {}
    ScratchOwner& operator=(const ScratchOwner&) noexcept { return *this; }
  };
  mutable ScratchOwner scratchOwner_;
#endif
};

}  // namespace adpm::constraint
