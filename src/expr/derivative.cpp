#include "expr/derivative.hpp"

#include "expr/sweep.hpp"
#include "util/error.hpp"

namespace adpm::expr {

using interval::Interval;

const char* directionName(Direction d) noexcept {
  switch (d) {
    case Direction::None: return "none";
    case Direction::Constant: return "constant";
    case Direction::Increasing: return "increasing";
    case Direction::Decreasing: return "decreasing";
    case Direction::Unknown: return "unknown";
  }
  return "?";
}

ValueDerivative evalDerivative(const Expr& e, std::span<const Interval> domains,
                               VarId var) {
  const Node& n = e.node();
  switch (n.kind) {
    case OpKind::Const:
      return {Interval(n.value), Interval(0.0)};
    case OpKind::Var:
      if (n.var >= domains.size()) {
        throw adpm::InvalidArgumentError("evalDerivative: variable out of range");
      }
      return {domains[n.var], Interval(n.var == var ? 1.0 : 0.0)};
    case OpKind::Add: {
      const auto a = evalDerivative(n.children[0], domains, var);
      const auto b = evalDerivative(n.children[1], domains, var);
      return {a.value + b.value, a.derivative + b.derivative};
    }
    case OpKind::Sub: {
      const auto a = evalDerivative(n.children[0], domains, var);
      const auto b = evalDerivative(n.children[1], domains, var);
      return {a.value - b.value, a.derivative - b.derivative};
    }
    case OpKind::Mul: {
      const auto a = evalDerivative(n.children[0], domains, var);
      const auto b = evalDerivative(n.children[1], domains, var);
      return {a.value * b.value,
              a.derivative * b.value + a.value * b.derivative};
    }
    case OpKind::Div: {
      const auto a = evalDerivative(n.children[0], domains, var);
      const auto b = evalDerivative(n.children[1], domains, var);
      return {a.value / b.value,
              (a.derivative * b.value - a.value * b.derivative) /
                  interval::sqr(b.value)};
    }
    case OpKind::Neg: {
      const auto a = evalDerivative(n.children[0], domains, var);
      return {-a.value, -a.derivative};
    }
    case OpKind::Sqrt: {
      const auto a = evalDerivative(n.children[0], domains, var);
      const Interval root = interval::sqrt(a.value);
      return {root, a.derivative / (Interval(2.0) * root)};
    }
    case OpKind::Sqr: {
      const auto a = evalDerivative(n.children[0], domains, var);
      return {interval::sqr(a.value),
              Interval(2.0) * a.value * a.derivative};
    }
    case OpKind::Pow: {
      const auto a = evalDerivative(n.children[0], domains, var);
      const int k = n.exponent;
      return {interval::pow(a.value, k),
              Interval(static_cast<double>(k)) * interval::pow(a.value, k - 1) *
                  a.derivative};
    }
    case OpKind::Exp: {
      const auto a = evalDerivative(n.children[0], domains, var);
      const Interval v = interval::exp(a.value);
      return {v, v * a.derivative};
    }
    case OpKind::Log: {
      const auto a = evalDerivative(n.children[0], domains, var);
      return {interval::log(a.value), a.derivative / a.value};
    }
    case OpKind::Abs: {
      const auto a = evalDerivative(n.children[0], domains, var);
      Interval sign;
      if (a.value.lo() > 0.0) {
        sign = Interval(1.0);
      } else if (a.value.hi() < 0.0) {
        sign = Interval(-1.0);
      } else {
        sign = Interval(-1.0, 1.0);  // kink inside the box
      }
      return {interval::abs(a.value), sign * a.derivative};
    }
    case OpKind::Min: {
      const auto a = evalDerivative(n.children[0], domains, var);
      const auto b = evalDerivative(n.children[1], domains, var);
      Interval d;
      if (a.value.hi() <= b.value.lo()) {
        d = a.derivative;  // min is always the left operand
      } else if (b.value.hi() <= a.value.lo()) {
        d = b.derivative;
      } else {
        d = interval::hull(a.derivative, b.derivative);
      }
      return {interval::min(a.value, b.value), d};
    }
    case OpKind::Max: {
      const auto a = evalDerivative(n.children[0], domains, var);
      const auto b = evalDerivative(n.children[1], domains, var);
      Interval d;
      if (a.value.lo() >= b.value.hi()) {
        d = a.derivative;
      } else if (b.value.lo() >= a.value.hi()) {
        d = b.derivative;
      } else {
        d = interval::hull(a.derivative, b.derivative);
      }
      return {interval::max(a.value, b.value), d};
    }
  }
  throw adpm::InvalidArgumentError("evalDerivative: bad node kind");
}

Direction monotonicity(const Expr& e, std::span<const Interval> domains,
                       VarId var) {
  if (!mentions(e, var)) return Direction::None;
  countSweep();  // one recursive value+derivative walk for one variable
  return directionOf(evalDerivative(e, domains, var).derivative);
}

Direction directionOf(const interval::Interval& derivative) noexcept {
  const Interval& d = derivative;
  if (d.empty()) return Direction::Unknown;
  if (d.lo() == 0.0 && d.hi() == 0.0) return Direction::Constant;
  if (d.lo() >= 0.0) return Direction::Increasing;
  if (d.hi() <= 0.0) return Direction::Decreasing;
  return Direction::Unknown;
}

}  // namespace adpm::expr
