// Forward evaluation of expressions over points and interval boxes.
#pragma once

#include <span>

#include "expr/expr.hpp"
#include "interval/interval.hpp"

namespace adpm::expr {

/// Evaluates at a point; `values[v]` supplies variable v.  Variables outside
/// the span of `values` are an error.
double evalPoint(const Expr& e, std::span<const double> values);

/// Evaluates over an interval box; `domains[v]` supplies variable v's range.
/// The result encloses {e(x) : x in box} (interval extension).
interval::Interval evalInterval(const Expr& e,
                                std::span<const interval::Interval> domains);

}  // namespace adpm::expr
