#include "expr/expr.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace adpm::expr {

int arity(OpKind kind) noexcept {
  switch (kind) {
    case OpKind::Const:
    case OpKind::Var:
      return 0;
    case OpKind::Neg:
    case OpKind::Sqrt:
    case OpKind::Sqr:
    case OpKind::Pow:
    case OpKind::Exp:
    case OpKind::Log:
    case OpKind::Abs:
      return 1;
    case OpKind::Add:
    case OpKind::Sub:
    case OpKind::Mul:
    case OpKind::Div:
    case OpKind::Min:
    case OpKind::Max:
      return 2;
  }
  return 0;
}

const char* opName(OpKind kind) noexcept {
  switch (kind) {
    case OpKind::Const: return "const";
    case OpKind::Var: return "var";
    case OpKind::Add: return "add";
    case OpKind::Sub: return "sub";
    case OpKind::Mul: return "mul";
    case OpKind::Div: return "div";
    case OpKind::Neg: return "neg";
    case OpKind::Sqrt: return "sqrt";
    case OpKind::Sqr: return "sqr";
    case OpKind::Pow: return "pow";
    case OpKind::Exp: return "exp";
    case OpKind::Log: return "log";
    case OpKind::Abs: return "abs";
    case OpKind::Min: return "min";
    case OpKind::Max: return "max";
  }
  return "?";
}

const Node& Expr::node() const {
  if (!node_) throw adpm::InvalidArgumentError("use of invalid Expr");
  return *node_;
}

OpKind Expr::kind() const { return node().kind; }

Expr Expr::constant(double value) {
  return make(OpKind::Const, {}, value);
}

Expr Expr::variable(VarId id, std::string name) {
  return make(OpKind::Var, {}, 0.0, id, 1, std::move(name));
}

Expr Expr::make(OpKind kind, std::vector<Expr> children, double value,
                VarId var, int exponent, std::string name) {
  if (static_cast<int>(children.size()) != arity(kind)) {
    throw adpm::InvalidArgumentError(std::string("wrong arity for ") +
                                     opName(kind));
  }
  for (const auto& c : children) {
    if (!c.valid()) throw adpm::InvalidArgumentError("invalid child Expr");
  }
  auto node = std::make_shared<Node>();
  node->kind = kind;
  node->value = value;
  node->var = var;
  node->exponent = exponent;
  node->name = std::move(name);
  node->children = std::move(children);
  Expr e;
  e.node_ = std::move(node);
  return e;
}

bool Expr::sameAs(const Expr& other) const noexcept {
  if (node_ == other.node_) return true;
  if (!node_ || !other.node_) return false;
  const Node& a = *node_;
  const Node& b = *other.node_;
  if (a.kind != b.kind || a.value != b.value || a.var != b.var ||
      a.exponent != b.exponent || a.children.size() != b.children.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.children.size(); ++i) {
    if (!a.children[i].sameAs(b.children[i])) return false;
  }
  return true;
}

namespace {

int precedence(OpKind kind) {
  switch (kind) {
    case OpKind::Add:
    case OpKind::Sub:
      return 1;
    case OpKind::Mul:
    case OpKind::Div:
      return 2;
    case OpKind::Neg:
      return 3;
    default:
      return 4;
  }
}

void render(const Expr& e, std::ostringstream& out, int parentPrec) {
  const Node& n = e.node();
  const int prec = precedence(n.kind);
  switch (n.kind) {
    case OpKind::Const:
      out << n.value;
      return;
    case OpKind::Var:
      if (n.name.empty()) {
        out << "v" << n.var;
      } else {
        out << n.name;
      }
      return;
    case OpKind::Add:
    case OpKind::Sub:
    case OpKind::Mul:
    case OpKind::Div: {
      const char* op = n.kind == OpKind::Add   ? " + "
                       : n.kind == OpKind::Sub ? " - "
                       : n.kind == OpKind::Mul ? " * "
                                               : " / ";
      if (prec < parentPrec) out << "(";
      render(n.children[0], out, prec);
      out << op;
      // Right child needs parens when same precedence and non-commutative.
      render(n.children[1], out, prec + (n.kind == OpKind::Sub || n.kind == OpKind::Div ? 1 : 0));
      if (prec < parentPrec) out << ")";
      return;
    }
    case OpKind::Neg:
      out << "-";
      render(n.children[0], out, prec);
      return;
    case OpKind::Pow:
      render(n.children[0], out, 4);
      out << "^" << n.exponent;
      return;
    case OpKind::Sqrt:
    case OpKind::Sqr:
    case OpKind::Exp:
    case OpKind::Log:
    case OpKind::Abs:
      out << opName(n.kind) << "(";
      render(n.children[0], out, 0);
      out << ")";
      return;
    case OpKind::Min:
    case OpKind::Max:
      out << opName(n.kind) << "(";
      render(n.children[0], out, 0);
      out << ", ";
      render(n.children[1], out, 0);
      out << ")";
      return;
  }
}

}  // namespace

std::string Expr::str() const {
  std::ostringstream out;
  render(*this, out, 0);
  return out.str();
}

Expr operator+(const Expr& a, const Expr& b) { return Expr::make(OpKind::Add, {a, b}); }
Expr operator-(const Expr& a, const Expr& b) { return Expr::make(OpKind::Sub, {a, b}); }
Expr operator*(const Expr& a, const Expr& b) { return Expr::make(OpKind::Mul, {a, b}); }
Expr operator/(const Expr& a, const Expr& b) { return Expr::make(OpKind::Div, {a, b}); }
Expr operator-(const Expr& a) { return Expr::make(OpKind::Neg, {a}); }

Expr operator+(const Expr& a, double b) { return a + Expr::constant(b); }
Expr operator+(double a, const Expr& b) { return Expr::constant(a) + b; }
Expr operator-(const Expr& a, double b) { return a - Expr::constant(b); }
Expr operator-(double a, const Expr& b) { return Expr::constant(a) - b; }
Expr operator*(const Expr& a, double b) { return a * Expr::constant(b); }
Expr operator*(double a, const Expr& b) { return Expr::constant(a) * b; }
Expr operator/(const Expr& a, double b) { return a / Expr::constant(b); }
Expr operator/(double a, const Expr& b) { return Expr::constant(a) / b; }

Expr sqrt(const Expr& a) { return Expr::make(OpKind::Sqrt, {a}); }
Expr sqr(const Expr& a) { return Expr::make(OpKind::Sqr, {a}); }
Expr pow(const Expr& a, int n) {
  return Expr::make(OpKind::Pow, {a}, 0.0, 0, n);
}
Expr exp(const Expr& a) { return Expr::make(OpKind::Exp, {a}); }
Expr log(const Expr& a) { return Expr::make(OpKind::Log, {a}); }
Expr abs(const Expr& a) { return Expr::make(OpKind::Abs, {a}); }
Expr min(const Expr& a, const Expr& b) { return Expr::make(OpKind::Min, {a, b}); }
Expr max(const Expr& a, const Expr& b) { return Expr::make(OpKind::Max, {a, b}); }

namespace {

void collect(const Expr& e, std::vector<VarId>& out) {
  const Node& n = e.node();
  if (n.kind == OpKind::Var) out.push_back(n.var);
  for (const auto& c : n.children) collect(c, out);
}

}  // namespace

std::vector<VarId> variablesOf(const Expr& e) {
  std::vector<VarId> out;
  collect(e, out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool mentions(const Expr& e, VarId v) {
  const Node& n = e.node();
  if (n.kind == OpKind::Var && n.var == v) return true;
  for (const auto& c : n.children) {
    if (mentions(c, v)) return true;
  }
  return false;
}

std::size_t variableSpan(const Expr& e) {
  std::size_t span = 0;
  for (VarId v : variablesOf(e)) {
    span = std::max(span, static_cast<std::size_t>(v) + 1);
  }
  return span;
}

}  // namespace adpm::expr
