// Expression-sweep accounting.
//
// A "sweep" is one pass over an expression — a forward interval evaluation,
// an HC4 revise (forward + backward projection, counted once), a recursive
// monotonicity tree walk, or one fused value+derivative pass of
// CompiledExpr::derivatives.  The counter exists to make the miner's
// Θ(Σβᵢ) → Θ(nc) sweep reduction observable in benchmarks and tests; it is
// *not* the paper's cost metric — that is the network's charged evaluation
// counter (`Network::evaluationCount`), which the optimizations leave
// bit-identical (see docs/ARCHITECTURE.md, "Hot path & evaluation
// accounting").
//
// The counter is thread-local so parallel seed sweeps do not race; read and
// reset it on the thread doing the measured work.
#pragma once

#include <cstdint>

namespace adpm::expr {

namespace detail {
inline thread_local std::uint64_t sweepCounter = 0;
}

/// Records one expression sweep (library-internal; benchmarks only read).
inline void countSweep() noexcept { ++detail::sweepCounter; }

/// Sweeps performed on this thread since the last reset.
inline std::uint64_t sweepCount() noexcept { return detail::sweepCounter; }

inline void resetSweepCount() noexcept { detail::sweepCounter = 0; }

}  // namespace adpm::expr
