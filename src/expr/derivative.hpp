// Interval-valued forward-mode automatic differentiation and monotonicity.
//
// The paper's simulated designer keeps, per property, "a list of constraints
// monotonically increasing in a_i and a list of constraints monotonically
// decreasing in a_i"; DDDL lets scenario authors declare monotonicity
// explicitly.  This module also *derives* monotonicity automatically: the
// sign of the interval enclosure of ∂e/∂x over the current box proves
// monotone behaviour on that box.  Declared directions (from DDDL) can then
// be validated against derived ones in tests.
#pragma once

#include <span>

#include "expr/expr.hpp"
#include "interval/interval.hpp"

namespace adpm::expr {

/// Direction of an expression with respect to one variable over a box.
enum class Direction : std::uint8_t {
  None,        ///< variable does not occur in the expression
  Constant,    ///< derivative is identically zero over the box
  Increasing,  ///< derivative >= 0 over the whole box
  Decreasing,  ///< derivative <= 0 over the whole box
  Unknown,     ///< sign of the derivative changes (or cannot be proven)
};

const char* directionName(Direction d) noexcept;

/// Value and derivative enclosures of an expression over a box.
struct ValueDerivative {
  interval::Interval value;
  interval::Interval derivative;
};

/// Forward-mode AD: enclosures of e and ∂e/∂var over the box `domains`.
ValueDerivative evalDerivative(const Expr& e,
                               std::span<const interval::Interval> domains,
                               VarId var);

/// Proven direction of e with respect to `var` over the box.
Direction monotonicity(const Expr& e,
                       std::span<const interval::Interval> domains, VarId var);

/// Classifies a derivative enclosure into a Direction: identically-zero ⇒
/// Constant, provably signed ⇒ Increasing/Decreasing, else Unknown.  This is
/// `monotonicity`'s classification step, shared with the compiled AD sweep
/// so both paths agree by construction (it cannot distinguish None — callers
/// that need None must check `mentions` themselves, as `monotonicity` does).
Direction directionOf(const interval::Interval& derivative) noexcept;

}  // namespace adpm::expr
