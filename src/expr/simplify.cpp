#include "expr/simplify.hpp"

#include <cmath>
#include <vector>

namespace adpm::expr {

namespace {

bool isConst(const Expr& e, double value) {
  return e.kind() == OpKind::Const && e.node().value == value;
}

bool isConst(const Expr& e) { return e.kind() == OpKind::Const; }

double constOf(const Expr& e) { return e.node().value; }

/// Folds an operator over constant children; children.size() matches arity.
Expr fold(OpKind kind, int exponent, const std::vector<Expr>& children) {
  auto c = [&](std::size_t i) { return constOf(children[i]); };
  switch (kind) {
    case OpKind::Add: return Expr::constant(c(0) + c(1));
    case OpKind::Sub: return Expr::constant(c(0) - c(1));
    case OpKind::Mul: return Expr::constant(c(0) * c(1));
    case OpKind::Div: return Expr::constant(c(0) / c(1));
    case OpKind::Neg: return Expr::constant(-c(0));
    case OpKind::Sqrt: return Expr::constant(std::sqrt(c(0)));
    case OpKind::Sqr: return Expr::constant(c(0) * c(0));
    case OpKind::Pow: return Expr::constant(std::pow(c(0), exponent));
    case OpKind::Exp: return Expr::constant(std::exp(c(0)));
    case OpKind::Log: return Expr::constant(std::log(c(0)));
    case OpKind::Abs: return Expr::constant(std::fabs(c(0)));
    case OpKind::Min: return Expr::constant(std::min(c(0), c(1)));
    case OpKind::Max: return Expr::constant(std::max(c(0), c(1)));
    case OpKind::Const:
    case OpKind::Var:
      break;
  }
  return children.empty() ? Expr::constant(0.0) : children[0];
}

}  // namespace

Expr simplify(const Expr& e) {
  const Node& n = e.node();
  if (n.kind == OpKind::Const || n.kind == OpKind::Var) return e;

  // Simplify children first.
  std::vector<Expr> children;
  children.reserve(n.children.size());
  bool childChanged = false;
  for (const Expr& child : n.children) {
    Expr s = simplify(child);
    childChanged = childChanged || !s.sameAs(child);
    children.push_back(std::move(s));
  }

  // Full constant folding (guard: folding must produce a finite value, so
  // e.g. 1/0 or log(-1) stay symbolic and keep their interval semantics).
  bool allConst = true;
  for (const Expr& child : children) allConst = allConst && isConst(child);
  if (allConst) {
    const Expr folded = fold(n.kind, n.exponent, children);
    if (std::isfinite(constOf(folded))) return folded;
  }

  // Identity rules.
  switch (n.kind) {
    case OpKind::Add:
      if (isConst(children[0], 0.0)) return children[1];
      if (isConst(children[1], 0.0)) return children[0];
      break;
    case OpKind::Sub:
      if (isConst(children[1], 0.0)) return children[0];
      if (isConst(children[0], 0.0)) {
        return simplify(Expr::make(OpKind::Neg, {children[1]}));
      }
      break;
    case OpKind::Mul:
      if (isConst(children[0], 1.0)) return children[1];
      if (isConst(children[1], 1.0)) return children[0];
      if (isConst(children[0], 0.0) || isConst(children[1], 0.0)) {
        return Expr::constant(0.0);
      }
      break;
    case OpKind::Div:
      if (isConst(children[1], 1.0)) return children[0];
      // 0/x folds only when x is a constant != 0 (handled by allConst above)
      // — a symbolic denominator might contain 0, where 0/x is not {0}.
      break;
    case OpKind::Neg:
      if (children[0].kind() == OpKind::Neg) {
        return children[0].node().children[0];
      }
      break;
    case OpKind::Pow:
      if (n.exponent == 0) return Expr::constant(1.0);
      if (n.exponent == 1) return children[0];
      if (n.exponent == 2) {
        return Expr::make(OpKind::Sqr, {children[0]});
      }
      break;
    default:
      break;
  }

  if (!childChanged) return e;
  return Expr::make(n.kind, std::move(children), n.value, n.var, n.exponent,
                    n.name);
}

}  // namespace adpm::expr
