// Constraint expression trees.
//
// A design constraint in the paper is a relation c_i(a_i) over properties,
// e.g. P_f + P_s <= P_M for a receiver power budget, or the non-linear gain
// and resonator-frequency relations of the MEMS receiver case.  Expressions
// here are immutable shared trees over variable indices; the constraint
// module maps variables to properties.
//
// Expr values are cheap to copy (shared_ptr to an immutable node) and are
// composed with ordinary C++ operators plus the named functions below:
//
//   Expr w = Expr::variable(0, "Diff-pair-W");
//   Expr gain = Expr::constant(2.0) * sqrt(w) - Expr::constant(1.0) / w;
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace adpm::expr {

/// Index of a variable in the owning constraint network's property table.
using VarId = std::uint32_t;

enum class OpKind : std::uint8_t {
  Const,
  Var,
  Add,
  Sub,
  Mul,
  Div,
  Neg,
  Sqrt,
  Sqr,
  Pow,  // integer exponent
  Exp,
  Log,
  Abs,
  Min,
  Max,
};

/// Number of children an operator takes (0, 1 or 2).
int arity(OpKind kind) noexcept;

/// Printable operator name ("add", "sqrt", ...).
const char* opName(OpKind kind) noexcept;

struct Node;

/// Immutable expression handle.  A default-constructed Expr is invalid and
/// must not be evaluated; `valid()` tests for this.
class Expr {
 public:
  Expr() noexcept = default;

  static Expr constant(double value);
  static Expr variable(VarId id, std::string name = {});

  bool valid() const noexcept { return node_ != nullptr; }
  const Node& node() const;

  OpKind kind() const;

  /// Renders with variable names where present ("(x + 2) * y").
  std::string str() const;

  /// Structural equality (same shape, same constants/vars).
  bool sameAs(const Expr& other) const noexcept;

  // Internal factory used by the operator overloads below.
  static Expr make(OpKind kind, std::vector<Expr> children, double value = 0.0,
                   VarId var = 0, int exponent = 1, std::string name = {});

 private:
  std::shared_ptr<const Node> node_;
};

/// Expression tree node.  Nodes are immutable after construction.
struct Node {
  OpKind kind = OpKind::Const;
  double value = 0.0;     // Const payload
  VarId var = 0;          // Var payload
  int exponent = 1;       // Pow payload
  std::string name;       // Var display name (may be empty)
  std::vector<Expr> children;
};

// -- composition -------------------------------------------------------------

Expr operator+(const Expr& a, const Expr& b);
Expr operator-(const Expr& a, const Expr& b);
Expr operator*(const Expr& a, const Expr& b);
Expr operator/(const Expr& a, const Expr& b);
Expr operator-(const Expr& a);

Expr operator+(const Expr& a, double b);
Expr operator+(double a, const Expr& b);
Expr operator-(const Expr& a, double b);
Expr operator-(double a, const Expr& b);
Expr operator*(const Expr& a, double b);
Expr operator*(double a, const Expr& b);
Expr operator/(const Expr& a, double b);
Expr operator/(double a, const Expr& b);

Expr sqrt(const Expr& a);
Expr sqr(const Expr& a);
Expr pow(const Expr& a, int n);
Expr exp(const Expr& a);
Expr log(const Expr& a);
Expr abs(const Expr& a);
Expr min(const Expr& a, const Expr& b);
Expr max(const Expr& a, const Expr& b);

/// Appends all variable ids occurring in `e` (deduplicated, ascending).
std::vector<VarId> variablesOf(const Expr& e);

/// True if variable `v` occurs anywhere in `e`.
bool mentions(const Expr& e, VarId v);

/// Largest variable id occurring in `e` plus one (0 for constant exprs);
/// callers size their domain vectors with this.
std::size_t variableSpan(const Expr& e);

}  // namespace adpm::expr
