#include "expr/eval.hpp"

#include <cmath>

#include "util/error.hpp"

namespace adpm::expr {

using interval::Interval;

double evalPoint(const Expr& e, std::span<const double> values) {
  const Node& n = e.node();
  switch (n.kind) {
    case OpKind::Const:
      return n.value;
    case OpKind::Var:
      if (n.var >= values.size()) {
        throw adpm::InvalidArgumentError("evalPoint: variable out of range");
      }
      return values[n.var];
    case OpKind::Add:
      return evalPoint(n.children[0], values) + evalPoint(n.children[1], values);
    case OpKind::Sub:
      return evalPoint(n.children[0], values) - evalPoint(n.children[1], values);
    case OpKind::Mul:
      return evalPoint(n.children[0], values) * evalPoint(n.children[1], values);
    case OpKind::Div:
      return evalPoint(n.children[0], values) / evalPoint(n.children[1], values);
    case OpKind::Neg:
      return -evalPoint(n.children[0], values);
    case OpKind::Sqrt:
      return std::sqrt(evalPoint(n.children[0], values));
    case OpKind::Sqr: {
      const double x = evalPoint(n.children[0], values);
      return x * x;
    }
    case OpKind::Pow:
      return std::pow(evalPoint(n.children[0], values), n.exponent);
    case OpKind::Exp:
      return std::exp(evalPoint(n.children[0], values));
    case OpKind::Log:
      return std::log(evalPoint(n.children[0], values));
    case OpKind::Abs:
      return std::fabs(evalPoint(n.children[0], values));
    case OpKind::Min:
      return std::min(evalPoint(n.children[0], values),
                      evalPoint(n.children[1], values));
    case OpKind::Max:
      return std::max(evalPoint(n.children[0], values),
                      evalPoint(n.children[1], values));
  }
  throw adpm::InvalidArgumentError("evalPoint: bad node kind");
}

Interval evalInterval(const Expr& e, std::span<const Interval> domains) {
  const Node& n = e.node();
  switch (n.kind) {
    case OpKind::Const:
      return Interval(n.value);
    case OpKind::Var:
      if (n.var >= domains.size()) {
        throw adpm::InvalidArgumentError("evalInterval: variable out of range");
      }
      return domains[n.var];
    case OpKind::Add:
      return evalInterval(n.children[0], domains) +
             evalInterval(n.children[1], domains);
    case OpKind::Sub:
      return evalInterval(n.children[0], domains) -
             evalInterval(n.children[1], domains);
    case OpKind::Mul:
      return evalInterval(n.children[0], domains) *
             evalInterval(n.children[1], domains);
    case OpKind::Div:
      return evalInterval(n.children[0], domains) /
             evalInterval(n.children[1], domains);
    case OpKind::Neg:
      return -evalInterval(n.children[0], domains);
    case OpKind::Sqrt:
      return interval::sqrt(evalInterval(n.children[0], domains));
    case OpKind::Sqr:
      return interval::sqr(evalInterval(n.children[0], domains));
    case OpKind::Pow:
      return interval::pow(evalInterval(n.children[0], domains), n.exponent);
    case OpKind::Exp:
      return interval::exp(evalInterval(n.children[0], domains));
    case OpKind::Log:
      return interval::log(evalInterval(n.children[0], domains));
    case OpKind::Abs:
      return interval::abs(evalInterval(n.children[0], domains));
    case OpKind::Min:
      return interval::min(evalInterval(n.children[0], domains),
                           evalInterval(n.children[1], domains));
    case OpKind::Max:
      return interval::max(evalInterval(n.children[0], domains),
                           evalInterval(n.children[1], domains));
  }
  throw adpm::InvalidArgumentError("evalInterval: bad node kind");
}

}  // namespace adpm::expr
