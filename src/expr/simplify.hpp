// Algebraic simplification of expression trees.
//
// Scenario builders and the DDDL parser compose expressions mechanically
// (e.g. `0.15 * gain + 0.1 * bw + 0.0`), and generated scenarios multiply by
// literal coefficients that may be 1 or 0.  Simplifying before compilation
// shrinks the HC4 node count — every removed node is a removed projection in
// every revise — without changing semantics.
//
// Rules applied (bottom-up, to a fixpoint locally):
//   * constant folding of any operator over constant children,
//   * x+0, 0+x, x-0, x*1, 1*x, x/1  ->  x
//   * x*0, 0*x, 0/x                 ->  0      (note: sound for the interval
//     semantics used here only because 0 * [a,b] = {0} under mulBound; the
//     expression 0/x is folded to 0 only when x cannot contain 0 — otherwise
//     it is preserved)
//   * 0-x  ->  -x;  -(-x) -> x
//   * x^0 -> 1, x^1 -> x, x^2 -> sqr(x)
//   * sqr(const), sqrt(const), ... fold like other constants
//
// Simplification preserves point semantics exactly and interval semantics up
// to (possible) tightening: a simplified expression never evaluates to a
// *wider* interval than the original.
#pragma once

#include "expr/expr.hpp"

namespace adpm::expr {

/// Returns a semantically equivalent, structurally simplified expression.
Expr simplify(const Expr& e);

}  // namespace adpm::expr
