#include "expr/compiled.hpp"

#include <algorithm>

#include "expr/sweep.hpp"
#include "util/error.hpp"

namespace adpm::expr {

using interval::Interval;

CompiledExpr::CompiledExpr(const Expr& e) {
  if (!e.valid()) throw adpm::InvalidArgumentError("CompiledExpr: invalid Expr");
  compile(e);
  vars_ = variablesOf(e);
  span_ = 0;
  for (VarId v : vars_) span_ = std::max(span_, static_cast<std::size_t>(v) + 1);
  fwd_.resize(nodes_.size());
  bwd_.resize(nodes_.size());
}

int CompiledExpr::compile(const Expr& e) {
  const Node& n = e.node();
  int c0 = -1;
  int c1 = -1;
  if (!n.children.empty()) c0 = compile(n.children[0]);
  if (n.children.size() > 1) c1 = compile(n.children[1]);
  nodes_.push_back({n.kind, n.value, n.var, n.exponent, c0, c1});
  return static_cast<int>(nodes_.size()) - 1;
}

void CompiledExpr::forwardSweep(std::span<const Interval> domains) {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const CNode& n = nodes_[i];
    const auto x = [&]() -> const Interval& { return fwd_[static_cast<std::size_t>(n.child0)]; };
    const auto y = [&]() -> const Interval& { return fwd_[static_cast<std::size_t>(n.child1)]; };
    switch (n.kind) {
      case OpKind::Const: fwd_[i] = Interval(n.value); break;
      case OpKind::Var:
        if (n.var >= domains.size()) {
          throw adpm::InvalidArgumentError("CompiledExpr: variable out of range");
        }
        fwd_[i] = domains[n.var];
        break;
      case OpKind::Add: fwd_[i] = x() + y(); break;
      case OpKind::Sub: fwd_[i] = x() - y(); break;
      case OpKind::Mul: fwd_[i] = x() * y(); break;
      case OpKind::Div: fwd_[i] = x() / y(); break;
      case OpKind::Neg: fwd_[i] = -x(); break;
      case OpKind::Sqrt: fwd_[i] = interval::sqrt(x()); break;
      case OpKind::Sqr: fwd_[i] = interval::sqr(x()); break;
      case OpKind::Pow: fwd_[i] = interval::pow(x(), n.exponent); break;
      case OpKind::Exp: fwd_[i] = interval::exp(x()); break;
      case OpKind::Log: fwd_[i] = interval::log(x()); break;
      case OpKind::Abs: fwd_[i] = interval::abs(x()); break;
      case OpKind::Min: fwd_[i] = interval::min(x(), y()); break;
      case OpKind::Max: fwd_[i] = interval::max(x(), y()); break;
    }
  }
}

Interval CompiledExpr::evaluate(std::span<const Interval> domains) {
  countSweep();
  forwardSweep(domains);
  return fwd_.back();
}

DerivativeSweep CompiledExpr::derivatives(std::span<const Interval> domains) {
  countSweep();
  forwardSweep(domains);

  const std::size_t nv = vars_.size();
  tan_.resize(nodes_.size() * nv);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const CNode& n = nodes_[i];
    Interval* d = tan_.data() + i * nv;
    const Interval* dx =
        n.child0 >= 0 ? tan_.data() + static_cast<std::size_t>(n.child0) * nv
                      : nullptr;
    const Interval* dy =
        n.child1 >= 0 ? tan_.data() + static_cast<std::size_t>(n.child1) * nv
                      : nullptr;
    const auto x = [&]() -> const Interval& {
      return fwd_[static_cast<std::size_t>(n.child0)];
    };
    const auto y = [&]() -> const Interval& {
      return fwd_[static_cast<std::size_t>(n.child1)];
    };
    // Each case mirrors expr::evalDerivative's formula and operation order
    // exactly, so the per-variable enclosures are bit-identical to the
    // recursive tree walk (the differential tests assert this).
    switch (n.kind) {
      case OpKind::Const:
        for (std::size_t k = 0; k < nv; ++k) d[k] = Interval(0.0);
        break;
      case OpKind::Var:
        for (std::size_t k = 0; k < nv; ++k) {
          d[k] = Interval(vars_[k] == n.var ? 1.0 : 0.0);
        }
        break;
      case OpKind::Add:
        for (std::size_t k = 0; k < nv; ++k) d[k] = dx[k] + dy[k];
        break;
      case OpKind::Sub:
        for (std::size_t k = 0; k < nv; ++k) d[k] = dx[k] - dy[k];
        break;
      case OpKind::Mul:
        for (std::size_t k = 0; k < nv; ++k) {
          d[k] = dx[k] * y() + x() * dy[k];
        }
        break;
      case OpKind::Div:
        for (std::size_t k = 0; k < nv; ++k) {
          d[k] = (dx[k] * y() - x() * dy[k]) / interval::sqr(y());
        }
        break;
      case OpKind::Neg:
        for (std::size_t k = 0; k < nv; ++k) d[k] = -dx[k];
        break;
      case OpKind::Sqrt:
        // fwd_[i] is sqrt(x), the `root` of the tree-walking formula.
        for (std::size_t k = 0; k < nv; ++k) {
          d[k] = dx[k] / (Interval(2.0) * fwd_[i]);
        }
        break;
      case OpKind::Sqr:
        for (std::size_t k = 0; k < nv; ++k) {
          d[k] = Interval(2.0) * x() * dx[k];
        }
        break;
      case OpKind::Pow:
        for (std::size_t k = 0; k < nv; ++k) {
          d[k] = Interval(static_cast<double>(n.exponent)) *
                 interval::pow(x(), n.exponent - 1) * dx[k];
        }
        break;
      case OpKind::Exp:
        for (std::size_t k = 0; k < nv; ++k) d[k] = fwd_[i] * dx[k];
        break;
      case OpKind::Log:
        for (std::size_t k = 0; k < nv; ++k) d[k] = dx[k] / x();
        break;
      case OpKind::Abs: {
        Interval sign;
        if (x().lo() > 0.0) {
          sign = Interval(1.0);
        } else if (x().hi() < 0.0) {
          sign = Interval(-1.0);
        } else {
          sign = Interval(-1.0, 1.0);  // kink inside the box
        }
        for (std::size_t k = 0; k < nv; ++k) d[k] = sign * dx[k];
        break;
      }
      case OpKind::Min:
        for (std::size_t k = 0; k < nv; ++k) {
          if (x().hi() <= y().lo()) {
            d[k] = dx[k];  // min is always the left operand
          } else if (y().hi() <= x().lo()) {
            d[k] = dy[k];
          } else {
            d[k] = interval::hull(dx[k], dy[k]);
          }
        }
        break;
      case OpKind::Max:
        for (std::size_t k = 0; k < nv; ++k) {
          if (x().lo() >= y().hi()) {
            d[k] = dx[k];
          } else if (y().lo() >= x().hi()) {
            d[k] = dy[k];
          } else {
            d[k] = interval::hull(dx[k], dy[k]);
          }
        }
        break;
    }
  }

  DerivativeSweep out;
  out.value = fwd_.back();
  out.derivatives = {tan_.data() + (nodes_.size() - 1) * nv, nv};
  return out;
}

ReviseResult CompiledExpr::revise(const Interval& target,
                                  std::span<Interval> domains) {
  countSweep();
  forwardSweep({domains.data(), domains.size()});
  ReviseResult result;
  result.value = fwd_.back();

  const Interval rootRange = interval::intersect(result.value, target);
  if (rootRange.empty()) {
    result.feasible = false;
    return result;
  }
  result.feasible = true;

  // Backward sweep: bwd_ holds the refined enclosure of each node.  Every
  // projection is inflated outward before intersecting: the library uses
  // plain double rounding instead of directed rounding, and without slack a
  // projection through a deep expression chain can shave the true value off
  // a point domain by an ULP, falsely proving infeasibility.
  constexpr double kSlackRel = 1e-10;
  constexpr double kSlackAbs = 1e-12;
  for (std::size_t i = 0; i < nodes_.size(); ++i) bwd_[i] = fwd_[i];
  bwd_.back() = rootRange;

  for (std::size_t ri = nodes_.size(); ri-- > 0;) {
    const CNode& n = nodes_[ri];
    const Interval z = bwd_[ri];
    if (z.empty()) continue;  // dead branch; soundly skip

    auto refine = [&](int child, const Interval& projected) {
      auto ci = static_cast<std::size_t>(child);
      bwd_[ci] = interval::intersect(bwd_[ci],
                                     projected.inflate(kSlackRel, kSlackAbs));
    };
    // Prior enclosures handed to projections that intersect internally
    // (mul/div/sqr/pow/abs/min/max) must carry the slack too, or a point
    // domain one ULP off empties inside the helper.
    auto prior = [&](int child) {
      return bwd_[static_cast<std::size_t>(child)].inflate(kSlackRel,
                                                           kSlackAbs);
    };

    switch (n.kind) {
      case OpKind::Const:
      case OpKind::Var:
        break;
      case OpKind::Add: {
        const Interval& x = bwd_[static_cast<std::size_t>(n.child0)];
        const Interval& y = bwd_[static_cast<std::size_t>(n.child1)];
        refine(n.child0, z - y);
        refine(n.child1, z - bwd_[static_cast<std::size_t>(n.child0)]);
        (void)x;
        break;
      }
      case OpKind::Sub: {
        const Interval y = bwd_[static_cast<std::size_t>(n.child1)];
        refine(n.child0, z + y);
        refine(n.child1, bwd_[static_cast<std::size_t>(n.child0)] - z);
        break;
      }
      case OpKind::Mul: {
        refine(n.child0, interval::projectMulLhs(z, prior(n.child0),
                                                 prior(n.child1)));
        refine(n.child1, interval::projectMulLhs(z, prior(n.child1),
                                                 prior(n.child0)));
        break;
      }
      case OpKind::Div: {
        // z = x / y  =>  x in z*y;  y in x/z.
        refine(n.child0, z * prior(n.child1));
        const Interval y = prior(n.child1);
        const interval::IntervalPair q =
            interval::extendedDiv(prior(n.child0), z);
        refine(n.child1, interval::hull(interval::intersect(y, q.first),
                                        interval::intersect(y, q.second)));
        break;
      }
      case OpKind::Neg:
        refine(n.child0, -z);
        break;
      case OpKind::Sqrt: {
        const Interval zc = interval::intersect(z, Interval::nonNegative());
        refine(n.child0, interval::sqr(zc));
        break;
      }
      case OpKind::Sqr:
        refine(n.child0, interval::projectSqr(z, prior(n.child0)));
        break;
      case OpKind::Pow:
        refine(n.child0,
               interval::projectPow(z, prior(n.child0), n.exponent));
        break;
      case OpKind::Exp:
        refine(n.child0, interval::log(z));
        break;
      case OpKind::Log:
        refine(n.child0, interval::exp(z));
        break;
      case OpKind::Abs:
        refine(n.child0, interval::projectAbs(z, prior(n.child0)));
        break;
      case OpKind::Min: {
        refine(n.child0, interval::projectMinLhs(z, prior(n.child0),
                                                 prior(n.child1)));
        refine(n.child1, interval::projectMinLhs(z, prior(n.child1),
                                                 prior(n.child0)));
        break;
      }
      case OpKind::Max: {
        refine(n.child0, interval::projectMaxLhs(z, prior(n.child0),
                                                 prior(n.child1)));
        refine(n.child1, interval::projectMaxLhs(z, prior(n.child1),
                                                 prior(n.child0)));
        break;
      }
    }
  }

  // Harvest narrowed variable domains.  A variable occurring several times
  // gets the intersection of all its occurrences.  An empty refinement means
  // the constraint is actually infeasible over the box (the root-range test
  // is only a necessary condition once rounding and the dependency problem
  // enter); report infeasibility and leave the box untouched rather than
  // poisoning downstream propagation with an empty domain.
  // Aggregate across occurrences first, then check, then commit.
  refined_.resize(vars_.size());
  std::vector<Interval>& refined = refined_;
  for (std::size_t k = 0; k < vars_.size(); ++k) refined[k] = domains[vars_[k]];
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].kind != OpKind::Var) continue;
    const VarId v = nodes_[i].var;
    const auto k = static_cast<std::size_t>(
        std::lower_bound(vars_.begin(), vars_.end(), v) - vars_.begin());
    refined[k] = interval::intersect(refined[k], bwd_[i]);
  }
  for (std::size_t k = 0; k < vars_.size(); ++k) {
    if (refined[k].empty()) {
      result.feasible = false;
      result.narrowed = false;
      return result;
    }
  }
  for (std::size_t k = 0; k < vars_.size(); ++k) {
    if (!(refined[k] == domains[vars_[k]])) {
      domains[vars_[k]] = refined[k];
      result.narrowed = true;
    }
  }
  return result;
}

}  // namespace adpm::expr
