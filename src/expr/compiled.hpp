// HC4-revise over a flattened expression.
//
// The paper's Design Constraint Manager "runs a constraint propagation
// algorithm to compute infeasible property values and the status of all
// constraints", delegating per-constraint evaluation to constraint-based
// systems (Bessiere & Regin's arc-consistency work is cited).  Our equivalent
// primitive is HC4-revise: a forward interval sweep of the expression tree
// followed by a backward projection pass that narrows the variable domains to
// the values compatible with the constraint's target interval.  Each call to
// `revise` (or `evaluate`) corresponds to one "constraint evaluation" in the
// paper's cost metric.
#pragma once

#include <span>
#include <vector>

#include "expr/expr.hpp"
#include "interval/interval.hpp"

namespace adpm::expr {

/// Result of one HC4-revise call.
struct ReviseResult {
  /// Forward interval enclosure of the expression over the input box.
  interval::Interval value;
  /// False when value ∩ target is empty (the constraint cannot be met
  /// anywhere in the box); domains are left untouched in that case.
  bool feasible = false;
  /// True when at least one domain was strictly narrowed.
  bool narrowed = false;
};

/// Result of one fused value-plus-derivatives sweep.  `derivatives` is
/// parallel to `CompiledExpr::variables()` and points into scratch owned by
/// the CompiledExpr — it is valid only until the next sweep on the same
/// instance.
struct DerivativeSweep {
  /// Forward interval enclosure of the expression over the input box.
  interval::Interval value;
  /// Enclosure of ∂e/∂v for every distinct variable v, ascending by VarId.
  std::span<const interval::Interval> derivatives;
};

/// An expression flattened to postorder for repeated forward/backward sweeps.
/// Not thread-safe: each instance owns scratch buffers.
class CompiledExpr {
 public:
  explicit CompiledExpr(const Expr& e);

  /// Distinct variables, ascending.
  const std::vector<VarId>& variables() const noexcept { return vars_; }

  /// One-past the largest variable id (callers size domain vectors by this).
  std::size_t variableSpan() const noexcept { return span_; }

  std::size_t nodeCount() const noexcept { return nodes_.size(); }

  /// Forward sweep only: interval enclosure of the expression over the box.
  interval::Interval evaluate(std::span<const interval::Interval> domains);

  /// Fused forward-mode AD sweep: one pass over the postorder node array
  /// computes the value enclosure *and* the derivative enclosure with
  /// respect to every distinct variable at once.  The per-variable
  /// derivative enclosures are bit-identical to `expr::evalDerivative`
  /// (same formulas, same operation order) — the miner's differential
  /// tests rely on this.  Counts as a single expression sweep where the
  /// tree-walking path costs one `evaluate` plus one `monotonicity` walk
  /// per (variable, expression) pair.
  DerivativeSweep derivatives(std::span<const interval::Interval> domains);

  /// Full HC4-revise: narrows `domains` in place to values compatible with
  /// expression ∈ target.  If the revise proves infeasibility, domains are
  /// left unchanged and `feasible` is false.
  ReviseResult revise(const interval::Interval& target,
                      std::span<interval::Interval> domains);

 private:
  struct CNode {
    OpKind kind;
    double value;
    VarId var;
    int exponent;
    int child0;
    int child1;
  };

  int compile(const Expr& e);
  void forwardSweep(std::span<const interval::Interval> domains);

  std::vector<CNode> nodes_;  // postorder; root is nodes_.back()
  std::vector<VarId> vars_;
  std::size_t span_ = 0;
  std::vector<interval::Interval> fwd_;
  std::vector<interval::Interval> bwd_;
  /// Per-variable refinement scratch for `revise`'s harvest step (reused so
  /// the steady-state revise allocates nothing).
  std::vector<interval::Interval> refined_;
  /// Tangent matrix for `derivatives`: nodes_.size() rows of vars_.size()
  /// derivative enclosures, row-major, lazily sized on first use.
  std::vector<interval::Interval> tan_;
};

}  // namespace adpm::expr
