// Property value domains.
//
// In the paper a property a_i "can take one or more values from a range
// E_i = {v_j}" — continuous design variables (widths, inductances) have
// interval ranges, while discrete choices (e.g. number of resonator beams)
// have finite enumerated value sets.  Domain is the closed union of those two
// shapes, with the operations the heuristic miner needs: intersection with a
// propagated interval, a normalised size measure (for the smallest-feasible-
// subspace heuristic), and ordered value picking (for the value selection
// function f_v, which "chooses the top or bottom value").
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "interval/interval.hpp"

namespace adpm::interval {

/// Either a continuous interval or a finite sorted set of numeric values.
class Domain {
 public:
  /// Default: empty continuous domain.
  Domain() noexcept = default;

  static Domain continuous(Interval range) noexcept;
  static Domain continuous(double lo, double hi) noexcept;
  /// Values are sorted and deduplicated.
  static Domain discrete(std::vector<double> values);
  static Domain point(double v) noexcept;

  bool isDiscrete() const noexcept { return discrete_.has_value(); }
  bool empty() const noexcept;

  /// Number of values in a discrete domain; throws for continuous.
  std::size_t count() const;
  const std::vector<double>& values() const;

  /// Smallest interval containing the domain.
  Interval hull() const noexcept;

  bool contains(double v, double tol = 0.0) const noexcept;

  /// True if the domain is a single value.
  bool isPoint() const noexcept;

  /// Keeps only values inside `window` (discrete) or intersects (continuous).
  Domain intersect(const Interval& window) const;

  /// Lebesgue-style size: width for continuous, count-1 spacing-free proxy
  /// (count as a real number) for discrete.  Only meaningful as a *ratio*
  /// against another measure of the same domain family — see
  /// `relativeMeasure`.
  double measure() const noexcept;

  /// Size of this domain relative to a reference domain (typically the
  /// initial range E_i).  Returns a value in [0, 1]; this is the
  /// unit-independent quantity the smallest-feasible-subspace heuristic
  /// ranks on (the paper notes raw value-set size is "unit-dependent").
  double relativeMeasure(const Domain& reference) const noexcept;

  /// Smallest / largest value in the domain; must not be empty.
  double minValue() const;
  double maxValue() const;

  /// Nearest domain value to `v`; must not be empty.
  double nearest(double v) const;

  std::string str(int digits = 6) const;

  bool operator==(const Domain& other) const noexcept;

 private:
  Interval range_ = Interval::emptySet();
  std::optional<std::vector<double>> discrete_;
};

}  // namespace adpm::interval
