// Closed-interval arithmetic.
//
// Property ranges E_i and feasible subspaces v_F(a_i) in the paper are value
// intervals; the Design Constraint Manager narrows them by constraint
// propagation.  This module provides the interval algebra that the expression
// evaluator (forward pass) and the HC4 projector (backward pass) are built
// on.
//
// Representation notes:
//  * The empty interval is canonicalised to [+inf, -inf]; `empty()` tests
//    lo > hi.
//  * Bounds may be infinite; [-inf, +inf] is the "entire" interval.
//  * Arithmetic uses plain double rounding rather than directed rounding.
//    Soundness for the simulator is preserved by `inflate()`, which the
//    propagation engine applies before pruning decisions; the few ULPs of
//    slack are negligible at the scale of the paper's design ranges.
#pragma once

#include <limits>
#include <string>

namespace adpm::interval {

/// A closed real interval [lo, hi]; possibly empty or unbounded.
class Interval {
 public:
  /// Default-constructs the empty interval.
  constexpr Interval() noexcept = default;

  /// Degenerate (point) interval [v, v].
  constexpr explicit Interval(double v) noexcept : lo_(v), hi_(v) {}

  /// [lo, hi]; if lo > hi the result is the canonical empty interval.
  constexpr Interval(double lo, double hi) noexcept : lo_(lo), hi_(hi) {
    if (!(lo_ <= hi_)) *this = Interval::empty_();
  }

  static constexpr Interval entire() noexcept {
    return Interval(-std::numeric_limits<double>::infinity(),
                    std::numeric_limits<double>::infinity());
  }
  static constexpr Interval emptySet() noexcept { return Interval::empty_(); }
  static constexpr Interval nonNegative() noexcept {
    return Interval(0.0, std::numeric_limits<double>::infinity());
  }
  static constexpr Interval nonPositive() noexcept {
    return Interval(-std::numeric_limits<double>::infinity(), 0.0);
  }

  constexpr double lo() const noexcept { return lo_; }
  constexpr double hi() const noexcept { return hi_; }

  constexpr bool empty() const noexcept { return !(lo_ <= hi_); }
  constexpr bool isPoint() const noexcept { return lo_ == hi_; }
  constexpr bool isEntire() const noexcept {
    return lo_ == -std::numeric_limits<double>::infinity() &&
           hi_ == std::numeric_limits<double>::infinity();
  }
  bool isBounded() const noexcept;

  /// Width hi-lo; 0 for empty, +inf for unbounded intervals.
  double width() const noexcept;

  /// Midpoint; finite clamp for half-bounded intervals.
  double mid() const noexcept;

  constexpr bool contains(double v) const noexcept {
    return !empty() && lo_ <= v && v <= hi_;
  }
  constexpr bool contains(const Interval& other) const noexcept {
    return other.empty() || (!empty() && lo_ <= other.lo_ && other.hi_ <= hi_);
  }
  constexpr bool intersects(const Interval& other) const noexcept {
    return !empty() && !other.empty() && lo_ <= other.hi_ && other.lo_ <= hi_;
  }

  /// Exact comparison of bounds (empty == empty).
  constexpr bool operator==(const Interval& other) const noexcept {
    if (empty() && other.empty()) return true;
    return lo_ == other.lo_ && hi_ == other.hi_;
  }

  /// Clamps a value into the interval; v must not be called on empty.
  double clamp(double v) const noexcept;

  /// Widens each finite bound outward by max(rel*|bound|, abs_).
  Interval inflate(double rel, double abs_) const noexcept;

  std::string str(int digits = 6) const;

 private:
  static constexpr Interval empty_() noexcept {
    Interval e;
    return e;
  }

  double lo_ = std::numeric_limits<double>::infinity();
  double hi_ = -std::numeric_limits<double>::infinity();
};

// -- set operations ---------------------------------------------------------

Interval intersect(const Interval& a, const Interval& b) noexcept;
/// Convex hull (smallest interval containing both).
Interval hull(const Interval& a, const Interval& b) noexcept;

// -- arithmetic (forward evaluation) ----------------------------------------

Interval operator+(const Interval& a, const Interval& b) noexcept;
Interval operator-(const Interval& a, const Interval& b) noexcept;
Interval operator*(const Interval& a, const Interval& b) noexcept;
/// Hull of a/b; division by an interval containing 0 widens appropriately
/// (entire when 0 is interior, half-line when 0 is an endpoint).
Interval operator/(const Interval& a, const Interval& b) noexcept;
Interval operator-(const Interval& a) noexcept;

Interval sqr(const Interval& a) noexcept;
Interval sqrt(const Interval& a) noexcept;       // domain-clipped to x >= 0
Interval pow(const Interval& a, int n) noexcept; // integer powers, n may be < 0
Interval exp(const Interval& a) noexcept;
Interval log(const Interval& a) noexcept;        // domain-clipped to x > 0
Interval abs(const Interval& a) noexcept;
Interval min(const Interval& a, const Interval& b) noexcept;
Interval max(const Interval& a, const Interval& b) noexcept;

// -- projections (backward/HC4 support) --------------------------------------

/// Extended division z/y as up to two disjoint intervals (when y straddles 0).
struct IntervalPair {
  Interval first;
  Interval second;  // empty when the result is a single interval
};
IntervalPair extendedDiv(const Interval& z, const Interval& y) noexcept;

/// Refines x given z = x + y: x' = x ∩ (z - y).
Interval projectAddLhs(const Interval& z, const Interval& x,
                       const Interval& y) noexcept;
/// Refines x given z = x * y: x' = x ∩ (z ÷ y), using extended division.
Interval projectMulLhs(const Interval& z, const Interval& x,
                       const Interval& y) noexcept;
/// Refines x given z = x^2.
Interval projectSqr(const Interval& z, const Interval& x) noexcept;
/// Refines x given z = x^n.
Interval projectPow(const Interval& z, const Interval& x, int n) noexcept;
/// Refines x given z = |x|.
Interval projectAbs(const Interval& z, const Interval& x) noexcept;
/// Refines x given z = min(x, y) (use with swapped args for the y side).
Interval projectMinLhs(const Interval& z, const Interval& x,
                       const Interval& y) noexcept;
/// Refines x given z = max(x, y).
Interval projectMaxLhs(const Interval& z, const Interval& x,
                       const Interval& y) noexcept;

}  // namespace adpm::interval
