// Unions of disjoint closed intervals.
//
// Hull (single-interval) arithmetic is what propagation runs on, but some
// feedback is genuinely disjunctive: the values of a property compatible
// with |f_c − f_target| <= df form two lobes, and the rebinding window of a
// variable under an even-power constraint is a symmetric pair.  IntervalSet
// represents such sets exactly for analysis and display
// (constraint::solveUnivariate, the browser's REQUIRED WINDOWS pane).
#pragma once

#include <string>
#include <vector>

#include "interval/interval.hpp"

namespace adpm::interval {

/// A finite union of disjoint, sorted, non-empty closed intervals.
class IntervalSet {
 public:
  /// The empty set.
  IntervalSet() = default;

  /// Singleton set (empty interval => empty set).
  explicit IntervalSet(const Interval& iv);

  /// Normalises arbitrary pieces: drops empties, sorts, merges overlapping
  /// or touching intervals.
  static IntervalSet fromPieces(std::vector<Interval> pieces);

  bool empty() const noexcept { return pieces_.empty(); }
  std::size_t pieceCount() const noexcept { return pieces_.size(); }
  const std::vector<Interval>& pieces() const noexcept { return pieces_; }

  /// Smallest interval containing the whole set.
  Interval hull() const noexcept;

  /// Total length (sum of piece widths).
  double measure() const noexcept;

  bool contains(double v) const noexcept;

  /// Set union / intersection with normalisation.
  IntervalSet unite(const IntervalSet& other) const;
  IntervalSet intersect(const IntervalSet& other) const;
  IntervalSet intersect(const Interval& iv) const;

  /// The piece containing `v`, or the one nearest to it; must not be empty.
  Interval nearestPiece(double v) const;

  /// "[a, b] ∪ [c, d]" rendering.
  std::string str(int digits = 6) const;

  bool operator==(const IntervalSet& other) const noexcept;

 private:
  std::vector<Interval> pieces_;  // invariant: sorted, disjoint, non-empty
};

}  // namespace adpm::interval
