#include "interval/interval_set.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.hpp"

namespace adpm::interval {

IntervalSet::IntervalSet(const Interval& iv) {
  if (!iv.empty()) pieces_.push_back(iv);
}

IntervalSet IntervalSet::fromPieces(std::vector<Interval> pieces) {
  pieces.erase(std::remove_if(pieces.begin(), pieces.end(),
                              [](const Interval& p) { return p.empty(); }),
               pieces.end());
  std::sort(pieces.begin(), pieces.end(),
            [](const Interval& a, const Interval& b) {
              return a.lo() < b.lo() || (a.lo() == b.lo() && a.hi() < b.hi());
            });
  IntervalSet out;
  for (const Interval& p : pieces) {
    if (!out.pieces_.empty() && p.lo() <= out.pieces_.back().hi()) {
      // Overlapping or touching: merge into the previous piece.
      out.pieces_.back() =
          Interval(out.pieces_.back().lo(),
                   std::max(out.pieces_.back().hi(), p.hi()));
    } else {
      out.pieces_.push_back(p);
    }
  }
  return out;
}

Interval IntervalSet::hull() const noexcept {
  if (pieces_.empty()) return Interval::emptySet();
  return Interval(pieces_.front().lo(), pieces_.back().hi());
}

double IntervalSet::measure() const noexcept {
  double total = 0.0;
  for (const Interval& p : pieces_) total += p.width();
  return total;
}

bool IntervalSet::contains(double v) const noexcept {
  for (const Interval& p : pieces_) {
    if (p.contains(v)) return true;
  }
  return false;
}

IntervalSet IntervalSet::unite(const IntervalSet& other) const {
  std::vector<Interval> all = pieces_;
  all.insert(all.end(), other.pieces_.begin(), other.pieces_.end());
  return fromPieces(std::move(all));
}

IntervalSet IntervalSet::intersect(const IntervalSet& other) const {
  std::vector<Interval> out;
  for (const Interval& a : pieces_) {
    for (const Interval& b : other.pieces_) {
      const Interval c = adpm::interval::intersect(a, b);
      if (!c.empty()) out.push_back(c);
    }
  }
  return fromPieces(std::move(out));
}

IntervalSet IntervalSet::intersect(const Interval& iv) const {
  return intersect(IntervalSet(iv));
}

Interval IntervalSet::nearestPiece(double v) const {
  if (pieces_.empty()) {
    throw adpm::InvalidArgumentError("nearestPiece() on empty IntervalSet");
  }
  const Interval* best = &pieces_.front();
  double bestDistance = std::numeric_limits<double>::infinity();
  for (const Interval& p : pieces_) {
    const double distance =
        p.contains(v) ? 0.0 : std::min(std::fabs(v - p.lo()),
                                       std::fabs(v - p.hi()));
    if (distance < bestDistance) {
      bestDistance = distance;
      best = &p;
    }
  }
  return *best;
}

std::string IntervalSet::str(int digits) const {
  if (pieces_.empty()) return "{}";
  std::ostringstream out;
  for (std::size_t i = 0; i < pieces_.size(); ++i) {
    if (i) out << " u ";
    out << pieces_[i].str(digits);
  }
  return out.str();
}

bool IntervalSet::operator==(const IntervalSet& other) const noexcept {
  return pieces_ == other.pieces_;
}

}  // namespace adpm::interval
