#include "interval/domain.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.hpp"

namespace adpm::interval {

Domain Domain::continuous(Interval range) noexcept {
  Domain d;
  d.range_ = range;
  return d;
}

Domain Domain::continuous(double lo, double hi) noexcept {
  return continuous(Interval(lo, hi));
}

Domain Domain::discrete(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  Domain d;
  d.discrete_ = std::move(values);
  if (!d.discrete_->empty()) {
    d.range_ = Interval(d.discrete_->front(), d.discrete_->back());
  }
  return d;
}

Domain Domain::point(double v) noexcept {
  return continuous(Interval(v));
}

bool Domain::empty() const noexcept {
  if (discrete_) return discrete_->empty();
  return range_.empty();
}

std::size_t Domain::count() const {
  if (!discrete_) throw InvalidArgumentError("count() on continuous domain");
  return discrete_->size();
}

const std::vector<double>& Domain::values() const {
  if (!discrete_) throw InvalidArgumentError("values() on continuous domain");
  return *discrete_;
}

Interval Domain::hull() const noexcept { return range_; }

bool Domain::contains(double v, double tol) const noexcept {
  if (discrete_) {
    for (double d : *discrete_) {
      if (std::fabs(d - v) <= tol) return true;
    }
    return false;
  }
  return range_.contains(v) ||
         (!range_.empty() && (std::fabs(v - range_.lo()) <= tol ||
                              std::fabs(v - range_.hi()) <= tol));
}

bool Domain::isPoint() const noexcept {
  if (discrete_) return discrete_->size() == 1;
  return range_.isPoint();
}

Domain Domain::intersect(const Interval& window) const {
  if (discrete_) {
    std::vector<double> kept;
    for (double v : *discrete_) {
      if (window.contains(v)) kept.push_back(v);
    }
    return Domain::discrete(std::move(kept));
  }
  return Domain::continuous(adpm::interval::intersect(range_, window));
}

double Domain::measure() const noexcept {
  if (discrete_) return static_cast<double>(discrete_->size());
  return range_.width();
}

double Domain::relativeMeasure(const Domain& reference) const noexcept {
  const double ref = reference.measure();
  if (ref <= 0.0) return empty() ? 0.0 : 1.0;
  return std::clamp(measure() / ref, 0.0, 1.0);
}

double Domain::minValue() const {
  if (empty()) throw InvalidArgumentError("minValue() on empty domain");
  if (discrete_) return discrete_->front();
  return range_.lo();
}

double Domain::maxValue() const {
  if (empty()) throw InvalidArgumentError("maxValue() on empty domain");
  if (discrete_) return discrete_->back();
  return range_.hi();
}

double Domain::nearest(double v) const {
  if (empty()) throw InvalidArgumentError("nearest() on empty domain");
  if (!discrete_) return range_.clamp(v);
  double best = discrete_->front();
  double bestDist = std::fabs(v - best);
  for (double d : *discrete_) {
    const double dist = std::fabs(v - d);
    if (dist < bestDist) {
      best = d;
      bestDist = dist;
    }
  }
  return best;
}

std::string Domain::str(int digits) const {
  if (discrete_) {
    std::ostringstream out;
    out.precision(digits);
    out << "{";
    for (std::size_t i = 0; i < discrete_->size(); ++i) {
      if (i) out << ", ";
      out << (*discrete_)[i];
    }
    out << "}";
    return out.str();
  }
  return range_.str(digits);
}

bool Domain::operator==(const Domain& other) const noexcept {
  if (discrete_.has_value() != other.discrete_.has_value()) return false;
  if (discrete_) return *discrete_ == *other.discrete_;
  return range_ == other.range_;
}

}  // namespace adpm::interval
