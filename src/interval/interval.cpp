#include "interval/interval.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace adpm::interval {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// IEEE-safe product for bound arithmetic: 0 * inf is 0 here, because the
/// zero factor comes from a degenerate bound, not from a limit process.
double mulBound(double a, double b) noexcept {
  if (a == 0.0 || b == 0.0) return 0.0;
  return a * b;
}

}  // namespace

bool Interval::isBounded() const noexcept {
  return !empty() && std::isfinite(lo_) && std::isfinite(hi_);
}

double Interval::width() const noexcept {
  if (empty()) return 0.0;
  return hi_ - lo_;
}

double Interval::mid() const noexcept {
  if (empty()) return std::numeric_limits<double>::quiet_NaN();
  if (isEntire()) return 0.0;
  if (lo_ == -kInf) return hi_;
  if (hi_ == kInf) return lo_;
  return 0.5 * (lo_ + hi_);
}

double Interval::clamp(double v) const noexcept {
  return std::min(std::max(v, lo_), hi_);
}

Interval Interval::inflate(double rel, double abs_) const noexcept {
  if (empty()) return *this;
  double lo = lo_;
  double hi = hi_;
  if (std::isfinite(lo)) lo -= std::max(rel * std::fabs(lo), abs_);
  if (std::isfinite(hi)) hi += std::max(rel * std::fabs(hi), abs_);
  return Interval(lo, hi);
}

std::string Interval::str(int digits) const {
  if (empty()) return "{}";
  std::ostringstream out;
  out.precision(digits);
  out << "[" << lo_ << ", " << hi_ << "]";
  return out.str();
}

Interval intersect(const Interval& a, const Interval& b) noexcept {
  if (a.empty() || b.empty()) return Interval::emptySet();
  return Interval(std::max(a.lo(), b.lo()), std::min(a.hi(), b.hi()));
}

Interval hull(const Interval& a, const Interval& b) noexcept {
  if (a.empty()) return b;
  if (b.empty()) return a;
  return Interval(std::min(a.lo(), b.lo()), std::max(a.hi(), b.hi()));
}

Interval operator+(const Interval& a, const Interval& b) noexcept {
  if (a.empty() || b.empty()) return Interval::emptySet();
  return Interval(a.lo() + b.lo(), a.hi() + b.hi());
}

Interval operator-(const Interval& a, const Interval& b) noexcept {
  if (a.empty() || b.empty()) return Interval::emptySet();
  return Interval(a.lo() - b.hi(), a.hi() - b.lo());
}

Interval operator-(const Interval& a) noexcept {
  if (a.empty()) return a;
  return Interval(-a.hi(), -a.lo());
}

Interval operator*(const Interval& a, const Interval& b) noexcept {
  if (a.empty() || b.empty()) return Interval::emptySet();
  const double p1 = mulBound(a.lo(), b.lo());
  const double p2 = mulBound(a.lo(), b.hi());
  const double p3 = mulBound(a.hi(), b.lo());
  const double p4 = mulBound(a.hi(), b.hi());
  return Interval(std::min({p1, p2, p3, p4}), std::max({p1, p2, p3, p4}));
}

Interval operator/(const Interval& a, const Interval& b) noexcept {
  const IntervalPair parts = extendedDiv(a, b);
  return hull(parts.first, parts.second);
}

Interval sqr(const Interval& a) noexcept {
  if (a.empty()) return a;
  const double l = a.lo();
  const double h = a.hi();
  if (l >= 0.0) return Interval(l * l, h * h);
  if (h <= 0.0) return Interval(h * h, l * l);
  return Interval(0.0, std::max(l * l, h * h));
}

Interval sqrt(const Interval& a) noexcept {
  const Interval clipped = intersect(a, Interval::nonNegative());
  if (clipped.empty()) return clipped;
  return Interval(std::sqrt(clipped.lo()), std::sqrt(clipped.hi()));
}

Interval pow(const Interval& a, int n) noexcept {
  if (a.empty()) return a;
  if (n == 0) return Interval(1.0);
  if (n < 0) return Interval(1.0) / pow(a, -n);
  if (n == 1) return a;
  if (n % 2 == 0) {
    // Even power behaves like sqr: symmetric around 0.
    Interval base = abs(a);
    return Interval(std::pow(base.lo(), n), std::pow(base.hi(), n));
  }
  return Interval(std::pow(a.lo(), n), std::pow(a.hi(), n));
}

Interval exp(const Interval& a) noexcept {
  if (a.empty()) return a;
  return Interval(std::exp(a.lo()), std::exp(a.hi()));
}

Interval log(const Interval& a) noexcept {
  const Interval clipped = intersect(a, Interval(0.0, kInf));
  if (clipped.empty()) return clipped;
  const double lo = clipped.lo() == 0.0 ? -kInf : std::log(clipped.lo());
  return Interval(lo, std::log(clipped.hi()));
}

Interval abs(const Interval& a) noexcept {
  if (a.empty()) return a;
  if (a.lo() >= 0.0) return a;
  if (a.hi() <= 0.0) return -a;
  return Interval(0.0, std::max(-a.lo(), a.hi()));
}

Interval min(const Interval& a, const Interval& b) noexcept {
  if (a.empty() || b.empty()) return Interval::emptySet();
  return Interval(std::min(a.lo(), b.lo()), std::min(a.hi(), b.hi()));
}

Interval max(const Interval& a, const Interval& b) noexcept {
  if (a.empty() || b.empty()) return Interval::emptySet();
  return Interval(std::max(a.lo(), b.lo()), std::max(a.hi(), b.hi()));
}

IntervalPair extendedDiv(const Interval& z, const Interval& y) noexcept {
  if (z.empty() || y.empty()) return {Interval::emptySet(), Interval::emptySet()};

  // y strictly positive or strictly negative: ordinary division.
  if (y.lo() > 0.0 || y.hi() < 0.0) {
    const double q1 = z.lo() / y.lo();
    const double q2 = z.lo() / y.hi();
    const double q3 = z.hi() / y.lo();
    const double q4 = z.hi() / y.hi();
    return {Interval(std::min({q1, q2, q3, q4}), std::max({q1, q2, q3, q4})),
            Interval::emptySet()};
  }

  // y contains 0.
  if (y.isPoint()) {  // y == [0,0]
    if (z.contains(0.0)) return {Interval::entire(), Interval::emptySet()};
    return {Interval::emptySet(), Interval::emptySet()};
  }
  if (z.contains(0.0)) return {Interval::entire(), Interval::emptySet()};

  if (z.hi() < 0.0) {
    if (y.lo() == 0.0) return {Interval(-kInf, z.hi() / y.hi()), Interval::emptySet()};
    if (y.hi() == 0.0) return {Interval(z.hi() / y.lo(), kInf), Interval::emptySet()};
    return {Interval(-kInf, z.hi() / y.hi()), Interval(z.hi() / y.lo(), kInf)};
  }
  // z.lo() > 0
  if (y.lo() == 0.0) return {Interval(z.lo() / y.hi(), kInf), Interval::emptySet()};
  if (y.hi() == 0.0) return {Interval(-kInf, z.lo() / y.lo()), Interval::emptySet()};
  return {Interval(-kInf, z.lo() / y.lo()), Interval(z.lo() / y.hi(), kInf)};
}

Interval projectAddLhs(const Interval& z, const Interval& x,
                       const Interval& y) noexcept {
  return intersect(x, z - y);
}

Interval projectMulLhs(const Interval& z, const Interval& x,
                       const Interval& y) noexcept {
  const IntervalPair q = extendedDiv(z, y);
  return hull(intersect(x, q.first), intersect(x, q.second));
}

Interval projectSqr(const Interval& z, const Interval& x) noexcept {
  const Interval root = sqrt(z);
  if (root.empty()) return Interval::emptySet();
  return hull(intersect(x, root), intersect(x, -root));
}

Interval projectPow(const Interval& z, const Interval& x, int n) noexcept {
  if (n == 0) return z.contains(1.0) ? x : Interval::emptySet();
  if (n == 1) return intersect(x, z);
  if (n < 0) {
    // z = x^n = 1 / x^(-n): project through the reciprocal.
    const Interval recip = Interval(1.0) / z;
    return projectPow(recip, x, -n);
  }
  if (n % 2 == 0) {
    const Interval zc = intersect(z, Interval::nonNegative());
    if (zc.empty()) return Interval::emptySet();
    const double rl = std::pow(zc.lo(), 1.0 / n);
    const double rh = std::pow(zc.hi(), 1.0 / n);
    const Interval root(rl, rh);
    return hull(intersect(x, root), intersect(x, -root));
  }
  // Odd power: monotone bijection over the reals.
  auto cbrtn = [n](double v) {
    if (v == kInf || v == -kInf) return v;
    const double mag = std::pow(std::fabs(v), 1.0 / n);
    return v < 0.0 ? -mag : mag;
  };
  return intersect(x, Interval(cbrtn(z.lo()), cbrtn(z.hi())));
}

Interval projectAbs(const Interval& z, const Interval& x) noexcept {
  const Interval zc = intersect(z, Interval::nonNegative());
  if (zc.empty()) return Interval::emptySet();
  return hull(intersect(x, zc), intersect(x, -zc));
}

Interval projectMinLhs(const Interval& z, const Interval& x,
                       const Interval& y) noexcept {
  if (z.empty()) return Interval::emptySet();
  // min(x, y) >= z.lo implies x >= z.lo.
  Interval refined = intersect(x, Interval(z.lo(), kInf));
  // If y alone cannot achieve the minimum (y.lo > z.hi), x must supply it.
  if (y.lo() > z.hi()) refined = intersect(refined, z);
  return refined;
}

Interval projectMaxLhs(const Interval& z, const Interval& x,
                       const Interval& y) noexcept {
  if (z.empty()) return Interval::emptySet();
  Interval refined = intersect(x, Interval(-kInf, z.hi()));
  if (y.hi() < z.lo()) refined = intersect(refined, z);
  return refined;
}

}  // namespace adpm::interval
