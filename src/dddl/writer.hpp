// DDDL writer: serialises a ScenarioSpec back to DDDL text.
//
// write(parse(text)) round-trips to an equivalent spec; the TeamSim CLI uses
// this to dump the built-in scenarios as editable DDDL files.
#pragma once

#include <string>

#include "dpm/scenario.hpp"

namespace adpm::dddl {

std::string write(const dpm::ScenarioSpec& spec);

}  // namespace adpm::dddl
