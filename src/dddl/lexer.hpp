// DDDL lexer.
#pragma once

#include <string_view>
#include <vector>

#include "dddl/token.hpp"

namespace adpm::dddl {

/// Tokenises DDDL source.  Comments run from "//" to end of line.  Throws
/// adpm::ParseError on malformed input (unterminated string, bad number,
/// stray character).
std::vector<Token> lex(std::string_view source);

}  // namespace adpm::dddl
