#include "dddl/writer.hpp"

#include <cctype>
#include <sstream>

#include "util/table.hpp"

namespace adpm::dddl {

namespace {

using dpm::ScenarioSpec;

/// Quotes names that are not bare identifiers (e.g. "Diff-pair-W").
std::string quoteIfNeeded(const std::string& name) {
  bool bare = !name.empty() &&
              (std::isalpha(static_cast<unsigned char>(name[0])) ||
               name[0] == '_');
  for (char c : name) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '.')) {
      bare = false;
      break;
    }
  }
  // Keywords must be quoted to avoid ambiguity.
  static const char* kKeywords[] = {
      "scenario", "object", "parent", "property", "range", "set", "unit",
      "levels", "constraint", "monotone", "increasing", "decreasing", "in",
      "problem", "owner", "after", "inputs", "outputs", "constraints",
      "generates", "deferred", "require", "prefer", "low", "high", "sqrt", "sqr", "exp", "log", "abs", "min", "max"};
  for (const char* kw : kKeywords) {
    if (name == kw) bare = false;
  }
  if (bare) return name;
  return "\"" + name + "\"";
}

void renderExpr(const expr::Expr& e, const ScenarioSpec& spec,
                std::ostringstream& out, int parentPrec);

int precedence(expr::OpKind kind) {
  switch (kind) {
    case expr::OpKind::Add:
    case expr::OpKind::Sub:
      return 1;
    case expr::OpKind::Mul:
    case expr::OpKind::Div:
      return 2;
    case expr::OpKind::Neg:
      return 3;
    default:
      return 4;
  }
}

void renderBinary(const expr::Node& n, const char* op, const ScenarioSpec& spec,
                  std::ostringstream& out, int prec, int parentPrec,
                  bool rightTighter) {
  if (prec < parentPrec) out << "(";
  renderExpr(n.children[0], spec, out, prec);
  out << op;
  renderExpr(n.children[1], spec, out, prec + (rightTighter ? 1 : 0));
  if (prec < parentPrec) out << ")";
}

void renderExpr(const expr::Expr& e, const ScenarioSpec& spec,
                std::ostringstream& out, int parentPrec) {
  const expr::Node& n = e.node();
  const int prec = precedence(n.kind);
  switch (n.kind) {
    case expr::OpKind::Const:
      if (n.value < 0) {
        out << "(" << util::formatExact(n.value) << ")";
      } else {
        out << util::formatExact(n.value);
      }
      return;
    case expr::OpKind::Var:
      out << quoteIfNeeded(spec.properties.at(n.var).name);
      return;
    case expr::OpKind::Add:
      renderBinary(n, " + ", spec, out, prec, parentPrec, false);
      return;
    case expr::OpKind::Sub:
      renderBinary(n, " - ", spec, out, prec, parentPrec, true);
      return;
    case expr::OpKind::Mul:
      renderBinary(n, " * ", spec, out, prec, parentPrec, false);
      return;
    case expr::OpKind::Div:
      renderBinary(n, " / ", spec, out, prec, parentPrec, true);
      return;
    case expr::OpKind::Neg:
      out << "-";
      renderExpr(n.children[0], spec, out, prec);
      return;
    case expr::OpKind::Pow:
      renderExpr(n.children[0], spec, out, 4);
      out << "^";
      if (n.exponent < 0) {
        out << "-" << -n.exponent;
      } else {
        out << n.exponent;
      }
      return;
    case expr::OpKind::Sqrt:
    case expr::OpKind::Sqr:
    case expr::OpKind::Exp:
    case expr::OpKind::Log:
    case expr::OpKind::Abs:
      out << expr::opName(n.kind) << "(";
      renderExpr(n.children[0], spec, out, 0);
      out << ")";
      return;
    case expr::OpKind::Min:
    case expr::OpKind::Max:
      out << expr::opName(n.kind) << "(";
      renderExpr(n.children[0], spec, out, 0);
      out << ", ";
      renderExpr(n.children[1], spec, out, 0);
      out << ")";
      return;
  }
}

std::string exprText(const expr::Expr& e, const ScenarioSpec& spec) {
  std::ostringstream out;
  renderExpr(e, spec, out, 0);
  return out.str();
}

const char* relText(constraint::Relation r) {
  switch (r) {
    case constraint::Relation::Le: return "<=";
    case constraint::Relation::Ge: return ">=";
    case constraint::Relation::Eq: return "==";
  }
  return "?";
}

void writeNameList(std::ostringstream& out, const char* label,
                   const std::vector<std::size_t>& indices,
                   const std::vector<std::string>& names) {
  out << "    " << label << " { ";
  for (std::size_t i = 0; i < indices.size(); ++i) {
    if (i) out << ", ";
    out << quoteIfNeeded(names.at(indices[i]));
  }
  out << " }\n";
}

}  // namespace

std::string write(const ScenarioSpec& spec) {
  std::ostringstream out;
  out << "scenario " << quoteIfNeeded(spec.name) << " {\n";

  for (const auto& o : spec.objects) {
    out << "  object " << quoteIfNeeded(o.name);
    if (!o.parent.empty()) out << " parent " << quoteIfNeeded(o.parent);
    out << ";\n";
  }
  out << "\n";

  for (const auto& p : spec.properties) {
    out << "  property " << quoteIfNeeded(p.name) << " : "
        << quoteIfNeeded(p.object) << " ";
    if (p.initial.isDiscrete()) {
      out << "set { ";
      const auto& vs = p.initial.values();
      for (std::size_t i = 0; i < vs.size(); ++i) {
        if (i) out << ", ";
        out << util::formatExact(vs[i]);
      }
      out << " }";
    } else {
      out << "range [" << util::formatExact(p.initial.hull().lo()) << ", "
          << util::formatExact(p.initial.hull().hi()) << "]";
    }
    if (!p.unit.empty()) out << " unit \"" << p.unit << "\"";
    if (!p.levels.empty()) {
      out << " levels { ";
      for (std::size_t i = 0; i < p.levels.size(); ++i) {
        if (i) out << ", ";
        out << quoteIfNeeded(p.levels[i]);
      }
      out << " }";
    }
    if (p.preference < 0) out << " prefer low";
    if (p.preference > 0) out << " prefer high";
    out << ";\n";
  }
  out << "\n";

  for (const auto& c : spec.constraints) {
    out << "  constraint " << quoteIfNeeded(c.name) << " : "
        << exprText(c.lhs, spec) << " " << relText(c.rel) << " "
        << exprText(c.rhs, spec);
    if (c.monotone.empty()) {
      out << ";\n";
    } else {
      out << " {\n";
      for (const auto& [pi, up] : c.monotone) {
        out << "    monotone " << (up ? "increasing" : "decreasing") << " in "
            << quoteIfNeeded(spec.properties.at(pi).name) << ";\n";
      }
      out << "  }\n";
    }
  }
  out << "\n";

  std::vector<std::string> propNames;
  propNames.reserve(spec.properties.size());
  for (const auto& p : spec.properties) propNames.push_back(p.name);
  std::vector<std::string> consNames;
  consNames.reserve(spec.constraints.size());
  for (const auto& c : spec.constraints) consNames.push_back(c.name);

  for (const auto& p : spec.problems) {
    out << "  problem " << quoteIfNeeded(p.name) << " : "
        << quoteIfNeeded(p.object);
    if (!p.owner.empty()) out << " owner " << quoteIfNeeded(p.owner);
    if (p.parent) {
      out << " parent " << quoteIfNeeded(spec.problems.at(*p.parent).name);
    }
    if (!p.predecessors.empty()) {
      out << " after ";
      for (std::size_t i = 0; i < p.predecessors.size(); ++i) {
        if (i) out << ", ";
        out << quoteIfNeeded(spec.problems.at(p.predecessors[i]).name);
      }
    }
    out << " {\n";
    if (!p.inputs.empty()) writeNameList(out, "inputs", p.inputs, propNames);
    writeNameList(out, "outputs", p.outputs, propNames);
    writeNameList(out, "constraints", p.constraints, consNames);
    const std::size_t problemIndex =
        static_cast<std::size_t>(&p - spec.problems.data());
    std::vector<std::size_t> generated;
    for (std::size_t ci = 0; ci < spec.constraints.size(); ++ci) {
      if (spec.constraints[ci].generatedBy == problemIndex) {
        generated.push_back(ci);
      }
    }
    if (!generated.empty()) {
      writeNameList(out, "generates", generated, consNames);
    }
    if (!p.startReady) out << "    deferred;\n";
    out << "  }\n";
  }
  out << "\n";

  for (const auto& r : spec.requirements) {
    out << "  require " << quoteIfNeeded(spec.properties.at(r.property).name)
        << " = " << util::formatExact(r.value) << ";\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace adpm::dddl
