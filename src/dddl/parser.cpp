#include "dddl/parser.hpp"

#include <cmath>

#include "dddl/lexer.hpp"
#include "util/error.hpp"

namespace adpm::dddl {

namespace {

using dpm::ScenarioSpec;

class Parser {
 public:
  explicit Parser(std::string_view source) : tokens_(lex(source)) {}

  ScenarioSpec run() {
    expectKeyword("scenario");
    spec_.name = parseName("scenario name");
    expect(TokenKind::LBrace);
    while (!at(TokenKind::RBrace)) {
      const Token& t = peek();
      if (t.kind != TokenKind::Identifier) {
        fail("expected a declaration (object/property/constraint/problem/"
             "require)");
      }
      if (t.text == "object") {
        parseObject();
      } else if (t.text == "property") {
        parseProperty();
      } else if (t.text == "constraint") {
        parseConstraint();
      } else if (t.text == "problem") {
        parseProblem();
      } else if (t.text == "require") {
        parseRequire();
      } else {
        fail("unknown declaration '" + t.text + "'");
      }
    }
    expect(TokenKind::RBrace);
    expect(TokenKind::End);
    return std::move(spec_);
  }

 private:
  // -- token helpers ----------------------------------------------------------

  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  bool at(TokenKind kind) const { return peek().kind == kind; }
  bool atKeyword(std::string_view kw) const {
    return at(TokenKind::Identifier) && peek().text == kw;
  }
  const Token& advance() { return tokens_[pos_ == tokens_.size() - 1 ? pos_ : pos_++]; }

  [[noreturn]] void fail(const std::string& message) const {
    throw adpm::ParseError(message, peek().line, peek().column);
  }

  const Token& expect(TokenKind kind) {
    if (!at(kind)) {
      fail(std::string("expected ") + tokenKindName(kind) + ", found " +
           tokenKindName(peek().kind));
    }
    return advance();
  }

  void expectKeyword(std::string_view kw) {
    if (!atKeyword(kw)) {
      fail("expected '" + std::string(kw) + "'");
    }
    advance();
  }

  bool consumeKeyword(std::string_view kw) {
    if (!atKeyword(kw)) return false;
    advance();
    return true;
  }

  /// name ::= identifier | string
  std::string parseName(const char* what) {
    if (at(TokenKind::Identifier) || at(TokenKind::String)) {
      return advance().text;
    }
    fail(std::string("expected ") + what);
  }

  double parseNumber() {
    bool negative = false;
    if (at(TokenKind::Minus)) {
      advance();
      negative = true;
    }
    const Token& t = expect(TokenKind::Number);
    return negative ? -t.number : t.number;
  }

  // -- declarations -----------------------------------------------------------

  void parseObject() {
    expectKeyword("object");
    const std::string name = parseName("object name");
    std::string parent;
    if (consumeKeyword("parent")) parent = parseName("parent object name");
    expect(TokenKind::Semicolon);
    spec_.addObject(name, parent);
  }

  void parseProperty() {
    expectKeyword("property");
    const std::string name = parseName("property name");
    expect(TokenKind::Colon);
    const std::string object = parseName("object name");

    interval::Domain initial;
    if (consumeKeyword("range")) {
      expect(TokenKind::LBracket);
      const double lo = parseNumber();
      expect(TokenKind::Comma);
      const double hi = parseNumber();
      expect(TokenKind::RBracket);
      if (!(lo <= hi)) fail("property range requires lo <= hi");
      initial = interval::Domain::continuous(lo, hi);
    } else if (consumeKeyword("set")) {
      expect(TokenKind::LBrace);
      std::vector<double> values;
      values.push_back(parseNumber());
      while (at(TokenKind::Comma)) {
        advance();
        values.push_back(parseNumber());
      }
      expect(TokenKind::RBrace);
      initial = interval::Domain::discrete(std::move(values));
    } else {
      fail("expected 'range [lo, hi]' or 'set { v, ... }'");
    }

    std::string unit;
    if (consumeKeyword("unit")) unit = expect(TokenKind::String).text;

    std::vector<std::string> levels;
    if (consumeKeyword("levels")) {
      expect(TokenKind::LBrace);
      levels.push_back(parseName("abstraction level"));
      while (at(TokenKind::Comma)) {
        advance();
        levels.push_back(parseName("abstraction level"));
      }
      expect(TokenKind::RBrace);
    }
    int preference = 0;
    if (consumeKeyword("prefer")) {
      if (consumeKeyword("low")) {
        preference = -1;
      } else if (consumeKeyword("high")) {
        preference = 1;
      } else {
        fail("expected 'low' or 'high' after 'prefer'");
      }
    }
    expect(TokenKind::Semicolon);
    const std::size_t pi = spec_.addProperty(
        name, object, std::move(initial), std::move(unit), std::move(levels));
    spec_.properties[pi].preference = preference;
  }

  void parseConstraint() {
    expectKeyword("constraint");
    ScenarioSpec::Cons cons;
    cons.name = parseName("constraint name");
    expect(TokenKind::Colon);
    cons.lhs = parseExpr();
    if (at(TokenKind::Le)) {
      cons.rel = constraint::Relation::Le;
    } else if (at(TokenKind::Ge)) {
      cons.rel = constraint::Relation::Ge;
    } else if (at(TokenKind::EqEq)) {
      cons.rel = constraint::Relation::Eq;
    } else {
      fail("expected a relation ('<=', '>=' or '==')");
    }
    advance();
    cons.rhs = parseExpr();

    if (at(TokenKind::LBrace)) {
      advance();
      while (!at(TokenKind::RBrace)) {
        expectKeyword("monotone");
        bool increasing;
        if (consumeKeyword("increasing")) {
          increasing = true;
        } else if (consumeKeyword("decreasing")) {
          increasing = false;
        } else {
          fail("expected 'increasing' or 'decreasing'");
        }
        expectKeyword("in");
        const std::string prop = parseName("property name");
        expect(TokenKind::Semicolon);
        cons.monotone.emplace_back(resolveProperty(prop), increasing);
      }
      expect(TokenKind::RBrace);
    } else {
      expect(TokenKind::Semicolon);
    }
    spec_.addConstraint(std::move(cons));
  }

  void parseProblem() {
    expectKeyword("problem");
    ScenarioSpec::Prob prob;
    prob.name = parseName("problem name");
    expect(TokenKind::Colon);
    prob.object = parseName("object name");
    if (consumeKeyword("owner")) prob.owner = parseName("owner name");
    if (consumeKeyword("parent")) {
      prob.parent = resolveProblem(parseName("parent problem name"));
    }
    if (consumeKeyword("after")) {
      prob.predecessors.push_back(
          resolveProblem(parseName("predecessor problem name")));
      while (at(TokenKind::Comma)) {
        advance();
        prob.predecessors.push_back(
            resolveProblem(parseName("predecessor problem name")));
      }
    }
    expect(TokenKind::LBrace);
    while (!at(TokenKind::RBrace)) {
      if (consumeKeyword("inputs")) {
        parsePropertyList(prob.inputs);
      } else if (consumeKeyword("outputs")) {
        parsePropertyList(prob.outputs);
      } else if (consumeKeyword("constraints")) {
        parseConstraintList(prob.constraints);
      } else if (consumeKeyword("generates")) {
        // Constraints the DPM generates when this problem enters the
        // process (rather than existing from the initial state).
        expect(TokenKind::LBrace);
        const std::size_t problemIndex = spec_.problems.size();
        if (!at(TokenKind::RBrace)) {
          spec_.constraints[resolveConstraint(parseName("constraint name"))]
              .generatedBy = problemIndex;
          while (at(TokenKind::Comma)) {
            advance();
            spec_.constraints[resolveConstraint(parseName("constraint name"))]
                .generatedBy = problemIndex;
          }
        }
        expect(TokenKind::RBrace);
      } else if (consumeKeyword("deferred")) {
        prob.startReady = false;
        expect(TokenKind::Semicolon);
      } else {
        fail("expected 'inputs', 'outputs', 'constraints', 'generates' or "
             "'deferred'");
      }
    }
    expect(TokenKind::RBrace);
    spec_.addProblem(std::move(prob));
  }

  void parsePropertyList(std::vector<std::size_t>& out) {
    expect(TokenKind::LBrace);
    if (!at(TokenKind::RBrace)) {
      out.push_back(resolveProperty(parseName("property name")));
      while (at(TokenKind::Comma)) {
        advance();
        out.push_back(resolveProperty(parseName("property name")));
      }
    }
    expect(TokenKind::RBrace);
  }

  void parseConstraintList(std::vector<std::size_t>& out) {
    expect(TokenKind::LBrace);
    if (!at(TokenKind::RBrace)) {
      out.push_back(resolveConstraint(parseName("constraint name")));
      while (at(TokenKind::Comma)) {
        advance();
        out.push_back(resolveConstraint(parseName("constraint name")));
      }
    }
    expect(TokenKind::RBrace);
  }

  void parseRequire() {
    expectKeyword("require");
    const std::size_t prop = resolveProperty(parseName("property name"));
    expect(TokenKind::Assign);
    const double value = parseNumber();
    expect(TokenKind::Semicolon);
    spec_.require(prop, value);
  }

  // -- name resolution ---------------------------------------------------------

  std::size_t resolveProperty(const std::string& name) {
    if (const auto i = spec_.propertyIndex(name)) return *i;
    fail("unknown property '" + name + "'");
  }
  std::size_t resolveConstraint(const std::string& name) {
    if (const auto i = spec_.constraintIndex(name)) return *i;
    fail("unknown constraint '" + name + "'");
  }
  std::size_t resolveProblem(const std::string& name) {
    if (const auto i = spec_.problemIndex(name)) return *i;
    fail("unknown problem '" + name + "'");
  }

  // -- expressions -------------------------------------------------------------

  expr::Expr parseExpr() {
    expr::Expr left = parseTerm();
    while (at(TokenKind::Plus) || at(TokenKind::Minus)) {
      const bool add = at(TokenKind::Plus);
      advance();
      const expr::Expr right = parseTerm();
      left = add ? left + right : left - right;
    }
    return left;
  }

  expr::Expr parseTerm() {
    expr::Expr left = parseFactor();
    while (at(TokenKind::Star) || at(TokenKind::Slash)) {
      const bool mul = at(TokenKind::Star);
      advance();
      const expr::Expr right = parseFactor();
      left = mul ? left * right : left / right;
    }
    return left;
  }

  expr::Expr parseFactor() {
    if (at(TokenKind::Minus)) {
      advance();
      return -parseFactor();
    }
    return parsePower();
  }

  expr::Expr parsePower() {
    expr::Expr base = parsePrimary();
    if (at(TokenKind::Caret)) {
      advance();
      bool negative = false;
      if (at(TokenKind::Minus)) {
        advance();
        negative = true;
      }
      const Token& t = expect(TokenKind::Number);
      const double raw = t.number;
      if (raw != std::floor(raw)) {
        throw adpm::ParseError("exponent must be an integer", t.line,
                               t.column);
      }
      int n = static_cast<int>(raw);
      if (negative) n = -n;
      return expr::pow(base, n);
    }
    return base;
  }

  expr::Expr parsePrimary() {
    if (at(TokenKind::Number)) {
      return expr::Expr::constant(advance().number);
    }
    if (at(TokenKind::LParen)) {
      advance();
      expr::Expr inner = parseExpr();
      expect(TokenKind::RParen);
      return inner;
    }
    if (at(TokenKind::Identifier) && peek(1).kind == TokenKind::LParen) {
      const std::string func = advance().text;
      advance();  // '('
      std::vector<expr::Expr> args;
      args.push_back(parseExpr());
      while (at(TokenKind::Comma)) {
        advance();
        args.push_back(parseExpr());
      }
      expect(TokenKind::RParen);
      return applyFunction(func, std::move(args));
    }
    if (at(TokenKind::Identifier) || at(TokenKind::String)) {
      const Token& t = advance();
      const auto idx = spec_.propertyIndex(t.text);
      if (!idx) {
        throw adpm::ParseError("unknown property '" + t.text + "'", t.line,
                               t.column);
      }
      return spec_.pvar(*idx);
    }
    fail("expected an expression");
  }

  expr::Expr applyFunction(const std::string& func,
                           std::vector<expr::Expr> args) {
    auto arityCheck = [&](std::size_t n) {
      if (args.size() != n) {
        fail("function '" + func + "' takes " + std::to_string(n) +
             " argument(s)");
      }
    };
    if (func == "sqrt") { arityCheck(1); return expr::sqrt(args[0]); }
    if (func == "sqr") { arityCheck(1); return expr::sqr(args[0]); }
    if (func == "exp") { arityCheck(1); return expr::exp(args[0]); }
    if (func == "log") { arityCheck(1); return expr::log(args[0]); }
    if (func == "abs") { arityCheck(1); return expr::abs(args[0]); }
    if (func == "min") { arityCheck(2); return expr::min(args[0], args[1]); }
    if (func == "max") { arityCheck(2); return expr::max(args[0], args[1]); }
    fail("unknown function '" + func + "'");
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  ScenarioSpec spec_;
};

}  // namespace

dpm::ScenarioSpec parse(std::string_view source) {
  Parser parser(source);
  dpm::ScenarioSpec spec = parser.run();
  const auto errors = spec.validate();
  if (!errors.empty()) {
    std::string msg = "scenario '" + spec.name + "' failed validation:";
    for (const auto& e : errors) msg += "\n  " + e;
    throw adpm::ParseError(msg, 0, 0);
  }
  return spec;
}

}  // namespace adpm::dddl
