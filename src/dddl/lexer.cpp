#include "dddl/lexer.hpp"

#include <cctype>
#include <charconv>

#include "util/error.hpp"

namespace adpm::dddl {

const char* tokenKindName(TokenKind k) noexcept {
  switch (k) {
    case TokenKind::End: return "end of input";
    case TokenKind::Identifier: return "identifier";
    case TokenKind::String: return "string";
    case TokenKind::Number: return "number";
    case TokenKind::LBrace: return "'{'";
    case TokenKind::RBrace: return "'}'";
    case TokenKind::LBracket: return "'['";
    case TokenKind::RBracket: return "']'";
    case TokenKind::LParen: return "'('";
    case TokenKind::RParen: return "')'";
    case TokenKind::Comma: return "','";
    case TokenKind::Semicolon: return "';'";
    case TokenKind::Colon: return "':'";
    case TokenKind::Assign: return "'='";
    case TokenKind::Plus: return "'+'";
    case TokenKind::Minus: return "'-'";
    case TokenKind::Star: return "'*'";
    case TokenKind::Slash: return "'/'";
    case TokenKind::Caret: return "'^'";
    case TokenKind::Le: return "'<='";
    case TokenKind::Ge: return "'>='";
    case TokenKind::EqEq: return "'=='";
  }
  return "?";
}

namespace {

class Cursor {
 public:
  explicit Cursor(std::string_view src) : src_(src) {}

  bool done() const noexcept { return pos_ >= src_.size(); }
  char peek() const noexcept { return done() ? '\0' : src_[pos_]; }
  char peek2() const noexcept {
    return pos_ + 1 >= src_.size() ? '\0' : src_[pos_ + 1];
  }

  char advance() noexcept {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  int line() const noexcept { return line_; }
  int column() const noexcept { return column_; }

 private:
  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

bool isIdentStart(char c) noexcept {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool isIdentBody(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}

}  // namespace

std::vector<Token> lex(std::string_view source) {
  std::vector<Token> tokens;
  Cursor cur(source);

  auto push = [&](TokenKind kind, int line, int column, std::string text = {},
                  double number = 0.0) {
    tokens.push_back({kind, std::move(text), number, line, column});
  };

  while (!cur.done()) {
    const int line = cur.line();
    const int column = cur.column();
    const char c = cur.peek();

    if (std::isspace(static_cast<unsigned char>(c))) {
      cur.advance();
      continue;
    }
    if (c == '/' && cur.peek2() == '/') {
      while (!cur.done() && cur.peek() != '\n') cur.advance();
      continue;
    }
    if (isIdentStart(c)) {
      std::string text;
      while (!cur.done() && isIdentBody(cur.peek())) text += cur.advance();
      push(TokenKind::Identifier, line, column, std::move(text));
      continue;
    }
    if (c == '"') {
      cur.advance();
      std::string text;
      while (!cur.done() && cur.peek() != '"' && cur.peek() != '\n') {
        text += cur.advance();
      }
      if (cur.done() || cur.peek() != '"') {
        throw adpm::ParseError("unterminated string", line, column);
      }
      cur.advance();
      push(TokenKind::String, line, column, std::move(text));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(cur.peek2())))) {
      std::string text;
      while (!cur.done() &&
             (std::isdigit(static_cast<unsigned char>(cur.peek())) ||
              cur.peek() == '.' || cur.peek() == 'e' || cur.peek() == 'E' ||
              ((cur.peek() == '+' || cur.peek() == '-') &&
               (text.ends_with('e') || text.ends_with('E'))))) {
        text += cur.advance();
      }
      double value = 0.0;
      const auto [ptr, ec] =
          std::from_chars(text.data(), text.data() + text.size(), value);
      if (ec != std::errc{} || ptr != text.data() + text.size()) {
        throw adpm::ParseError("malformed number '" + text + "'", line,
                               column);
      }
      push(TokenKind::Number, line, column, {}, value);
      continue;
    }

    cur.advance();
    switch (c) {
      case '{': push(TokenKind::LBrace, line, column); break;
      case '}': push(TokenKind::RBrace, line, column); break;
      case '[': push(TokenKind::LBracket, line, column); break;
      case ']': push(TokenKind::RBracket, line, column); break;
      case '(': push(TokenKind::LParen, line, column); break;
      case ')': push(TokenKind::RParen, line, column); break;
      case ',': push(TokenKind::Comma, line, column); break;
      case ';': push(TokenKind::Semicolon, line, column); break;
      case ':': push(TokenKind::Colon, line, column); break;
      case '+': push(TokenKind::Plus, line, column); break;
      case '-': push(TokenKind::Minus, line, column); break;
      case '*': push(TokenKind::Star, line, column); break;
      case '/': push(TokenKind::Slash, line, column); break;
      case '^': push(TokenKind::Caret, line, column); break;
      case '=':
        if (cur.peek() == '=') {
          cur.advance();
          push(TokenKind::EqEq, line, column);
        } else {
          push(TokenKind::Assign, line, column);
        }
        break;
      case '<':
        if (cur.peek() == '=') {
          cur.advance();
          push(TokenKind::Le, line, column);
        } else {
          throw adpm::ParseError("expected '<=' (strict '<' is not a DDDL "
                                 "relation)",
                                 line, column);
        }
        break;
      case '>':
        if (cur.peek() == '=') {
          cur.advance();
          push(TokenKind::Ge, line, column);
        } else {
          throw adpm::ParseError("expected '>=' (strict '>' is not a DDDL "
                                 "relation)",
                                 line, column);
        }
        break;
      default:
        throw adpm::ParseError(std::string("unexpected character '") + c + "'",
                               line, column);
    }
  }
  Token end;
  end.kind = TokenKind::End;
  end.line = cur.line();
  end.column = cur.column();
  tokens.push_back(end);
  return tokens;
}

}  // namespace adpm::dddl
