// DDDL parser.
//
// Grammar (EBNF; [] optional, {} zero-or-more, | alternatives):
//
//   scenario     ::= "scenario" name "{" { declaration } "}"
//   declaration  ::= object | property | constraint | problem | require
//
//   object       ::= "object" name [ "parent" name ] ";"
//
//   property     ::= "property" name ":" name            // ": <object>"
//                    ( "range" "[" number "," number "]"
//                    | "set" "{" number { "," number } "}" )
//                    [ "unit" string ]
//                    [ "levels" "{" name { "," name } "}" ]
//                    [ "prefer" ("low" | "high") ] ";"
//
//   constraint   ::= "constraint" name ":" expr rel expr
//                    ( ";" | "{" { monotone } "}" )
//   monotone     ::= "monotone" ("increasing" | "decreasing") "in" name ";"
//   rel          ::= "<=" | ">=" | "=="
//
//   problem      ::= "problem" name ":" name [ "owner" name ]
//                    [ "parent" name ] [ "after" name { "," name } ]
//                    "{" { problemPart } "}"
//   problemPart  ::= ("inputs"|"outputs"|"constraints"|"generates")
//                    "{" [ name { "," name } ] "}"
//                  | "deferred" ";"
//
//   A constraint listed under "generates" is created by the DPM when the
//   problem enters the process instead of existing from the initial state.
//
//   require      ::= "require" name "=" number ";"
//
//   expr         ::= term { ("+"|"-") term }
//   term         ::= factor { ("*"|"/") factor }
//   factor       ::= ["-"] power
//   power        ::= primary [ "^" integer ]
//   primary      ::= number | name | "(" expr ")"
//                  | func "(" expr { "," expr } ")"
//   func         ::= "sqrt"|"sqr"|"exp"|"log"|"abs"|"min"|"max"
//   name         ::= identifier | string      // strings allow '-' in names
//
// Monotonicity declarations follow the paper's semantics: "a constraint c_i
// is monotonic in a_i if moving a_i's value in a given direction helps
// satisfy the design requirement implied by c_i" — i.e. `monotone increasing
// in X` declares that *increasing* X helps satisfy the constraint.
#pragma once

#include <string_view>

#include "dpm/scenario.hpp"

namespace adpm::dddl {

/// Parses DDDL source into a scenario spec.  Throws adpm::ParseError with
/// line/column on syntax errors and on references to undeclared names.
/// The returned spec additionally passes ScenarioSpec::validate().
dpm::ScenarioSpec parse(std::string_view source);

}  // namespace adpm::dddl
