// DDDL tokens.
//
// TeamSim "is configured for the scenario's design area using the DDDL
// language [3,10]: types of properties, constraints, problems,
// decompositions, ordering among design problems, and constraint
// monotonicity can be specified" (paper, Section 3.1.2).  The original DDDL
// (Sutton & Director, DAC'96) is not publicly available; this module
// implements a faithful equivalent covering everything the paper's scenarios
// need.  See docs in src/dddl/parser.hpp for the grammar.
#pragma once

#include <string>

namespace adpm::dddl {

enum class TokenKind : std::uint8_t {
  End,
  Identifier,  // bare name (letters, digits, '_', '.')
  String,      // "quoted name" — used for names containing '-', '+', spaces
  Number,      // floating-point literal
  // punctuation / operators
  LBrace,      // {
  RBrace,      // }
  LBracket,    // [
  RBracket,    // ]
  LParen,      // (
  RParen,      // )
  Comma,       // ,
  Semicolon,   // ;
  Colon,       // :
  Assign,      // =
  Plus,        // +
  Minus,       // -
  Star,        // *
  Slash,       // /
  Caret,       // ^
  Le,          // <=
  Ge,          // >=
  EqEq,        // ==
};

const char* tokenKindName(TokenKind k) noexcept;

struct Token {
  TokenKind kind = TokenKind::End;
  std::string text;    // identifier/string payload
  double number = 0.0; // number payload
  int line = 1;
  int column = 1;
};

}  // namespace adpm::dddl
