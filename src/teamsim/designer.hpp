// The simulated designer model (paper, Section 3.1.1 and Fig. 6).
//
// "A designer is viewed as a state-based system whose goal is to solve
// design problems. ... The process whereby each designer chooses an
// operation can be seen as the application of an operation selection
// function f_o on the internal state; f_o can be viewed as the composition
// of three functions f_p (problem selection), f_a (target property
// selection), and f_v (value selection)."
//
// The designer's internal state is fed by what the DPM/NM surface: with ADPM
// that includes the mined guidance (v_F, α, β, monotone lists); with the
// conventional flow only verification verdicts (and the designer's own
// discipline knowledge — declared monotonicity from DDDL).
#pragma once

#include <map>
#include <optional>
#include <string>

#include "dpm/manager.hpp"
#include "teamsim/options.hpp"
#include "util/rng.hpp"

namespace adpm::teamsim {

class SimulatedDesigner {
 public:
  SimulatedDesigner(std::string name, const SimulationOptions& options,
                    std::uint64_t seed);

  const std::string& name() const noexcept { return name_; }

  /// One decision step: f_o = f_v ∘ f_a ∘ f_p over the current state.
  /// Returns nullopt when the designer has nothing to do (all assigned
  /// problems solved and no known violations touching their properties).
  std::optional<dpm::Operation> nextOperation(dpm::DesignProcessManager& dpm);

  /// Called by the engine after an operation executed, so the designer can
  /// update adaptive repair state and the failure history.
  void observe(dpm::DesignProcessManager& dpm,
               const dpm::OperationRecord& record);

 private:
  struct RepairState {
    int direction = 0;    // last repair direction for this property
    double step = 0.0;    // current adaptive step size
    /// Repairs attempted on this property since its violations last
    /// cleared; candidates that keep failing rotate to the back so other
    /// knobs get tried.
    int attempts = 0;
  };

  // f_p: addressable problems (assigned, not Waiting/Unassigned).
  std::vector<dpm::ProblemId> selectProblems(
      const dpm::DesignProcessManager& dpm) const;

  // Known violated constraints that touch a property this designer can move.
  struct RepairCandidate {
    constraint::PropertyId property{};
    int alpha = 0;          // violations connected to the property
    int votesUp = 0;        // violated constraints an increase would help
    int votesDown = 0;
    constraint::ConstraintId trigger{};  // representative violation
    bool crossTrigger = false;
    /// ADPM only: rebinding this property inside its what-if feasible window
    /// can actually resolve conflicts.  Candidates whose window is empty
    /// (the conflict cannot be fixed by this property alone, given the rest
    /// of the state) rank last — this is exactly the "infeasible subspace"
    /// guidance of §2.3.1 applied to repair.
    bool fixableInWindow = true;
    /// A violated equality model determines this property outright ("read
    /// the value off the tool").  Such consistency restorations are cheap
    /// and always correct, so they are done before judging specs against
    /// stale derived values.
    bool modelSolvable = false;
  };
  std::vector<RepairCandidate> repairCandidates(
      dpm::DesignProcessManager& dpm,
      const std::vector<dpm::ProblemId>& problems);

  std::optional<dpm::Operation> makeRepair(
      dpm::DesignProcessManager& dpm,
      const std::vector<dpm::ProblemId>& problems);
  std::optional<dpm::Operation> makeBinding(
      dpm::DesignProcessManager& dpm,
      const std::vector<dpm::ProblemId>& problems);
  std::optional<dpm::Operation> makeVerification(
      dpm::DesignProcessManager& dpm,
      const std::vector<dpm::ProblemId>& problems);
  /// Post-completion improvement: nudge a preferred free variable toward its
  /// economical end if every constraint stays satisfied.
  std::optional<dpm::Operation> makeOptimization(
      dpm::DesignProcessManager& dpm,
      const std::vector<dpm::ProblemId>& problems);

  /// f_v for a fresh binding.
  double chooseBindingValue(dpm::DesignProcessManager& dpm,
                            constraint::PropertyId pid);
  /// f_v for a repair move.
  double chooseRepairValue(dpm::DesignProcessManager& dpm,
                           const RepairCandidate& candidate);

  /// Which problem (owned by this designer) outputs the property.
  std::optional<dpm::ProblemId> problemForProperty(
      const dpm::DesignProcessManager& dpm, constraint::PropertyId pid,
      const std::vector<dpm::ProblemId>& problems) const;

  std::string name_;
  SimulationOptions options_;  // by value: designers outlive engine moves
  util::Rng rng_;
  std::map<constraint::PropertyId, RepairState> repair_;
  std::size_t optimizationMoves_ = 0;
};

}  // namespace adpm::teamsim
