#include "teamsim/graphviz.hpp"

#include <sstream>

namespace adpm::teamsim {

namespace {

std::string escape(const std::string& name) {
  std::string out;
  for (char c : name) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

const char* statusColor(constraint::Status s) {
  switch (s) {
    case constraint::Status::Satisfied: return "palegreen";
    case constraint::Status::Violated: return "salmon";
    case constraint::Status::Consistent: return "lightgrey";
  }
  return "white";
}

}  // namespace

std::string toGraphviz(const dpm::DesignProcessManager& dpm) {
  const constraint::Network& net = dpm.network();
  std::ostringstream out;
  out << "graph constraint_network {\n";
  out << "  graph [overlap=false, splines=true];\n";
  out << "  node [fontname=\"Helvetica\", fontsize=10];\n";

  // One cluster per design object keeps subsystems visually grouped — the
  // cross-subsystem constraints (spin material) are the edges that leave a
  // cluster.
  std::size_t clusterIndex = 0;
  for (const std::string& objName : dpm.objectNames()) {
    const dpm::DesignObject* obj = dpm.object(objName);
    out << "  subgraph cluster_" << clusterIndex++ << " {\n";
    out << "    label=\"" << escape(objName) << "\";\n";
    const std::string owner = dpm.ownerOfObject(objName);
    if (!owner.empty()) {
      out << "    tooltip=\"owner: " << escape(owner) << "\";\n";
    }
    for (const constraint::PropertyId pid : obj->properties) {
      const constraint::Property& p = net.property(pid);
      out << "    p" << pid.value << " [label=\"" << escape(p.name);
      if (p.bound()) {
        std::ostringstream v;
        v.precision(4);
        v << *p.value;
        out << "\\n= " << v.str();
      }
      out << "\", shape=ellipse";
      if (p.bound()) out << ", style=filled, fillcolor=lightyellow";
      out << "];\n";
    }
    out << "  }\n";
  }

  const auto& statuses = dpm.knownStatuses();
  for (const constraint::ConstraintId cid : net.constraintIds()) {
    const constraint::Constraint& c = net.constraint(cid);
    const bool active = net.isActive(cid);
    out << "  c" << cid.value << " [label=\"" << escape(c.name())
        << "\", shape=box, style=\"" << (active ? "filled" : "dashed")
        << "\"";
    if (active) {
      out << ", fillcolor=" << statusColor(statuses[cid.value]);
    }
    out << "];\n";
    for (const constraint::PropertyId arg : c.arguments()) {
      out << "  c" << cid.value << " -- p" << arg.value << ";\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace adpm::teamsim
