#include "teamsim/experiment.hpp"

#include <thread>

namespace adpm::teamsim {

CellStats runSeedSweep(const dpm::ScenarioSpec& spec,
                       const SimulationOptions& base, std::size_t seeds,
                       std::uint64_t firstSeed, const std::string& label) {
  CellStats cell;
  cell.label = label;
  for (std::size_t i = 0; i < seeds; ++i) {
    SimulationOptions options = base;
    options.seed = firstSeed + i;
    SimulationEngine engine(spec, options);
    const SimulationResult r = engine.run();
    ++cell.runs;
    if (!r.completed) continue;
    ++cell.completed;
    cell.operations.add(static_cast<double>(r.operations));
    cell.evaluations.add(static_cast<double>(r.evaluations));
    cell.evaluationsPerOperation.add(r.evaluationsPerOperation());
    cell.spins.add(static_cast<double>(r.spins));
    cell.violationsFound.add(static_cast<double>(r.violationsFoundTotal));
  }
  return cell;
}

CellStats runSeedSweepParallel(const dpm::ScenarioSpec& spec,
                               const SimulationOptions& base,
                               std::size_t seeds, std::uint64_t firstSeed,
                               const std::string& label, unsigned threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    // hardware_concurrency() may legitimately return 0 ("not computable",
    // e.g. restrictive cgroups); fall back to one worker instead of relying
    // on the serial branch below staying reachable for that value.
    if (threads == 0) threads = 1;
  }
  if (threads <= 1 || seeds < 2) {
    return runSeedSweep(spec, base, seeds, firstSeed, label);
  }
  threads = static_cast<unsigned>(
      std::min<std::size_t>(threads, seeds));

  // Static seed partition keeps every run's seed identical to the serial
  // sweep; merge order does not affect the Welford aggregates beyond
  // floating-point association.
  std::vector<CellStats> shards(threads);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t]() {
      const std::size_t begin = seeds * t / threads;
      const std::size_t end = seeds * (t + 1) / threads;
      shards[t] = runSeedSweep(spec, base, end - begin, firstSeed + begin);
    });
  }
  for (std::thread& w : workers) w.join();

  CellStats cell;
  cell.label = label;
  for (const CellStats& shard : shards) cell.merge(shard);
  return cell;
}

Comparison compareApproaches(const dpm::ScenarioSpec& spec,
                             const SimulationOptions& base, std::size_t seeds,
                             std::uint64_t firstSeed) {
  Comparison cmp;
  SimulationOptions adpmOptions = base;
  adpmOptions.adpm = true;
  cmp.adpm = runSeedSweep(spec, adpmOptions, seeds, firstSeed, "ADPM");

  SimulationOptions convOptions = base;
  convOptions.adpm = false;
  cmp.conventional =
      runSeedSweep(spec, convOptions, seeds, firstSeed, "Conventional");
  return cmp;
}

}  // namespace adpm::teamsim
