// Fig. 8: TeamSim's design process statistics window, as a text panel.
//
// "Key statistics are dynamically displayed, including the number of
// constraints, the number of violations, the number of constraint
// evaluations, and the cumulative number of design spins."
#pragma once

#include <string>

#include "teamsim/engine.hpp"

namespace adpm::teamsim {

/// Renders the current statistics panel for a running (or finished) engine.
std::string renderStatisticsWindow(const SimulationEngine& engine);

/// Renders a sparkline-style history strip for one metric of the trace
/// (used by the Fig. 8 bench to show the violations and evaluations series).
std::string renderHistoryStrip(const std::vector<OpStat>& trace,
                               const std::string& metric,
                               std::size_t width = 60);

}  // namespace adpm::teamsim
