// Session-client adapter: mounts TeamSim's SimulatedDesigners as stepwise
// clients of an externally-hosted design session.
//
// SimulationEngine owns its DPM and drives the whole team to completion in
// one loop; a *hosted* session inverts that control — the service schedules
// one operation at a time on the session's strand, interleaved with other
// sessions.  TeamClient packages the team (one SimulatedDesigner per
// designer named in the manager, with the same per-designer seed derivation
// as the engine) behind a single `stepOnce` call that the host invokes
// whenever the session's strand has a slot: the next designer in round-robin
// order proposes an operation (f_o over the current state) and the client
// returns it for the host to execute, then feeds the record back through
// `observe`.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "dpm/manager.hpp"
#include "teamsim/designer.hpp"
#include "teamsim/options.hpp"

namespace adpm::teamsim {

class TeamClient {
 public:
  /// Builds one client per designer named in `dpm` (same order and seed
  /// stream as SimulationEngine, so a hosted single-session run proposes
  /// the same operations as the in-process engine would).
  TeamClient(const dpm::DesignProcessManager& dpm,
             const SimulationOptions& options);

  /// Lets the next idle-or-busy designer (round-robin) propose one
  /// operation against the session state.  Returns nullopt when every
  /// designer is idle (design complete or deadlocked).  Must be called
  /// with exclusive access to the manager (the session's strand).
  std::optional<dpm::Operation> propose(dpm::DesignProcessManager& dpm);

  /// Feeds an executed operation's record back to its proposing designer
  /// (adaptive repair state, failure history).  Call after the host applied
  /// the operation returned by propose().
  void observe(dpm::DesignProcessManager& dpm,
               const dpm::OperationRecord& record);

  std::size_t designerCount() const noexcept { return designers_.size(); }
  std::size_t operationsProposed() const noexcept { return proposed_; }

 private:
  std::vector<SimulatedDesigner> designers_;
  std::size_t nextDesigner_ = 0;
  std::size_t lastProposer_ = 0;
  std::size_t proposed_ = 0;
};

}  // namespace adpm::teamsim
