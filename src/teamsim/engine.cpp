#include "teamsim/engine.hpp"

#include "util/rng.hpp"

namespace adpm::teamsim {

SimulationEngine::SimulationEngine(const dpm::ScenarioSpec& spec,
                                   SimulationOptions options)
    : options_(options),
      dpm_(std::make_unique<dpm::DesignProcessManager>(
          options.managerOptions())) {
  dpm::instantiate(spec, *dpm_);
  // Evaluate the initial state so ADPM designers have guidance from the
  // first operation on (part of ADPM's computational cost).
  dpm_->bootstrap();
  bootstrapEvals_ = dpm_->network().evaluationCount();

  // Deterministic per-designer streams derived from the run seed.
  std::uint64_t seedState = options_.seed;
  for (const std::string& name : dpm_->designers()) {
    designers_.emplace_back(name, options_, util::splitmix64(seedState));
  }
}

bool SimulationEngine::step() {
  if (designers_.empty()) return false;
  for (std::size_t k = 0; k < designers_.size(); ++k) {
    const std::size_t di = (nextDesigner_ + k) % designers_.size();
    SimulatedDesigner& designer = designers_[di];
    std::optional<dpm::Operation> op = designer.nextOperation(*dpm_);
    if (!op) continue;

    const dpm::DesignProcessManager::ExecResult result =
        dpm_->execute(std::move(*op));
    designer.observe(*dpm_, result.record);
    notifications_ += result.notifications.size();

    if (result.record.spin) ++spins_;
    violationsFoundTotal_ += result.record.violationsFound.size();

    OpStat stat;
    stat.opIndex = result.record.stage;
    stat.designer = result.record.op.designer;
    stat.kind = result.record.op.kind;
    stat.assignments = result.record.op.assignments.size();
    stat.violationsFound = result.record.violationsFound.size();
    stat.violationsKnown = result.record.violationsKnownAfter;
    stat.evaluations = result.record.evaluations;
    stat.cumulativeEvaluations = dpm_->network().evaluationCount();
    stat.spin = result.record.spin;
    stat.cumulativeSpins = spins_;
    stat.constraintsTotal = dpm_->network().activeConstraintCount();
    trace_.push_back(std::move(stat));

    nextDesigner_ = (di + 1) % designers_.size();
    return true;
  }
  return false;
}

SimulationResult SimulationEngine::run() {
  // Designers idle (step() returns false) once the design is complete and
  // any optimization budget is spent, so completion is detected by idleness;
  // the explicit check merely avoids a final full polling round when no
  // optimization is configured.
  while (trace_.size() < options_.maxOperations) {
    if (options_.optimizationPasses == 0 && complete()) break;
    if (!step()) break;  // everyone idle: either done or deadlocked
  }
  return result();
}

SimulationResult SimulationEngine::result() const {
  SimulationResult r;
  r.completed = dpm_->designComplete();
  r.operations = trace_.size();
  r.evaluations = dpm_->network().evaluationCount();
  r.spins = spins_;
  r.violationsFoundTotal = violationsFoundTotal_;
  r.notifications = notifications_;
  r.trace = trace_;
  return r;
}

}  // namespace adpm::teamsim
