#include "teamsim/statwindow.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"
#include "util/table.hpp"

namespace adpm::teamsim {

std::string renderStatisticsWindow(const SimulationEngine& engine) {
  const auto& trace = engine.trace();
  const auto& dpm = engine.manager();

  std::ostringstream out;
  out << "+--------------------------------------------------+\n";
  out << "|        TeamSim  -  Design Process Statistics     |\n";
  out << "+--------------------------------------------------+\n";
  util::TextTable t;
  t.row({"Approach", engine.options().adpm ? "ADPM (lambda=T)"
                                           : "Conventional (lambda=F)"});
  std::size_t synth = 0;
  std::size_t verify = 0;
  std::size_t decompose = 0;
  for (const auto& s : trace) {
    switch (s.kind) {
      case dpm::OperatorKind::Synthesis: ++synth; break;
      case dpm::OperatorKind::Verification: ++verify; break;
      case dpm::OperatorKind::Decomposition: ++decompose; break;
    }
  }
  t.row({"Executed operations",
         std::to_string(trace.size())});
  t.row({"  synthesis / verification / decomposition",
         std::to_string(synth) + " / " + std::to_string(verify) + " / " +
             std::to_string(decompose)});
  t.row({"Number of constraints",
         std::to_string(dpm.network().activeConstraintCount())});
  t.row({"Current violations", std::to_string(dpm.knownViolationCount())});
  t.row({"Constraint evaluations",
         std::to_string(dpm.network().evaluationCount())});
  const std::size_t spins = trace.empty() ? 0 : trace.back().cumulativeSpins;
  t.row({"Cumulative design spins", std::to_string(spins)});
  t.row({"Notifications sent", std::to_string(engine.result().notifications)});
  t.row({"Design complete", dpm.designComplete() ? "yes" : "no"});
  out << t.render();
  return out.str();
}

std::string renderHistoryStrip(const std::vector<OpStat>& trace,
                               const std::string& metric, std::size_t width) {
  auto metricOf = [&](const OpStat& s) -> double {
    if (metric == "violationsFound") return static_cast<double>(s.violationsFound);
    if (metric == "violationsKnown") return static_cast<double>(s.violationsKnown);
    if (metric == "evaluations") return static_cast<double>(s.evaluations);
    if (metric == "spins") return static_cast<double>(s.cumulativeSpins);
    throw adpm::InvalidArgumentError("unknown metric '" + metric + "'");
  };

  if (trace.empty()) return "(no operations)\n";

  // Downsample the trace to `width` buckets; each bucket shows the max.
  const std::size_t buckets = std::min(width, trace.size());
  std::vector<double> series(buckets, 0.0);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const std::size_t b = i * buckets / trace.size();
    series[b] = std::max(series[b], metricOf(trace[i]));
  }
  const double peak = *std::max_element(series.begin(), series.end());

  static constexpr const char* kGlyphs[] = {" ", ".", ":", "-", "=", "#", "@"};
  std::ostringstream out;
  out << metric << " [peak " << peak << "]: ";
  for (double v : series) {
    const int level =
        peak <= 0.0 ? 0
                    : static_cast<int>(v / peak * 6.0 + 0.5);
    out << kGlyphs[std::clamp(level, 0, 6)];
  }
  out << "\n";
  return out.str();
}

}  // namespace adpm::teamsim
