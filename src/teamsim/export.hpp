// Post-simulation data export.
//
// The paper's TeamSim connected Minerva III "with existing visualization
// programs (Gnuplot and Lefty)".  This module is the equivalent output
// stage: simulation traces, seed-sweep aggregates and tightness sweeps are
// written as CSV, and ready-to-run Gnuplot scripts are generated for the
// paper's figures.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "teamsim/engine.hpp"
#include "teamsim/experiment.hpp"

namespace adpm::teamsim {

/// Writes the per-operation trace as CSV: one row per executed operation
/// with every statistic TeamSim captures.
void writeTraceCsv(std::ostream& out, const std::vector<OpStat>& trace);

/// Writes a Fig. 7-style two-run profile: op index, per-op violations and
/// evaluations for the conventional and ADPM runs side by side (shorter run
/// padded with zeros).
void writeProfileCsv(std::ostream& out, const std::vector<OpStat>& conventional,
                     const std::vector<OpStat>& adpm);

/// Writes the Fig. 9-style cell aggregate table (one row per cell).
void writeCellsCsv(std::ostream& out, const std::vector<CellStats>& cells);

/// Writes a Fig. 10-style sweep: x value plus conventional/ADPM means and
/// standard deviations per row.
struct SweepPoint {
  double x = 0.0;
  CellStats conventional;
  CellStats adpm;
};
void writeSweepCsv(std::ostream& out, const std::string& xLabel,
                   const std::vector<SweepPoint>& points);

/// Gnuplot scripts that plot the CSVs written above.  `dataFile` is the CSV
/// path the script will read.
std::string gnuplotProfileScript(const std::string& dataFile);
std::string gnuplotSweepScript(const std::string& dataFile,
                               const std::string& xLabel);

}  // namespace adpm::teamsim
