#include "teamsim/designer.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "expr/derivative.hpp"
#include "expr/eval.hpp"

namespace adpm::teamsim {

using constraint::ConstraintId;
using constraint::PropertyId;
using constraint::Relation;
using constraint::Status;

namespace {

/// Defining equality models: constraints of the form `p == f(...)` (or the
/// mirror) where f does not mention p.  A property with such a model is
/// *derived* — a tool computes it; the designer cannot choose it freely.
std::vector<constraint::ConstraintId> definingModels(
    const constraint::Network& net, PropertyId p) {
  std::vector<constraint::ConstraintId> out;
  for (constraint::ConstraintId cid : net.constraintsOf(p)) {
    if (!net.isActive(cid)) continue;  // not generated yet
    const constraint::Constraint& c = net.constraint(cid);
    if (c.relation() != Relation::Eq) continue;
    const expr::Expr* other = nullptr;
    if (c.lhs().kind() == expr::OpKind::Var && c.lhs().node().var == p.value) {
      other = &c.rhs();
    } else if (c.rhs().kind() == expr::OpKind::Var &&
               c.rhs().node().var == p.value) {
      other = &c.lhs();
    }
    if (other != nullptr && !expr::mentions(*other, p.value)) out.push_back(cid);
  }
  return out;
}

/// "Read the value off the tool": when a violated model pins property p as
/// the lone subject of an equality whose other side is fully determined, the
/// designer can set p to the computed value directly instead of stepping
/// toward it.  Returns nullopt when no such model applies.
std::optional<double> solveFromEqualityModel(
    const dpm::DesignProcessManager& dpm, PropertyId p) {
  const constraint::Network& net = dpm.network();
  for (constraint::ConstraintId cid : net.constraintsOf(p)) {
    if (!net.isActive(cid)) continue;
    if (dpm.knownStatuses()[cid.value] != Status::Violated) continue;
    const constraint::Constraint& c = net.constraint(cid);
    if (c.relation() != Relation::Eq) continue;

    // Identify which side is exactly `p`.
    const expr::Expr* solvedSide = nullptr;
    const expr::Expr* otherSide = nullptr;
    if (c.lhs().kind() == expr::OpKind::Var && c.lhs().node().var == p.value) {
      solvedSide = &c.lhs();
      otherSide = &c.rhs();
    } else if (c.rhs().kind() == expr::OpKind::Var &&
               c.rhs().node().var == p.value) {
      solvedSide = &c.rhs();
      otherSide = &c.lhs();
    }
    if (solvedSide == nullptr) continue;
    if (expr::mentions(*otherSide, p.value)) continue;

    std::vector<double> values(net.propertyCount(), 0.0);
    bool allBound = true;
    for (expr::VarId v : expr::variablesOf(*otherSide)) {
      const constraint::Property& ap = net.property(PropertyId{v});
      if (!ap.bound()) {
        allBound = false;
        break;
      }
      values[v] = *ap.value;
    }
    if (!allBound) continue;
    const double solved = expr::evalPoint(*otherSide, values);
    if (std::isfinite(solved)) return solved;
  }
  return std::nullopt;
}

/// Value of `pid` in the world where design variable `b` is set to `x`, all
/// other design variables keep their current values, and every derived
/// property is recomputed from its defining model (the designer mentally
/// re-running their spreadsheet).  `excluded` is the constraint under
/// repair, never used as a model.
double resolvedValue(const constraint::Network& net, PropertyId pid,
                     PropertyId b, double x, const std::vector<double>& point,
                     ConstraintId excluded, int depth) {
  if (pid == b) return x;
  if (depth > 0) {
    for (ConstraintId mid : definingModels(net, pid)) {
      if (mid == excluded) continue;
      const constraint::Constraint& m = net.constraint(mid);
      const expr::Expr& other =
          (m.lhs().kind() == expr::OpKind::Var &&
           m.lhs().node().var == pid.value)
              ? m.rhs()
              : m.lhs();
      std::vector<double> values(net.propertyCount(), 0.0);
      for (expr::VarId v : expr::variablesOf(other)) {
        values[v] =
            resolvedValue(net, PropertyId{v}, b, x, point, excluded, depth - 1);
      }
      const double computed = expr::evalPoint(other, values);
      if (std::isfinite(computed)) return computed;
    }
  }
  return point[pid.value];
}

/// Residual of constraint `c` as a function of design variable `b` alone,
/// with derived properties resynced (see resolvedValue).
double resolvedResidual(const constraint::Network& net,
                        const constraint::Constraint& c, PropertyId b,
                        double x, const std::vector<double>& point) {
  std::vector<double> values(net.propertyCount(), 0.0);
  for (PropertyId a : c.arguments()) {
    values[a.value] = resolvedValue(net, a, b, x, point, c.id(), 4);
  }
  return expr::evalPoint(c.residual(), values);
}

/// 1-D boundary solve: the value of `b` in its range that brings constraint
/// `c` to its boundary, nudged `margin` into the satisfying side.  Engineers
/// do exactly this with the numbers a verification tool reports ("power is
/// 26.6 mW against a 25 mW cap — back the gain off to ...").  Returns
/// nullopt when the constraint has no crossing inside b's range.
std::optional<double> solveBoundary(const constraint::Network& net,
                                    const constraint::Constraint& c,
                                    PropertyId b,
                                    const std::vector<double>& point,
                                    double margin) {
  const interval::Interval range = net.property(b).initial.hull();
  if (!range.isBounded() || range.isPoint()) return std::nullopt;

  // Satisfaction test for a residual value.
  auto satisfied = [&](double g) {
    switch (c.relation()) {
      case Relation::Le: return g <= 0.0;
      case Relation::Ge: return g >= 0.0;
      case Relation::Eq: return g == 0.0;
    }
    return false;
  };

  // Scan for a sign change of "satisfied-ness" across the range.
  constexpr int kSamples = 32;
  const double width = range.width();
  double prevX = range.lo();
  double prevG = resolvedResidual(net, c, b, prevX, point);
  double bestLo = 0.0;
  double bestHi = 0.0;
  bool found = false;
  for (int i = 1; i <= kSamples; ++i) {
    const double x = range.lo() + width * i / kSamples;
    const double g = resolvedResidual(net, c, b, x, point);
    if (std::isfinite(prevG) && std::isfinite(g) &&
        (satisfied(prevG) != satisfied(g) ||
         (prevG > 0.0) != (g > 0.0))) {
      bestLo = prevX;
      bestHi = x;
      found = true;
      break;
    }
    prevX = x;
    prevG = g;
  }
  if (!found) return std::nullopt;

  // Bisect to the crossing.
  double lo = bestLo;
  double hi = bestHi;
  double gLo = resolvedResidual(net, c, b, lo, point);
  for (int iter = 0; iter < 50; ++iter) {
    const double mid = 0.5 * (lo + hi);
    const double gMid = resolvedResidual(net, c, b, mid, point);
    if ((gLo > 0.0) == (gMid > 0.0)) {
      lo = mid;
      gLo = gMid;
    } else {
      hi = mid;
    }
  }
  const double root = 0.5 * (lo + hi);

  if (c.relation() == Relation::Eq) return range.clamp(root);
  // Step `margin` into the satisfying side.
  const double gRight =
      resolvedResidual(net, c, b, std::min(root + 1e-6 * width, range.hi()),
                       point);
  const bool rightSatisfies = satisfied(gRight);
  const double value = rightSatisfies ? root + margin : root - margin;
  return range.clamp(value);
}

/// Clamps a proposed repair value so it does not walk through the boundary
/// of any constraint the designer can check outright (every other argument
/// bound).  Stepping Vref below its floor to chase a noise spec just trades
/// one violation for another; an engineer stops at the boundary.
double clampToKnownConstraints(const dpm::DesignProcessManager& dpm,
                               PropertyId pid, double current,
                               double proposed) {
  const constraint::Network& net = dpm.network();
  std::vector<double> values(net.propertyCount(), 0.0);
  for (std::uint32_t i = 0; i < net.propertyCount(); ++i) {
    const constraint::Property& p = net.property(PropertyId{i});
    values[i] = p.bound() ? *p.value : p.initial.hull().mid();
  }

  double value = proposed;
  for (ConstraintId cid : net.constraintsOf(pid)) {
    if (!net.isActive(cid)) continue;
    const constraint::Constraint& c = net.constraint(cid);
    if (c.relation() == Relation::Eq) continue;  // models resync afterwards
    bool checkable = true;
    for (PropertyId a : c.arguments()) {
      if (!(a == pid) && !net.property(a).bound()) {
        checkable = false;
        break;
      }
    }
    if (!checkable) continue;

    auto residualAt = [&](double x) {
      values[pid.value] = x;
      return expr::evalPoint(c.residual(), values);
    };
    auto ok = [&](double g) {
      return c.relation() == Relation::Le ? g <= 0.0 : g >= 0.0;
    };
    // Only guard boundaries the current value respects; a constraint that is
    // already violated is what the repair is trying to escape.
    if (!ok(residualAt(current))) continue;
    if (ok(residualAt(value))) continue;

    // Bisect between current (ok) and value (not ok) for the boundary.
    double lo = current;
    double hi = value;
    for (int iter = 0; iter < 50; ++iter) {
      const double mid = 0.5 * (lo + hi);
      if (ok(residualAt(mid))) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    // Stop short of the boundary, on the satisfying side.
    value = current + (lo - current) * 0.9;
  }
  return value;
}

}  // namespace

SimulatedDesigner::SimulatedDesigner(std::string name,
                                     const SimulationOptions& options,
                                     std::uint64_t seed)
    : name_(std::move(name)), options_(options), rng_(seed) {}

std::vector<dpm::ProblemId> SimulatedDesigner::selectProblems(
    const dpm::DesignProcessManager& dpm) const {
  // f_p: assigned problems that are addressable (not Waiting/Unassigned).
  std::vector<dpm::ProblemId> out;
  for (dpm::ProblemId id : dpm.problemsOf(name_)) {
    const dpm::ProblemStatus s = dpm.problem(id).status;
    if (s == dpm::ProblemStatus::Ready || s == dpm::ProblemStatus::InProgress ||
        s == dpm::ProblemStatus::Solved) {
      out.push_back(id);
    }
  }
  return out;
}

std::optional<dpm::Operation> SimulatedDesigner::nextOperation(
    dpm::DesignProcessManager& dpm) {
  const std::vector<dpm::ProblemId> problems = selectProblems(dpm);
  if (problems.empty()) return std::nullopt;

  // Release undecomposed work first: a problem with Unassigned children
  // needs its decomposition operator applied before anyone can act on them.
  for (dpm::ProblemId id : problems) {
    for (dpm::ProblemId child : dpm.problem(id).children) {
      if (dpm.problem(child).status == dpm::ProblemStatus::Unassigned) {
        dpm::Operation op;
        op.kind = dpm::OperatorKind::Decomposition;
        op.problem = id;
        op.designer = name_;
        op.rationale = "release subproblems of " + dpm.problem(id).name;
        return op;
      }
    }
  }

  // f_a priority 1: violations exist -> repair.
  if (auto op = makeRepair(dpm, problems)) return op;
  // f_a priority 2: unbound outputs -> bind (smallest subspace first).
  if (auto op = makeBinding(dpm, problems)) return op;
  // Conventional flow: request verification for completed work.
  if (!dpm.adpmEnabled()) {
    if (auto op = makeVerification(dpm, problems)) return op;
  }
  // Optimization operators: once the design is complete, spend the optional
  // improvement budget.
  if (options_.optimizationPasses > optimizationMoves_ &&
      dpm.designComplete()) {
    if (auto op = makeOptimization(dpm, problems)) return op;
  }
  return std::nullopt;
}

std::optional<dpm::Operation> SimulatedDesigner::makeOptimization(
    dpm::DesignProcessManager& dpm,
    const std::vector<dpm::ProblemId>& problems) {
  const constraint::Network& net = dpm.network();

  std::vector<double> point(net.propertyCount(), 0.0);
  for (std::uint32_t i = 0; i < net.propertyCount(); ++i) {
    const constraint::Property& p = net.property(PropertyId{i});
    point[i] = p.bound() ? *p.value : p.initial.hull().mid();
  }

  std::vector<std::pair<PropertyId, dpm::ProblemId>> candidates;
  for (dpm::ProblemId id : problems) {
    for (PropertyId pid : dpm.problem(id).outputs) {
      const constraint::Property& p = net.property(pid);
      if (dpm.isFrozen(pid) || !p.bound()) continue;
      if (p.preference == 0 || p.initial.isDiscrete()) continue;
      if (!definingModels(net, pid).empty()) continue;  // derived
      candidates.emplace_back(pid, id);
    }
  }
  rng_.shuffle(candidates);

  for (const auto& [pid, problem] : candidates) {
    const constraint::Property& p = net.property(pid);
    const interval::Interval range = p.initial.hull();

    // A move is admissible only if every active constraint still holds in
    // the resynced world (derived properties recomputed through models).
    auto safeAt = [&](double target) {
      for (ConstraintId cid : net.constraintIds()) {
        if (!net.isActive(cid)) continue;
        const constraint::Constraint& c = net.constraint(cid);
        if (c.relation() == Relation::Eq) continue;  // models resync after
        const double g = resolvedResidual(net, c, pid, target, point);
        const bool ok = c.relation() == Relation::Le ? g <= 0.0 : g >= 0.0;
        if (!ok || !std::isfinite(g)) return false;
      }
      return true;
    };

    // Back off through halved steps when the full nudge crosses a boundary.
    double step = range.width() * options_.optimizationStep;
    for (int attempt = 0; attempt < 4; ++attempt, step *= 0.5) {
      const double target =
          range.clamp(*p.value + (p.preference > 0 ? step : -step));
      if (std::fabs(target - *p.value) < 1e-12) break;
      if (!safeAt(target)) continue;

      dpm::Operation op;
      op.kind = dpm::OperatorKind::Synthesis;
      op.problem = problem;
      op.designer = name_;
      op.assignments.emplace_back(pid, target);
      op.rationale = "optimize " + p.name + " toward its preferred " +
                     (p.preference > 0 ? "maximum" : "minimum");
      ++optimizationMoves_;
      return op;
    }
  }
  return std::nullopt;
}

std::vector<SimulatedDesigner::RepairCandidate>
SimulatedDesigner::repairCandidates(
    dpm::DesignProcessManager& dpm,
    const std::vector<dpm::ProblemId>& problems) {
  const constraint::GuidanceReport* guidance = dpm.latestGuidance();
  const constraint::Network& net = dpm.network();

  // Properties this designer can move: outputs of addressable problems.
  std::vector<PropertyId> mine;
  for (dpm::ProblemId id : problems) {
    for (PropertyId o : dpm.problem(id).outputs) {
      if (!dpm.isFrozen(o)) mine.push_back(o);
    }
  }

  // Sensitivity analysis: the total derivative of a residual with respect
  // to a design variable at the current point, chained through defining
  // equality models (d res/d b = Σ_x ∂res/∂x · dx/db).  This is the
  // designer's own discipline knowledge — engineers know which knob moves
  // which number and by how much — and also the paper's §2.3.2 extension
  // ("β_i may also include constraints indirectly related to a_i by an
  // intermediate constraint").
  std::vector<double> point(net.propertyCount());
  std::vector<interval::Interval> pointBox(net.propertyCount());
  for (std::uint32_t i = 0; i < net.propertyCount(); ++i) {
    const constraint::Property& p = net.property(PropertyId{i});
    point[i] = p.bound() ? *p.value : p.initial.hull().mid();
    pointBox[i] = interval::Interval(point[i]);
  }

  // dx/db through defining models, depth-capped against cycles.  The
  // constraint currently being repaired is excluded from the chain:
  // chaining a residual through its own defining model cancels every
  // sensitivity to zero by construction.
  std::function<double(PropertyId, PropertyId, ConstraintId, int)> dxdb =
      [&](PropertyId x, PropertyId b, ConstraintId excluded,
          int depth) -> double {
    if (x == b) return 1.0;
    if (depth <= 0) return 0.0;
    for (ConstraintId mid : definingModels(net, x)) {
      if (mid == excluded) continue;
      const constraint::Constraint& m = net.constraint(mid);
      const expr::Expr& other =
          (m.lhs().kind() == expr::OpKind::Var &&
           m.lhs().node().var == x.value)
              ? m.rhs()
              : m.lhs();
      double total = 0.0;
      for (expr::VarId v : expr::variablesOf(other)) {
        const double partial =
            expr::evalDerivative(other, pointBox, v).derivative.mid();
        if (partial == 0.0 || !std::isfinite(partial)) continue;
        const double inner = dxdb(PropertyId{v}, b, excluded, depth - 1);
        if (inner != 0.0) total += partial * inner;
      }
      if (total != 0.0 && std::isfinite(total)) return total;
    }
    return 0.0;
  };

  // Helpful direction of b for a violated constraint: the side the residual
  // must move times the sign of the chained sensitivity.
  auto chainDirection = [&](PropertyId b, ConstraintId cid) -> int {
    const constraint::Constraint& c = net.constraint(cid);
    // Needed residual shift.
    int shift = 0;
    switch (c.relation()) {
      case Relation::Le: shift = -1; break;
      case Relation::Ge: shift = +1; break;
      case Relation::Eq: {
        const double residual = expr::evalPoint(c.residual(), point);
        if (!std::isfinite(residual) || residual == 0.0) return 0;
        shift = residual > 0.0 ? -1 : +1;
        break;
      }
    }
    double total = 0.0;
    for (PropertyId a : c.arguments()) {
      const double partial =
          expr::evalDerivative(c.residual(), pointBox, a.value)
              .derivative.mid();
      if (partial == 0.0 || !std::isfinite(partial)) continue;
      const double inner = dxdb(a, b, cid, 4);
      if (inner != 0.0) total += partial * inner;
    }
    if (!std::isfinite(total) || total == 0.0) return 0;
    return shift * (total > 0.0 ? 1 : -1);
  };

  // Conventional flow: a violated verdict is actionable evidence only while
  // the model chain feeding the constraint is fresh.  Once the designer has
  // turned an upstream knob, the derived values are stale and the old
  // verdict says nothing about the new state — re-run the tools first.
  std::function<bool(PropertyId, int)> chainFresh =
      [&](PropertyId a, int depth) -> bool {
    if (depth <= 0) return true;
    for (ConstraintId mid : definingModels(net, a)) {
      if (dpm.isStale(mid)) return false;
      for (PropertyId v : net.constraint(mid).arguments()) {
        if (!(v == a) && !chainFresh(v, depth - 1)) return false;
      }
    }
    return true;
  };
  auto evidenceFresh = [&](ConstraintId cid) {
    if (guidance != nullptr) return true;  // ADPM re-propagates every state
    for (PropertyId a : net.constraint(cid).arguments()) {
      if (!chainFresh(a, 4)) return false;
    }
    return true;
  };

  std::vector<RepairCandidate> out;
  for (PropertyId pid : mine) {
    RepairCandidate cand;
    cand.property = pid;
    for (ConstraintId cid : net.constraintIds()) {
      if (dpm.knownStatuses()[cid.value] != Status::Violated) continue;
      if (!evidenceFresh(cid)) continue;
      const bool direct = net.constraint(cid).involves(pid);
      const int dir = chainDirection(pid, cid);
      if (!direct && dir == 0) continue;  // no influence on this conflict
      ++cand.alpha;
      // Representative trigger: prefer a cross-subsystem violation (it is
      // what makes the eventual repair a spin).
      const bool cross = dpm.crossSubsystem(cid);
      if (cand.alpha == 1 || (cross && !cand.crossTrigger)) {
        cand.trigger = cid;
        cand.crossTrigger = cross;
      }
      if (dir > 0) ++cand.votesUp;
      if (dir < 0) ++cand.votesDown;
      // Fall back to the scenario's declared monotonicity when the local
      // sensitivity is flat.
      if (dir == 0 && direct) {
        const int declared =
            net.constraint(cid).declaredHelpDirection(pid);
        if (declared > 0) ++cand.votesUp;
        if (declared < 0) ++cand.votesDown;
      }
    }

    if (cand.alpha == 0) {
      repair_[pid].attempts = 0;  // its conflicts cleared; forgive the knob
      continue;
    }
    // Model solves only count when achievable: the computed value must lie
    // inside the property's range (a clamped solve leaves the model violated
    // and would starve the knob that can actually fix things), and must
    // differ from the current binding.
    if (const auto solved = solveFromEqualityModel(dpm, pid)) {
      const constraint::Property& prop = dpm.network().property(pid);
      const double tol = prop.initial.measure() * 1e-9 + 1e-12;
      cand.modelSolvable =
          prop.initial.contains(*solved, tol) &&
          (!prop.bound() || std::fabs(*solved - *prop.value) > 1e-15);
    }

    // A derived property whose defining model currently *holds* cannot be
    // repaired: rebinding it away from the model value only manufactures a
    // new conflict.  Its spec violations are fixed upstream, through the
    // design variables the indirect expansion credited.
    const auto models = definingModels(dpm.network(), pid);
    if (!models.empty()) {
      const bool anyModelViolated = std::any_of(
          models.begin(), models.end(), [&](constraint::ConstraintId mid) {
            return dpm.knownStatuses()[mid.value] == Status::Violated;
          });
      if (!anyModelViolated) continue;
    }
    if (guidance != nullptr) {
      const auto& g = guidance->of(pid);
      const constraint::Property& prop = dpm.network().property(pid);
      if (g.feasible.empty()) {
        cand.fixableInWindow = false;
      } else if (prop.bound() && g.feasible.isPoint() &&
                 std::fabs(g.feasible.minValue() - *prop.value) < 1e-12) {
        // The only consistent value is the current one: moving this
        // property cannot resolve anything on its own; it still ranks above
        // empty-window candidates because a delta step might.
        cand.fixableInWindow = false;
      }
    }
    out.push_back(cand);
  }
  return out;
}

std::optional<dpm::Operation> SimulatedDesigner::makeRepair(
    dpm::DesignProcessManager& dpm,
    const std::vector<dpm::ProblemId>& problems) {
  std::vector<RepairCandidate> candidates = repairCandidates(dpm, problems);
  if (candidates.empty()) return std::nullopt;

  // f_a: "preference is given to properties involved in many violations",
  // with direction-vote clarity as a secondary signal.  Ties are resolved
  // randomly (shuffle first, stable_sort preserves the shuffle among ties).
  rng_.shuffle(candidates);
  if (options_.useAlphaRepair) {
    std::stable_sort(candidates.begin(), candidates.end(),
                     [&](const RepairCandidate& a, const RepairCandidate& b) {
                       if (a.modelSolvable != b.modelSolvable) {
                         return a.modelSolvable;
                       }
                       // Knobs that keep failing rotate to the back in
                       // coarse buckets so alternatives get tried — even a
                       // knob with a promising what-if window loses its turn
                       // after repeated fruitless repairs (the window is
                       // computed amid other violations and can mislead).
                       const int ba = repair_[a.property].attempts / 3;
                       const int bb = repair_[b.property].attempts / 3;
                       if (ba != bb) return ba < bb;
                       if (a.fixableInWindow != b.fixableInWindow) {
                         return a.fixableInWindow;
                       }
                       if (a.alpha != b.alpha) return a.alpha > b.alpha;
                       if (!options_.useDirectionVoting) return false;
                       return std::abs(a.votesUp - a.votesDown) >
                              std::abs(b.votesUp - b.votesDown);
                     });
  }

  for (const RepairCandidate& cand : candidates) {
    const constraint::Property& prop = dpm.network().property(cand.property);
    const double newValue = chooseRepairValue(dpm, cand);
    if (prop.bound() && std::fabs(newValue - *prop.value) < 1e-15) continue;

    const auto problem = problemForProperty(dpm, cand.property, problems);
    if (!problem) continue;
    dpm::Operation op;
    op.kind = dpm::OperatorKind::Synthesis;
    op.problem = *problem;
    op.designer = name_;
    op.assignments.emplace_back(cand.property, newValue);
    op.triggeredBy = cand.trigger;
    op.rationale = "repair " +
                   dpm.network().constraint(cand.trigger).name() +
                   " via " + dpm.network().property(cand.property).name +
                   " (alpha=" + std::to_string(cand.alpha) +
                   (cand.modelSolvable ? ", model resync" : "") + ")";
    ++repair_[cand.property].attempts;
    return op;
  }
  return std::nullopt;
}

double SimulatedDesigner::chooseRepairValue(dpm::DesignProcessManager& dpm,
                                            const RepairCandidate& candidate) {
  const constraint::Property& prop = dpm.network().property(candidate.property);
  const interval::Interval initialHull = prop.initial.hull();
  RepairState& state = repair_[candidate.property];

  // Repair direction from the monotone-vote majority.
  int dir = 0;
  if (options_.useDirectionVoting) {
    if (candidate.votesUp > candidate.votesDown) dir = 1;
    if (candidate.votesDown > candidate.votesUp) dir = -1;
  }
  if (dir == 0) dir = state.direction != 0 ? state.direction
                                           : (rng_.chance(0.5) ? 1 : -1);

  // f_v, "choose from feasible subspace": with ADPM guidance the what-if
  // feasible window shows where this property can be rebound; take its
  // middle (the paper's walkthrough picks 3.5 inside [3, 3.698]).  A point
  // window is the fully-determined case — rebind to it exactly.
  const constraint::GuidanceReport* guidance = dpm.latestGuidance();
  if (guidance != nullptr && options_.useFeasibleValues) {
    const auto& g = guidance->of(candidate.property);
    if (!g.feasible.empty()) {
      double value;
      if (g.feasible.isDiscrete()) {
        const auto& vs = g.feasible.values();
        value = vs[vs.size() / 2];
      } else {
        value = g.feasible.hull().mid();
      }
      if (!prop.bound() || std::fabs(value - *prop.value) > 1e-15) {
        state.direction = value > (prop.bound() ? *prop.value : value) ? 1 : -1;
        state.step = 0.0;
        return value;
      }
    }
  }

  // A violated equality model with a determined right side is solved
  // directly in either flow — the tool already reported the correct value.
  if (const auto solved = solveFromEqualityModel(dpm, candidate.property)) {
    const double v = prop.initial.isDiscrete()
                         ? prop.initial.nearest(*solved)
                         : initialHull.clamp(*solved);
    if (!prop.bound() || std::fabs(v - *prop.value) > 1e-15) {
      state.direction = prop.bound() && v < *prop.value ? -1 : 1;
      state.step = 0.0;
      return v;
    }
  }

  if (options_.useBoundarySolve) {
    // Solve the triggering constraint's boundary in 1-D on the designer's
    // own models (derived properties resynced), nudged a base step into the
    // satisfying side.  Available in both flows: it is the designer's own
    // arithmetic, not process-manager feedback.
    if (!prop.initial.isDiscrete()) {
      std::vector<double> point(dpm.network().propertyCount());
      for (std::uint32_t i = 0; i < dpm.network().propertyCount(); ++i) {
        const constraint::Property& pp =
            dpm.network().property(PropertyId{i});
        point[i] = pp.bound() ? *pp.value : pp.initial.hull().mid();
      }
      const double margin =
          initialHull.width() /
          (options_.deltaDivisor > 0 ? options_.deltaDivisor : 100.0);
      if (const auto v = solveBoundary(
              dpm.network(), dpm.network().constraint(candidate.trigger),
              candidate.property, point, margin)) {
        if (!prop.bound() || std::fabs(*v - *prop.value) > 1e-15) {
          state.direction = prop.bound() && *v < *prop.value ? -1 : 1;
          state.step = 0.0;
          return *v;
        }
      }
    }
  }

  // "Choose from initial subspace": move the bound value in the fixing
  // direction by an adaptive delta (base |E_i| / deltaDivisor).
  if (!prop.bound()) {
    // Unbound amid violations: bind somewhere sensible.
    return chooseBindingValue(dpm, candidate.property);
  }

  if (prop.initial.isDiscrete()) {
    // Step to the neighbouring discrete value in the repair direction.
    const auto& vs = prop.initial.values();
    const double current = *prop.value;
    double best = current;
    if (dir > 0) {
      for (double v : vs) {
        if (v > current + 1e-15) {
          best = v;
          break;
        }
      }
    } else {
      for (auto it = vs.rbegin(); it != vs.rend(); ++it) {
        if (*it < current - 1e-15) {
          best = *it;
          break;
        }
      }
    }
    state.direction = dir;
    return best;
  }

  const double width = initialHull.width();
  const double divisor = options_.deltaDivisor > 0 ? options_.deltaDivisor
                                                   : 100.0;
  const double base = width / divisor;
  if (dir == state.direction && state.step > 0.0) {
    state.step = std::min(state.step * options_.stepGrowth,
                          width * options_.maxStepFraction);
  } else {
    state.step = base;
  }
  state.direction = dir;
  const double stepped = initialHull.clamp(*prop.value + dir * state.step);
  return clampToKnownConstraints(dpm, candidate.property, *prop.value,
                                 stepped);
}

std::optional<dpm::Operation> SimulatedDesigner::makeBinding(
    dpm::DesignProcessManager& dpm,
    const std::vector<dpm::ProblemId>& problems) {
  struct Target {
    PropertyId pid;
    dpm::ProblemId problem;
    double feasibleSize;
    bool derived;
  };
  const constraint::GuidanceReport* guidance = dpm.latestGuidance();

  std::vector<Target> targets;
  for (dpm::ProblemId id : problems) {
    for (PropertyId o : dpm.problem(id).outputs) {
      if (dpm.isFrozen(o) || dpm.network().property(o).bound()) continue;
      double size = 1.0;
      if (guidance != nullptr) size = guidance->of(o).relativeFeasibleSize;
      const bool derived = !definingModels(dpm.network(), o).empty();
      targets.push_back({o, id, size, derived});
    }
  }
  if (targets.empty()) return std::nullopt;

  rng_.shuffle(targets);
  // Design variables first, tool-computed (derived) values last: binding a
  // derived property before its inputs settle just manufactures a model
  // conflict on the next upstream change.  Within each class, ADPM applies
  // the §2.3.1 heuristic: focus first on the smallest feasible subspaces.
  std::stable_sort(targets.begin(), targets.end(),
                   [&](const Target& a, const Target& b) {
                     if (a.derived != b.derived) return !a.derived;
                     if (guidance != nullptr && options_.useSubspaceOrdering) {
                       return a.feasibleSize < b.feasibleSize;
                     }
                     return false;
                   });

  const Target& t = targets.front();
  dpm::Operation op;
  op.kind = dpm::OperatorKind::Synthesis;
  op.problem = t.problem;
  op.designer = name_;
  op.assignments.emplace_back(t.pid, chooseBindingValue(dpm, t.pid));
  if (guidance != nullptr && options_.useSubspaceOrdering && !t.derived) {
    op.rationale =
        "bind " + dpm.network().property(t.pid).name +
        " (smallest feasible subspace, " +
        std::to_string(static_cast<int>(t.feasibleSize * 100.0)) +
        "% of range)";
  } else if (t.derived) {
    op.rationale = "bind derived " + dpm.network().property(t.pid).name +
                   " from its model";
  } else {
    op.rationale = "bind " + dpm.network().property(t.pid).name;
  }
  return op;
}

double SimulatedDesigner::chooseBindingValue(dpm::DesignProcessManager& dpm,
                                             PropertyId pid) {
  const constraint::Property& prop = dpm.network().property(pid);
  const constraint::GuidanceReport* guidance = dpm.latestGuidance();
  const double tabuTol =
      prop.initial.measure() * options_.tabuFraction + 1e-12;

  // Injected human error: ignore every heuristic for this one binding.
  if (options_.blunderRate > 0.0 && rng_.chance(options_.blunderRate)) {
    return prop.initial.isDiscrete()
               ? rng_.pick(prop.initial.values())
               : rng_.uniform(prop.initial.hull().lo(),
                              prop.initial.hull().hi());
  }

  // A derived property whose model inputs are all bound is read off the
  // tool exactly; picking a near-by value from the tolerance-widened window
  // would only manufacture a phantom model violation.
  for (constraint::ConstraintId mid : definingModels(dpm.network(), pid)) {
    const constraint::Constraint& m = dpm.network().constraint(mid);
    const expr::Expr& other =
        (m.lhs().kind() == expr::OpKind::Var && m.lhs().node().var == pid.value)
            ? m.rhs()
            : m.lhs();
    std::vector<double> values(dpm.network().propertyCount(), 0.0);
    bool allBound = true;
    for (expr::VarId v : expr::variablesOf(other)) {
      const constraint::Property& ap = dpm.network().property(PropertyId{v});
      if (!ap.bound()) {
        allBound = false;
        break;
      }
      values[v] = *ap.value;
    }
    if (!allBound) continue;
    const double computed = expr::evalPoint(other, values);
    if (std::isfinite(computed)) {
      return prop.initial.isDiscrete() ? prop.initial.nearest(computed)
                                       : prop.initial.hull().clamp(computed);
    }
  }

  // ADPM: pick from the feasible subspace; "for ordered value sets we choose
  // the top or bottom value based on what may satisfy most constraints."
  if (guidance != nullptr && options_.useFeasibleValues) {
    const auto& g = guidance->of(pid);
    if (!g.feasible.empty()) {
      bool top;
      if (options_.useDirectionVoting &&
          g.increasing.size() != g.decreasing.size()) {
        top = g.increasing.size() > g.decreasing.size();
      } else if (prop.preference != 0) {
        // No constraint signal either way: follow the declared economy
        // preference (the walkthrough's "smallest potentially feasible
        // value ... will reduce power consumption").
        top = prop.preference > 0;
      } else {
        top = rng_.chance(0.5);
      }
      double value = top ? g.feasible.maxValue() : g.feasible.minValue();
      if (!g.feasible.isDiscrete()) {
        // Stay a margin inside the window: the propagated bound is a
        // constraint boundary (binding exactly on it invites rounding
        // violations and squeezes the other subsystems into corners).  The
        // depth is jittered — designers don't pick identical safety slack —
        // which is also where run-to-run variation in ADPM comes from.
        const double margin = g.feasible.hull().width() *
                              options_.bindingMargin *
                              rng_.uniform(0.1, 1.5);
        value += top ? -margin : margin;
      }
      // Consult the design history to avoid repeating a failed assignment.
      for (int attempt = 0;
           attempt < 4 && dpm.isFailedAssignment(pid, value, tabuTol);
           ++attempt) {
        value = g.feasible.isDiscrete()
                    ? rng_.pick(g.feasible.values())
                    : rng_.uniform(g.feasible.hull().lo(),
                                   g.feasible.hull().hi());
      }
      return value;
    }
  }

  // Conventional flow (or empty v_F): guess from the initial range E_i,
  // biased toward the economical half when the property declares a
  // preference.
  double value = 0.0;
  for (int attempt = 0; attempt < 4; ++attempt) {
    if (prop.initial.isDiscrete()) {
      value = rng_.pick(prop.initial.values());
    } else {
      double lo = prop.initial.hull().lo();
      double hi = prop.initial.hull().hi();
      if (prop.preference < 0) {
        hi = lo + 0.5 * (hi - lo);
      } else if (prop.preference > 0) {
        lo = hi - 0.5 * (hi - lo);
      }
      value = rng_.uniform(lo, hi);
    }
    if (!dpm.isFailedAssignment(pid, value, tabuTol)) break;
  }
  return value;
}

std::optional<dpm::Operation> SimulatedDesigner::makeVerification(
    dpm::DesignProcessManager& dpm,
    const std::vector<dpm::ProblemId>& problems) {
  for (dpm::ProblemId id : problems) {
    const dpm::DesignProblem& p = dpm.problem(id);

    // Integration gating: "constraints relating multiple subproblems are
    // evaluated only when all subproblems involved are solved".
    const bool childrenSolved = std::all_of(
        p.children.begin(), p.children.end(), [&](dpm::ProblemId ch) {
          return dpm.problem(ch).status == dpm::ProblemStatus::Solved;
        });
    if (!childrenSolved) continue;

    for (ConstraintId cid : p.constraints) {
      if (!dpm.network().isActive(cid)) continue;
      if (!dpm.isStale(cid)) continue;
      const constraint::Constraint& c = dpm.network().constraint(cid);
      const bool runnable = std::all_of(
          c.arguments().begin(), c.arguments().end(), [&](PropertyId a) {
            return dpm.network().property(a).bound();
          });
      if (!runnable) continue;

      dpm::Operation op;
      op.kind = dpm::OperatorKind::Verification;
      op.problem = id;
      op.designer = name_;
      op.rationale = "verify " + p.name + " (unchecked results)";
      return op;
    }
  }
  return std::nullopt;
}

std::optional<dpm::ProblemId> SimulatedDesigner::problemForProperty(
    const dpm::DesignProcessManager& dpm, PropertyId pid,
    const std::vector<dpm::ProblemId>& problems) const {
  for (dpm::ProblemId id : problems) {
    if (dpm.problem(id).hasOutput(pid)) return id;
  }
  return std::nullopt;
}

void SimulatedDesigner::observe(dpm::DesignProcessManager& dpm,
                                const dpm::OperationRecord& record) {
  // Feed the design history: assignments present when a violation surfaced
  // are recorded so value selection avoids revisiting them.
  for (ConstraintId cid : record.violationsFound) {
    const constraint::Constraint& c = dpm.network().constraint(cid);
    for (PropertyId arg : c.arguments()) {
      const constraint::Property& p = dpm.network().property(arg);
      if (p.bound() && !dpm.isFrozen(arg)) {
        dpm.recordFailedAssignment(arg, *p.value);
      }
    }
  }
}

}  // namespace adpm::teamsim
