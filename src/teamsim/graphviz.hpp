// The constraint network viewer (paper Fig. 5: TeamSim's visualization
// includes "a constraint network viewer"), as a Graphviz DOT exporter.
//
// Properties render as ellipses (filled when bound), constraints as boxes
// coloured by status (green satisfied, red violated, grey consistent,
// dashed when not yet generated); edges are constraint membership.  Render
// with:  dot -Tsvg network.dot -o network.svg
#pragma once

#include <string>

#include "dpm/manager.hpp"

namespace adpm::teamsim {

std::string toGraphviz(const dpm::DesignProcessManager& dpm);

}  // namespace adpm::teamsim
