// Simulation configuration.
//
// The λ flag mirrors the paper exactly: "ADPM can be compared with
// conventional approaches by setting a Boolean parameter.  When λ=F, the
// conventional approach is simulated ... When λ=T, ADPM is simulated."
// (paper, Section 3.1.2).  The heuristic toggles exist for the ablation
// benchmarks (every §2.3 heuristic can be disabled independently).
#pragma once

#include <cstddef>
#include <cstdint>

#include "dpm/manager.hpp"

namespace adpm::teamsim {

struct SimulationOptions {
  /// λ: true = ADPM (propagation + heuristic guidance), false = conventional.
  bool adpm = true;
  /// Random seed; experiments sweep this ("over 60 simulations were executed
  /// varying the value of the random seed").
  std::uint64_t seed = 1;
  /// Hard stop: runs exceeding this many operations are reported incomplete.
  /// Purely a runaway guard — the heaviest observed conventional tail (the
  /// 4-designer receiver) completes under ten thousand operations.
  std::size_t maxOperations = 20000;

  /// Repair step as a fraction of |E_i|: "delta values around 100 times
  /// smaller than the size of E_i worked well" (paper, Section 3.1.1).
  double deltaDivisor = 100.0;
  /// Successive repairs in the same direction grow the step by this factor
  /// (an engineer's successive approximation); a direction flip resets it.
  double stepGrowth = 2.0;
  /// Step cap as a fraction of |E_i|.
  double maxStepFraction = 0.25;
  /// Tolerance (fraction of |E_i|) when consulting the failed-assignment
  /// history.
  double tabuFraction = 0.02;
  /// When binding from a continuous feasible window, stay this fraction of
  /// the window width inside the chosen extreme.  Binding exactly on the
  /// propagated bound parks the design on a constraint boundary where
  /// rounding flips constraints to violated — and hull consistency is not
  /// global consistency, so boundary picks routinely squeeze the *other*
  /// subsystem into a corner (cross-subsystem conflicts, i.e. spins).  A
  /// healthy margin keeps the top-or-bottom preference while leaving the
  /// team room.
  double bindingMargin = 0.3;

  // -- ablation toggles (all on = the paper's ADPM) ---------------------------

  /// §2.3.1: order unbound outputs by smallest feasible subspace.
  bool useSubspaceOrdering = true;
  /// §2.3.1/f_v: choose values from the feasible subspace v_F.
  bool useFeasibleValues = true;
  /// §2.3.3/f_a: prefer repair targets with the most connected violations.
  bool useAlphaRepair = true;
  /// f_a/f_v: use monotone direction votes to pick the repair direction and
  /// the top-vs-bottom binding value.
  bool useDirectionVoting = true;
  /// Conventional-flow competence: solve a violated constraint's boundary in
  /// 1-D on the designer's own models instead of pure delta stepping.
  /// Disabling it models a team that only nudges knobs — an ablation for how
  /// much local engineering skill the conventional baseline is granted.
  bool useBoundarySolve = true;
  /// Optimization operators (paper §2.1 lists "synthesis and optimization
  /// operators"): after the design completes, each designer may spend up to
  /// this many extra synthesis operations nudging preference-annotated free
  /// variables toward their economical end, keeping every constraint
  /// satisfied.  0 (default) reproduces the paper's feasibility-only runs.
  std::size_t optimizationPasses = 0;
  /// Fraction of |E_i| an optimization nudge moves per operation.
  double optimizationStep = 0.05;

  /// Human-error injection: probability that a synthesis binding ignores
  /// every heuristic and picks a uniformly random value from E_i (a typo, a
  /// stale spreadsheet, a misread plot).  The process machinery must detect
  /// and repair the damage either way; used by robustness tests.
  double blunderRate = 0.0;

  /// Propagation/miner settings forwarded to the DCM (ADPM only).
  dpm::DesignConstraintManager::Options dcm{};

  dpm::DesignProcessManager::Options managerOptions() const {
    dpm::DesignProcessManager::Options o;
    o.adpm = adpm;
    o.dcm = dcm;
    return o;
  }
};

}  // namespace adpm::teamsim
