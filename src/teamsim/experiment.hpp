// Experiment driver: seed sweeps and aggregation.
//
// Reproduces the paper's evaluation protocol: "Over 60 simulations were
// executed varying the value of the random seed" per (case, λ) cell, then
// mean and standard deviation of the number of design operations (Fig. 9(a))
// and of constraint evaluations, total and per operation (Fig. 9(b)), plus
// the spin ratio reported in the text (ADPM spins ≈ 7% of conventional).
#pragma once

#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "dpm/scenario.hpp"
#include "teamsim/engine.hpp"
#include "util/stats.hpp"

namespace adpm::teamsim {

/// Aggregate over one (scenario, options) cell of a seed sweep.
struct CellStats {
  std::string label;
  std::size_t runs = 0;
  std::size_t completed = 0;
  util::RunningStats operations;
  util::RunningStats evaluations;
  util::RunningStats evaluationsPerOperation;
  util::RunningStats spins;
  util::RunningStats violationsFound;

  double completionRate() const noexcept {
    return runs == 0 ? 0.0
                     : static_cast<double>(completed) /
                           static_cast<double>(runs);
  }

  /// Combines another cell (e.g. a parallel shard) into this one.
  void merge(const CellStats& other) {
    runs += other.runs;
    completed += other.completed;
    operations.merge(other.operations);
    evaluations.merge(other.evaluations);
    evaluationsPerOperation.merge(other.evaluationsPerOperation);
    spins.merge(other.spins);
    violationsFound.merge(other.violationsFound);
  }
};

/// Runs `seeds` simulations of the scenario with consecutive seeds starting
/// at `firstSeed`, aggregating per-run totals.  Only completed runs enter
/// the aggregate statistics (incomplete runs are counted in `runs` but would
/// otherwise skew the operation counts toward the cap); completion rates in
/// practice are ~100% for the shipped scenarios.
CellStats runSeedSweep(const dpm::ScenarioSpec& spec,
                       const SimulationOptions& base, std::size_t seeds,
                       std::uint64_t firstSeed = 1,
                       const std::string& label = {});

/// Same sweep fanned out over `threads` workers (0 = hardware concurrency).
/// Runs are seed-deterministic, so the aggregate equals the serial sweep's.
CellStats runSeedSweepParallel(const dpm::ScenarioSpec& spec,
                               const SimulationOptions& base,
                               std::size_t seeds, std::uint64_t firstSeed = 1,
                               const std::string& label = {},
                               unsigned threads = 0);

/// Convenience: the ADPM-vs-conventional pair for one scenario.
struct Comparison {
  CellStats adpm;
  CellStats conventional;

  double operationRatio() const noexcept {  // conventional / ADPM
    return adpm.operations.mean() > 0
               ? conventional.operations.mean() / adpm.operations.mean()
               : 0.0;
  }
  double variabilityRatio() const noexcept {
    if (adpm.operations.stddev() > 0) {
      return conventional.operations.stddev() / adpm.operations.stddev();
    }
    // A perfectly repeatable ADPM run is infinitely less variable.
    return conventional.operations.stddev() > 0
               ? std::numeric_limits<double>::infinity()
               : 1.0;
  }
  double evaluationRatio() const noexcept {  // ADPM / conventional
    return conventional.evaluations.mean() > 0
               ? adpm.evaluations.mean() / conventional.evaluations.mean()
               : 0.0;
  }
  double spinRatio() const noexcept {  // ADPM / conventional
    return conventional.spins.mean() > 0
               ? adpm.spins.mean() / conventional.spins.mean()
               : 0.0;
  }
};

Comparison compareApproaches(const dpm::ScenarioSpec& spec,
                             const SimulationOptions& base, std::size_t seeds,
                             std::uint64_t firstSeed = 1);

}  // namespace adpm::teamsim
