// The TeamSim simulation engine.
//
// "Designers start requesting operations independently.  A simulation
// terminates when the top-level problem is solved (and thus all of its
// subproblems are too), all problem outputs have a value, and no constraints
// are violated." (paper, Section 3.1.2)
//
// "Upon the execution of a design operation θ, TeamSim captures and displays
// the number of constraint violations found immediately after θ's execution,
// the number of constraint evaluations executed due to θ, the cumulative
// number of executed operations, and the value assignments done as a result
// of θ."
#pragma once

#include <memory>
#include <vector>

#include "dpm/scenario.hpp"
#include "teamsim/designer.hpp"
#include "teamsim/options.hpp"

namespace adpm::teamsim {

/// One row of the simulation trace (the per-operation statistics that
/// Fig. 7 plots and Fig. 8 accumulates).
struct OpStat {
  std::size_t opIndex = 0;  // 1-based operation number
  std::string designer;
  dpm::OperatorKind kind{};
  std::size_t assignments = 0;       // value assignments done by θ
  std::size_t violationsFound = 0;   // Fig. 7(a)
  std::size_t violationsKnown = 0;   // current violation count after θ
  std::size_t evaluations = 0;       // Fig. 7(b)
  std::size_t cumulativeEvaluations = 0;
  bool spin = false;
  std::size_t cumulativeSpins = 0;
  std::size_t constraintsTotal = 0;  // network size at this stage
};

struct SimulationResult {
  bool completed = false;
  std::size_t operations = 0;
  std::size_t evaluations = 0;
  std::size_t spins = 0;
  /// Sum over operations of violations found (area under Fig. 7(a)).
  std::size_t violationsFoundTotal = 0;
  std::size_t notifications = 0;
  std::vector<OpStat> trace;

  double evaluationsPerOperation() const noexcept {
    return operations == 0
               ? 0.0
               : static_cast<double>(evaluations) /
                     static_cast<double>(operations);
  }
};

class SimulationEngine {
 public:
  SimulationEngine(const dpm::ScenarioSpec& spec, SimulationOptions options);

  /// Runs to completion (or the operation cap) and returns the result.
  SimulationResult run();

  /// Executes at most one designer operation (round-robin polling).
  /// Returns false when no designer had anything to do.
  bool step();

  bool complete() const { return dpm_->designComplete(); }
  std::size_t operations() const noexcept { return trace_.size(); }

  dpm::DesignProcessManager& manager() noexcept { return *dpm_; }
  const dpm::DesignProcessManager& manager() const noexcept { return *dpm_; }
  const std::vector<OpStat>& trace() const noexcept { return trace_; }
  const SimulationOptions& options() const noexcept { return options_; }

  /// Evaluations consumed by the initial DCM pass (ADPM only): included in
  /// the network counter and the cumulative trace columns, but not part of
  /// any operation's own count.
  std::size_t bootstrapEvaluations() const noexcept { return bootstrapEvals_; }

  /// Builds the result snapshot for the operations executed so far.
  SimulationResult result() const;

 private:
  SimulationOptions options_;
  std::unique_ptr<dpm::DesignProcessManager> dpm_;
  std::vector<SimulatedDesigner> designers_;
  std::vector<OpStat> trace_;
  std::size_t nextDesigner_ = 0;
  std::size_t bootstrapEvals_ = 0;
  std::size_t spins_ = 0;
  std::size_t violationsFoundTotal_ = 0;
  std::size_t notifications_ = 0;
};

}  // namespace adpm::teamsim
