#include "teamsim/export.hpp"

#include <algorithm>
#include <ostream>

#include "util/table.hpp"

namespace adpm::teamsim {

namespace {

std::string num(double v) { return util::formatNumber(v, 8); }

}  // namespace

void writeTraceCsv(std::ostream& out, const std::vector<OpStat>& trace) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(trace.size());
  for (const OpStat& s : trace) {
    rows.push_back({std::to_string(s.opIndex), s.designer,
                    dpm::operatorKindName(s.kind),
                    std::to_string(s.assignments),
                    std::to_string(s.violationsFound),
                    std::to_string(s.violationsKnown),
                    std::to_string(s.evaluations),
                    std::to_string(s.cumulativeEvaluations),
                    s.spin ? "1" : "0",
                    std::to_string(s.cumulativeSpins),
                    std::to_string(s.constraintsTotal)});
  }
  util::writeCsv(out,
                 {"op", "designer", "kind", "assignments", "violations_found",
                  "violations_known", "evaluations", "cumulative_evaluations",
                  "spin", "cumulative_spins", "constraints_total"},
                 rows);
}

void writeProfileCsv(std::ostream& out,
                     const std::vector<OpStat>& conventional,
                     const std::vector<OpStat>& adpm) {
  const std::size_t n = std::max(conventional.size(), adpm.size());
  std::vector<std::vector<std::string>> rows;
  rows.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto violations = [&](const std::vector<OpStat>& t) {
      return i < t.size() ? std::to_string(t[i].violationsFound) : "0";
    };
    const auto evaluations = [&](const std::vector<OpStat>& t) {
      return i < t.size() ? std::to_string(t[i].evaluations) : "0";
    };
    rows.push_back({std::to_string(i + 1), violations(conventional),
                    violations(adpm), evaluations(conventional),
                    evaluations(adpm)});
  }
  util::writeCsv(out,
                 {"op", "violations_conventional", "violations_adpm",
                  "evaluations_conventional", "evaluations_adpm"},
                 rows);
}

void writeCellsCsv(std::ostream& out, const std::vector<CellStats>& cells) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(cells.size());
  for (const CellStats& c : cells) {
    rows.push_back({c.label, std::to_string(c.runs),
                    std::to_string(c.completed), num(c.operations.mean()),
                    num(c.operations.stddev()), num(c.evaluations.mean()),
                    num(c.evaluationsPerOperation.mean()),
                    num(c.spins.mean()), num(c.violationsFound.mean())});
  }
  util::writeCsv(out,
                 {"cell", "runs", "completed", "ops_mean", "ops_stddev",
                  "evals_mean", "evals_per_op_mean", "spins_mean",
                  "violations_found_mean"},
                 rows);
}

void writeSweepCsv(std::ostream& out, const std::string& xLabel,
                   const std::vector<SweepPoint>& points) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(points.size());
  for (const SweepPoint& p : points) {
    rows.push_back({num(p.x), num(p.conventional.operations.mean()),
                    num(p.conventional.operations.stddev()),
                    num(p.adpm.operations.mean()),
                    num(p.adpm.operations.stddev())});
  }
  util::writeCsv(out,
                 {xLabel, "ops_conventional_mean", "ops_conventional_stddev",
                  "ops_adpm_mean", "ops_adpm_stddev"},
                 rows);
}

std::string gnuplotProfileScript(const std::string& dataFile) {
  std::string s;
  s += "# Fig. 7 reproduction — run: gnuplot -persist <this-file>\n";
  s += "set datafile separator ','\n";
  s += "set key autotitle columnhead\n";
  s += "set multiplot layout 2,1\n";
  s += "set title 'Fig. 7(a): violations found per executed operation'\n";
  s += "set xlabel 'operation'\n";
  s += "plot '" + dataFile + "' using 1:2 with impulses lw 2 title "
       "'conventional', '" + dataFile + "' using 1:3 with points pt 7 title "
       "'ADPM'\n";
  s += "set title 'Fig. 7(b): constraint evaluations per executed operation'\n";
  s += "plot '" + dataFile + "' using 1:4 with lines lw 2 title "
       "'conventional', '" + dataFile + "' using 1:5 with lines lw 2 title "
       "'ADPM'\n";
  s += "unset multiplot\n";
  return s;
}

std::string gnuplotSweepScript(const std::string& dataFile,
                               const std::string& xLabel) {
  std::string s;
  s += "# Fig. 10 reproduction — run: gnuplot -persist <this-file>\n";
  s += "set datafile separator ','\n";
  s += "set key autotitle columnhead\n";
  s += "set title 'Fig. 10: design operations vs specification tightness'\n";
  s += "set xlabel '" + xLabel + "'\n";
  s += "set ylabel 'executed design operations'\n";
  s += "plot '" + dataFile + "' using 1:2:3 with yerrorlines lw 2 title "
       "'conventional', '" + dataFile + "' using 1:4:5 with yerrorlines lw 2 "
       "title 'ADPM'\n";
  return s;
}

}  // namespace adpm::teamsim
