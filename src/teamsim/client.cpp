#include "teamsim/client.hpp"

#include "util/rng.hpp"

namespace adpm::teamsim {

TeamClient::TeamClient(const dpm::DesignProcessManager& dpm,
                       const SimulationOptions& options) {
  // Same per-designer stream derivation as SimulationEngine's constructor.
  std::uint64_t seedState = options.seed;
  for (const std::string& name : dpm.designers()) {
    designers_.emplace_back(name, options, util::splitmix64(seedState));
  }
}

std::optional<dpm::Operation> TeamClient::propose(
    dpm::DesignProcessManager& dpm) {
  if (designers_.empty()) return std::nullopt;
  for (std::size_t k = 0; k < designers_.size(); ++k) {
    const std::size_t di = (nextDesigner_ + k) % designers_.size();
    std::optional<dpm::Operation> op = designers_[di].nextOperation(dpm);
    if (!op) continue;
    lastProposer_ = di;
    nextDesigner_ = (di + 1) % designers_.size();
    ++proposed_;
    return op;
  }
  return std::nullopt;
}

void TeamClient::observe(dpm::DesignProcessManager& dpm,
                         const dpm::OperationRecord& record) {
  if (designers_.empty()) return;
  designers_[lastProposer_].observe(dpm, record);
}

}  // namespace adpm::teamsim
