// Deterministic pseudo-random number generation.
//
// TeamSim experiments sweep the random seed ("over 60 simulations were
// executed varying the value of the random seed"), so all stochastic choices
// in the library flow through this one generator type.  xoshiro256** is used
// for generation and splitmix64 for seeding, giving reproducible streams that
// are independent of the platform's std::mt19937 implementation details.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace adpm::util {

/// splitmix64 step; used to expand a single 64-bit seed into generator state.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** 1.0 generator (Blackman & Vigna), deterministic across
/// platforms.  Satisfies the std uniform_random_bit_generator concept.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi); returns lo when the range is degenerate.
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n); n must be > 0.
  std::size_t index(std::size_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Returns true with probability p (clamped to [0,1]).
  bool chance(double p) noexcept;

  /// Picks a uniformly random element of a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> items) noexcept {
    return items[index(items.size())];
  }

  template <typename T>
  const T& pick(const std::vector<T>& items) noexcept {
    return items[index(items.size())];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[index(i)]);
    }
  }

 private:
  std::uint64_t state_[4];
};

}  // namespace adpm::util
