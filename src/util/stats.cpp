#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.hpp"

namespace adpm::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  if (!(lo < hi) || buckets == 0) {
    throw InvalidArgumentError("Histogram requires lo < hi and buckets > 0");
  }
}

void Histogram::add(double x) noexcept {
  const double t = (x - lo_) / (hi_ - lo_);
  auto i = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  i = std::clamp<std::ptrdiff_t>(i, 0,
                                 static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(i)];
  ++total_;
}

double Histogram::bucketLow(std::size_t i) const {
  if (i >= counts_.size()) throw InvalidArgumentError("bucket out of range");
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bucketHigh(std::size_t i) const {
  return bucketLow(i) + (hi_ - lo_) / static_cast<double>(counts_.size());
}

std::string Histogram::render(std::size_t barWidth) const {
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = counts_[i] * barWidth / peak;
    out << "[" << bucketLow(i) << ", " << bucketHigh(i) << ") "
        << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  return out.str();
}

double mean(const std::vector<double>& xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double median(std::vector<double> xs) noexcept {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const std::size_t mid = xs.size() / 2;
  if (xs.size() % 2 == 1) return xs[mid];
  return 0.5 * (xs[mid - 1] + xs[mid]);
}

}  // namespace adpm::util
