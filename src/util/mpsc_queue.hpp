// Bounded multi-producer single-consumer queue with an explicit overflow
// policy.
//
// The notification bus delivers NotificationManager fan-out to per-designer
// subscribers through these queues.  Producers are the session strands (any
// pool thread), the consumer is whoever holds the subscription.  Capacity is
// bounded; what happens on overflow is a policy the subscriber chooses:
//
//  * Block      — the producer waits for space (backpressure: a session's
//                 strand stalls until the subscriber catches up);
//  * DropOldest — the oldest queued item is discarded to make room and the
//                 drop is counted (a live dashboard prefers fresh events
//                 over complete history).
//
// A mutex + condvar implementation: notification batches are tiny compared
// to the DCM work producing them, so contention is negligible, and the lock
// gives TSan-clean happens-before edges for free.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace adpm::util {

enum class OverflowPolicy : std::uint8_t { Block, DropOldest };

template <typename T>
class BoundedMpscQueue {
 public:
  explicit BoundedMpscQueue(std::size_t capacity,
                            OverflowPolicy policy = OverflowPolicy::DropOldest)
      : capacity_(capacity == 0 ? 1 : capacity), policy_(policy) {}

  BoundedMpscQueue(const BoundedMpscQueue&) = delete;
  BoundedMpscQueue& operator=(const BoundedMpscQueue&) = delete;

  /// Enqueues one item.  Returns false only when the queue is closed (the
  /// item is discarded, not counted as dropped).  Under Block this waits for
  /// space; under DropOldest it evicts the front item and counts the drop.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (policy_ == OverflowPolicy::Block) {
      space_.wait(lock,
                  [this] { return closed_ || items_.size() < capacity_; });
      if (closed_) return false;
    } else {
      if (closed_) return false;
      if (items_.size() >= capacity_) {
        items_.pop_front();
        ++dropped_;
      }
    }
    items_.push_back(std::move(item));
    lock.unlock();
    ready_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and empty.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    space_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> tryPop() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    space_.notify_one();
    return item;
  }

  /// Closing wakes blocked producers and the consumer; queued items remain
  /// poppable, further pushes are refused.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
    space_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  /// Items evicted by DropOldest since construction.
  std::size_t dropped() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return dropped_;
  }

  std::size_t capacity() const noexcept { return capacity_; }
  OverflowPolicy policy() const noexcept { return policy_; }

 private:
  const std::size_t capacity_;
  const OverflowPolicy policy_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;  // consumer waits: item available / closed
  std::condition_variable space_;  // producers wait (Block): room available
  std::deque<T> items_;
  std::size_t dropped_ = 0;
  bool closed_ = false;
};

}  // namespace adpm::util
