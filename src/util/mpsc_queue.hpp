// Bounded multi-producer single-consumer queue with an explicit overflow
// policy.
//
// The notification bus delivers NotificationManager fan-out to per-designer
// subscribers through these queues.  Producers are the session strands (any
// pool thread), the consumer is whoever holds the subscription.  Capacity is
// bounded; what happens on overflow is a policy the subscriber chooses:
//
//  * Block      — the producer waits for space (backpressure: a session's
//                 strand stalls until the subscriber catches up);
//  * DropOldest — the oldest queued item is discarded to make room and the
//                 drop is counted (a live dashboard prefers fresh events
//                 over complete history).
//
// A mutex + condvar implementation: notification batches are tiny compared
// to the DCM work producing them, so contention is negligible, and the lock
// gives TSan-clean happens-before edges for free.  The annotated primitives
// (util/thread_annotations.hpp) make the "everything mutable is under the
// lock" rule compiler-checked under Clang.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "util/thread_annotations.hpp"

namespace adpm::util {

enum class OverflowPolicy : std::uint8_t { Block, DropOldest };

template <typename T>
class BoundedMpscQueue {
 public:
  explicit BoundedMpscQueue(std::size_t capacity,
                            OverflowPolicy policy = OverflowPolicy::DropOldest)
      : capacity_(capacity == 0 ? 1 : capacity), policy_(policy) {}

  BoundedMpscQueue(const BoundedMpscQueue&) = delete;
  BoundedMpscQueue& operator=(const BoundedMpscQueue&) = delete;

  /// Enqueues one item.  Returns false only when the queue is closed (the
  /// item is discarded, not counted as dropped).  Under Block this waits for
  /// space; under DropOldest it evicts the front item and counts the drop.
  bool push(T item) {
    {
      UniqueLock lock(mutex_);
      if (policy_ == OverflowPolicy::Block) {
        while (!closed_ && items_.size() >= capacity_) space_.wait(lock);
        if (closed_) return false;
      } else {
        if (closed_) return false;
        if (items_.size() >= capacity_) {
          items_.pop_front();
          ++dropped_;
        }
      }
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and empty.
  std::optional<T> pop() {
    std::optional<T> item;
    {
      UniqueLock lock(mutex_);
      while (!closed_ && items_.empty()) ready_.wait(lock);
      if (items_.empty()) return std::nullopt;
      item = std::move(items_.front());
      items_.pop_front();
    }
    space_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> tryPop() {
    std::optional<T> item;
    {
      LockGuard lock(mutex_);
      if (items_.empty()) return std::nullopt;
      item = std::move(items_.front());
      items_.pop_front();
    }
    space_.notify_one();
    return item;
  }

  /// Closing wakes blocked producers and the consumer; queued items remain
  /// poppable, further pushes are refused.
  void close() {
    {
      LockGuard lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
    space_.notify_all();
  }

  bool closed() const {
    LockGuard lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    LockGuard lock(mutex_);
    return items_.size();
  }

  /// Items evicted by DropOldest since construction.
  std::size_t dropped() const {
    LockGuard lock(mutex_);
    return dropped_;
  }

  std::size_t capacity() const noexcept { return capacity_; }
  OverflowPolicy policy() const noexcept { return policy_; }

 private:
  const std::size_t capacity_;
  const OverflowPolicy policy_;
  mutable Mutex mutex_;
  CondVar ready_;  // consumer waits: item available / closed
  CondVar space_;  // producers wait (Block): room available
  std::deque<T> items_ ADPM_GUARDED_BY(mutex_);
  std::size_t dropped_ ADPM_GUARDED_BY(mutex_) = 0;
  bool closed_ ADPM_GUARDED_BY(mutex_) = false;
};

}  // namespace adpm::util
