// Aligned text tables and CSV output.
//
// Every experiment binary in bench/ regenerates one of the paper's tables or
// figures; TextTable prints the human-readable form and writeCsv emits the
// machine-readable series for external plotting (the paper used Gnuplot).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace adpm::util {

/// Column-aligned text table with an optional header rule.
class TextTable {
 public:
  /// Sets the header row; resets nothing else.
  void header(std::vector<std::string> cells);

  /// Appends a data row.  Rows may have fewer cells than the header.
  void row(std::vector<std::string> cells);

  /// Appends a horizontal rule (rendered with dashes).
  void rule();

  /// Renders with two spaces between columns; numeric-looking cells are
  /// right-aligned, everything else left-aligned.
  std::string render() const;

  std::size_t rowCount() const noexcept { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool isRule = false;
  };
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

/// Formats a double with `digits` significant digits, trimming trailing
/// zeros ("12.5", "0.07", "3").
std::string formatNumber(double value, int digits = 4);

/// Shortest representation that round-trips exactly (std::to_chars); used by
/// the DDDL writer so write -> parse preserves every bit.
std::string formatExact(double value);

/// Writes rows as RFC-4180-ish CSV (quotes cells containing commas/quotes).
void writeCsv(std::ostream& out, const std::vector<std::string>& header,
              const std::vector<std::vector<std::string>>& rows);

}  // namespace adpm::util
