#include "util/fault.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <thread>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/thread_annotations.hpp"

namespace adpm::util {

const char* faultActionName(FaultAction a) noexcept {
  switch (a) {
    case FaultAction::None: return "none";
    case FaultAction::Error: return "error";
    case FaultAction::ShortWrite: return "short-write";
    case FaultAction::Delay: return "delay";
    case FaultAction::Abort: return "abort";
  }
  return "?";
}

struct FaultRegistry::Impl {
  struct Point {
    FaultPlan plan;
    Rng rng{0};
    std::uint64_t hits = 0;
    std::uint64_t fired = 0;
  };

  /// Lock-free "anything armed at all?" gate: the common case (registry
  /// compiled in but idle) costs one relaxed load per probe.
  std::atomic<std::size_t> armedCount{0};
  mutable Mutex mutex;
  std::map<std::string, Point> points ADPM_GUARDED_BY(mutex);
};

FaultRegistry::Impl& FaultRegistry::impl() const {
  static Impl impl;
  return impl;
}

FaultRegistry& FaultRegistry::instance() {
  static FaultRegistry registry;
  return registry;
}

void FaultRegistry::arm(const std::string& point, FaultPlan plan) {
  Impl& i = impl();
  LockGuard lock(i.mutex);
  Impl::Point& p = i.points[point];
  p.plan = plan;
  p.rng.reseed(plan.seed);
  p.hits = 0;
  p.fired = 0;
  i.armedCount.store(i.points.size(), std::memory_order_release);
}

void FaultRegistry::disarm(const std::string& point) {
  Impl& i = impl();
  LockGuard lock(i.mutex);
  i.points.erase(point);
  i.armedCount.store(i.points.size(), std::memory_order_release);
}

void FaultRegistry::reset() {
  Impl& i = impl();
  LockGuard lock(i.mutex);
  i.points.clear();
  i.armedCount.store(0, std::memory_order_release);
}

FaultAction FaultRegistry::check(const char* point) {
  Impl& i = impl();
  if (i.armedCount.load(std::memory_order_acquire) == 0) {
    return FaultAction::None;
  }
  FaultAction action = FaultAction::None;
  unsigned delayMicros = 0;
  {
    LockGuard lock(i.mutex);
    const auto it = i.points.find(point);
    if (it == i.points.end()) return FaultAction::None;
    Impl::Point& p = it->second;
    ++p.hits;
    bool fire = false;
    if (p.plan.everyNth > 0) {
      fire = p.hits % p.plan.everyNth == 0;
    } else {
      fire = p.rng.chance(p.plan.probability);
    }
    if (fire && p.plan.maxFires != 0 && p.fired >= p.plan.maxFires) {
      fire = false;
    }
    if (!fire) return FaultAction::None;
    ++p.fired;
    action = p.plan.action;
    delayMicros = p.plan.delayMicros;
  }
  // Act outside the lock: a sleeping or aborting probe must not wedge
  // concurrent probes (or the abort's own signal handlers) on the mutex.
  switch (action) {
    case FaultAction::Delay:
      std::this_thread::sleep_for(std::chrono::microseconds(delayMicros));
      return FaultAction::None;
    case FaultAction::Abort:
      std::abort();
    default:
      return action;
  }
}

std::uint64_t FaultRegistry::hits(const std::string& point) const {
  Impl& i = impl();
  LockGuard lock(i.mutex);
  const auto it = i.points.find(point);
  return it == i.points.end() ? 0 : it->second.hits;
}

std::uint64_t FaultRegistry::fired(const std::string& point) const {
  Impl& i = impl();
  LockGuard lock(i.mutex);
  const auto it = i.points.find(point);
  return it == i.points.end() ? 0 : it->second.fired;
}

std::vector<std::string> FaultRegistry::armed() const {
  Impl& i = impl();
  LockGuard lock(i.mutex);
  std::vector<std::string> out;
  out.reserve(i.points.size());
  for (const auto& [name, point] : i.points) out.push_back(name);
  return out;
}

void FaultRegistry::armFromSpec(const std::string& spec) {
  for (const std::string& clauseRaw : split(spec, ';')) {
    const std::string clause{trim(clauseRaw)};
    if (clause.empty()) continue;
    const std::size_t eq = clause.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw InvalidArgumentError("fault spec clause '" + clause +
                                 "' is not point=action[:key=value...]");
    }
    const std::string point = clause.substr(0, eq);
    const std::vector<std::string> fields = split(clause.substr(eq + 1), ':');
    FaultPlan plan;
    const std::string& actionName = fields[0];
    if (actionName == "error") {
      plan.action = FaultAction::Error;
    } else if (actionName == "short-write" || actionName == "shortwrite") {
      plan.action = FaultAction::ShortWrite;
    } else if (actionName == "delay") {
      plan.action = FaultAction::Delay;
    } else if (actionName == "abort") {
      plan.action = FaultAction::Abort;
    } else {
      throw InvalidArgumentError("fault spec '" + clause +
                                 "': unknown action '" + actionName + "'");
    }
    for (std::size_t f = 1; f < fields.size(); ++f) {
      const std::size_t kv = fields[f].find('=');
      if (kv == std::string::npos) {
        throw InvalidArgumentError("fault spec '" + clause +
                                   "': malformed option '" + fields[f] + "'");
      }
      const std::string key = fields[f].substr(0, kv);
      const std::string value = fields[f].substr(kv + 1);
      try {
        if (key == "every") {
          plan.everyNth = std::stoull(value);
        } else if (key == "p") {
          plan.probability = std::stod(value);
        } else if (key == "seed") {
          plan.seed = std::stoull(value);
        } else if (key == "max") {
          plan.maxFires = std::stoull(value);
        } else if (key == "us") {
          plan.delayMicros = static_cast<unsigned>(std::stoul(value));
        } else {
          throw InvalidArgumentError("fault spec '" + clause +
                                     "': unknown option '" + key + "'");
        }
      } catch (const std::logic_error&) {
        throw InvalidArgumentError("fault spec '" + clause +
                                   "': bad value in '" + fields[f] + "'");
      }
    }
    arm(point, plan);
  }
}

}  // namespace adpm::util
