#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace adpm::util::json {

namespace {

[[noreturn]] void kindError(const char* wanted, Kind got) {
  throw adpm::InvalidArgumentError(std::string("json: expected ") + wanted +
                                   ", got kind " +
                                   std::to_string(static_cast<int>(got)));
}

}  // namespace

bool Value::asBool() const {
  if (kind_ != Kind::Bool) kindError("bool", kind_);
  return bool_;
}

double Value::asNumber() const {
  if (kind_ != Kind::Number) kindError("number", kind_);
  return number_;
}

const std::string& Value::asString() const {
  if (kind_ != Kind::String) kindError("string", kind_);
  return string_;
}

const Array& Value::asArray() const {
  if (kind_ != Kind::Array) kindError("array", kind_);
  return array_;
}

const Object& Value::asObject() const {
  if (kind_ != Kind::Object) kindError("object", kind_);
  return object_;
}

const Value* Value::find(std::string_view key) const noexcept {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value& Value::at(std::string_view key) const {
  const Value* v = find(key);
  if (v == nullptr) {
    throw adpm::InvalidArgumentError("json: missing field '" +
                                     std::string(key) + "'");
  }
  return *v;
}

Value& Value::set(std::string key, Value v) {
  if (kind_ == Kind::Null) kind_ = Kind::Object;
  if (kind_ != Kind::Object) kindError("object", kind_);
  object_.emplace_back(std::move(key), std::move(v));
  return *this;
}

bool Value::operator==(const Value& other) const noexcept {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::Null: return true;
    case Kind::Bool: return bool_ == other.bool_;
    case Kind::Number: return number_ == other.number_;
    case Kind::String: return string_ == other.string_;
    case Kind::Array: return array_ == other.array_;
    case Kind::Object: return object_ == other.object_;
  }
  return false;
}

// -- parser -------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value document() {
    Value v = value();
    skipWs();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw adpm::ParseError("json: " + what, 1, static_cast<int>(pos_) + 1);
  }

  void skipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!consume(c)) fail(std::string("expected '") + c + "'");
  }

  bool consumeWord(std::string_view w) {
    if (text_.substr(pos_, w.size()) == w) {
      pos_ += w.size();
      return true;
    }
    return false;
  }

  Value value() {
    skipWs();
    const char c = peek();
    switch (c) {
      case '{': return object();
      case '[': return array();
      case '"': return Value(string());
      case 't':
        if (consumeWord("true")) return Value(true);
        fail("bad literal");
      case 'f':
        if (consumeWord("false")) return Value(false);
        fail("bad literal");
      case 'n':
        if (consumeWord("null")) return Value(nullptr);
        fail("bad literal");
      default: return number();
    }
  }

  Value object() {
    expect('{');
    Object fields;
    skipWs();
    if (consume('}')) return Value(std::move(fields));
    for (;;) {
      skipWs();
      std::string key = string();
      skipWs();
      expect(':');
      fields.emplace_back(std::move(key), value());
      skipWs();
      if (consume(',')) continue;
      expect('}');
      return Value(std::move(fields));
    }
  }

  Value array() {
    expect('[');
    Array items;
    skipWs();
    if (consume(']')) return Value(std::move(items));
    for (;;) {
      items.push_back(value());
      skipWs();
      if (consume(',')) continue;
      expect(']');
      return Value(std::move(items));
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // The writer only emits \u00XX for control bytes; reject the rest
          // rather than silently mangling multi-byte text.
          if (code > 0xFF) fail("unsupported \\u escape above U+00FF");
          out.push_back(static_cast<char>(code));
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Value number() {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(v)) {
      fail("bad number '" + token + "'");
    }
    return Value(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void serializeTo(const Value& v, std::string& out) {
  switch (v.kind()) {
    case Kind::Null: out += "null"; break;
    case Kind::Bool: out += v.asBool() ? "true" : "false"; break;
    case Kind::Number: out += formatNumber(v.asNumber()); break;
    case Kind::String:
      out.push_back('"');
      out += escape(v.asString());
      out.push_back('"');
      break;
    case Kind::Array: {
      out.push_back('[');
      bool first = true;
      for (const Value& item : v.asArray()) {
        if (!first) out.push_back(',');
        first = false;
        serializeTo(item, out);
      }
      out.push_back(']');
      break;
    }
    case Kind::Object: {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, field] : v.asObject()) {
        if (!first) out.push_back(',');
        first = false;
        out.push_back('"');
        out += escape(key);
        out += "\":";
        serializeTo(field, out);
      }
      out.push_back('}');
      break;
    }
  }
}

}  // namespace

Value parse(std::string_view text) { return Parser(text).document(); }

std::string serialize(const Value& v) {
  std::string out;
  serializeTo(v, out);
  return out;
}

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string formatNumber(double v) {
  if (!std::isfinite(v)) {
    throw adpm::InvalidArgumentError("json: non-finite number");
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace adpm::util::json
