// Fixed thread-pool executor with per-session strands.
//
// The design-session service hosts many concurrent sessions on a small,
// fixed worker pool.  Each session owns a *strand*: tasks posted to the same
// strand execute one at a time and in FIFO order (so a session's operations
// serialize without a per-session thread), while tasks on distinct strands
// run in parallel across the pool.  A strand dispatches at most one task per
// pool slot and re-enqueues itself while work remains, which keeps scheduling
// fair when there are more live sessions than workers.
//
// Deterministic mode (`Options::deterministic`) runs every task inline on
// the posting thread, preserving FIFO order for nested posts.  With a single
// driving thread this makes service runs bit-stable — the mode the replay
// tests and the WAL determinism guarantee rely on.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/thread_annotations.hpp"

namespace adpm::util {

class Executor {
 public:
  struct Options {
    /// Worker threads; 0 = hardware_concurrency (clamped to at least 1).
    unsigned threads = 0;
    /// Run tasks inline at post() time on the posting thread (no workers).
    bool deterministic = false;
  };

  // Two overloads instead of `Options options = {}`: GCC rejects a
  // brace-init default argument of a nested aggregate with default member
  // initializers while the enclosing class is incomplete.
  Executor();
  explicit Executor(Options options);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Enqueues a task on the pool (inline in deterministic mode).
  void post(std::function<void()> task);

  /// Blocks until every posted task (including strand tasks) has finished.
  /// New tasks posted while draining are waited for too.
  void drain();

  unsigned workerCount() const noexcept { return workerCount_; }
  bool deterministic() const noexcept { return options_.deterministic; }

  /// Serialized task queue over this executor.  Thread-safe; keep alive via
  /// shared_ptr at least until its last task has run.
  class Strand {
   public:
    /// Enqueues a task; tasks on one strand never run concurrently and run
    /// in post order.
    void post(std::function<void()> task);

   private:
    friend class Executor;
    explicit Strand(Executor& executor) : executor_(executor) {}

    /// Runs one queued task on a pool thread, then reschedules if needed.
    void runOne();
    void drainInline();

    Executor& executor_;
    Mutex mutex_;
    std::deque<std::function<void()>> queue_ ADPM_GUARDED_BY(mutex_);
    /// True while a pool dispatch is pending/running (or, deterministic
    /// mode, while the posting thread is draining) — the serialization bit.
    bool active_ ADPM_GUARDED_BY(mutex_) = false;
  };

  std::shared_ptr<Strand> makeStrand();

 private:
  friend class Strand;

  void workerLoop();
  void finishOne();

  Options options_;
  unsigned workerCount_ = 0;

  Mutex mutex_;
  CondVar wake_;
  CondVar idle_;
  std::deque<std::function<void()>> queue_ ADPM_GUARDED_BY(mutex_);
  /// Posted but not yet finished tasks.
  std::size_t pending_ ADPM_GUARDED_BY(mutex_) = 0;
  bool stop_ ADPM_GUARDED_BY(mutex_) = false;
  /// Written only before/after the workers exist (ctor/dtor).
  std::vector<std::thread> workers_;
};

}  // namespace adpm::util
