#include "util/rng.hpp"

namespace adpm::util {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  if (!(lo < hi)) return lo;
  return lo + (hi - lo) * uniform();
}

std::size_t Rng::index(std::size_t n) noexcept {
  // Modulo bias is negligible for the n used here (tens of choices), and
  // determinism matters more than perfect uniformity for simulation replay.
  return static_cast<std::size_t>((*this)() % n);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) noexcept {
  if (lo >= hi) return lo;
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>((*this)() % span);
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

}  // namespace adpm::util
