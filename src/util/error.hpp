// Error types shared by all ADPM modules.
//
// The library throws exceptions only for programming errors and malformed
// input (e.g. DDDL syntax errors); expected conditions such as an infeasible
// constraint network are reported through return values.
#pragma once

#include <stdexcept>
#include <string>

namespace adpm {

/// Base class for all exceptions thrown by this library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated an API precondition (unknown id, bad argument, ...).
class InvalidArgumentError : public Error {
 public:
  explicit InvalidArgumentError(const std::string& what) : Error(what) {}
};

/// A failure that is expected to be momentary (contended resource, injected
/// fault, interrupted write that was rolled back); callers with a retry
/// policy may safely re-issue the command.
class TransientError : public Error {
 public:
  explicit TransientError(const std::string& what) : Error(what) {}
};

/// A command spent longer than its deadline waiting to run; the command was
/// NOT executed (deadlines are admission control, not preemption).
class TimeoutError : public Error {
 public:
  explicit TimeoutError(const std::string& what) : Error(what) {}
};

/// Thrown by an armed failpoint (util/fault.hpp).  Transient by definition:
/// the fault plan decides whether the retry fires it again.
class FaultInjectedError : public TransientError {
 public:
  explicit FaultInjectedError(const std::string& what) : TransientError(what) {}
};

/// A DDDL source file failed to lex/parse/validate.
class ParseError : public Error {
 public:
  ParseError(const std::string& what, int line, int column)
      : Error("parse error at " + std::to_string(line) + ":" +
              std::to_string(column) + ": " + what),
        line_(line),
        column_(column) {}

  int line() const noexcept { return line_; }
  int column() const noexcept { return column_; }

 private:
  int line_;
  int column_;
};

}  // namespace adpm
