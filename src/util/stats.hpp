// Streaming statistics used by TeamSim's experiment driver.
//
// Fig. 9 of the paper reports mean and standard deviation of the number of
// design operations over >= 60 seeded runs; RunningStats implements Welford's
// online algorithm so the experiment driver never needs to retain raw samples
// for aggregate metrics (traces keep their own raw series).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace adpm::util {

/// Welford online mean/variance accumulator.
class RunningStats {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

  /// Merges another accumulator into this one (parallel-safe combine).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-width bucket histogram over [lo, hi); out-of-range samples clamp to
/// the first/last bucket.  Used by the experiment reports to show the spread
/// of operation counts across seeds.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x) noexcept;

  std::size_t bucketCount() const noexcept { return counts_.size(); }
  std::size_t bucket(std::size_t i) const { return counts_.at(i); }
  double bucketLow(std::size_t i) const;
  double bucketHigh(std::size_t i) const;
  std::size_t total() const noexcept { return total_; }

  /// Renders a one-line-per-bucket ASCII bar chart.
  std::string render(std::size_t barWidth = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Mean of a vector; 0 for empty input.
double mean(const std::vector<double>& xs) noexcept;

/// Sample standard deviation of a vector; 0 for fewer than two samples.
double stddev(const std::vector<double>& xs) noexcept;

/// Median (average of middle two for even sizes); 0 for empty input.
double median(std::vector<double> xs) noexcept;

}  // namespace adpm::util
