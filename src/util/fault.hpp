// Deterministic fault injection: named failpoints for torture testing.
//
// Robustness claims ("a torn WAL tail is salvaged", "a saturated subscriber
// degrades instead of blocking the strand") are only as good as the failure
// scenarios that exercise them.  This registry lets tests and the torture
// harness arm *named* failpoints compiled into the service hot paths —
// wal.open/append/flush/fsync, store.open/apply/recover, bus.publish/enqueue,
// executor.post/dispatch — with deterministic triggers:
//
//   * fire on every Nth hit (hit counter per point), or
//   * fire with probability p from a per-point seeded RNG (util::Rng);
//
// and one of four actions:
//
//   * Error      — the site throws FaultInjectedError (a TransientError);
//   * ShortWrite — write sites persist a *prefix* of the record then fail,
//                  leaving a real torn tail on disk (non-write sites treat
//                  this as Error);
//   * Delay      — the registry sleeps delayMicros inside check() and the
//                  site proceeds normally (slow-disk / slow-queue emulation);
//   * Abort      — std::abort() inside check(): the fork/kill torture driver
//                  uses this to die at an exact, reproducible instruction.
//
// Zero-overhead guarantee: unless the build defines ADPM_FAULT_INJECTION=1
// (CMake -DADPM_FAULT_INJECTION=ON), ADPM_FAULT_POINT(name) expands to the
// constant FaultAction::None — no registry lookup, no atomic load, nothing
// for the optimizer to keep.  Production builds pay literally zero.
//
// Determinism: both triggers are pure functions of (plan, hit index), so a
// given fault plan reproduces the identical error sequence across runs —
// the property the torture harness asserts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace adpm::util {

enum class FaultAction : std::uint8_t { None, Error, ShortWrite, Delay, Abort };

const char* faultActionName(FaultAction a) noexcept;

/// When and how an armed failpoint fires.
struct FaultPlan {
  FaultAction action = FaultAction::Error;
  /// Fire on every Nth hit (1 = every hit); 0 = use `probability` instead.
  std::uint64_t everyNth = 0;
  /// Per-hit fire probability, drawn from a per-point Rng seeded with `seed`
  /// at arm time (only consulted when everyNth == 0).
  double probability = 0.0;
  std::uint64_t seed = 0;
  /// Stop firing after this many fires (0 = unlimited).
  std::uint64_t maxFires = 0;
  /// Sleep length for FaultAction::Delay.
  unsigned delayMicros = 1000;
};

/// Process-wide registry of named failpoints.  All methods are thread-safe.
/// check() is the instrumented-site entry — call it through ADPM_FAULT_POINT
/// so disabled builds compile the probe away entirely.
class FaultRegistry {
 public:
  static FaultRegistry& instance();

  void arm(const std::string& point, FaultPlan plan);
  void disarm(const std::string& point);
  /// Disarms every point and zeroes all counters.
  void reset();

  /// Arms failpoints from a compact spec, e.g.
  ///   "wal.append=short-write:every=3;store.apply=error:p=0.1:seed=7:max=2"
  /// Grammar per clause: point=action[:every=N][:p=P][:seed=S][:max=M][:us=U]
  /// with clauses separated by ';'.  Throws InvalidArgumentError on
  /// malformed specs.  Actions: error, short-write, delay, abort.
  void armFromSpec(const std::string& spec);

  /// Decides whether `point` fires on this hit.  Delay sleeps internally
  /// and returns None; Abort calls std::abort(); Error/ShortWrite are
  /// returned for the site to act on.
  FaultAction check(const char* point);

  std::uint64_t hits(const std::string& point) const;
  std::uint64_t fired(const std::string& point) const;
  std::vector<std::string> armed() const;

 private:
  FaultRegistry() = default;
  struct Impl;
  Impl& impl() const;
};

/// RAII arm/disarm for tests.
class ScopedFault {
 public:
  ScopedFault(std::string point, FaultPlan plan) : point_(std::move(point)) {
    FaultRegistry::instance().arm(point_, plan);
  }
  ~ScopedFault() { FaultRegistry::instance().disarm(point_); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

 private:
  std::string point_;
};

}  // namespace adpm::util

#if defined(ADPM_FAULT_INJECTION) && ADPM_FAULT_INJECTION
#define ADPM_FAULT_POINT(name) \
  (::adpm::util::FaultRegistry::instance().check(name))
#else
// Disabled build: a constant the optimizer folds; every `switch`/`if` on a
// fault point is dead code and vanishes.
#define ADPM_FAULT_POINT(name) (::adpm::util::FaultAction::None)
#endif
