// Small string helpers shared across modules.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace adpm::util {

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s) noexcept;

/// Splits on a single-character separator; adjacent separators yield empty
/// fields.  An empty input yields one empty field.
std::vector<std::string> split(std::string_view s, char sep);

/// Joins with a separator string.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` starts with `prefix`.
bool startsWith(std::string_view s, std::string_view prefix) noexcept;

/// Lower-cases ASCII letters.
std::string toLower(std::string_view s);

/// FNV-1a 64-bit hash; the service layer digests session snapshots with it
/// (stable across platforms, no dependency on std::hash).
std::uint64_t fnv1a64(std::string_view s) noexcept;

/// fnv1a64 rendered as 16 lowercase hex digits.
std::string fnv1a64Hex(std::string_view s);

}  // namespace adpm::util
