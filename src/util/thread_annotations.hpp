// Compile-time concurrency discipline: Clang thread-safety annotations and
// the annotated locking primitives every other module must use.
//
// The service spans three concurrency layers — executor strands, the
// session store / notification bus / WAL core, and the reactor front-end —
// whose correctness rests on lock and strand invariants.  TSan and review
// catch violations at runtime, on the schedules a test happens to explore;
// Clang's thread-safety analysis (-Wthread-safety) proves the locking rules
// on *every* path at compile time.  This header provides:
//
//   * ADPM_* macros wrapping Clang's capability attributes, expanding to
//     nothing on compilers without the analysis (GCC builds are untouched);
//   * util::Mutex / util::CondVar / util::LockGuard / util::UniqueLock —
//     std::mutex-family wrappers carrying the annotations.  These are the
//     ONLY locking primitives allowed in src/ (scripts/lint_invariants.py
//     enforces it); raw std::mutex would be invisible to the analysis.
//
// Conventions (see docs/ARCHITECTURE.md §13 for the lock-order table):
//   * every field a mutex protects is declared ADPM_GUARDED_BY(mutex_);
//   * a private method that must run with a lock already held is declared
//     ADPM_REQUIRES(mutex_) instead of re-locking;
//   * condition-variable waits are written as explicit while loops around
//     CondVar::wait, never predicate lambdas — the analysis checks a lambda
//     body as a separate function that does not hold the caller's locks, so
//     a predicate reading guarded fields cannot be proven safe.
//
// The std::condition_variable bridge: CondVar::wait adopts the UniqueLock's
// underlying std::mutex for the duration of the wait and releases it back,
// so from the caller's (and the analysis') point of view the capability is
// held continuously across the wait — which matches the semantics callers
// rely on (the lock is held whenever user code runs).
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

// -- attribute macros ---------------------------------------------------------

#if defined(__clang__)
#define ADPM_TSA(x) __attribute__((x))
#else
#define ADPM_TSA(x)  // no-op: GCC has no thread-safety analysis
#endif

/// A type that models a capability (a lock).
#define ADPM_CAPABILITY(x) ADPM_TSA(capability(x))
/// An RAII type that acquires a capability at construction and releases it
/// at destruction.
#define ADPM_SCOPED_CAPABILITY ADPM_TSA(scoped_lockable)
/// Field readable/writable only while holding the given capability.
#define ADPM_GUARDED_BY(x) ADPM_TSA(guarded_by(x))
/// Pointer whose *pointee* is protected by the given capability.
#define ADPM_PT_GUARDED_BY(x) ADPM_TSA(pt_guarded_by(x))
/// Function that may only be called while holding the given capabilities.
#define ADPM_REQUIRES(...) ADPM_TSA(requires_capability(__VA_ARGS__))
/// Function that acquires the given capabilities (held on return).
#define ADPM_ACQUIRE(...) ADPM_TSA(acquire_capability(__VA_ARGS__))
/// Function that releases the given capabilities (held on entry).
#define ADPM_RELEASE(...) ADPM_TSA(release_capability(__VA_ARGS__))
/// Function that acquires the capabilities when it returns `ret`.
#define ADPM_TRY_ACQUIRE(ret, ...) \
  ADPM_TSA(try_acquire_capability(ret, __VA_ARGS__))
/// Function that must NOT be called while holding the given capabilities
/// (self-deadlock guard on non-reentrant locks).
#define ADPM_EXCLUDES(...) ADPM_TSA(locks_excluded(__VA_ARGS__))
/// Declares a lock-acquisition ordering between two capabilities.
#define ADPM_ACQUIRED_BEFORE(...) ADPM_TSA(acquired_before(__VA_ARGS__))
#define ADPM_ACQUIRED_AFTER(...) ADPM_TSA(acquired_after(__VA_ARGS__))
/// Function returning a reference to the capability guarding its result.
#define ADPM_RETURN_CAPABILITY(x) ADPM_TSA(lock_returned(x))
/// Escape hatch: the function's body is not analyzed.  Every use must carry
/// a comment justifying why the analysis cannot see the invariant.
#define ADPM_NO_THREAD_SAFETY_ANALYSIS ADPM_TSA(no_thread_safety_analysis)

namespace adpm::util {

class CondVar;

/// std::mutex carrying the `capability` annotation.  Non-recursive,
/// non-timed — exactly the subset the codebase uses.
class ADPM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ADPM_ACQUIRE() { m_.lock(); }
  void unlock() ADPM_RELEASE() { m_.unlock(); }
  bool try_lock() ADPM_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class CondVar;  // wait() adopts m_ for the blocking syscall
  std::mutex m_;
};

/// std::lock_guard equivalent: scope-bound exclusive hold, no early release.
class ADPM_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mutex) ADPM_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~LockGuard() ADPM_RELEASE() { mutex_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mutex_;
};

/// std::unique_lock equivalent for CondVar waits and early release.
/// Relockable: unlock()/lock() toggle the held state and the analysis
/// tracks it (Clang models scoped capabilities with manual release).
class ADPM_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mutex) ADPM_ACQUIRE(mutex) : mutex_(&mutex) {
    mutex_->lock();
    owned_ = true;
  }
  ~UniqueLock() ADPM_RELEASE() {
    if (owned_) mutex_->unlock();
  }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void unlock() ADPM_RELEASE() {
    mutex_->unlock();
    owned_ = false;
  }
  void lock() ADPM_ACQUIRE() {
    mutex_->lock();
    owned_ = true;
  }
  bool ownsLock() const noexcept { return owned_; }

 private:
  friend class CondVar;
  Mutex* mutex_;
  bool owned_ = false;
};

/// std::condition_variable over util::Mutex.  Waits take a held UniqueLock;
/// write them as explicit `while (!condition) cv.wait(lock);` loops (see the
/// header comment for why predicate lambdas defeat the analysis).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  /// Atomically releases the lock, blocks, and re-acquires before
  /// returning.  The caller must hold `lock`; it holds it again on return,
  /// so the capability is continuously held from the analysis' view.
  void wait(UniqueLock& lock) ADPM_REQUIRES(lock) {
    std::unique_lock<std::mutex> inner(lock.mutex_->m_, std::adopt_lock);
    cv_.wait(inner);
    inner.release();  // ownership stays with the UniqueLock
  }

  template <typename Rep, typename Period>
  std::cv_status wait_for(UniqueLock& lock,
                          const std::chrono::duration<Rep, Period>& d)
      ADPM_REQUIRES(lock) {
    std::unique_lock<std::mutex> inner(lock.mutex_->m_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(inner, d);
    inner.release();
    return status;
  }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(UniqueLock& lock,
                            const std::chrono::time_point<Clock, Duration>& tp)
      ADPM_REQUIRES(lock) {
    std::unique_lock<std::mutex> inner(lock.mutex_->m_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(inner, tp);
    inner.release();
    return status;
  }

 private:
  std::condition_variable cv_;
};

}  // namespace adpm::util
