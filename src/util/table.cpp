#include "util/table.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <ostream>
#include <sstream>

namespace adpm::util {

namespace {

bool looksNumeric(const std::string& s) {
  if (s.empty()) return false;
  std::size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  if (i >= s.size()) return false;
  bool digit = false;
  for (; i < s.size(); ++i) {
    const char c = s[i];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit = true;
    } else if (c != '.' && c != 'e' && c != 'E' && c != '-' && c != '+' &&
               c != '%' && c != 'x') {
      return false;
    }
  }
  return digit;
}

}  // namespace

void TextTable::header(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void TextTable::row(std::vector<std::string> cells) {
  rows_.push_back({std::move(cells), false});
}

void TextTable::rule() { rows_.push_back({{}, true}); }

std::string TextTable::render() const {
  std::vector<std::size_t> widths;
  auto widen = [&](const std::vector<std::string>& cells) {
    if (cells.size() > widths.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  widen(header_);
  for (const auto& r : rows_) {
    if (!r.isRule) widen(r.cells);
  }

  std::size_t totalWidth = 0;
  for (std::size_t w : widths) totalWidth += w + 2;
  if (totalWidth >= 2) totalWidth -= 2;

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells, bool alignNumbers) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const auto& cell = cells[i];
      const std::size_t pad = widths[i] - cell.size();
      const bool right = alignNumbers && looksNumeric(cell);
      if (right) out << std::string(pad, ' ');
      out << cell;
      if (i + 1 < cells.size()) {
        if (!right) out << std::string(pad, ' ');
        out << "  ";
      }
    }
    out << "\n";
  };

  if (!header_.empty()) {
    emit(header_, false);
    out << std::string(totalWidth, '-') << "\n";
  }
  for (const auto& r : rows_) {
    if (r.isRule) {
      out << std::string(totalWidth, '-') << "\n";
    } else {
      emit(r.cells, true);
    }
  }
  return out.str();
}

std::string formatNumber(double value, int digits) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  std::ostringstream out;
  out.precision(digits);
  out << value;
  return out.str();
}

std::string formatExact(double value) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  char buffer[64];
  const auto [ptr, ec] = std::to_chars(buffer, buffer + sizeof(buffer), value);
  if (ec != std::errc{}) return formatNumber(value, 17);
  return std::string(buffer, ptr);
}

namespace {

std::string csvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void csvRow(std::ostream& out, const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out << ',';
    out << csvEscape(cells[i]);
  }
  out << '\n';
}

}  // namespace

void writeCsv(std::ostream& out, const std::vector<std::string>& header,
              const std::vector<std::vector<std::string>>& rows) {
  if (!header.empty()) csvRow(out, header);
  for (const auto& r : rows) csvRow(out, r);
}

}  // namespace adpm::util
