// Minimal JSON value model, parser, and canonical serializer.
//
// The service layer's durable operation log is JSONL (one object per line),
// and its records must round-trip *bit-identically* so that replaying a log
// reproduces the live run exactly.  Hence the serializer is canonical: no
// insignificant whitespace, object keys kept in insertion order, and numbers
// printed with %.17g (enough digits to round-trip any IEEE-754 double).
// Only the JSON subset those records need is supported: null, bool, finite
// numbers, strings, arrays, objects.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace adpm::util::json {

class Value;

using Array = std::vector<Value>;
/// Insertion-ordered (not sorted): serialize(parse(s)) == s for canonical s.
using Object = std::vector<std::pair<std::string, Value>>;

enum class Kind : std::uint8_t { Null, Bool, Number, String, Array, Object };

class Value {
 public:
  Value() noexcept : kind_(Kind::Null) {}
  Value(std::nullptr_t) noexcept : kind_(Kind::Null) {}
  Value(bool b) noexcept : kind_(Kind::Bool), bool_(b) {}
  Value(double n) noexcept : kind_(Kind::Number), number_(n) {}
  Value(int n) noexcept : kind_(Kind::Number), number_(n) {}
  Value(std::size_t n) noexcept
      : kind_(Kind::Number), number_(static_cast<double>(n)) {}
  Value(const char* s) : kind_(Kind::String), string_(s) {}
  Value(std::string s) : kind_(Kind::String), string_(std::move(s)) {}
  Value(Array a) : kind_(Kind::Array), array_(std::move(a)) {}
  Value(Object o) : kind_(Kind::Object), object_(std::move(o)) {}

  Kind kind() const noexcept { return kind_; }
  bool isNull() const noexcept { return kind_ == Kind::Null; }

  /// Typed accessors; throw InvalidArgumentError on kind mismatch.
  bool asBool() const;
  double asNumber() const;
  const std::string& asString() const;
  const Array& asArray() const;
  const Object& asObject() const;

  /// Object field lookup; null when absent (or when not an object).
  const Value* find(std::string_view key) const noexcept;
  /// Object field lookup; throws InvalidArgumentError when absent.
  const Value& at(std::string_view key) const;

  /// Appends a field to an object value (the builder-side API).
  Value& set(std::string key, Value v);

  bool operator==(const Value& other) const noexcept;

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parses one JSON document; trailing garbage is an error.  Throws
/// adpm::ParseError with a 1-based offset in the column field.
Value parse(std::string_view text);

/// Canonical single-line form (see header comment).
std::string serialize(const Value& v);

/// Escapes a string for embedding in JSON (quotes not included).
std::string escape(std::string_view s);

/// %.17g rendering used for all numbers (round-trips IEEE-754 doubles).
std::string formatNumber(double v);

}  // namespace adpm::util::json
