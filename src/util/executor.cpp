#include "util/executor.hpp"

#include <utility>

#include "util/error.hpp"
#include "util/fault.hpp"

namespace adpm::util {

Executor::Executor() : Executor(Options{}) {}

Executor::Executor(Options options) : options_(options) {
  if (options_.deterministic) {
    workerCount_ = 0;
    return;
  }
  unsigned threads = options_.threads;
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;  // hardware_concurrency may be unknown
  }
  workerCount_ = threads;
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

Executor::~Executor() {
  drain();
  {
    LockGuard lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void Executor::post(std::function<void()> task) {
  if (ADPM_FAULT_POINT("executor.post") != FaultAction::None) {
    // Fails the submission itself — the task is never queued, so callers
    // holding its future see a broken_promise-free, typed rejection.
    throw adpm::FaultInjectedError("injected failure posting task");
  }
  if (options_.deterministic) {
    task();
    return;
  }
  {
    LockGuard lock(mutex_);
    ++pending_;
    // The pool queue itself carries no completion bookkeeping (strand
    // dispatches ride it too, uncounted), so the posted task retires itself.
    queue_.push_back([this, task = std::move(task)]() mutable {
      task();
      finishOne();
    });
  }
  wake_.notify_one();
}

void Executor::drain() {
  if (options_.deterministic) return;
  UniqueLock lock(mutex_);
  while (pending_ != 0) idle_.wait(lock);
}

void Executor::workerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      UniqueLock lock(mutex_);
      while (!stop_ && queue_.empty()) wake_.wait(lock);
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // Dispatch probe: a worker cannot "fail" to run a dequeued task, so only
    // Delay (stall a worker) and Abort (die mid-dispatch) are meaningful
    // here; Error/ShortWrite results are ignored.
    (void)ADPM_FAULT_POINT("executor.dispatch");
    task();
  }
}

void Executor::finishOne() {
  std::size_t left;
  {
    LockGuard lock(mutex_);
    left = --pending_;
  }
  if (left == 0) idle_.notify_all();
}

// -- Strand -------------------------------------------------------------------

std::shared_ptr<Executor::Strand> Executor::makeStrand() {
  return std::shared_ptr<Strand>(new Strand(*this));
}

void Executor::Strand::post(std::function<void()> task) {
  if (ADPM_FAULT_POINT("executor.post") != FaultAction::None) {
    throw adpm::FaultInjectedError("injected failure posting task");
  }
  if (executor_.options_.deterministic) {
    bool drainHere = false;
    {
      LockGuard lock(mutex_);
      queue_.push_back(std::move(task));
      if (!active_) {
        active_ = true;
        drainHere = true;  // nested posts land in the outer drain loop
      }
    }
    if (drainHere) drainInline();
    return;
  }

  // Count the task before it becomes consumable: once it sits in the strand
  // queue, an already-active dispatch on a pool thread may run it and
  // finishOne() immediately, so incrementing pending_ afterwards would let
  // the count transiently hit 0 (drain() returning with work still queued)
  // and then underflow.
  {
    LockGuard lock(executor_.mutex_);
    ++executor_.pending_;
  }
  bool schedule = false;
  {
    LockGuard lock(mutex_);
    queue_.push_back(std::move(task));
    if (!active_) {
      active_ = true;
      schedule = true;
    }
  }
  if (schedule) {
    {
      LockGuard lock(executor_.mutex_);
      // Internal dispatch: runs one strand task per pool slot; not counted
      // as a task itself (pending_ tracks user tasks only).
      executor_.queue_.push_back([this] { runOne(); });
    }
    executor_.wake_.notify_one();
  }
}

void Executor::Strand::runOne() {
  std::function<void()> task;
  {
    LockGuard lock(mutex_);
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  (void)ADPM_FAULT_POINT("executor.dispatch");  // Delay/Abort only (see above)
  task();

  // Reschedule (or go idle) *before* retiring the task from the executor's
  // pending count: once pending_ hits 0 a drain()ing owner may destroy this
  // strand, so no strand state may be touched after finishOne().
  bool reschedule = false;
  {
    LockGuard lock(mutex_);
    if (queue_.empty()) {
      active_ = false;
    } else {
      reschedule = true;
    }
  }
  if (reschedule) {
    {
      LockGuard lock(executor_.mutex_);
      executor_.queue_.push_back([this] { runOne(); });
    }
    executor_.wake_.notify_one();
  }
  executor_.finishOne();
}

void Executor::Strand::drainInline() {
  for (;;) {
    std::function<void()> task;
    {
      LockGuard lock(mutex_);
      if (queue_.empty()) {
        active_ = false;
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace adpm::util
