#include "util/strings.hpp"

#include <cctype>
#include <cstdio>

namespace adpm::util {

std::string_view trim(std::string_view s) noexcept {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

bool startsWith(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string toLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::uint64_t fnv1a64(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string fnv1a64Hex(std::string_view s) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(fnv1a64(s)));
  return buf;
}

}  // namespace adpm::util
