#include "service/session.hpp"

#include <cstdio>
#include <filesystem>
#include <system_error>

#include "dddl/parser.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace adpm::service {

namespace {

void appendDouble(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

}  // namespace

std::string snapshotText(const dpm::DesignProcessManager& dpm) {
  const constraint::Network& net = dpm.network();
  std::string out;
  out.reserve(4096);

  // Property bindings and the evaluation box ("network hull").
  for (std::uint32_t i = 0; i < net.propertyCount(); ++i) {
    const constraint::Property& p =
        net.property(constraint::PropertyId{i});
    out += "p ";
    out += p.name;
    out += ' ';
    if (p.bound()) {
      out += "bound ";
      appendDouble(out, *p.value);
    } else {
      out += "unbound";
    }
    const interval::Interval hull = p.currentHull();
    out += " hull [";
    appendDouble(out, hull.lo());
    out += ',';
    appendDouble(out, hull.hi());
    out += "]\n";
  }

  // Known constraint statuses and the violation set.
  const std::vector<constraint::Status>& statuses = dpm.knownStatuses();
  for (std::uint32_t i = 0; i < statuses.size(); ++i) {
    out += "c ";
    out += std::to_string(i);
    out += ' ';
    out += constraint::statusName(statuses[i]);
    if (dpm.isStale(constraint::ConstraintId{i})) out += " stale";
    out += '\n';
  }
  out += "violated";
  for (const constraint::ConstraintId c : dpm.knownViolations()) {
    out += ' ';
    out += std::to_string(c.value);
  }
  out += '\n';

  // λ=T: the full mined guidance.
  if (const constraint::GuidanceReport* g = dpm.latestGuidance()) {
    for (const constraint::PropertyGuidance& pg : g->properties) {
      out += "g ";
      out += std::to_string(pg.id.value);
      out += " feasible ";
      out += pg.feasible.str(17);
      out += " rel ";
      appendDouble(out, pg.relativeFeasibleSize);
      out += " alpha ";
      out += std::to_string(pg.alpha);
      out += " beta ";
      out += std::to_string(pg.beta);
      out += " votes ";
      out += std::to_string(pg.repairVotesUp);
      out += '/';
      out += std::to_string(pg.repairVotesDown);
      out += " inc";
      for (const constraint::ConstraintId c : pg.increasing) {
        out += ' ';
        out += std::to_string(c.value);
      }
      out += " dec";
      for (const constraint::ConstraintId c : pg.decreasing) {
        out += ' ';
        out += std::to_string(c.value);
      }
      out += '\n';
    }
    out += "gviolated";
    for (const constraint::ConstraintId c : g->violated) {
      out += ' ';
      out += std::to_string(c.value);
    }
    out += '\n';
  }
  return out;
}

Session::Session(SessionConfig config, const dpm::ScenarioSpec& spec,
                 std::unique_ptr<OperationLog> log)
    : Session(std::move(config), spec, std::move(log), Options{}) {}

Session::Session(SessionConfig config, const dpm::ScenarioSpec& spec,
                 std::unique_ptr<OperationLog> log, Options options)
    : config_(std::move(config)),
      options_(options),
      dpm_(std::make_unique<dpm::DesignProcessManager>(
          dpm::DesignProcessManager::Options{.adpm = config_.adpm})),
      log_(std::move(log)) {
  dpm::instantiate(spec, *dpm_);
  dpm_->bootstrap();
}

Session::~Session() {
  if (!log_ || dpm_->stage() == 0 || lastMarkStage_ == dpm_->stage()) return;
  try {
    log_->appendMark(dpm_->stage(), snapshot().digest);
  } catch (...) {
    // Teardown must not throw; a failed seal just means the tail of the log
    // ends on an op record, which recovery already tolerates.
  }
}

dpm::DesignProcessManager::ExecResult Session::apply(dpm::Operation op) {
  return applyImpl(std::move(op), /*journal=*/true);
}

dpm::DesignProcessManager::ExecResult Session::replayApply(dpm::Operation op) {
  return applyImpl(std::move(op), /*journal=*/false);
}

dpm::DesignProcessManager::ExecResult Session::applyImpl(dpm::Operation op,
                                                         bool journal) {
  // Write-ahead: the operation is durable before its effects exist, so a
  // crash mid-execution replays it instead of losing it.
  if (journal && log_) log_->appendOperation(op);

  dpm::DesignProcessManager::ExecResult result = dpm_->execute(std::move(op));
  if (sink_) sink_(result.notifications);

  if (journal && log_ && options_.markEvery > 0 &&
      dpm_->stage() % options_.markEvery == 0) {
    log_->appendMark(dpm_->stage(), snapshot().digest);
    lastMarkStage_ = dpm_->stage();
  }
  return result;
}

SessionSnapshot Session::snapshot() const {
  SessionSnapshot snap;
  snap.id = config_.id;
  snap.stage = dpm_->stage();
  snap.complete = dpm_->designComplete();
  snap.evaluations = dpm_->network().evaluationCount();
  snap.violations = dpm_->knownViolationCount();
  snap.text = snapshotText(*dpm_);
  snap.digest = util::fnv1a64Hex(snap.text);
  return snap;
}

Session::VerifyResult Session::verify() {
  VerifyResult out;
  constraint::Network& net = dpm_->network();
  const std::size_t before = net.evaluationCount();
  for (const constraint::ConstraintId cid : net.constraintIds()) {
    if (!net.isActive(cid)) continue;
    const constraint::Constraint& c = net.constraint(cid);
    bool runnable = true;
    for (const constraint::PropertyId a : c.arguments()) {
      if (!net.property(a).bound()) {
        runnable = false;
        break;
      }
    }
    if (!runnable) continue;
    if (net.evaluate(cid) == constraint::Status::Violated) {
      out.violated.push_back(cid);
    }
  }
  out.evaluations = net.evaluationCount() - before;
  return out;
}

std::unique_ptr<Session> recoverSession(const std::string& logPath,
                                        Session::Options options,
                                        RecoveryPolicy policy,
                                        SalvageOutcome* outcome) {
  const OperationLog::Replay replay = OperationLog::read(logPath, policy);
  const dpm::ScenarioSpec spec = dddl::parse(replay.config.scenarioDddl);

  SalvageOutcome result;
  result.salvaged = replay.truncatedTail;
  result.droppedBytes = replay.droppedBytes;
  result.reason = replay.tailError;

  auto makeSession = [&] {
    return std::make_unique<Session>(replay.config, spec, nullptr, options);
  };

  // Replay the surviving operations, re-deriving the digest at each mark.
  // Operations are copied, not moved: a Salvage divergence needs them a
  // second time for the rollback rebuild.
  std::unique_ptr<Session> session = makeSession();
  std::size_t keepOps = replay.operations.size();
  std::size_t stage = 0;
  std::size_t nextMark = 0;
  std::size_t lastVerifiedStage = 0;
  std::size_t lastVerifiedOffset = replay.headerEndOffset;
  bool diverged = false;
  for (std::size_t i = 0; i < keepOps && !diverged; ++i) {
    session->replayApply(dpm::Operation(replay.operations[i]));
    ++stage;
    while (nextMark < replay.marks.size() &&
           replay.marks[nextMark].stage == stage) {
      const std::string digest = session->snapshot().digest;
      if (digest != replay.marks[nextMark].digest) {
        const std::string why =
            "diverged at stage " + std::to_string(stage) +
            ": snapshot digest " + digest + " != logged " +
            replay.marks[nextMark].digest;
        if (policy == RecoveryPolicy::Strict) {
          throw adpm::Error("operation log '" + logPath + "' " + why);
        }
        diverged = true;
        result.salvaged = true;
        result.reason = result.reason.empty() ? why : result.reason + "; " + why;
        break;
      }
      lastVerifiedStage = stage;
      lastVerifiedOffset = replay.marks[nextMark].endOffset;
      ++nextMark;
    }
  }

  std::size_t truncateTo = replay.goodEndOffset;
  if (diverged) {
    // δ cannot be un-applied, so rolling back to the last record whose
    // replay matched a snapshot mark means rebuilding from scratch; the
    // already-verified prefix re-verifies by determinism.
    keepOps = lastVerifiedStage;
    truncateTo = lastVerifiedOffset;
    session = makeSession();
    for (std::size_t i = 0; i < keepOps; ++i) {
      session->replayApply(dpm::Operation(replay.operations[i]));
    }
  }
  result.keptStage = keepOps;
  result.droppedOperations = replay.operations.size() - keepOps;

  if (result.salvaged) {
    // Trim the untrusted tail *before* reopening for append, so the next
    // record lands right after the last trusted one.
    std::error_code ec;
    std::filesystem::resize_file(logPath, truncateTo, ec);
    if (ec) {
      throw adpm::Error("cannot truncate salvaged operation log '" + logPath +
                        "' to offset " + std::to_string(truncateTo) + ": " +
                        ec.message());
    }
  }
  // Reopen in append mode *without* re-writing the header; the recovered
  // session continues the same log.
  session->attachLog(std::make_unique<OperationLog>(logPath, options.walSync));

  // Remember the seal so a recover → destroy cycle does not keep appending
  // duplicate marks for the same final stage.  After a rollback the log now
  // ends exactly at a verified mark.
  if (diverged ? keepOps > 0
               : (!replay.marks.empty() && replay.marks.back().stage == stage)) {
    session->lastMarkStage_ = keepOps;
  }
  if (outcome != nullptr) *outcome = std::move(result);
  return session;
}

}  // namespace adpm::service
