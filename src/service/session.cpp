#include "service/session.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <system_error>

#include "dddl/parser.hpp"
#include "dpm/state_io.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace adpm::service {

namespace {

void appendDouble(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

}  // namespace

std::string snapshotText(const dpm::DesignProcessManager& dpm) {
  const constraint::Network& net = dpm.network();
  std::string out;
  out.reserve(4096);

  // Property bindings and the evaluation box ("network hull").
  for (std::uint32_t i = 0; i < net.propertyCount(); ++i) {
    const constraint::Property& p =
        net.property(constraint::PropertyId{i});
    out += "p ";
    out += p.name;
    out += ' ';
    if (p.bound()) {
      out += "bound ";
      appendDouble(out, *p.value);
    } else {
      out += "unbound";
    }
    const interval::Interval hull = p.currentHull();
    out += " hull [";
    appendDouble(out, hull.lo());
    out += ',';
    appendDouble(out, hull.hi());
    out += "]\n";
  }

  // Known constraint statuses and the violation set.
  const std::vector<constraint::Status>& statuses = dpm.knownStatuses();
  for (std::uint32_t i = 0; i < statuses.size(); ++i) {
    out += "c ";
    out += std::to_string(i);
    out += ' ';
    out += constraint::statusName(statuses[i]);
    if (dpm.isStale(constraint::ConstraintId{i})) out += " stale";
    out += '\n';
  }
  out += "violated";
  for (const constraint::ConstraintId c : dpm.knownViolations()) {
    out += ' ';
    out += std::to_string(c.value);
  }
  out += '\n';

  // λ=T: the full mined guidance.
  if (const constraint::GuidanceReport* g = dpm.latestGuidance()) {
    for (const constraint::PropertyGuidance& pg : g->properties) {
      out += "g ";
      out += std::to_string(pg.id.value);
      out += " feasible ";
      out += pg.feasible.str(17);
      out += " rel ";
      appendDouble(out, pg.relativeFeasibleSize);
      out += " alpha ";
      out += std::to_string(pg.alpha);
      out += " beta ";
      out += std::to_string(pg.beta);
      out += " votes ";
      out += std::to_string(pg.repairVotesUp);
      out += '/';
      out += std::to_string(pg.repairVotesDown);
      out += " inc";
      for (const constraint::ConstraintId c : pg.increasing) {
        out += ' ';
        out += std::to_string(c.value);
      }
      out += " dec";
      for (const constraint::ConstraintId c : pg.decreasing) {
        out += ' ';
        out += std::to_string(c.value);
      }
      out += '\n';
    }
    out += "gviolated";
    for (const constraint::ConstraintId c : g->violated) {
      out += ' ';
      out += std::to_string(c.value);
    }
    out += '\n';
  }
  return out;
}

Session::Session(SessionConfig config, const dpm::ScenarioSpec& spec,
                 std::unique_ptr<SegmentedLog> log)
    : Session(std::move(config), spec, std::move(log), Options{}) {}

Session::Session(SessionConfig config, const dpm::ScenarioSpec& spec,
                 std::unique_ptr<SegmentedLog> log, Options options)
    : config_(std::move(config)),
      options_(options),
      dpm_(std::make_unique<dpm::DesignProcessManager>(
          dpm::DesignProcessManager::Options{.adpm = config_.adpm})),
      log_(std::move(log)) {
  dpm::instantiate(spec, *dpm_);
  dpm_->bootstrap();
}

Session::~Session() {
  if (!log_ || dpm_->stage() == 0 || lastMarkStage_ == dpm_->stage()) return;
  try {
    log_->appendMark(dpm_->stage(), snapshot().digest);
  } catch (...) {
    // Teardown must not throw; a failed seal just means the tail of the log
    // ends on an op record, which recovery already tolerates.
  }
}

dpm::DesignProcessManager::ExecResult Session::apply(dpm::Operation op) {
  return applyImpl(std::move(op), /*journal=*/true);
}

dpm::DesignProcessManager::ExecResult Session::replayApply(dpm::Operation op) {
  return applyImpl(std::move(op), /*journal=*/false);
}

dpm::DesignProcessManager::ExecResult Session::applyImpl(dpm::Operation op,
                                                         bool journal) {
  // Write-ahead: the operation is durable before its effects exist, so a
  // crash mid-execution replays it instead of losing it.
  if (journal && log_) log_->appendOperation(op);

  dpm::DesignProcessManager::ExecResult result = dpm_->execute(std::move(op));
  if (sink_) sink_(result.notifications);

  const std::size_t stage = dpm_->stage();
  const bool markDue = journal && log_ && options_.markEvery > 0 &&
                       stage % options_.markEvery == 0;
  const bool ckptDue = journal && log_ && options_.checkpointEvery > 0 &&
                       stage % options_.checkpointEvery == 0;
  if (markDue || ckptDue) {
    // One snapshot render feeds both the mark and the checkpoint digest.
    const SessionSnapshot snap = snapshot();
    if (markDue) {
      log_->appendMark(stage, snap.digest);
      lastMarkStage_ = stage;
    }
    if (ckptDue) {
      try {
        log_->writeCheckpoint(dpm::managerStateToJson(dpm_->exportState()),
                              stage, snap.digest, options_.checkpointKeep);
      } catch (...) {
        // A checkpoint is an optimization: failing to write one must never
        // fail the operation that triggered it (the WAL already has the op).
        ++checkpointFailures_;
      }
    }
  }
  return result;
}

void Session::checkpointNow() {
  if (!log_) return;
  const SessionSnapshot snap = snapshot();
  log_->writeCheckpoint(dpm::managerStateToJson(dpm_->exportState()),
                        dpm_->stage(), snap.digest, options_.checkpointKeep);
}

SessionSnapshot Session::snapshot() const {
  SessionSnapshot snap;
  snap.id = config_.id;
  snap.stage = dpm_->stage();
  snap.complete = dpm_->designComplete();
  snap.evaluations = dpm_->network().evaluationCount();
  snap.violations = dpm_->knownViolationCount();
  snap.text = snapshotText(*dpm_);
  snap.digest = util::fnv1a64Hex(snap.text);
  return snap;
}

Session::VerifyResult Session::verify() {
  VerifyResult out;
  constraint::Network& net = dpm_->network();
  const std::size_t before = net.evaluationCount();
  for (const constraint::ConstraintId cid : net.constraintIds()) {
    if (!net.isActive(cid)) continue;
    const constraint::Constraint& c = net.constraint(cid);
    bool runnable = true;
    for (const constraint::PropertyId a : c.arguments()) {
      if (!net.property(a).bound()) {
        runnable = false;
        break;
      }
    }
    if (!runnable) continue;
    if (net.evaluate(cid) == constraint::Status::Violated) {
      out.violated.push_back(cid);
    }
  }
  out.evaluations = net.evaluationCount() - before;
  return out;
}

namespace {

/// One readable segment of the recovery chain.
struct LoadedSegment {
  std::size_t seq = 0;
  std::string path;
  OperationLog::Replay replay;
  std::size_t startStage() const noexcept { return replay.segmentStartStage; }
  std::size_t endStage() const noexcept {
    return replay.segmentStartStage + replay.operations.size();
  }
};

std::size_t fileSizeOf(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  return ec ? 0 : static_cast<std::size_t>(size);
}

bool sameConfig(const SessionConfig& a, const SessionConfig& b) {
  return a.id == b.id && a.adpm == b.adpm &&
         a.scenarioName == b.scenarioName &&
         a.scenarioDddl == b.scenarioDddl;
}

}  // namespace

std::unique_ptr<Session> recoverSession(const std::string& logPath,
                                        Session::Options options,
                                        RecoveryPolicy policy,
                                        SalvageOutcome* outcome) {
  const SessionFiles files = listSessionFiles(logPath);
  if (files.segments.empty() && files.checkpoints.empty()) {
    throw adpm::Error("cannot read operation log '" + logPath +
                      "': no segments or checkpoints on disk");
  }

  SalvageOutcome result;
  std::vector<std::string> reasons;
  const auto addReason = [&reasons](std::string r) {
    reasons.push_back(std::move(r));
  };

  // -- 1. read the segment chain ---------------------------------------------
  //
  // Segments are read ascending; the chain ends early (Salvage) at the first
  // segment that is unreadable, out of sequence, or discontinuous — past
  // that point the operation *sequence* can no longer be trusted, so later
  // segments are dropped.  Strict throws instead.
  std::vector<LoadedSegment> chain;
  std::vector<std::string> droppedFiles;  // removed at commit (Salvage only)
  std::size_t maxSeqSeen = 0;
  bool chainBroken = false;
  for (const SegmentRef& ref : files.segments) {
    maxSeqSeen = std::max(maxSeqSeen, ref.seq);
    if (chainBroken) {
      droppedFiles.push_back(ref.path);
      result.droppedBytes += fileSizeOf(ref.path);
      continue;
    }
    LoadedSegment seg;
    seg.seq = ref.seq;
    seg.path = ref.path;
    try {
      seg.replay = OperationLog::read(ref.path, policy);
    } catch (const adpm::Error& e) {
      // Header-level damage throws under both read policies; Salvage ends
      // the chain here and drops the file.
      if (policy == RecoveryPolicy::Strict) throw;
      chainBroken = true;
      result.salvaged = true;
      addReason(e.what());
      droppedFiles.push_back(ref.path);
      result.droppedBytes += fileSizeOf(ref.path);
      continue;
    }
    std::string problem;
    if (seg.replay.segmentSeq != ref.seq) {
      problem = "segment '" + ref.path + "' header seq " +
                std::to_string(seg.replay.segmentSeq) +
                " does not match its filename";
    } else if (!chain.empty() &&
               seg.replay.segmentStartStage != chain.back().endStage()) {
      problem = "segment '" + ref.path + "' starts at stage " +
                std::to_string(seg.replay.segmentStartStage) +
                " but the previous segment ends at stage " +
                std::to_string(chain.back().endStage());
    } else if (!chain.empty() &&
               !sameConfig(seg.replay.config, chain.front().replay.config)) {
      problem = "segment '" + ref.path +
                "' header disagrees with the chain's session config";
    }
    if (!problem.empty()) {
      if (policy == RecoveryPolicy::Strict) {
        throw adpm::Error("operation log '" + logPath + "': " + problem);
      }
      chainBroken = true;
      result.salvaged = true;
      addReason(problem);
      droppedFiles.push_back(ref.path);
      result.droppedBytes += fileSizeOf(ref.path);
      continue;
    }
    if (seg.replay.truncatedTail) {
      // Only a chain *tail* may be torn — records past a mid-chain tear are
      // unordered relative to the next segment, so the chain stops.
      result.salvaged = true;
      result.droppedBytes += seg.replay.droppedBytes;
      addReason(seg.replay.tailError);
      chainBroken = true;
    }
    chain.push_back(std::move(seg));
  }

  // -- 2. pick the recovery base: newest trustworthy checkpoint --------------
  //
  // Checkpoints degrade, never fail, under either policy: any damage (torn
  // file, bad crc, malformed state, digest mismatch against the rebuilt
  // manager) demotes to the next-older checkpoint and ultimately to full
  // replay.  Runner-up checkpoints are still crc-verified so compaction
  // accounting only tracks files recovery could actually use.
  std::unique_ptr<Session> session;
  std::vector<Checkpoint> keptCheckpoints;  // newest-first here
  std::string baseDigest;
  std::size_t baseStage = 0;
  std::size_t nextCheckpointSeq = 1;
  for (auto it = files.checkpoints.rbegin(); it != files.checkpoints.rend();
       ++it) {
    nextCheckpointSeq = std::max(nextCheckpointSeq, it->seq + 1);
    try {
      Checkpoint ckpt = readCheckpoint(it->path);
      if (ckpt.seq != it->seq) {
        throw adpm::Error("checkpoint '" + it->path +
                          "' seq does not match its filename");
      }
      if (!chain.empty() &&
          !sameConfig(ckpt.config, chain.front().replay.config)) {
        throw adpm::Error("checkpoint '" + it->path +
                          "' disagrees with the segment chain's config");
      }
      if (session == nullptr) {
        const dpm::ManagerState state = dpm::managerStateFromJson(ckpt.state);
        const dpm::ScenarioSpec spec = dddl::parse(ckpt.config.scenarioDddl);
        auto candidate = std::make_unique<Session>(ckpt.config, spec, nullptr,
                                                   options);
        candidate->manager().restoreState(state);
        const SessionSnapshot snap = candidate->snapshot();
        if (snap.stage != ckpt.stage || snap.digest != ckpt.digest) {
          throw adpm::Error(
              "checkpoint '" + it->path + "' digest " + ckpt.digest +
              " does not match the rebuilt state (" + snap.digest +
              " at stage " + std::to_string(snap.stage) + ")");
        }
        session = std::move(candidate);
        baseStage = ckpt.stage;
        baseDigest = ckpt.digest;
        result.checkpointUsed = true;
        result.checkpointSeq = ckpt.seq;
        result.checkpointStage = ckpt.stage;
      }
      keptCheckpoints.push_back(std::move(ckpt));
    } catch (const adpm::Error& e) {
      if (session == nullptr) ++result.checkpointFallbacks;
      addReason(e.what());
      droppedFiles.push_back(it->path);
      // Not counted in droppedBytes: checkpoints carry no operations; their
      // loss never loses session state that segments cannot reproduce.
    }
  }
  std::reverse(keptCheckpoints.begin(), keptCheckpoints.end());

  // -- 3. plan the tail replay ------------------------------------------------
  SessionConfig config;
  if (!chain.empty()) {
    config = chain.front().replay.config;
  } else if (session != nullptr) {
    config = keptCheckpoints.back().config;  // the base checkpoint's config
  }

  if (session == nullptr) {
    // Full replay: needs the chain to start at stage 0.
    if (chain.empty() || chain.front().startStage() != 0) {
      std::string why = "cannot recover '" + logPath +
                        "': no usable checkpoint and the surviving segments "
                        "do not start at stage 0";
      for (const std::string& r : reasons) why += "; " + r;
      throw adpm::Error(why);
    }
    const dpm::ScenarioSpec spec = dddl::parse(config.scenarioDddl);
    session = std::make_unique<Session>(config, spec, nullptr, options);
  }

  // First chain segment extending past the base stage; detect a gap (ops
  // between baseStage and the oldest surviving tail are gone — segments
  // ahead of the base cannot be applied and are dropped).
  std::size_t firstTail = chain.size();
  for (std::size_t i = 0; i < chain.size(); ++i) {
    if (chain[i].endStage() > baseStage) {
      firstTail = i;
      break;
    }
  }
  if (firstTail < chain.size() && chain[firstTail].startStage() > baseStage) {
    std::string why = "segments past stage " + std::to_string(baseStage) +
                      " start at stage " +
                      std::to_string(chain[firstTail].startStage()) +
                      " — the operations between are gone";
    if (policy == RecoveryPolicy::Strict) {
      throw adpm::Error("operation log '" + logPath + "': " + why);
    }
    result.salvaged = true;
    addReason(why);
    for (std::size_t i = firstTail; i < chain.size(); ++i) {
      droppedFiles.push_back(chain[i].path);
      result.droppedBytes += fileSizeOf(chain[i].path);
      result.droppedOperations += chain[i].replay.operations.size();
    }
    chain.resize(firstTail);
    firstTail = chain.size();
  }

  // -- 4. replay, verifying marks; roll back on divergence -------------------
  //
  // `cut` tracks where the on-disk chain would be truncated if we had to
  // roll back right now: the last verified mark, or the tail replay's entry
  // point.  A mark at the base stage verifies against the checkpoint digest
  // (same snapshot text); later marks verify against the replayed state.
  struct Cut {
    std::size_t segIndex = 0;
    std::size_t offset = 0;
    bool atMark = false;
  };
  std::size_t stage = baseStage;
  std::size_t lastVerifiedStage = baseStage;
  Cut lastVerifiedCut;
  bool haveCut = false;
  bool diverged = false;
  std::string divergence;

  const auto verifyMarks = [&](std::size_t segIndex, std::size_t& mi) {
    const LoadedSegment& seg = chain[segIndex];
    while (mi < seg.replay.marks.size() &&
           seg.replay.marks[mi].stage <= stage) {
      const OperationLog::Mark& mark = seg.replay.marks[mi];
      if (mark.stage == stage && stage >= baseStage) {
        const std::string digest = stage == baseStage
                                       ? baseDigest
                                       : session->snapshot().digest;
        if (!digest.empty() && digest != mark.digest) {
          divergence = "diverged at stage " + std::to_string(stage) +
                       ": snapshot digest " + digest + " != logged " +
                       mark.digest;
          return false;
        }
        if (!digest.empty()) {
          lastVerifiedStage = stage;
          lastVerifiedCut = Cut{segIndex, mark.endOffset, true};
          haveCut = true;
        }
      }
      ++mi;
    }
    return true;
  };

  for (std::size_t si = firstTail; si < chain.size() && !diverged; ++si) {
    const LoadedSegment& seg = chain[si];
    const std::size_t firstLocal = baseStage > seg.startStage()
                                       ? baseStage - seg.startStage()
                                       : 0;
    if (!haveCut) {
      // Entry point of the tail replay: everything before it is covered by
      // the checkpoint (or is the empty stage-0 state).
      lastVerifiedCut =
          Cut{si,
              firstLocal == 0 ? seg.replay.headerEndOffset
                              : seg.replay.opEndOffsets[firstLocal - 1],
              false};
      haveCut = true;
    }
    std::size_t mi = 0;
    if (!verifyMarks(si, mi)) {
      diverged = true;
      break;
    }
    ++result.segmentsReplayed;
    for (std::size_t i = firstLocal; i < seg.replay.operations.size(); ++i) {
      // Copied, not moved: a divergence needs the operations a second time
      // for the rollback rebuild.
      session->replayApply(dpm::Operation(seg.replay.operations[i]));
      ++stage;
      ++result.operationsReplayed;
      if (!verifyMarks(si, mi)) {
        diverged = true;
        break;
      }
    }
  }

  std::size_t finalStage = stage;
  if (diverged) {
    if (policy == RecoveryPolicy::Strict) {
      throw adpm::Error("operation log '" + logPath + "' " + divergence);
    }
    result.salvaged = true;
    addReason(divergence);
    // δ cannot be un-applied: rebuild from the base and replay only the
    // already-verified prefix (which re-verifies by determinism).
    finalStage = lastVerifiedStage;
    if (result.checkpointUsed) {
      // keptCheckpoints.front() is the oldest; the base is the newest one
      // that restored cleanly — find it by seq.
      const Checkpoint* base = nullptr;
      for (const Checkpoint& c : keptCheckpoints) {
        if (c.seq == result.checkpointSeq) base = &c;
      }
      const dpm::ManagerState state = dpm::managerStateFromJson(base->state);
      const dpm::ScenarioSpec spec = dddl::parse(base->config.scenarioDddl);
      session = std::make_unique<Session>(base->config, spec, nullptr,
                                          options);
      session->manager().restoreState(state);
    } else {
      const dpm::ScenarioSpec spec = dddl::parse(config.scenarioDddl);
      session = std::make_unique<Session>(config, spec, nullptr, options);
    }
    std::size_t rebuilt = baseStage;
    for (std::size_t si = firstTail; si < chain.size() && rebuilt < finalStage;
         ++si) {
      const LoadedSegment& seg = chain[si];
      const std::size_t firstLocal = rebuilt > seg.startStage()
                                         ? rebuilt - seg.startStage()
                                         : 0;
      for (std::size_t i = firstLocal;
           i < seg.replay.operations.size() && rebuilt < finalStage; ++i) {
        session->replayApply(dpm::Operation(seg.replay.operations[i]));
        ++rebuilt;
        ++result.operationsReplayed;
      }
    }
  }

  // -- 5. commit: trim/drop untrusted files (Salvage never ran this far
  // under Strict with damage — Strict throws above) ---------------------------
  std::size_t diskEnd = 0;  // global op count surviving on disk
  std::size_t keepSegments = chain.size();
  std::size_t trimOffset = 0;
  bool needTrim = false;
  if (diverged) {
    keepSegments = lastVerifiedCut.segIndex + 1;
    const LoadedSegment& seg = chain[lastVerifiedCut.segIndex];
    needTrim = lastVerifiedCut.offset < seg.replay.goodEndOffset ||
               seg.replay.truncatedTail;
    trimOffset = lastVerifiedCut.offset;
    for (std::size_t i = keepSegments; i < chain.size(); ++i) {
      droppedFiles.push_back(chain[i].path);
      result.droppedBytes += fileSizeOf(chain[i].path);
    }
    result.droppedOperations += chain.back().endStage() - finalStage;
    result.droppedBytes += seg.replay.goodEndOffset - trimOffset;
    diskEnd = finalStage;
  } else if (!chain.empty()) {
    const LoadedSegment& tail = chain.back();
    needTrim = tail.replay.truncatedTail;
    trimOffset = tail.replay.goodEndOffset;
    diskEnd = tail.endStage();
  }
  result.keptStage = finalStage;

  if (policy == RecoveryPolicy::Salvage) {
    for (const std::string& path : droppedFiles) {
      std::error_code ec;
      std::filesystem::remove(path, ec);
    }
    if (needTrim && keepSegments > 0) {
      const std::string& path = chain[keepSegments - 1].path;
      std::error_code ec;
      std::filesystem::resize_file(path, trimOffset, ec);
      if (ec) {
        throw adpm::Error("cannot truncate salvaged operation log '" + path +
                          "' to offset " + std::to_string(trimOffset) + ": " +
                          ec.message());
      }
    }
  }
  chain.resize(keepSegments);

  // -- 6. reattach the append-side chain -------------------------------------
  SegmentedLog::Options logOptions;
  logOptions.sync = options.walSync;
  logOptions.segmentBytes = options.segmentBytes;
  logOptions.segmentOps = options.segmentOps;
  SegmentedLog::AttachSpec attach;
  attach.nextCheckpointSeq = nextCheckpointSeq;
  attach.checkpoints = std::move(keptCheckpoints);
  if (!chain.empty() && diskEnd == finalStage) {
    const LoadedSegment& tail = chain.back();
    attach.walSeq = tail.seq;
    attach.opsBefore = tail.startStage();
    attach.opsInSegment = finalStage - tail.startStage();
  } else {
    // The recovered stage is ahead of every surviving segment (checkpoint
    // newer than the salvageable ops), or nothing survived at all: start a
    // fresh segment so on-disk op positions stay aligned with global
    // indices.  Never reuse a dropped segment's name.
    attach.startFresh = true;
    attach.walSeq = maxSeqSeen + 1;
    attach.startStage = finalStage;
  }
  session->attachLog(std::make_unique<SegmentedLog>(
      logPath, config, logOptions, attach));

  // Remember the seal so a recover → destroy cycle does not keep appending
  // duplicate marks for the same final stage.
  if (diverged) {
    if (lastVerifiedCut.atMark) session->lastMarkStage_ = finalStage;
  } else if (!chain.empty()) {
    const OperationLog::Replay& tail = chain.back().replay;
    if (!tail.marks.empty() && tail.marks.back().stage == finalStage &&
        tail.marks.back().endOffset == tail.goodEndOffset) {
      session->lastMarkStage_ = finalStage;
    }
  }

  for (const std::string& r : reasons) {
    if (!result.reason.empty()) result.reason += "; ";
    result.reason += r;
  }
  if (outcome != nullptr) *outcome = std::move(result);
  return session;
}

}  // namespace adpm::service
