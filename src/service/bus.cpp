#include "service/bus.hpp"

#include "util/fault.hpp"

namespace adpm::service {

std::shared_ptr<NotificationBus::Queue> NotificationBus::subscribe(
    const std::string& sessionId, const std::string& designer) {
  return subscribe(sessionId, designer, options_.queueCapacity,
                   options_.overflow);
}

std::shared_ptr<NotificationBus::Queue> NotificationBus::subscribe(
    const std::string& sessionId, const std::string& designer,
    std::size_t capacity, util::OverflowPolicy overflow) {
  auto queue = std::make_shared<Queue>(capacity, overflow);
  util::LockGuard lock(mutex_);
  bySession_[sessionId].push_back(
      Subscription{designer, queue, std::make_shared<SubscriberState>()});
  return queue;
}

void NotificationBus::publish(const std::string& sessionId,
                              const std::vector<dpm::Notification>& batch) {
  if (batch.empty()) return;

  if (ADPM_FAULT_POINT("bus.publish") != util::FaultAction::None) {
    // A lossy bus, not a failed operation: the session applied and
    // journaled the op, only its fan-out evaporates (counted, not thrown —
    // throwing here would fail an apply whose state change already exists).
    util::LockGuard lock(mutex_);
    injectedFailures_ += batch.size();
    return;
  }

  // Snapshot the subscriptions, then push outside the bus lock: a Block
  // queue may park this producer until its consumer catches up, and that
  // must not hold up subscribe()/closeSession() on other sessions.
  std::vector<Subscription> targets;
  {
    util::LockGuard lock(mutex_);
    published_ += batch.size();
    const auto it = bySession_.find(sessionId);
    if (it != bySession_.end()) targets = it->second;
  }

  // Degrade thresholds: the resync marker must always fit, so the
  // high-water mark stays below the queue capacity.
  const std::size_t hwm = options_.degradeHighWater;
  const std::size_t lwm =
      options_.resumeLowWater > 0 ? options_.resumeLowWater : hwm / 2;

  std::size_t delivered = 0;
  std::size_t unrouted = 0;
  std::size_t downgrades = 0;
  std::size_t coalesced = 0;
  std::size_t injected = 0;
  for (const dpm::Notification& n : batch) {
    bool routed = false;
    for (const Subscription& sub : targets) {
      if (sub.designer != n.designer) continue;
      if (hwm > 0) {
        const std::size_t highWater =
            hwm >= sub.queue->capacity() ? sub.queue->capacity() - 1 : hwm;
        if (sub.state->degraded.load(std::memory_order_relaxed)) {
          if (sub.queue->size() <= lwm) {
            // Consumer caught up: resume per-event delivery.
            sub.state->degraded.store(false, std::memory_order_relaxed);
          } else {
            // Still saturated: this event is covered by the pending
            // ResyncRequired marker already in the queue.
            routed = true;
            ++coalesced;
            sub.state->coalesced.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
        } else if (sub.queue->size() >= highWater) {
          // Saturation: downgrade to coalesced delivery.  One resync
          // marker replaces the stream until the consumer drains; the
          // producing strand neither parks (Block) nor sheds silently
          // (DropOldest).
          sub.state->degraded.store(true, std::memory_order_relaxed);
          ++downgrades;
          sub.state->downgrades.fetch_add(1, std::memory_order_relaxed);
          dpm::Notification resync;
          resync.kind = dpm::NotificationKind::ResyncRequired;
          resync.designer = n.designer;
          resync.stage = n.stage;
          resync.text =
              "subscriber queue saturated; refetch a session snapshot";
          if (sub.queue->push(std::move(resync))) ++delivered;
          routed = true;
          ++coalesced;
          sub.state->coalesced.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
      }
      if (ADPM_FAULT_POINT("bus.enqueue") != util::FaultAction::None) {
        ++injected;  // this subscriber misses this event; counted
        continue;
      }
      if (sub.queue->push(n)) {
        routed = true;
        ++delivered;
      }
    }
    if (!routed) ++unrouted;
  }
  {
    util::LockGuard lock(mutex_);
    delivered_ += delivered;
    unrouted_ += unrouted;
    downgrades_ += downgrades;
    coalesced_ += coalesced;
    injectedFailures_ += injected;
  }
}

void NotificationBus::closeSession(const std::string& sessionId) {
  std::vector<Subscription> victims;
  {
    util::LockGuard lock(mutex_);
    const auto it = bySession_.find(sessionId);
    if (it == bySession_.end()) return;
    victims = std::move(it->second);
    bySession_.erase(it);
  }
  std::size_t dropped = 0;
  for (const Subscription& sub : victims) {
    sub.queue->close();
    dropped += sub.queue->dropped();
  }
  util::LockGuard lock(mutex_);
  retiredDropped_ += dropped;
}

void NotificationBus::closeAll() {
  std::vector<std::string> ids;
  {
    util::LockGuard lock(mutex_);
    for (const auto& [id, subs] : bySession_) ids.push_back(id);
  }
  for (const std::string& id : ids) closeSession(id);
}

std::size_t NotificationBus::published() const {
  util::LockGuard lock(mutex_);
  return published_;
}

std::size_t NotificationBus::delivered() const {
  util::LockGuard lock(mutex_);
  return delivered_;
}

std::size_t NotificationBus::unrouted() const {
  util::LockGuard lock(mutex_);
  return unrouted_;
}

std::size_t NotificationBus::dropped() const {
  util::LockGuard lock(mutex_);
  std::size_t total = retiredDropped_;
  for (const auto& [id, subs] : bySession_) {
    for (const Subscription& sub : subs) total += sub.queue->dropped();
  }
  return total;
}

std::size_t NotificationBus::downgrades() const {
  util::LockGuard lock(mutex_);
  return downgrades_;
}

std::size_t NotificationBus::coalesced() const {
  util::LockGuard lock(mutex_);
  return coalesced_;
}

std::size_t NotificationBus::injectedFailures() const {
  util::LockGuard lock(mutex_);
  return injectedFailures_;
}

std::vector<NotificationBus::SubscriberStats> NotificationBus::subscriberStats()
    const {
  std::vector<SubscriberStats> out;
  util::LockGuard lock(mutex_);
  for (const auto& [sessionId, subs] : bySession_) {
    for (const Subscription& sub : subs) {
      SubscriberStats s;
      s.sessionId = sessionId;
      s.designer = sub.designer;
      s.queueDepth = sub.queue->size();
      s.queueCapacity = sub.queue->capacity();
      s.dropped = sub.queue->dropped();
      s.degraded = sub.state->degraded.load(std::memory_order_relaxed);
      s.downgrades = sub.state->downgrades.load(std::memory_order_relaxed);
      s.coalesced = sub.state->coalesced.load(std::memory_order_relaxed);
      out.push_back(std::move(s));
    }
  }
  return out;
}

}  // namespace adpm::service
