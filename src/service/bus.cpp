#include "service/bus.hpp"

namespace adpm::service {

std::shared_ptr<NotificationBus::Queue> NotificationBus::subscribe(
    const std::string& sessionId, const std::string& designer) {
  return subscribe(sessionId, designer, options_.queueCapacity,
                   options_.overflow);
}

std::shared_ptr<NotificationBus::Queue> NotificationBus::subscribe(
    const std::string& sessionId, const std::string& designer,
    std::size_t capacity, util::OverflowPolicy overflow) {
  auto queue = std::make_shared<Queue>(capacity, overflow);
  std::lock_guard<std::mutex> lock(mutex_);
  bySession_[sessionId].push_back(Subscription{designer, queue});
  return queue;
}

void NotificationBus::publish(const std::string& sessionId,
                              const std::vector<dpm::Notification>& batch) {
  if (batch.empty()) return;

  // Snapshot the subscriptions, then push outside the bus lock: a Block
  // queue may park this producer until its consumer catches up, and that
  // must not hold up subscribe()/closeSession() on other sessions.
  std::vector<Subscription> targets;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    published_ += batch.size();
    const auto it = bySession_.find(sessionId);
    if (it != bySession_.end()) targets = it->second;
  }

  std::size_t delivered = 0;
  std::size_t unrouted = 0;
  for (const dpm::Notification& n : batch) {
    bool routed = false;
    for (const Subscription& sub : targets) {
      if (sub.designer != n.designer) continue;
      if (sub.queue->push(n)) {
        routed = true;
        ++delivered;
      }
    }
    if (!routed) ++unrouted;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    delivered_ += delivered;
    unrouted_ += unrouted;
  }
}

void NotificationBus::closeSession(const std::string& sessionId) {
  std::vector<Subscription> victims;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = bySession_.find(sessionId);
    if (it == bySession_.end()) return;
    victims = std::move(it->second);
    bySession_.erase(it);
  }
  std::size_t dropped = 0;
  for (const Subscription& sub : victims) {
    sub.queue->close();
    dropped += sub.queue->dropped();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  retiredDropped_ += dropped;
}

void NotificationBus::closeAll() {
  std::vector<std::string> ids;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [id, subs] : bySession_) ids.push_back(id);
  }
  for (const std::string& id : ids) closeSession(id);
}

std::size_t NotificationBus::published() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return published_;
}

std::size_t NotificationBus::delivered() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return delivered_;
}

std::size_t NotificationBus::unrouted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return unrouted_;
}

std::size_t NotificationBus::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = retiredDropped_;
  for (const auto& [id, subs] : bySession_) {
    for (const Subscription& sub : subs) total += sub.queue->dropped();
  }
  return total;
}

}  // namespace adpm::service
