// Durable per-session operation log (JSONL write-ahead log).
//
// Every hosted design session appends its applied operations to an
// append-only JSONL file, so that (a) a killed service recovers every live
// session by replaying its log, and (b) any run is deterministically
// reproducible after the fact: the DPM transition function δ is
// deterministic, so state_n is a pure function of (scenario, operation
// prefix).  The log is self-contained — the header embeds the scenario as
// DDDL text (the repo's existing scenario interchange format), not a name
// that might resolve differently tomorrow.
//
// Record grammar, one canonical JSON object per line (util/json.hpp):
//   {"t":"open","v":1,"session":ID,"adpm":BOOL,"scenario":NAME,"dddl":TEXT,
//    "crc":HEX}
//   {"t":"op","op":{...},"crc":HEX}            (dpm/operation_io.hpp form)
//   {"t":"mark","stage":N,"digest":HEX,"crc":HEX}
// `crc` is the fnv1a-64 (16 hex digits) of the record's canonical
// serialization *without* the crc member — a bit-flip anywhere in the line
// is detected at read time.  Records without a crc member (logs written
// before the field existed) are accepted unverified.
// `mark` records carry the fnv1a-64 digest of the session's canonical
// snapshot text at stage N; replay re-derives the digest at each mark and
// fails loudly on divergence instead of silently resurrecting a corrupt
// session.
//
// Failure handling on the append path: when a write/flush fails midway the
// log rolls the file back (ftruncate) to the last durable record and throws
// TransientError — the record either exists completely or not at all, so a
// store-level retry cannot produce a half-record followed by its retry.  If
// the rollback itself fails the log is poisoned (every further append
// throws) rather than risking interleaved garbage.
//
// Reading is policy-driven: RecoveryPolicy::Strict (default) throws on any
// structural problem; RecoveryPolicy::Salvage stops at the first torn or
// corrupt record, keeps the intact prefix, and reports what was dropped —
// the crash-recovery mode (a killed process legitimately leaves a torn
// tail, and refusing the whole log would lose the session entirely).
#pragma once

#include <cstddef>
#include <cstdio>
#include <string>
#include <vector>

#include "dpm/operation.hpp"

namespace adpm::service {

/// Identity + flow of one hosted session; everything replay needs.
struct SessionConfig {
  std::string id;
  /// The paper's λ: true = ADPM flow, false = conventional.
  bool adpm = true;
  /// Display name of the scenario (e.g. "sensing-system").
  std::string scenarioName;
  /// Authoritative scenario source: DDDL text parsed at open/recover time.
  std::string scenarioDddl;
};

/// How log damage is handled at read/recover time.
enum class RecoveryPolicy : std::uint8_t {
  /// Any structural problem (torn tail, checksum mismatch, digest
  /// divergence) refuses the log.
  Strict,
  /// Keep the longest trustworthy prefix: a torn/corrupt record drops it
  /// and everything after; a snapshot-digest divergence rolls back to the
  /// last record whose replay matched a mark.  What was dropped is
  /// reported, never silently discarded.
  Salvage,
};

class OperationLog {
 public:
  static constexpr int kVersion = 1;

  /// Opens `path` for appending (creating it if absent).  Throws
  /// adpm::Error when the file cannot be opened.
  ///
  /// Every appended record is flushed to the OS, which survives a *process*
  /// crash; with `sync` set each record is additionally fsync'd, extending
  /// the guarantee to OS crashes and power loss at the cost of one fsync
  /// per record.  `sync` also fsyncs the parent directory when the call
  /// creates the file — a fresh file's *name* lives in the directory inode,
  /// and without the directory fsync a crash can forget the file entirely
  /// even though its records were synced.
  explicit OperationLog(std::string path, bool sync = false);
  ~OperationLog();

  OperationLog(const OperationLog&) = delete;
  OperationLog& operator=(const OperationLog&) = delete;

  const std::string& path() const noexcept { return path_; }

  /// Appends the session header.  Call exactly once, before any operation,
  /// on a fresh log; recovered sessions keep appending to the old file and
  /// must not re-write the header.
  void appendOpen(const SessionConfig& config);
  void appendOperation(const dpm::Operation& op);
  void appendMark(std::size_t stage, const std::string& digest);

  /// Records appended since construction (not counting recovered lines).
  std::size_t recordsWritten() const noexcept { return written_; }

  /// Byte offset of the end of the last durable record (== file size while
  /// the log is healthy).
  std::size_t tailOffset() const noexcept { return tail_; }

  struct Mark {
    std::size_t stage = 0;
    std::string digest;
    /// Byte offset just past this record's line in the file.
    std::size_t endOffset = 0;
  };

  /// Parsed image of a log file.
  struct Replay {
    SessionConfig config;
    std::vector<dpm::Operation> operations;
    /// Marks in file order; mark.stage == number of operations applied when
    /// the digest was taken.
    std::vector<Mark> marks;

    /// Byte offset just past the header record.
    std::size_t headerEndOffset = 0;
    /// Byte offset just past operations[i]'s record.
    std::vector<std::size_t> opEndOffsets;
    /// Byte offset just past the last record that parsed and checksummed
    /// clean (== file size when the log is intact).
    std::size_t goodEndOffset = 0;

    // -- salvage outcome (Salvage policy only) --------------------------------
    /// True when a torn/corrupt tail was dropped during the read.
    bool truncatedTail = false;
    /// Bytes past goodEndOffset that were not trusted.
    std::size_t droppedBytes = 0;
    /// Why the tail was dropped (first structural error encountered).
    std::string tailError;
  };

  /// Reads and validates a log file (header first, kVersion, well-formed
  /// records, per-record checksums).  Strict policy throws adpm::Error on
  /// any structural problem; Salvage stops at the first bad record and
  /// returns the intact prefix with the salvage fields filled in.  A
  /// missing or corrupt *header* is unrecoverable under either policy.
  static Replay read(const std::string& path,
                     RecoveryPolicy policy = RecoveryPolicy::Strict);

 private:
  void appendRecord(const std::string& base);
  void appendLine(const std::string& line);

  std::string path_;
  bool sync_ = false;
  std::FILE* out_ = nullptr;
  std::size_t written_ = 0;
  std::size_t tail_ = 0;
  /// Set when a failed append could not be rolled back: the file may end in
  /// a torn record, so further appends would interleave garbage.
  bool poisoned_ = false;
};

}  // namespace adpm::service
