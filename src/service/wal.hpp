// Durable per-session operation log (JSONL write-ahead log).
//
// Every hosted design session appends its applied operations to an
// append-only JSONL file, so that (a) a killed service recovers every live
// session by replaying its log, and (b) any run is deterministically
// reproducible after the fact: the DPM transition function δ is
// deterministic, so state_n is a pure function of (scenario, operation
// prefix).  The log is self-contained — the header embeds the scenario as
// DDDL text (the repo's existing scenario interchange format), not a name
// that might resolve differently tomorrow.
//
// Record grammar, one canonical JSON object per line (util/json.hpp):
//   {"t":"open","v":1,"session":ID,"adpm":BOOL,"scenario":NAME,"dddl":TEXT,
//    "crc":HEX}
//   {"t":"op","op":{...},"crc":HEX}            (dpm/operation_io.hpp form)
//   {"t":"mark","stage":N,"digest":HEX,"crc":HEX}
// `crc` is the fnv1a-64 (16 hex digits) of the record's canonical
// serialization *without* the crc member — a bit-flip anywhere in the line
// is detected at read time.  Records without a crc member (logs written
// before the field existed) are accepted unverified.
// `mark` records carry the fnv1a-64 digest of the session's canonical
// snapshot text at stage N; replay re-derives the digest at each mark and
// fails loudly on divergence instead of silently resurrecting a corrupt
// session.
//
// Failure handling on the append path: when a write/flush fails midway the
// log rolls the file back (ftruncate) to the last durable record and throws
// TransientError — the record either exists completely or not at all, so a
// store-level retry cannot produce a half-record followed by its retry.  If
// the rollback itself fails the log is poisoned (every further append
// throws) rather than risking interleaved garbage.
//
// Reading is policy-driven: RecoveryPolicy::Strict (default) throws on any
// structural problem; RecoveryPolicy::Salvage stops at the first torn or
// corrupt record, keeps the intact prefix, and reports what was dropped —
// the crash-recovery mode (a killed process legitimately leaves a torn
// tail, and refusing the whole log would lose the session entirely).
//
// Bounded recovery (segments + checkpoints): a session's log is a *chain*
// of segment files — seq 0 at `<id>.wal` (byte-compatible with the legacy
// single-file layout), seq N at `<id>.wal.<N>` — each opened by a header
// whose optional "seq"/"stage" members place it in the chain (stage = ops
// applied in earlier segments).  A durable checkpoint `<id>.ckpt.<N>`
// serializes the manager's full mutable state + the snapshot digest,
// installed via write-temp/fsync/rename so it is atomically present or
// absent; recovery loads the newest intact checkpoint and replays only the
// tail segments, and a compactor deletes segments every retained
// checkpoint has superseded.  Checkpoints are an optimization, never a
// correctness dependency: any damage degrades to an older checkpoint or a
// full-segment replay.
#pragma once

#include <cstddef>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dpm/operation.hpp"
#include "util/json.hpp"

namespace adpm::service {

/// Identity + flow of one hosted session; everything replay needs.
struct SessionConfig {
  std::string id;
  /// The paper's λ: true = ADPM flow, false = conventional.
  bool adpm = true;
  /// Display name of the scenario (e.g. "sensing-system").
  std::string scenarioName;
  /// Authoritative scenario source: DDDL text parsed at open/recover time.
  std::string scenarioDddl;
};

/// How log damage is handled at read/recover time.
enum class RecoveryPolicy : std::uint8_t {
  /// Any structural problem (torn tail, checksum mismatch, digest
  /// divergence) refuses the log.
  Strict,
  /// Keep the longest trustworthy prefix: a torn/corrupt record drops it
  /// and everything after; a snapshot-digest divergence rolls back to the
  /// last record whose replay matched a mark.  What was dropped is
  /// reported, never silently discarded.
  Salvage,
};

class OperationLog {
 public:
  static constexpr int kVersion = 1;

  /// Opens `path` for appending (creating it if absent).  Throws
  /// adpm::Error when the file cannot be opened.
  ///
  /// Every appended record is flushed to the OS, which survives a *process*
  /// crash; with `sync` set each record is additionally fsync'd, extending
  /// the guarantee to OS crashes and power loss at the cost of one fsync
  /// per record.  `sync` also fsyncs the parent directory when the call
  /// creates the file — a fresh file's *name* lives in the directory inode,
  /// and without the directory fsync a crash can forget the file entirely
  /// even though its records were synced.
  explicit OperationLog(std::string path, bool sync = false);
  ~OperationLog();

  OperationLog(const OperationLog&) = delete;
  OperationLog& operator=(const OperationLog&) = delete;

  const std::string& path() const noexcept { return path_; }

  /// Appends the session header.  Call exactly once, before any operation,
  /// on a fresh log; recovered sessions keep appending to the old file and
  /// must not re-write the header.  `seq` numbers this file in the session's
  /// segment chain and `startStage` is the count of operations living in
  /// earlier segments; both are written only when nonzero, so a seq-0 log is
  /// byte-identical to the pre-segmentation format.
  void appendOpen(const SessionConfig& config, std::size_t seq = 0,
                  std::size_t startStage = 0);
  void appendOperation(const dpm::Operation& op);
  void appendMark(std::size_t stage, const std::string& digest);

  /// Records appended since construction (not counting recovered lines).
  std::size_t recordsWritten() const noexcept { return written_; }

  /// Byte offset of the end of the last durable record (== file size while
  /// the log is healthy).
  std::size_t tailOffset() const noexcept { return tail_; }

  struct Mark {
    std::size_t stage = 0;
    std::string digest;
    /// Byte offset just past this record's line in the file.
    std::size_t endOffset = 0;
  };

  /// Parsed image of a log file.
  struct Replay {
    SessionConfig config;
    std::vector<dpm::Operation> operations;
    /// Marks in file order; mark.stage == number of operations applied when
    /// the digest was taken (global across segments).
    std::vector<Mark> marks;

    /// Position of this file in its session's segment chain (0 for the
    /// legacy single-file layout).
    std::size_t segmentSeq = 0;
    /// Operations applied in earlier segments; this file's operation i has
    /// global index segmentStartStage + i + 1.
    std::size_t segmentStartStage = 0;

    /// Byte offset just past the header record.
    std::size_t headerEndOffset = 0;
    /// Byte offset just past operations[i]'s record.
    std::vector<std::size_t> opEndOffsets;
    /// Byte offset just past the last record that parsed and checksummed
    /// clean (== file size when the log is intact).
    std::size_t goodEndOffset = 0;

    // -- salvage outcome (Salvage policy only) --------------------------------
    /// True when a torn/corrupt tail was dropped during the read.
    bool truncatedTail = false;
    /// Bytes past goodEndOffset that were not trusted.
    std::size_t droppedBytes = 0;
    /// Why the tail was dropped (first structural error encountered).
    std::string tailError;
  };

  /// Reads and validates a log file (header first, kVersion, well-formed
  /// records, per-record checksums).  Strict policy throws adpm::Error on
  /// any structural problem; Salvage stops at the first bad record and
  /// returns the intact prefix with the salvage fields filled in.  A
  /// missing or corrupt *header* is unrecoverable under either policy.
  static Replay read(const std::string& path,
                     RecoveryPolicy policy = RecoveryPolicy::Strict);

 private:
  void appendRecord(const std::string& base);
  void appendLine(const std::string& line);

  std::string path_;
  bool sync_ = false;
  std::FILE* out_ = nullptr;
  std::size_t written_ = 0;
  std::size_t tail_ = 0;
  /// Set when a failed append could not be rolled back: the file may end in
  /// a torn record, so further appends would interleave garbage.
  bool poisoned_ = false;
};

// -- segment / checkpoint file layout -----------------------------------------

/// Path of segment `seq` for the session whose seq-0 log is `basePath`
/// (`<dir>/<id>.wal`): `basePath` itself for seq 0, `basePath.<seq>` after.
std::string segmentPath(const std::string& basePath, std::size_t seq);

/// Path of checkpoint `seq`: `<dir>/<id>.ckpt.<seq>` next to the basePath.
std::string checkpointPath(const std::string& basePath, std::size_t seq);

/// Classifies a WAL-directory filename.  Session ids may contain dots, so
/// the suffix is matched anchored at the end of the name.
struct WalFileName {
  std::string sessionId;
  bool isCheckpoint = false;
  std::size_t seq = 0;
};
/// Recognizes `<id>.wal`, `<id>.wal.<N>`, and `<id>.ckpt.<N>`; nullopt for
/// anything else (including `*.tmp` staging files).
std::optional<WalFileName> parseWalFileName(const std::string& filename);

struct SegmentRef {
  std::size_t seq = 0;
  std::string path;
};

/// Everything on disk belonging to one session, both ascending by seq.
struct SessionFiles {
  std::vector<SegmentRef> segments;
  std::vector<SegmentRef> checkpoints;
};
/// Scans basePath's directory for the session's segments and checkpoints.
SessionFiles listSessionFiles(const std::string& basePath);

/// One durable state snapshot: everything recovery needs to skip replaying
/// the log prefix the checkpoint covers.  Stored as a single crc-guarded
/// canonical-JSON line, installed atomically (write temp, fsync, rename).
struct Checkpoint {
  static constexpr int kVersion = 1;
  /// Self-contained like the log header: id, λ, scenario DDDL.
  SessionConfig config;
  /// Checkpoint sequence number (monotonic per session).
  std::size_t seq = 0;
  /// Operations applied when the snapshot was taken.
  std::size_t stage = 0;
  /// Segment where tail replay resumes (its startStage == this->stage when
  /// written by SegmentedLog, which rotates before checkpointing).
  std::size_t walSeq = 0;
  /// dpm::managerStateToJson payload.
  util::json::Value state;
  /// fnv1a-64 of the canonical snapshot text at `stage`; recovery verifies
  /// the restored manager against it before trusting the checkpoint.
  std::string digest;
};

/// Writes `ckpt` to checkpointPath(basePath, ckpt.seq) via temp + rename.
/// `sync` fsyncs the temp file before the rename and the parent directory
/// after it (same discipline as OperationLog's create path).  Failpoints:
/// `ckpt.write` (temp write), `ckpt.rename` (install).  Throws
/// TransientError on a cleanly-undone failure; the previous checkpoint is
/// never touched.
void writeCheckpoint(const std::string& basePath, const Checkpoint& ckpt,
                     bool sync);

/// Reads and fully validates one checkpoint file; *any* damage (missing,
/// torn, bit-flipped, bad crc, malformed) throws adpm::Error — the caller
/// falls back to an older checkpoint or full replay, never limps on a
/// partially-trusted snapshot.
Checkpoint readCheckpoint(const std::string& path);

/// A session's append-side log chain: owns the currently-open segment,
/// rotates it when it exceeds the configured size, writes checkpoints, and
/// compacts segments every retained checkpoint has superseded.  Like
/// OperationLog it is pure state — the session's strand serializes access.
class SegmentedLog {
 public:
  struct Options {
    bool sync = false;
    /// Rotate when the current segment reaches this size (0 = never).
    std::size_t segmentBytes = 0;
    /// Rotate when the current segment holds this many operations (0 =
    /// never).  Rotation is checked before each append, so a segment holds
    /// at most `segmentOps` operations.
    std::size_t segmentOps = 0;
  };

  /// Fresh session: creates segment 0 at `basePath` and writes its header.
  SegmentedLog(std::string basePath, SessionConfig config, Options options);

  /// Recovery attach: continue an existing chain without re-writing headers.
  struct AttachSpec {
    /// Segment to keep appending to.
    std::size_t walSeq = 0;
    /// Operations living in segments before walSeq.
    std::size_t opsBefore = 0;
    /// Operations already in the walSeq segment.
    std::size_t opsInSegment = 0;
    /// Open a *new* segment `walSeq` (header written, startStage below)
    /// instead of appending to an existing one — used when the recovered
    /// stage came from a checkpoint ahead of every surviving segment, so op
    /// positions on disk stay aligned with global indices.
    bool startFresh = false;
    std::size_t startStage = 0;
    /// Sequence the next checkpoint gets.
    std::size_t nextCheckpointSeq = 1;
    /// Surviving checkpoints (ascending seq) for compaction accounting.
    std::vector<Checkpoint> checkpoints;
  };
  SegmentedLog(std::string basePath, SessionConfig config, Options options,
               const AttachSpec& attach);

  const std::string& basePath() const noexcept { return basePath_; }
  /// Sequence of the currently-open segment.
  std::size_t segmentSeq() const noexcept { return seq_; }
  /// Operations across the whole chain (== the session's stage).
  std::size_t stage() const noexcept { return startStage_ + opsInSegment_; }
  /// The currently-open segment (for tests and accounting).
  const OperationLog& current() const noexcept { return *current_; }

  /// Appends one operation, rotating to a fresh segment first when the
  /// current one is full.  A failed rotation (failpoint `wal.rotate`, or
  /// the new segment's header append failing) leaves the current segment
  /// untouched and throws TransientError — the append never happened.
  void appendOperation(const dpm::Operation& op);
  void appendMark(std::size_t stage, const std::string& digest);

  /// Writes checkpoint (`state`, `stage`, `digest`), then compacts to the
  /// newest `keep` checkpoints (see compact()).  Rotates first whenever the
  /// current segment holds operations, so the checkpoint's walSeq names a
  /// segment starting exactly at `stage` and tail replay touches no record
  /// the checkpoint already covers.  Throws TransientError when the write
  /// could not install (previous checkpoints and all segments intact).
  void writeCheckpoint(util::json::Value state, std::size_t stage,
                       const std::string& digest, std::size_t keep);

  /// Deletes all but the newest `keep` checkpoints (at least 1 is kept:
  /// keeping a runner-up means a corrupt newest checkpoint still recovers
  /// boundedly) and every segment strictly older than the oldest retained
  /// checkpoint's walSeq — but segments are only deleted once the full
  /// complement of `keep` checkpoints is durable, so until then a corrupt
  /// checkpoint can always degrade to a full replay from segment 0.
  /// Deletion failures degrade silently — a leftover file costs disk,
  /// never correctness.  Failpoint: `wal.compact`.
  void compact(std::size_t keep);

  // -- accounting (monotonic, for benches/CLI reports) ------------------------
  std::size_t rotations() const noexcept { return rotations_; }
  std::size_t checkpointsWritten() const noexcept { return checkpointsWritten_; }
  std::size_t segmentsCompacted() const noexcept { return segmentsCompacted_; }
  std::size_t checkpointCount() const noexcept { return checkpoints_.size(); }

 private:
  void rotate();

  std::string basePath_;
  SessionConfig config_;
  Options options_;
  std::unique_ptr<OperationLog> current_;
  std::size_t seq_ = 0;
  /// Operations in segments before the current one.
  std::size_t startStage_ = 0;
  std::size_t opsInSegment_ = 0;
  std::size_t nextCheckpointSeq_ = 1;
  /// Known durable checkpoints, ascending seq: (seq, walSeq).
  std::vector<std::pair<std::size_t, std::size_t>> checkpoints_;
  std::size_t rotations_ = 0;
  std::size_t checkpointsWritten_ = 0;
  std::size_t segmentsCompacted_ = 0;
};

}  // namespace adpm::service
