// Durable per-session operation log (JSONL write-ahead log).
//
// Every hosted design session appends its applied operations to an
// append-only JSONL file, so that (a) a killed service recovers every live
// session by replaying its log, and (b) any run is deterministically
// reproducible after the fact: the DPM transition function δ is
// deterministic, so state_n is a pure function of (scenario, operation
// prefix).  The log is self-contained — the header embeds the scenario as
// DDDL text (the repo's existing scenario interchange format), not a name
// that might resolve differently tomorrow.
//
// Record grammar, one canonical JSON object per line (util/json.hpp):
//   {"t":"open","v":1,"session":ID,"adpm":BOOL,"scenario":NAME,"dddl":TEXT}
//   {"t":"op","op":{...}}                      (dpm/operation_io.hpp form)
//   {"t":"mark","stage":N,"digest":HEX}        (periodic snapshot digest)
// `mark` records carry the fnv1a-64 digest of the session's canonical
// snapshot text at stage N; replay re-derives the digest at each mark and
// fails loudly on divergence instead of silently resurrecting a corrupt
// session.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "dpm/operation.hpp"

namespace adpm::service {

/// Identity + flow of one hosted session; everything replay needs.
struct SessionConfig {
  std::string id;
  /// The paper's λ: true = ADPM flow, false = conventional.
  bool adpm = true;
  /// Display name of the scenario (e.g. "sensing-system").
  std::string scenarioName;
  /// Authoritative scenario source: DDDL text parsed at open/recover time.
  std::string scenarioDddl;
};

class OperationLog {
 public:
  static constexpr int kVersion = 1;

  /// Opens `path` for appending (creating it if absent).  Throws
  /// adpm::Error when the file cannot be opened.
  ///
  /// Every appended record is flushed to the OS, which survives a *process*
  /// crash; with `sync` set each record is additionally fsync'd, extending
  /// the guarantee to OS crashes and power loss at the cost of one fsync
  /// per record.
  explicit OperationLog(std::string path, bool sync = false);
  ~OperationLog();

  OperationLog(const OperationLog&) = delete;
  OperationLog& operator=(const OperationLog&) = delete;

  const std::string& path() const noexcept { return path_; }

  /// Appends the session header.  Call exactly once, before any operation,
  /// on a fresh log; recovered sessions keep appending to the old file and
  /// must not re-write the header.
  void appendOpen(const SessionConfig& config);
  void appendOperation(const dpm::Operation& op);
  void appendMark(std::size_t stage, const std::string& digest);

  /// Records appended since construction (not counting recovered lines).
  std::size_t recordsWritten() const noexcept { return written_; }

  struct Mark {
    std::size_t stage = 0;
    std::string digest;
  };

  /// Parsed image of a log file.
  struct Replay {
    SessionConfig config;
    std::vector<dpm::Operation> operations;
    /// Marks in file order; mark.stage == number of operations applied when
    /// the digest was taken.
    std::vector<Mark> marks;
  };

  /// Reads and validates a log file (header first, kVersion, well-formed
  /// records).  Throws adpm::Error on structural problems.
  static Replay read(const std::string& path);

 private:
  void appendLine(const std::string& line);

  std::string path_;
  bool sync_ = false;
  std::FILE* out_ = nullptr;
  std::size_t written_ = 0;
};

}  // namespace adpm::service
