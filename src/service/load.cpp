#include "service/load.hpp"

#include <atomic>
#include <chrono>
#include <latch>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "teamsim/client.hpp"

namespace adpm::service {

namespace {

struct SessionDriver {
  std::string id;
  teamsim::SimulationOptions sim;
  std::size_t maxOps = 0;
  /// Built lazily on the strand (needs the instantiated manager).
  std::optional<teamsim::TeamClient> client;
  std::size_t ops = 0;

  std::latch* done = nullptr;
  std::atomic<std::size_t>* totalOps = nullptr;
  std::atomic<std::size_t>* completedSessions = nullptr;
};

/// One operation per strand dispatch: propose, apply, observe, chain the
/// next step.  Fairness across sessions comes from the strand scheduler
/// (one task per pool slot), not from this function.
void pumpSession(SessionStore& store,
                 const std::shared_ptr<SessionDriver>& driver) {
  store.withSession(driver->id, [&store, driver](Session& session) {
    try {
      if (!driver->client) {
        driver->client.emplace(session.manager(), driver->sim);
      }
      std::optional<dpm::Operation> op;
      if (driver->ops < driver->maxOps) {
        op = driver->client->propose(session.manager());
      }
      if (!op) {  // idle: complete, deadlocked, or over budget
        if (session.complete()) driver->completedSessions->fetch_add(1);
        driver->totalOps->fetch_add(driver->ops);
        driver->done->count_down();
        return;
      }
      const dpm::DesignProcessManager::ExecResult result =
          session.apply(std::move(*op));
      driver->client->observe(session.manager(), result.record);
      ++driver->ops;
      pumpSession(store, driver);
    } catch (...) {
      // A failed pump (poisoned WAL, injected fault, ...) retires the
      // session as not-completed.  Nobody reads the future withSession
      // returns here, so swallowing is the only option — and the latch must
      // count down exactly once per driver or runLoad would hang forever.
      driver->totalOps->fetch_add(driver->ops);
      driver->done->count_down();
    }
  });
}

}  // namespace

LoadReport runLoad(SessionStore& store, const dpm::ScenarioSpec& spec,
                   const LoadOptions& options) {
  LoadReport report;
  report.sessions = options.sessions;
  if (options.sessions == 0) return report;

  std::set<std::string> designers;
  for (const dpm::ScenarioSpec::Prob& p : spec.problems) {
    if (!p.owner.empty()) designers.insert(p.owner);
  }

  const std::size_t publishedBefore = store.bus().published();
  const std::size_t deliveredBefore = store.bus().delivered();
  const std::size_t droppedBefore = store.bus().dropped();

  std::latch done(static_cast<std::ptrdiff_t>(options.sessions));
  std::atomic<std::size_t> totalOps{0};
  std::atomic<std::size_t> completedSessions{0};

  std::vector<std::string> ids;
  std::vector<std::shared_ptr<NotificationBus::Queue>> queues;
  ids.reserve(options.sessions);
  for (std::size_t i = 0; i < options.sessions; ++i) {
    const std::string id = options.idPrefix + std::to_string(i);
    store.open(id, spec, options.sim.adpm);
    if (options.subscribe) {
      for (const std::string& designer : designers) {
        queues.push_back(store.subscribe(id, designer));
      }
    }
    ids.push_back(id);
  }

  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < options.sessions; ++i) {
    auto driver = std::make_shared<SessionDriver>();
    driver->id = ids[i];
    driver->sim = options.sim;
    driver->sim.seed = options.sim.seed + i;  // distinct stream per session
    driver->maxOps = options.maxOperationsPerSession;
    driver->done = &done;
    driver->totalOps = &totalOps;
    driver->completedSessions = &completedSessions;
    pumpSession(store, driver);
  }
  done.wait();
  const auto stop = std::chrono::steady_clock::now();

  report.completedSessions = completedSessions.load();
  report.operations = totalOps.load();
  for (const std::string& id : ids) {
    report.evaluations += store.snapshot(id).get().evaluations;
  }
  report.notificationsPublished = store.bus().published() - publishedBefore;
  report.notificationsDelivered = store.bus().delivered() - deliveredBefore;
  report.notificationsDropped = store.bus().dropped() - droppedBefore;
  report.wallSeconds =
      std::chrono::duration<double>(stop - start).count();
  if (report.wallSeconds > 0.0) {
    report.opsPerSecond =
        static_cast<double>(report.operations) / report.wallSeconds;
    report.sessionsPerSecond =
        static_cast<double>(report.completedSessions) / report.wallSeconds;
  }
  return report;
}

}  // namespace adpm::service
