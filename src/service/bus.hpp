// Asynchronous notification bus.
//
// The NotificationManager computes, per applied operation, the fan-out of
// notifications each designer should receive (paper §2.2).  In the
// sequential TeamSim loop that fan-out is consumed synchronously; the
// service makes it truly asynchronous: each (session, designer) subscriber
// owns a bounded MPSC queue, session strands publish into it, and consumers
// drain at their own pace.  Overflow behaviour is the subscriber's choice
// (Block = backpressure the session, DropOldest = prefer fresh events) and
// every drop is counted — losing guidance silently is exactly the failure
// mode the paper's NM exists to prevent.
//
// Degraded mode: overload should not get to choose between blocking the
// producing strand (Block) and silently shedding events (DropOldest).  With
// `degradeHighWater` set, a subscriber whose queue depth reaches the
// high-water mark is switched to *coalesced* delivery: one ResyncRequired
// notification is enqueued and subsequent events are counted (coalesced())
// instead of pushed, so the strand never parks and the consumer learns its
// stream is incomplete.  When the consumer drains the queue back to the
// low-water mark, per-event delivery resumes — the downgrade/resume cycle is
// counted, never silent.
#pragma once

#include <atomic>
#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dpm/notification.hpp"
#include "util/mpsc_queue.hpp"
#include "util/thread_annotations.hpp"

namespace adpm::service {

class NotificationBus {
 public:
  using Queue = util::BoundedMpscQueue<dpm::Notification>;

  struct Options {
    std::size_t queueCapacity = 256;
    util::OverflowPolicy overflow = util::OverflowPolicy::DropOldest;
    /// Queue depth at which a subscriber is downgraded to coalesced
    /// ResyncRequired delivery (0 = degraded mode off).  Clamped to below
    /// the queue capacity so the resync marker itself always fits.
    std::size_t degradeHighWater = 0;
    /// Queue depth at or below which a degraded subscriber resumes
    /// per-event delivery (0 = degradeHighWater / 2).
    std::size_t resumeLowWater = 0;
  };

  NotificationBus() : NotificationBus(Options{}) {}
  explicit NotificationBus(Options options) : options_(options) {}

  /// Subscribes to one designer's notifications within one session.  The
  /// returned queue lives as long as the caller holds it; multiple
  /// subscribers per (session, designer) each get every notification.
  /// Per-subscription capacity/policy overrides fall back to the bus
  /// defaults when not given.
  std::shared_ptr<Queue> subscribe(const std::string& sessionId,
                                   const std::string& designer);
  std::shared_ptr<Queue> subscribe(const std::string& sessionId,
                                   const std::string& designer,
                                   std::size_t capacity,
                                   util::OverflowPolicy overflow);

  /// Publishes one operation's fan-out, routing each notification to the
  /// subscribers of (sessionId, notification.designer).  Notifications for
  /// designers with no subscriber are counted as unrouted, not an error —
  /// a service client may only care about one seat at the table.
  void publish(const std::string& sessionId,
               const std::vector<dpm::Notification>& batch);

  /// Closes every queue of a session (wakes blocked producers/consumers)
  /// and forgets its subscriptions.
  void closeSession(const std::string& sessionId);
  /// Closes everything.
  void closeAll();

  // -- counters (monotonic, service lifetime) --------------------------------
  std::size_t published() const;  ///< notifications entering the bus
  std::size_t delivered() const;  ///< accepted into some subscriber queue
  std::size_t unrouted() const;   ///< no subscriber for (session, designer)
  /// Total DropOldest evictions across all queues ever subscribed.
  std::size_t dropped() const;
  /// Subscriber downgrades into coalesced (degraded) delivery.
  std::size_t downgrades() const;
  /// Notifications absorbed into a pending resync instead of enqueued.
  std::size_t coalesced() const;
  /// Notifications/batches suppressed by armed bus.publish/bus.enqueue
  /// failpoints (fault-injection builds only).
  std::size_t injectedFailures() const;

  /// Point-in-time view of one live subscriber, for the wire Status frame
  /// and the bench recorder: queue pressure plus the per-subscriber
  /// degraded-delivery history (the bus-wide downgrades()/coalesced()
  /// counters, attributed).
  struct SubscriberStats {
    std::string sessionId;
    std::string designer;
    std::size_t queueDepth = 0;
    std::size_t queueCapacity = 0;
    std::size_t dropped = 0;     ///< DropOldest evictions on this queue
    bool degraded = false;       ///< currently in coalesced delivery
    std::size_t downgrades = 0;  ///< times this subscriber was downgraded
    std::size_t coalesced = 0;   ///< events absorbed into its resync markers
  };

  /// One entry per live subscription, in subscribe order within a session.
  std::vector<SubscriberStats> subscriberStats() const;

 private:
  /// Mutable per-subscriber state shared between publish() (which works on
  /// a snapshot of the subscription list, outside the bus lock) and the
  /// registry.  `degraded` is only flipped by publishers, which are
  /// serialized per session by the session's strand.
  struct SubscriberState {
    std::atomic<bool> degraded{false};
    /// Per-subscriber attribution of the bus-wide degraded-mode counters
    /// (relaxed: written by the per-session publisher strand, read by
    /// subscriberStats()).
    std::atomic<std::size_t> downgrades{0};
    std::atomic<std::size_t> coalesced{0};
  };

  struct Subscription {
    std::string designer;
    std::shared_ptr<Queue> queue;
    std::shared_ptr<SubscriberState> state;
  };

  Options options_;
  mutable util::Mutex mutex_;
  std::map<std::string, std::vector<Subscription>> bySession_
      ADPM_GUARDED_BY(mutex_);
  /// Drop counts of queues already closed/forgotten, so dropped() never
  /// goes backwards when a session closes.
  std::size_t retiredDropped_ ADPM_GUARDED_BY(mutex_) = 0;
  std::size_t published_ ADPM_GUARDED_BY(mutex_) = 0;
  std::size_t delivered_ ADPM_GUARDED_BY(mutex_) = 0;
  std::size_t unrouted_ ADPM_GUARDED_BY(mutex_) = 0;
  std::size_t downgrades_ ADPM_GUARDED_BY(mutex_) = 0;
  std::size_t coalesced_ ADPM_GUARDED_BY(mutex_) = 0;
  std::size_t injectedFailures_ ADPM_GUARDED_BY(mutex_) = 0;
};

}  // namespace adpm::service
