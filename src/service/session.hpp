// One hosted design session: a DesignProcessManager plus its instantiated
// scenario, journaled through a durable operation log.
//
// A Session is pure state — it performs no locking and owns no thread.  The
// SessionStore serializes all access through the session's strand
// (util/executor.hpp); every method here must be called with that exclusive
// access (on the strand, or single-threaded before the session is shared).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dpm/manager.hpp"
#include "dpm/scenario.hpp"
#include "service/wal.hpp"

namespace adpm::service {

/// Canonical state digest used by the deterministic-replay guarantee: two
/// sessions with equal snapshot text are in bit-identical observable states.
struct SessionSnapshot {
  std::string id;
  /// Operations applied so far.
  std::size_t stage = 0;
  bool complete = false;
  std::size_t evaluations = 0;
  std::size_t violations = 0;
  /// Canonical rendering of: per-property bindings and current hull, known
  /// constraint statuses, violation set, and (λ=T) the full GuidanceReport
  /// (feasible subspaces, α/β, monotone lists, repair votes).  All doubles
  /// are %.17g, so equality here is bit-equality of the underlying state.
  std::string text;
  /// fnv1a-64 of `text`, as 16 hex digits — what WAL marks store.
  std::string digest;
};

/// What RecoveryPolicy::Salvage had to give up to reopen a session, plus
/// checkpoint accounting (filled under either policy).
struct SalvageOutcome {
  /// True when anything was dropped or truncated (tail trim or rollback).
  bool salvaged = false;
  /// Operations surviving in the reopened session.
  std::size_t keptStage = 0;
  /// Journaled operations that had to be dropped (torn tail + any rollback
  /// to the last verified snapshot mark).
  std::size_t droppedOperations = 0;
  /// Untrusted bytes trimmed off the log file.
  std::size_t droppedBytes = 0;
  /// The structural error or digest divergence that forced the salvage.
  std::string reason;

  // -- bounded-recovery accounting --------------------------------------------
  /// Recovery restored a checkpoint instead of replaying from stage 0.
  bool checkpointUsed = false;
  /// Sequence and stage of the restored checkpoint (when checkpointUsed).
  std::size_t checkpointSeq = 0;
  std::size_t checkpointStage = 0;
  /// Checkpoints that existed but could not be trusted (torn, bit-flipped,
  /// digest mismatch against the rebuilt state) — each one degraded to an
  /// older checkpoint or, ultimately, full-segment replay.
  std::size_t checkpointFallbacks = 0;
  /// Segments whose operations were (partially) replayed.
  std::size_t segmentsReplayed = 0;
  /// Operations actually re-executed to rebuild the session.
  std::size_t operationsReplayed = 0;
};

class Session {
 public:
  struct Options {
    /// Append a snapshot-digest mark to the log every N operations
    /// (0 = only on explicit snapshot() calls with a log attached... never).
    std::size_t markEvery = 32;
    /// fsync the WAL after every record: storage durability (survives OS
    /// crash / power loss) at one fsync per operation.  Off = flush-only,
    /// which survives a process crash but not the machine dying.
    bool walSync = false;
    /// Rotate the WAL to a fresh segment past this size (0 = one segment
    /// forever — the pre-segmentation layout).
    std::size_t segmentBytes = 0;
    /// Rotate past this many operations per segment (0 = never by count).
    std::size_t segmentOps = 0;
    /// Write a durable state checkpoint every N operations (0 = never);
    /// recovery then replays only the ops past the newest intact
    /// checkpoint.  A failed checkpoint never fails the operation that
    /// triggered it — checkpoints are an optimization, not a dependency.
    std::size_t checkpointEvery = 0;
    /// Checkpoints retained by compaction (min 1; default 2 so a corrupt
    /// newest checkpoint still recovers boundedly from the runner-up).
    std::size_t checkpointKeep = 2;
  };

  /// Builds the session from its config: parses nothing — the caller
  /// supplies the spec matching config.scenarioDddl.  When `log` is
  /// non-null the session owns it and journals every applied operation.
  /// (Two overloads, not `Options options = {}`: GCC rejects brace-init
  /// defaults of a nested aggregate inside the incomplete enclosing class.)
  Session(SessionConfig config, const dpm::ScenarioSpec& spec,
          std::unique_ptr<SegmentedLog> log);
  Session(SessionConfig config, const dpm::ScenarioSpec& spec,
          std::unique_ptr<SegmentedLog> log, Options options);

  /// Seals the log: a journaled session appends one final snapshot mark on
  /// teardown (unless the current stage already carries one), so every WAL
  /// ends with a digest and recovery always validates the *final* state —
  /// short sessions would otherwise never reach a markEvery boundary.
  ~Session();

  const SessionConfig& config() const noexcept { return config_; }
  const std::string& id() const noexcept { return config_.id; }

  dpm::DesignProcessManager& manager() noexcept { return *dpm_; }
  const dpm::DesignProcessManager& manager() const noexcept { return *dpm_; }

  /// Sink for the NM fan-out of each applied operation (the store wires
  /// this to the NotificationBus).
  using NotificationSink =
      std::function<void(const std::vector<dpm::Notification>&)>;
  void setNotificationSink(NotificationSink sink) { sink_ = std::move(sink); }

  /// Applies one operation: journals it (WAL first — the log is
  /// write-ahead), executes δ, publishes the notification fan-out, and
  /// appends a periodic snapshot mark.
  dpm::DesignProcessManager::ExecResult apply(dpm::Operation op);

  /// Re-applies a recovered operation: identical to apply() except the
  /// operation is NOT re-journaled (it is already in the log).
  dpm::DesignProcessManager::ExecResult replayApply(dpm::Operation op);

  std::size_t stage() const noexcept { return dpm_->stage(); }
  bool complete() const { return dpm_->designComplete(); }

  SessionSnapshot snapshot() const;

  /// Service-level audit: force-evaluates every active constraint whose
  /// arguments are bound (a batch verification-tool run, charged to the
  /// network counter like any other tool run) and returns the violated ids.
  struct VerifyResult {
    std::vector<constraint::ConstraintId> violated;
    std::size_t evaluations = 0;
  };
  VerifyResult verify();

  const SegmentedLog* log() const noexcept { return log_.get(); }

  /// Writes a durable state checkpoint at the current stage (no-op without
  /// a log).  Called automatically every `checkpointEvery` operations;
  /// exposed for drivers that checkpoint at their own boundaries.  Throws
  /// what the WAL layer throws — the periodic path catches and counts.
  void checkpointNow();

  /// Periodic checkpoints that failed (and were absorbed) since creation.
  std::size_t checkpointFailures() const noexcept {
    return checkpointFailures_;
  }

 private:
  friend std::unique_ptr<Session> recoverSession(const std::string& logPath,
                                                 Options options,
                                                 RecoveryPolicy policy,
                                                 SalvageOutcome* outcome);

  /// Attaches the (already positioned) log a recovered session continues
  /// appending to; recovery only, after the replay is complete.
  void attachLog(std::unique_ptr<SegmentedLog> log) { log_ = std::move(log); }

  dpm::DesignProcessManager::ExecResult applyImpl(dpm::Operation op,
                                                  bool journal);

  SessionConfig config_;
  Options options_;
  std::unique_ptr<dpm::DesignProcessManager> dpm_;
  std::unique_ptr<SegmentedLog> log_;
  NotificationSink sink_;
  /// Stage of the most recent mark in the log (0 = none yet); suppresses
  /// duplicate seal marks across recover/teardown cycles.
  std::size_t lastMarkStage_ = 0;
  std::size_t checkpointFailures_ = 0;
};

/// The canonical snapshot text for any manager (exposed for tests and the
/// replay validator).
std::string snapshotText(const dpm::DesignProcessManager& dpm);

/// Rebuilds a session from its on-disk log chain (`logPath` is the seq-0
/// segment path, `<dir>/<id>.wal`): restores the newest intact checkpoint
/// (if any), replays the tail segments past it, and re-derives + checks
/// every snapshot mark along the way.  The returned session keeps
/// appending to the chain.  Recovery cost is O(work since the last
/// checkpoint), not O(session lifetime).
///
/// Checkpoints degrade, never fail, under *either* policy: a torn,
/// bit-flipped, missing, or digest-divergent checkpoint falls back to the
/// previous checkpoint and ultimately to full-segment replay (possible
/// whenever segment 0 survives); `outcome->checkpointFallbacks` counts the
/// demotions.  Segment damage keeps the PR-5 semantics: Strict throws on
/// any structural problem or divergence; Salvage trims a torn tail, stops
/// the chain at a damaged middle segment (dropping later segments), and
/// rolls a digest divergence back to the last verified mark — mutating the
/// files to match what was kept.  A session whose *entire* chain is
/// unusable (no intact checkpoint and no segment starting at stage 0)
/// still throws: there is nothing to rebuild from.
std::unique_ptr<Session> recoverSession(
    const std::string& logPath, Session::Options options = {},
    RecoveryPolicy policy = RecoveryPolicy::Strict,
    SalvageOutcome* outcome = nullptr);

}  // namespace adpm::service
