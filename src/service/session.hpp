// One hosted design session: a DesignProcessManager plus its instantiated
// scenario, journaled through a durable operation log.
//
// A Session is pure state — it performs no locking and owns no thread.  The
// SessionStore serializes all access through the session's strand
// (util/executor.hpp); every method here must be called with that exclusive
// access (on the strand, or single-threaded before the session is shared).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dpm/manager.hpp"
#include "dpm/scenario.hpp"
#include "service/wal.hpp"

namespace adpm::service {

/// Canonical state digest used by the deterministic-replay guarantee: two
/// sessions with equal snapshot text are in bit-identical observable states.
struct SessionSnapshot {
  std::string id;
  /// Operations applied so far.
  std::size_t stage = 0;
  bool complete = false;
  std::size_t evaluations = 0;
  std::size_t violations = 0;
  /// Canonical rendering of: per-property bindings and current hull, known
  /// constraint statuses, violation set, and (λ=T) the full GuidanceReport
  /// (feasible subspaces, α/β, monotone lists, repair votes).  All doubles
  /// are %.17g, so equality here is bit-equality of the underlying state.
  std::string text;
  /// fnv1a-64 of `text`, as 16 hex digits — what WAL marks store.
  std::string digest;
};

/// What RecoveryPolicy::Salvage had to give up to reopen a session.
struct SalvageOutcome {
  /// True when anything was dropped or truncated (tail trim or rollback).
  bool salvaged = false;
  /// Operations surviving in the reopened session.
  std::size_t keptStage = 0;
  /// Journaled operations that had to be dropped (torn tail + any rollback
  /// to the last verified snapshot mark).
  std::size_t droppedOperations = 0;
  /// Untrusted bytes trimmed off the log file.
  std::size_t droppedBytes = 0;
  /// The structural error or digest divergence that forced the salvage.
  std::string reason;
};

class Session {
 public:
  struct Options {
    /// Append a snapshot-digest mark to the log every N operations
    /// (0 = only on explicit snapshot() calls with a log attached... never).
    std::size_t markEvery = 32;
    /// fsync the WAL after every record: storage durability (survives OS
    /// crash / power loss) at one fsync per operation.  Off = flush-only,
    /// which survives a process crash but not the machine dying.
    bool walSync = false;
  };

  /// Builds the session from its config: parses nothing — the caller
  /// supplies the spec matching config.scenarioDddl.  When `log` is
  /// non-null the session owns it and journals every applied operation.
  /// (Two overloads, not `Options options = {}`: GCC rejects brace-init
  /// defaults of a nested aggregate inside the incomplete enclosing class.)
  Session(SessionConfig config, const dpm::ScenarioSpec& spec,
          std::unique_ptr<OperationLog> log);
  Session(SessionConfig config, const dpm::ScenarioSpec& spec,
          std::unique_ptr<OperationLog> log, Options options);

  /// Seals the log: a journaled session appends one final snapshot mark on
  /// teardown (unless the current stage already carries one), so every WAL
  /// ends with a digest and recovery always validates the *final* state —
  /// short sessions would otherwise never reach a markEvery boundary.
  ~Session();

  const SessionConfig& config() const noexcept { return config_; }
  const std::string& id() const noexcept { return config_.id; }

  dpm::DesignProcessManager& manager() noexcept { return *dpm_; }
  const dpm::DesignProcessManager& manager() const noexcept { return *dpm_; }

  /// Sink for the NM fan-out of each applied operation (the store wires
  /// this to the NotificationBus).
  using NotificationSink =
      std::function<void(const std::vector<dpm::Notification>&)>;
  void setNotificationSink(NotificationSink sink) { sink_ = std::move(sink); }

  /// Applies one operation: journals it (WAL first — the log is
  /// write-ahead), executes δ, publishes the notification fan-out, and
  /// appends a periodic snapshot mark.
  dpm::DesignProcessManager::ExecResult apply(dpm::Operation op);

  /// Re-applies a recovered operation: identical to apply() except the
  /// operation is NOT re-journaled (it is already in the log).
  dpm::DesignProcessManager::ExecResult replayApply(dpm::Operation op);

  std::size_t stage() const noexcept { return dpm_->stage(); }
  bool complete() const { return dpm_->designComplete(); }

  SessionSnapshot snapshot() const;

  /// Service-level audit: force-evaluates every active constraint whose
  /// arguments are bound (a batch verification-tool run, charged to the
  /// network counter like any other tool run) and returns the violated ids.
  struct VerifyResult {
    std::vector<constraint::ConstraintId> violated;
    std::size_t evaluations = 0;
  };
  VerifyResult verify();

  const OperationLog* log() const noexcept { return log_.get(); }

 private:
  friend std::unique_ptr<Session> recoverSession(const std::string& logPath,
                                                 Options options,
                                                 RecoveryPolicy policy,
                                                 SalvageOutcome* outcome);

  /// Attaches the (already positioned) log a recovered session continues
  /// appending to; recovery only, after the replay is complete.
  void attachLog(std::unique_ptr<OperationLog> log) { log_ = std::move(log); }

  dpm::DesignProcessManager::ExecResult applyImpl(dpm::Operation op,
                                                  bool journal);

  SessionConfig config_;
  Options options_;
  std::unique_ptr<dpm::DesignProcessManager> dpm_;
  std::unique_ptr<OperationLog> log_;
  NotificationSink sink_;
  /// Stage of the most recent mark in the log (0 = none yet); suppresses
  /// duplicate seal marks across recover/teardown cycles.
  std::size_t lastMarkStage_ = 0;
};

/// The canonical snapshot text for any manager (exposed for tests and the
/// replay validator).
std::string snapshotText(const dpm::DesignProcessManager& dpm);

/// Rebuilds a session from its operation log: parses the embedded DDDL,
/// replays every operation, and re-derives + checks every snapshot mark.
/// The returned session keeps appending to the same log file.
///
/// Under RecoveryPolicy::Strict (default) throws adpm::Error on divergence
/// (digest mismatch) or malformed logs.  Under Salvage, damage behind the
/// header is repaired instead of fatal: a torn/corrupt tail is trimmed to
/// the last intact record, and a digest divergence rolls the session back
/// to the last record whose replay matched a snapshot mark — the log file
/// is truncated to match, the session reopens there, and `outcome` (when
/// non-null) reports exactly what was dropped.  A missing/corrupt header
/// still throws: with no trustworthy scenario there is nothing to salvage.
std::unique_ptr<Session> recoverSession(
    const std::string& logPath, Session::Options options = {},
    RecoveryPolicy policy = RecoveryPolicy::Strict,
    SalvageOutcome* outcome = nullptr);

}  // namespace adpm::service
