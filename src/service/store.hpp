// The concurrent design-session service: N live sessions on one fixed
// thread pool.
//
// Each session gets a strand (util/executor.hpp), so its operations
// serialize in submission order while distinct sessions propagate in
// parallel — the paper's collaborative setting (many designers, many
// concurrent sessions) hosted behind a typed command API:
//
//   ApplyOperation  → applyOperation(id, op)   future<ExecResult>
//   QueryGuidance   → queryGuidance(id)        future<optional<Guidance>>
//   Verify          → verify(id)               future<VerifyResult>
//   Snapshot        → snapshot(id)             future<SessionSnapshot>
//   Subscribe       → subscribe(id, designer)  bounded notification queue
//
// With a WAL directory configured every session is durable: open() writes a
// self-contained log header (scenario embedded as DDDL), every applied
// operation is journaled write-ahead, and recover() rebuilds all sessions
// found in the directory after a crash, verifying snapshot digests along
// the way.
//
// Determinism: Options.executor.deterministic = true runs every command
// inline on the calling thread (single-threaded, seeded by the caller's
// submission order) — the mode the bit-stable replay tests run under.
#pragma once

#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "service/bus.hpp"
#include "service/session.hpp"
#include "util/executor.hpp"

namespace adpm::service {

class SessionStore {
 public:
  struct Options {
    util::Executor::Options executor{};
    NotificationBus::Options bus{};
    Session::Options session{};
    /// Directory for per-session operation logs ("<id>.wal"); empty =
    /// volatile sessions (no journal, no recovery).
    std::string walDir;
  };

  SessionStore();
  explicit SessionStore(Options options);
  ~SessionStore();

  SessionStore(const SessionStore&) = delete;
  SessionStore& operator=(const SessionStore&) = delete;

  // -- lifecycle -------------------------------------------------------------

  /// Creates a session from a scenario spec.  The id must be unique and
  /// filesystem-safe ([A-Za-z0-9._-]).  Throws on duplicates, and on ids
  /// whose WAL file already exists (close() keeps logs, crashes leave them;
  /// appending a second header would corrupt the log — recover() it or
  /// remove the file first).
  void open(const std::string& id, const dpm::ScenarioSpec& spec, bool adpm);

  /// Rebuilds every "*.wal" session found in walDir (replaying operation
  /// logs, checking snapshot digests).  Returns the recovered ids.  A log
  /// that fails to replay (corrupt, diverged, duplicate id raced in) is
  /// skipped — recovery of the remaining logs continues — and reported via
  /// recoverErrors().
  std::vector<std::string> recover();

  /// "<path>: <reason>" for every log the most recent recover() skipped.
  std::vector<std::string> recoverErrors() const;

  /// Closes a session: waits for its queued commands, closes its
  /// notification queues, and forgets it.  The WAL file stays on disk.
  void close(const std::string& id);

  std::vector<std::string> ids() const;
  std::size_t sessionCount() const;
  bool has(const std::string& id) const;

  // -- typed command API (each command runs on the session's strand) ---------

  std::future<dpm::DesignProcessManager::ExecResult> applyOperation(
      const std::string& id, dpm::Operation op);

  /// λ=F sessions resolve to nullopt (no mined guidance in that flow).
  std::future<std::optional<constraint::GuidanceReport>> queryGuidance(
      const std::string& id);

  std::future<Session::VerifyResult> verify(const std::string& id);

  std::future<SessionSnapshot> snapshot(const std::string& id);

  std::shared_ptr<NotificationBus::Queue> subscribe(
      const std::string& id, const std::string& designer);

  /// Escape hatch for drivers (load generator, CLI): runs `fn` with
  /// exclusive access to the session on its strand.
  template <typename F>
  auto withSession(const std::string& id, F fn)
      -> std::future<std::invoke_result_t<F&, Session&>> {
    using R = std::invoke_result_t<F&, Session&>;
    std::shared_ptr<Entry> entry = entryOf(id);
    auto task = std::make_shared<std::packaged_task<R()>>(
        [entry, fn = std::move(fn)]() mutable { return fn(*entry->session); });
    std::future<R> future = task->get_future();
    entry->strand->post([task] { (*task)(); });
    return future;
  }

  /// Blocks until every queued command (across all sessions) has run.
  void drain() { executor_.drain(); }

  util::Executor& executor() noexcept { return executor_; }
  NotificationBus& bus() noexcept { return bus_; }
  const Options& options() const noexcept { return options_; }

 private:
  struct Entry {
    std::unique_ptr<Session> session;
    std::shared_ptr<util::Executor::Strand> strand;
  };

  std::shared_ptr<Entry> entryOf(const std::string& id) const;
  /// Wires up and inserts a session entry; mutex_ must be held.
  void adoptLocked(const std::string& id, std::unique_ptr<Session> session);
  std::string walPathOf(const std::string& id) const;

  Options options_;
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<Entry>> sessions_;
  std::vector<std::string> recoverErrors_;
  NotificationBus bus_;
  /// Last member: its destructor drains/joins while sessions and bus are
  /// still alive for in-flight strand tasks.
  util::Executor executor_;
};

}  // namespace adpm::service
