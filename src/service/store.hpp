// The concurrent design-session service: N live sessions on one fixed
// thread pool.
//
// Each session gets a strand (util/executor.hpp), so its operations
// serialize in submission order while distinct sessions propagate in
// parallel — the paper's collaborative setting (many designers, many
// concurrent sessions) hosted behind a typed command API:
//
//   ApplyOperation  → applyOperation(id, op)   future<ExecResult>
//   QueryGuidance   → queryGuidance(id)        future<optional<Guidance>>
//   Verify          → verify(id)               future<VerifyResult>
//   Snapshot        → snapshot(id)             future<SessionSnapshot>
//   Subscribe       → subscribe(id, designer)  bounded notification queue
//
// With a WAL directory configured every session is durable: open() writes a
// self-contained log header (scenario embedded as DDDL), every applied
// operation is journaled write-ahead, and recover() rebuilds all sessions
// found in the directory after a crash, verifying snapshot digests along
// the way.
//
// Determinism: Options.executor.deterministic = true runs every command
// inline on the calling thread (single-threaded, seeded by the caller's
// submission order) — the mode the bit-stable replay tests run under.
#pragma once

#include <chrono>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "service/bus.hpp"
#include "service/session.hpp"
#include "util/error.hpp"
#include "util/executor.hpp"
#include "util/rng.hpp"
#include "util/thread_annotations.hpp"

namespace adpm::service {

/// Resilience knobs for the typed command API (applyOperation,
/// queryGuidance, verify, snapshot).  Defaults are the pre-existing
/// behaviour: no deadline, no retry.
struct CommandPolicy {
  /// Longest a command may spend *queued* on its session's strand; when the
  /// strand finally dequeues an expired command, the future fails with
  /// TimeoutError and the command is NOT executed.  This is admission
  /// control (an overloaded session sheds stale work), not preemption — a
  /// running command is never interrupted.  0 = no deadline.
  std::chrono::milliseconds timeout{0};
  /// Total attempts for a command failing with TransientError (WAL append
  /// rolled back, injected fault, ...); 1 = no retry.  Non-transient errors
  /// never retry.
  unsigned maxAttempts = 1;
  /// Backoff before retry k (1-based) is base·2^(k-1) capped at `backoffCap`,
  /// stretched by a jitter factor in [1-jitter, 1+jitter].
  std::chrono::microseconds backoffBase{200};
  std::chrono::microseconds backoffCap{50000};
  double jitter = 0.5;
  /// Jitter stream seed — retries are reproducible like everything else.
  std::uint64_t jitterSeed = 0x5eed;
};

/// One recover() decision about one log file.
struct RecoveryEvent {
  std::string path;
  /// The error (sessionLost) or what salvage had to drop.
  std::string detail;
  /// The whole log was refused; no session was rebuilt from it.
  bool sessionLost = false;
  /// Salvage trimmed/rolled back the log but reopened the session.
  bool salvaged = false;
  std::size_t keptStage = 0;
  std::size_t droppedOperations = 0;
  std::size_t droppedBytes = 0;
  /// Recovery restored a checkpoint and replayed only the tail segments.
  bool checkpointUsed = false;
  std::size_t checkpointSeq = 0;
  std::size_t checkpointStage = 0;
  /// Damaged checkpoints that degraded to an older one / full replay.
  std::size_t checkpointFallbacks = 0;
  std::size_t segmentsReplayed = 0;
  std::size_t operationsReplayed = 0;
};

class SessionStore {
 public:
  struct Options {
    util::Executor::Options executor{};
    NotificationBus::Options bus{};
    Session::Options session{};
    CommandPolicy command{};
    /// Directory for per-session operation logs ("<id>.wal"); empty =
    /// volatile sessions (no journal, no recovery).
    std::string walDir;
    /// How recover() treats damaged logs: Strict refuses them whole,
    /// Salvage reopens the longest trustworthy prefix (see wal.hpp).
    RecoveryPolicy recovery = RecoveryPolicy::Strict;
  };

  SessionStore();
  explicit SessionStore(Options options);
  ~SessionStore();

  SessionStore(const SessionStore&) = delete;
  SessionStore& operator=(const SessionStore&) = delete;

  // -- lifecycle -------------------------------------------------------------

  /// Creates a session from a scenario spec.  The id must be unique and
  /// filesystem-safe ([A-Za-z0-9._-]).  Throws on duplicates, and on ids
  /// whose WAL file already exists (close() keeps logs, crashes leave them;
  /// appending a second header would corrupt the log — recover() it or
  /// remove the file first).
  void open(const std::string& id, const dpm::ScenarioSpec& spec, bool adpm);

  /// Rebuilds every session found in walDir — discovered from any of its
  /// chain files (`<id>.wal`, `<id>.wal.<N>`, `<id>.ckpt.<N>`), so a
  /// session whose seq-0 segment was compacted away still recovers from
  /// its newest checkpoint plus tail segments.  Returns the recovered ids.
  /// A session that fails to rebuild is skipped — recovery of the rest
  /// continues — and reported via recoverErrors().  Sessions already live
  /// in the store are skipped *before* any replay, and each call clears
  /// the previous call's errors/report: calling recover() twice never
  /// double-replays or double-reports.
  std::vector<std::string> recover();

  /// "<path>: <reason>" for every log the most recent recover() skipped.
  std::vector<std::string> recoverErrors() const;

  /// Everything notable the most recent recover() did: logs refused
  /// (sessionLost) and logs salvage had to trim or roll back.
  std::vector<RecoveryEvent> recoverReport() const;

  /// Closes a session: waits for its queued commands, closes its
  /// notification queues, and forgets it.  The WAL file stays on disk.
  void close(const std::string& id);

  std::vector<std::string> ids() const;
  std::size_t sessionCount() const;
  bool has(const std::string& id) const;

  // -- typed command API (each command runs on the session's strand) ---------

  std::future<dpm::DesignProcessManager::ExecResult> applyOperation(
      const std::string& id, dpm::Operation op);

  /// λ=F sessions resolve to nullopt (no mined guidance in that flow).
  std::future<std::optional<constraint::GuidanceReport>> queryGuidance(
      const std::string& id);

  std::future<Session::VerifyResult> verify(const std::string& id);

  std::future<SessionSnapshot> snapshot(const std::string& id);

  std::shared_ptr<NotificationBus::Queue> subscribe(
      const std::string& id, const std::string& designer);

  /// Escape hatch for drivers (load generator, CLI): runs `fn` with
  /// exclusive access to the session on its strand.  Bypasses the command
  /// policy — no deadline, no retry.
  template <typename F>
  auto withSession(const std::string& id, F fn)
      -> std::future<std::invoke_result_t<F&, Session&>> {
    using R = std::invoke_result_t<F&, Session&>;
    std::shared_ptr<Entry> entry = entryOf(id);
    auto task = std::make_shared<std::packaged_task<R()>>(
        [entry, fn = std::move(fn)]() mutable { return fn(*entry->session); });
    std::future<R> future = task->get_future();
    entry->strand->post([task] { (*task)(); });
    return future;
  }

  /// TransientError retries performed by the command policy (monotonic).
  std::size_t retries() const;
  /// Commands shed by the queued-too-long deadline (monotonic).
  std::size_t timeouts() const;

  /// Blocks until every queued command (across all sessions) has run.
  void drain() { executor_.drain(); }

  util::Executor& executor() noexcept { return executor_; }
  NotificationBus& bus() noexcept { return bus_; }
  const Options& options() const noexcept { return options_; }

 private:
  struct Entry {
    std::unique_ptr<Session> session;
    std::shared_ptr<util::Executor::Strand> strand;
  };

  std::shared_ptr<Entry> entryOf(const std::string& id) const;
  /// Wires up and inserts a session entry (the annotation enforces the
  /// caller already holds the store lock).
  void adoptLocked(const std::string& id, std::unique_ptr<Session> session)
      ADPM_REQUIRES(mutex_);
  std::string walPathOf(const std::string& id) const;

  /// Sleeps the policy backoff before retry `attempt` (1-based), with
  /// deterministic jitter from the store's seeded stream.
  void backoffBeforeRetry(unsigned attempt);

  /// Typed-command wrapper around withSession: applies the store's command
  /// policy — queue-time deadline (TimeoutError) and capped exponential
  /// retry-with-jitter for TransientError — on the session's strand.
  template <typename F>
  auto submit(const std::string& id, const char* what, F fn)
      -> std::future<std::invoke_result_t<F&, Session&>> {
    using R = std::invoke_result_t<F&, Session&>;
    std::shared_ptr<Entry> entry = entryOf(id);
    const auto posted = std::chrono::steady_clock::now();
    auto task = std::make_shared<std::packaged_task<R()>>(
        [this, entry, fn = std::move(fn), posted, what, id]() mutable -> R {
          const CommandPolicy& policy = options_.command;
          if (policy.timeout.count() > 0 &&
              std::chrono::steady_clock::now() - posted >= policy.timeout) {
            noteTimeout();
            throw adpm::TimeoutError("command '" + std::string(what) +
                                     "' on session '" + id +
                                     "' exceeded its deadline while queued");
          }
          for (unsigned attempt = 1;; ++attempt) {
            try {
              return fn(*entry->session);
            } catch (const adpm::TransientError&) {
              if (attempt >= policy.maxAttempts) throw;
              backoffBeforeRetry(attempt);
            }
          }
        });
    std::future<R> future = task->get_future();
    entry->strand->post([task] { (*task)(); });
    return future;
  }

  void noteTimeout();

  Options options_;
  mutable util::Mutex mutex_;
  std::map<std::string, std::shared_ptr<Entry>> sessions_
      ADPM_GUARDED_BY(mutex_);
  std::vector<std::string> recoverErrors_ ADPM_GUARDED_BY(mutex_);
  std::vector<RecoveryEvent> recoverEvents_ ADPM_GUARDED_BY(mutex_);
  mutable util::Mutex retryMutex_;
  util::Rng retryRng_ ADPM_GUARDED_BY(retryMutex_){0};
  std::size_t retries_ ADPM_GUARDED_BY(retryMutex_) = 0;
  std::size_t timeouts_ ADPM_GUARDED_BY(retryMutex_) = 0;
  NotificationBus bus_;
  /// Last member: its destructor drains/joins while sessions and bus are
  /// still alive for in-flight strand tasks.
  util::Executor executor_;
};

}  // namespace adpm::service
