// Load generator: TeamSim's simulated designers as concurrent clients of the
// session service.
//
// Mounts N copies of a scenario as live sessions and drives each one with a
// TeamClient (one SimulatedDesigner per seat, per-session seed stream).
// Each applied operation chains the next one onto the session's strand, so
// a session's process serializes while the fleet of sessions saturates the
// executor — the workload the service_bench measures (ops/sec, sessions/sec)
// and the TSan concurrency tests run for races.
#pragma once

#include <cstddef>
#include <string>

#include "dpm/scenario.hpp"
#include "service/store.hpp"
#include "teamsim/options.hpp"

namespace adpm::service {

struct LoadOptions {
  /// Concurrent sessions to mount.
  std::size_t sessions = 8;
  /// Per-designer simulation knobs; session i runs with seed sim.seed + i.
  teamsim::SimulationOptions sim{};
  /// Runaway guard per session.
  std::size_t maxOperationsPerSession = 20000;
  /// Attach a notification subscriber per (session, designer) seat.
  bool subscribe = true;
  /// Session id prefix ("<prefix><i>").
  std::string idPrefix = "load-";
};

struct LoadReport {
  std::size_t sessions = 0;
  std::size_t completedSessions = 0;  ///< designComplete at idle
  std::size_t operations = 0;
  std::size_t evaluations = 0;
  std::size_t notificationsPublished = 0;
  std::size_t notificationsDelivered = 0;
  std::size_t notificationsDropped = 0;
  double wallSeconds = 0.0;
  double opsPerSecond = 0.0;
  double sessionsPerSecond = 0.0;
};

/// Opens `options.sessions` sessions of `spec` in the store and drives them
/// all to completion (or the per-session cap).  Blocks until the fleet is
/// idle.  Session ids are "<prefix>0".."<prefix>N-1" and stay open after
/// the run (snapshot/replay them as needed); the caller owns the store.
LoadReport runLoad(SessionStore& store, const dpm::ScenarioSpec& spec,
                   const LoadOptions& options);

}  // namespace adpm::service
