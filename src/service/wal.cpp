#include "service/wal.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string_view>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define ADPM_WAL_POSIX 1
#else
#define ADPM_WAL_POSIX 0
#endif

#include "dpm/operation_io.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace adpm::service {

namespace {

#if ADPM_WAL_POSIX
// Creating a file makes an entry in the parent directory's inode; fsyncing
// the file alone does not persist that entry.  Called once, when an
// OperationLog creates its file in sync mode, so a machine crash right after
// open() cannot forget the session's log existed.
void fsyncParentDir(const std::string& path) {
  std::string dir = std::filesystem::path(path).parent_path().string();
  if (dir.empty()) dir = ".";
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}
#endif

}  // namespace

OperationLog::OperationLog(std::string path, bool sync)
    : path_(std::move(path)), sync_(sync) {
  if (ADPM_FAULT_POINT("wal.open") != util::FaultAction::None) {
    throw adpm::FaultInjectedError("injected failure opening operation log '" +
                                   path_ + "'");
  }
  const bool existed = std::filesystem::exists(path_);
  out_ = std::fopen(path_.c_str(), "a");
  if (out_ == nullptr) {
    throw adpm::Error("cannot open operation log '" + path_ + "'");
  }
  // "a" leaves the initial stream position implementation-defined; pin the
  // durable-tail offset to the real end of file.
  std::fseek(out_, 0, SEEK_END);
  const long at = std::ftell(out_);
  tail_ = at > 0 ? static_cast<std::size_t>(at) : 0;
#if ADPM_WAL_POSIX
  if (!existed && sync_) fsyncParentDir(path_);
#else
  (void)existed;
#endif
}

OperationLog::~OperationLog() {
  if (out_ != nullptr) std::fclose(out_);
}

void OperationLog::appendLine(const std::string& line) {
  if (poisoned_) {
    throw adpm::Error("operation log '" + path_ +
                      "' is poisoned by an earlier torn write");
  }
  switch (ADPM_FAULT_POINT("wal.append")) {
    case util::FaultAction::Error:
      // Fails before any byte lands: the cleanest transient failure.
      throw adpm::FaultInjectedError(
          "injected failure appending to operation log '" + path_ + "'");
    case util::FaultAction::ShortWrite: {
      // Persist a *prefix* of the record and give up — the torn tail a real
      // crash mid-write leaves.  No rollback (that is the point), so the
      // log poisons itself against further appends.
      const std::size_t cut = line.size() / 2 + 1;
      std::fwrite(line.data(), 1, cut, out_);
      std::fflush(out_);
      poisoned_ = true;
      throw adpm::Error("injected short write tore operation log '" + path_ +
                        "' at offset " + std::to_string(tail_ + cut));
    }
    default:
      break;
  }

  bool ok = std::fwrite(line.data(), 1, line.size(), out_) == line.size() &&
            std::fputc('\n', out_) != EOF;
  // fflush hands the record to the OS: a *process* crash now loses at most
  // the record being appended, but an OS crash or power loss may still drop
  // acknowledged records.  sync_ upgrades the guarantee to storage
  // durability with one fsync per record.
  ok = ok && ADPM_FAULT_POINT("wal.flush") == util::FaultAction::None &&
       std::fflush(out_) == 0;
  if (!ok) {
    // Roll the file back to the last durable record so the append is
    // all-or-nothing: reopen (the FILE buffer may hold half the record) and
    // truncate.  Success makes the failure retryable; failure poisons the
    // log — appending after an un-rolled-back tear would interleave
    // garbage into the tail.
    std::fclose(out_);
    out_ = nullptr;
    bool rolledBack = false;
#if ADPM_WAL_POSIX
    rolledBack = ::truncate(path_.c_str(), static_cast<off_t>(tail_)) == 0;
#endif
    out_ = std::fopen(path_.c_str(), "a");
    if (rolledBack && out_ != nullptr) {
      throw adpm::TransientError("write to operation log '" + path_ +
                                 "' failed; rolled back to last durable "
                                 "record (offset " +
                                 std::to_string(tail_) + ")");
    }
    poisoned_ = true;
    throw adpm::Error("write to operation log '" + path_ +
                      "' failed and could not be rolled back");
  }
  if (sync_) {
    // A failed fsync leaves the page-cache state unknowable (the kernel may
    // have dropped the dirty pages), so the error is *not* retryable:
    // poison the log instead of pretending a retry could re-durable it.
    const bool injected =
        ADPM_FAULT_POINT("wal.fsync") != util::FaultAction::None;
#if ADPM_WAL_POSIX
    if (injected || ::fsync(::fileno(out_)) != 0) {
#else
    if (injected) {
#endif
      poisoned_ = true;
      throw adpm::Error("fsync failed on operation log '" + path_ + "'");
    }
  }
  tail_ += line.size() + 1;
  ++written_;
}

void OperationLog::appendRecord(const std::string& base) {
  // base is the canonical serialization without the crc member; the crc is
  // spliced in as the final member so a reader can strip it and re-serialize
  // the remaining members (insertion order is preserved) to verify.
  std::string line = base.substr(0, base.size() - 1);
  line += ",\"crc\":\"";
  line += util::fnv1a64Hex(base);
  line += "\"}";
  appendLine(line);
}

void OperationLog::appendOpen(const SessionConfig& config, std::size_t seq,
                              std::size_t startStage) {
  util::json::Value v{util::json::Object{}};
  v.set("t", "open");
  v.set("v", kVersion);
  v.set("session", config.id);
  v.set("adpm", config.adpm);
  v.set("scenario", config.scenarioName);
  v.set("dddl", config.scenarioDddl);
  // Written only when nonzero, so a seq-0 header stays byte-identical to
  // logs written before segmentation existed.
  if (seq != 0) v.set("seq", seq);
  if (startStage != 0) v.set("stage", startStage);
  appendRecord(util::json::serialize(v));
}

void OperationLog::appendOperation(const dpm::Operation& op) {
  util::json::Value v{util::json::Object{}};
  v.set("t", "op");
  v.set("op", dpm::operationToJson(op));
  appendRecord(util::json::serialize(v));
}

void OperationLog::appendMark(std::size_t stage, const std::string& digest) {
  util::json::Value v{util::json::Object{}};
  v.set("t", "mark");
  v.set("stage", stage);
  v.set("digest", digest);
  appendRecord(util::json::serialize(v));
}

OperationLog::Replay OperationLog::read(const std::string& path,
                                        RecoveryPolicy policy) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw adpm::Error("cannot read operation log '" + path + "'");
  }
  const std::string content{std::istreambuf_iterator<char>(in),
                            std::istreambuf_iterator<char>()};

  Replay replay;
  bool sawOpen = false;
  std::size_t lineNo = 0;
  std::size_t pos = 0;

  while (pos < content.size()) {
    const std::size_t nl = content.find('\n', pos);
    ++lineNo;
    std::string err;
    util::json::Value v;
    std::string type;

    if (nl == std::string::npos) {
      // A record the writer never finished (the '\n' lands last).  Even if
      // the bytes happen to parse, appending after it would concatenate
      // records, so it is torn by definition.
      err = "line " + std::to_string(lineNo) + " is torn (no newline)";
      pos = content.size();
    } else {
      const std::string_view line(content.data() + pos, nl - pos);
      pos = nl + 1;
      if (line.empty()) {
        replay.goodEndOffset = pos;
        continue;
      }
      try {
        v = util::json::parse(line);
      } catch (const adpm::Error& e) {
        err = "line " + std::to_string(lineNo) + ": " + e.what();
      }
      if (err.empty()) {
        if (const util::json::Value* crc = v.find("crc")) {
          if (crc->kind() != util::json::Kind::String) {
            err = "line " + std::to_string(lineNo) + ": malformed crc field";
          } else {
            util::json::Object stripped;
            for (const auto& [key, member] : v.asObject()) {
              if (key != "crc") stripped.emplace_back(key, member);
            }
            const std::string base =
                util::json::serialize(util::json::Value{std::move(stripped)});
            if (util::fnv1a64Hex(base) != crc->asString()) {
              err = "line " + std::to_string(lineNo) +
                    ": checksum mismatch (record is corrupt)";
            }
          }
        }
      }
      if (err.empty()) {
        const util::json::Value* t = v.find("t");
        if (t == nullptr || t->kind() != util::json::Kind::String) {
          err = "line " + std::to_string(lineNo) + ": record without a type";
        } else {
          type = t->asString();
        }
      }
    }

    if (err.empty() && type == "open") {
      if (sawOpen) {
        err = "line " + std::to_string(lineNo) + ": second header";
      } else {
        // Header problems are unrecoverable under either policy — with no
        // trustworthy (id, scenario) there is nothing to salvage.
        const int version = static_cast<int>(v.at("v").asNumber());
        if (version != kVersion) {
          throw adpm::Error("operation log '" + path +
                            "' has unsupported version " +
                            std::to_string(version));
        }
        try {
          replay.config.id = v.at("session").asString();
          replay.config.adpm = v.at("adpm").asBool();
          replay.config.scenarioName = v.at("scenario").asString();
          replay.config.scenarioDddl = v.at("dddl").asString();
          if (const util::json::Value* seq = v.find("seq")) {
            replay.segmentSeq = static_cast<std::size_t>(seq->asNumber());
          }
          if (const util::json::Value* stage = v.find("stage")) {
            replay.segmentStartStage =
                static_cast<std::size_t>(stage->asNumber());
          }
        } catch (const adpm::Error& e) {
          throw adpm::Error("operation log '" + path + "' has a malformed "
                            "header: " + e.what());
        }
        sawOpen = true;
        replay.headerEndOffset = pos;
        replay.goodEndOffset = pos;
        continue;
      }
    }
    if (err.empty() && !sawOpen) {
      throw adpm::Error("operation log '" + path +
                        "' has records before the header");
    }
    if (err.empty()) {
      if (type == "op") {
        try {
          replay.operations.push_back(dpm::operationFromJson(v.at("op")));
          replay.opEndOffsets.push_back(pos);
        } catch (const adpm::Error& e) {
          err = "line " + std::to_string(lineNo) + ": " + e.what();
        }
      } else if (type == "mark") {
        try {
          Mark mark;
          mark.stage = static_cast<std::size_t>(v.at("stage").asNumber());
          mark.digest = v.at("digest").asString();
          mark.endOffset = pos;
          replay.marks.push_back(std::move(mark));
        } catch (const adpm::Error& e) {
          err = "line " + std::to_string(lineNo) + ": " + e.what();
        }
      } else {
        err = "line " + std::to_string(lineNo) + ": unknown record type '" +
              type + "'";
      }
    }

    if (!err.empty()) {
      if (policy == RecoveryPolicy::Strict || !sawOpen) {
        throw adpm::Error("operation log '" + path + "': " + err);
      }
      // Salvage: keep the intact prefix, drop this record and everything
      // after it — past a torn/corrupt record the operation *sequence* can
      // no longer be trusted, and replay needs the exact prefix.
      replay.truncatedTail = true;
      replay.droppedBytes = content.size() - replay.goodEndOffset;
      replay.tailError = err;
      break;
    }
    replay.goodEndOffset = pos;
  }

  if (!sawOpen) {
    throw adpm::Error("operation log '" + path + "' has no header");
  }
  return replay;
}

// -- segment / checkpoint file layout -----------------------------------------

std::string segmentPath(const std::string& basePath, std::size_t seq) {
  if (seq == 0) return basePath;
  return basePath + "." + std::to_string(seq);
}

std::string checkpointPath(const std::string& basePath, std::size_t seq) {
  std::string stem = basePath;
  if (stem.size() > 4 && stem.ends_with(".wal")) {
    stem.resize(stem.size() - 4);
  }
  return stem + ".ckpt." + std::to_string(seq);
}

std::optional<WalFileName> parseWalFileName(const std::string& filename) {
  if (filename.ends_with(".tmp")) return std::nullopt;
  if (filename.size() > 4 && filename.ends_with(".wal")) {
    WalFileName out;
    out.sessionId = filename.substr(0, filename.size() - 4);
    return out;
  }
  const std::size_t lastDot = filename.rfind('.');
  if (lastDot == std::string::npos || lastDot + 1 >= filename.size()) {
    return std::nullopt;
  }
  std::size_t seq = 0;
  for (std::size_t i = lastDot + 1; i < filename.size(); ++i) {
    const char c = filename[i];
    if (c < '0' || c > '9') return std::nullopt;
    seq = seq * 10 + static_cast<std::size_t>(c - '0');
  }
  const std::string head = filename.substr(0, lastDot);
  WalFileName out;
  out.seq = seq;
  if (head.size() > 4 && head.ends_with(".wal")) {
    if (seq == 0) return std::nullopt;  // segment 0 lives at "<id>.wal"
    out.sessionId = head.substr(0, head.size() - 4);
    return out;
  }
  if (head.size() > 5 && head.ends_with(".ckpt")) {
    out.sessionId = head.substr(0, head.size() - 5);
    out.isCheckpoint = true;
    return out;
  }
  return std::nullopt;
}

SessionFiles listSessionFiles(const std::string& basePath) {
  namespace fs = std::filesystem;
  const fs::path base(basePath);
  std::string id = base.filename().string();
  if (id.size() > 4 && id.ends_with(".wal")) id.resize(id.size() - 4);
  fs::path dir = base.parent_path();
  if (dir.empty()) dir = ".";

  SessionFiles out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::optional<WalFileName> parsed =
        parseWalFileName(entry.path().filename().string());
    if (!parsed || parsed->sessionId != id) continue;
    SegmentRef ref;
    ref.seq = parsed->seq;
    ref.path = entry.path().string();
    (parsed->isCheckpoint ? out.checkpoints : out.segments)
        .push_back(std::move(ref));
  }
  const auto bySeq = [](const SegmentRef& a, const SegmentRef& b) {
    return a.seq < b.seq;
  };
  std::sort(out.segments.begin(), out.segments.end(), bySeq);
  std::sort(out.checkpoints.begin(), out.checkpoints.end(), bySeq);
  return out;
}

void writeCheckpoint(const std::string& basePath, const Checkpoint& ckpt,
                     bool sync) {
  util::json::Value v{util::json::Object{}};
  v.set("t", "ckpt");
  v.set("v", Checkpoint::kVersion);
  v.set("session", ckpt.config.id);
  v.set("adpm", ckpt.config.adpm);
  v.set("scenario", ckpt.config.scenarioName);
  v.set("dddl", ckpt.config.scenarioDddl);
  v.set("seq", ckpt.seq);
  v.set("stage", ckpt.stage);
  v.set("walSeq", ckpt.walSeq);
  v.set("digest", ckpt.digest);
  v.set("state", ckpt.state);
  const std::string base = util::json::serialize(v);
  std::string line = base.substr(0, base.size() - 1);
  line += ",\"crc\":\"";
  line += util::fnv1a64Hex(base);
  line += "\"}\n";

  const std::string path = checkpointPath(basePath, ckpt.seq);
  const std::string tmp = path + ".tmp";
  const auto discardTmp = [&tmp] {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
  };

  switch (ADPM_FAULT_POINT("ckpt.write")) {
    case util::FaultAction::Error:
      throw adpm::TransientError("injected failure writing checkpoint '" +
                                 path + "'");
    case util::FaultAction::ShortWrite: {
      // Persist a prefix of the staging file and give up — the torn temp a
      // real crash mid-write leaves.  Recovery never reads *.tmp, so the
      // litter is harmless; it is left behind deliberately so torture tests
      // see exactly what a crash produces.
      std::FILE* torn = std::fopen(tmp.c_str(), "w");
      if (torn != nullptr) {
        std::fwrite(line.data(), 1, line.size() / 2 + 1, torn);
        std::fclose(torn);
      }
      throw adpm::TransientError("injected short write tore checkpoint temp '" +
                                 tmp + "'");
    }
    default:
      break;
  }

  std::FILE* out = std::fopen(tmp.c_str(), "w");
  if (out == nullptr) {
    throw adpm::TransientError("cannot create checkpoint temp '" + tmp + "'");
  }
  bool ok = std::fwrite(line.data(), 1, line.size(), out) == line.size() &&
            std::fflush(out) == 0;
#if ADPM_WAL_POSIX
  // The rename must only ever install fully-durable bytes: fsync the temp
  // *before* the rename regardless of `sync` — a checkpoint that might be
  // garbage after a power cut is worse than none (recovery would fall back
  // anyway, but only after paying to parse it).
  ok = ok && ::fsync(::fileno(out)) == 0;
#endif
  ok = std::fclose(out) == 0 && ok;
  if (!ok) {
    discardTmp();
    throw adpm::TransientError("write failed for checkpoint temp '" + tmp +
                               "'");
  }

  if (ADPM_FAULT_POINT("ckpt.rename") != util::FaultAction::None) {
    // Crash-equivalent instant: the temp is durable but never installed.
    // Undo it here (an injected *error* is recoverable, unlike an abort).
    discardTmp();
    throw adpm::TransientError("injected failure installing checkpoint '" +
                               path + "'");
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    discardTmp();
    throw adpm::TransientError("cannot install checkpoint '" + path +
                               "': " + ec.message());
  }
#if ADPM_WAL_POSIX
  // The new *name* lives in the directory inode (same discipline as WAL
  // segment creation, gated on the same knob).
  if (sync) fsyncParentDir(path);
#else
  (void)sync;
#endif
}

Checkpoint readCheckpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw adpm::Error("cannot read checkpoint '" + path + "'");
  }
  std::string content{std::istreambuf_iterator<char>(in),
                      std::istreambuf_iterator<char>()};
  // The trailing newline lands last; a file without one is torn by
  // definition, exactly like a WAL record.
  if (content.empty() || content.back() != '\n') {
    throw adpm::Error("checkpoint '" + path + "' is torn");
  }
  content.pop_back();
  if (content.find('\n') != std::string::npos) {
    throw adpm::Error("checkpoint '" + path + "' has trailing garbage");
  }

  util::json::Value v;
  try {
    v = util::json::parse(content);
  } catch (const adpm::Error& e) {
    throw adpm::Error("checkpoint '" + path + "': " + e.what());
  }
  const util::json::Value* crc = v.find("crc");
  if (crc == nullptr || crc->kind() != util::json::Kind::String) {
    throw adpm::Error("checkpoint '" + path + "' has no crc");
  }
  util::json::Object stripped;
  for (const auto& [key, member] : v.asObject()) {
    if (key != "crc") stripped.emplace_back(key, member);
  }
  const std::string base =
      util::json::serialize(util::json::Value{std::move(stripped)});
  if (util::fnv1a64Hex(base) != crc->asString()) {
    throw adpm::Error("checkpoint '" + path +
                      "': checksum mismatch (file is corrupt)");
  }

  try {
    if (v.at("t").asString() != "ckpt") {
      throw adpm::Error("not a checkpoint record");
    }
    const int version = static_cast<int>(v.at("v").asNumber());
    if (version != Checkpoint::kVersion) {
      throw adpm::Error("unsupported checkpoint version " +
                        std::to_string(version));
    }
    Checkpoint ckpt;
    ckpt.config.id = v.at("session").asString();
    ckpt.config.adpm = v.at("adpm").asBool();
    ckpt.config.scenarioName = v.at("scenario").asString();
    ckpt.config.scenarioDddl = v.at("dddl").asString();
    ckpt.seq = static_cast<std::size_t>(v.at("seq").asNumber());
    ckpt.stage = static_cast<std::size_t>(v.at("stage").asNumber());
    ckpt.walSeq = static_cast<std::size_t>(v.at("walSeq").asNumber());
    ckpt.digest = v.at("digest").asString();
    ckpt.state = v.at("state");
    return ckpt;
  } catch (const adpm::Error& e) {
    throw adpm::Error("checkpoint '" + path + "' is malformed: " + e.what());
  }
}

// -- SegmentedLog -------------------------------------------------------------

SegmentedLog::SegmentedLog(std::string basePath, SessionConfig config,
                           Options options)
    : basePath_(std::move(basePath)),
      config_(std::move(config)),
      options_(options) {
  current_ = std::make_unique<OperationLog>(segmentPath(basePath_, 0),
                                            options_.sync);
  current_->appendOpen(config_);
}

SegmentedLog::SegmentedLog(std::string basePath, SessionConfig config,
                           Options options, const AttachSpec& attach)
    : basePath_(std::move(basePath)),
      config_(std::move(config)),
      options_(options),
      seq_(attach.walSeq),
      nextCheckpointSeq_(attach.nextCheckpointSeq) {
  for (const Checkpoint& ckpt : attach.checkpoints) {
    checkpoints_.emplace_back(ckpt.seq, ckpt.walSeq);
  }
  if (attach.startFresh) {
    startStage_ = attach.startStage;
    current_ = std::make_unique<OperationLog>(segmentPath(basePath_, seq_),
                                              options_.sync);
    current_->appendOpen(config_, seq_, startStage_);
  } else {
    startStage_ = attach.opsBefore;
    opsInSegment_ = attach.opsInSegment;
    // No header: the recovered session continues the existing segment.
    current_ = std::make_unique<OperationLog>(segmentPath(basePath_, seq_),
                                              options_.sync);
  }
}

void SegmentedLog::rotate() {
  if (ADPM_FAULT_POINT("wal.rotate") != util::FaultAction::None) {
    throw adpm::TransientError("injected failure rotating log '" + basePath_ +
                               "' past segment " + std::to_string(seq_));
  }
  const std::size_t nextSeq = seq_ + 1;
  const std::size_t nextStart = startStage_ + opsInSegment_;
  const std::string path = segmentPath(basePath_, nextSeq);
  auto fresh = std::make_unique<OperationLog>(path, options_.sync);
  try {
    fresh->appendOpen(config_, nextSeq, nextStart);
  } catch (...) {
    // The half-born segment must not survive: a file with a torn header
    // would end the recovery chain right here.  The old segment is still
    // the append target, so the failure is transient.
    fresh.reset();
    std::error_code ec;
    std::filesystem::remove(path, ec);
    throw;
  }
  current_ = std::move(fresh);
  seq_ = nextSeq;
  startStage_ = nextStart;
  opsInSegment_ = 0;
  ++rotations_;
}

void SegmentedLog::appendOperation(const dpm::Operation& op) {
  const bool fullByOps =
      options_.segmentOps > 0 && opsInSegment_ >= options_.segmentOps;
  const bool fullByBytes = options_.segmentBytes > 0 && opsInSegment_ > 0 &&
                           current_->tailOffset() >= options_.segmentBytes;
  if (fullByOps || fullByBytes) rotate();
  current_->appendOperation(op);
  ++opsInSegment_;
}

void SegmentedLog::appendMark(std::size_t stage, const std::string& digest) {
  current_->appendMark(stage, digest);
}

void SegmentedLog::writeCheckpoint(util::json::Value state, std::size_t stage,
                                   const std::string& digest,
                                   std::size_t keep) {
  // Rotate first so the checkpoint's walSeq names a segment starting
  // exactly at `stage` — tail replay resumes at its first record.
  if (opsInSegment_ > 0) rotate();
  Checkpoint ckpt;
  ckpt.config = config_;
  ckpt.seq = nextCheckpointSeq_;
  ckpt.stage = stage;
  ckpt.walSeq = seq_;
  ckpt.state = std::move(state);
  ckpt.digest = digest;
  service::writeCheckpoint(basePath_, ckpt, options_.sync);
  ++nextCheckpointSeq_;
  ++checkpointsWritten_;
  checkpoints_.emplace_back(ckpt.seq, ckpt.walSeq);
  compact(keep);
}

void SegmentedLog::compact(std::size_t keep) {
  if (keep == 0) keep = 1;  // at least one checkpoint always survives
  if (checkpoints_.empty()) return;
  if (ADPM_FAULT_POINT("wal.compact") != util::FaultAction::None) {
    throw adpm::TransientError("injected failure compacting log '" +
                               basePath_ + "'");
  }
  while (checkpoints_.size() > keep) {
    std::error_code ec;
    std::filesystem::remove(checkpointPath(basePath_, checkpoints_.front().first),
                            ec);
    // Deletion failure degrades: the stale file costs disk, not correctness.
    checkpoints_.erase(checkpoints_.begin());
  }
  // Segments are deleted only once the full complement of `keep`
  // checkpoints is durable: with fewer, the fallback chain still ends in a
  // full replay, which needs every segment back to seq 0.
  if (checkpoints_.size() < keep) return;
  // Every retained checkpoint must keep its tail replayable, so only
  // segments older than the *oldest* retained checkpoint's walSeq go.
  std::size_t floor = checkpoints_.front().second;
  for (const auto& [seq, walSeq] : checkpoints_) {
    floor = std::min(floor, walSeq);
  }
  for (const SegmentRef& seg : listSessionFiles(basePath_).segments) {
    if (seg.seq >= floor || seg.seq == seq_) continue;
    std::error_code ec;
    if (std::filesystem::remove(seg.path, ec) && !ec) ++segmentsCompacted_;
  }
}

}  // namespace adpm::service
