#include "service/wal.hpp"

#include <fstream>

#include "dpm/operation_io.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace adpm::service {

OperationLog::OperationLog(std::string path)
    : path_(std::move(path)), out_(path_, std::ios::app) {
  if (!out_) {
    throw adpm::Error("cannot open operation log '" + path_ + "'");
  }
}

void OperationLog::appendLine(const std::string& line) {
  out_ << line << '\n';
  out_.flush();  // line-granular durability: a crash loses at most one record
  if (!out_) {
    throw adpm::Error("short write to operation log '" + path_ + "'");
  }
  ++written_;
}

void OperationLog::appendOpen(const SessionConfig& config) {
  util::json::Value v{util::json::Object{}};
  v.set("t", "open");
  v.set("v", kVersion);
  v.set("session", config.id);
  v.set("adpm", config.adpm);
  v.set("scenario", config.scenarioName);
  v.set("dddl", config.scenarioDddl);
  appendLine(util::json::serialize(v));
}

void OperationLog::appendOperation(const dpm::Operation& op) {
  util::json::Value v{util::json::Object{}};
  v.set("t", "op");
  v.set("op", dpm::operationToJson(op));
  appendLine(util::json::serialize(v));
}

void OperationLog::appendMark(std::size_t stage, const std::string& digest) {
  util::json::Value v{util::json::Object{}};
  v.set("t", "mark");
  v.set("stage", stage);
  v.set("digest", digest);
  appendLine(util::json::serialize(v));
}

OperationLog::Replay OperationLog::read(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw adpm::Error("cannot read operation log '" + path + "'");
  }

  Replay replay;
  bool sawOpen = false;
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    if (line.empty()) continue;
    util::json::Value v;
    try {
      v = util::json::parse(line);
    } catch (const adpm::Error& e) {
      throw adpm::Error("operation log '" + path + "' line " +
                        std::to_string(lineNo) + ": " + e.what());
    }
    const std::string& type = v.at("t").asString();
    if (type == "open") {
      if (sawOpen) {
        throw adpm::Error("operation log '" + path + "' has two headers");
      }
      const int version = static_cast<int>(v.at("v").asNumber());
      if (version != kVersion) {
        throw adpm::Error("operation log '" + path +
                          "' has unsupported version " +
                          std::to_string(version));
      }
      replay.config.id = v.at("session").asString();
      replay.config.adpm = v.at("adpm").asBool();
      replay.config.scenarioName = v.at("scenario").asString();
      replay.config.scenarioDddl = v.at("dddl").asString();
      sawOpen = true;
      continue;
    }
    if (!sawOpen) {
      throw adpm::Error("operation log '" + path +
                        "' has records before the header");
    }
    if (type == "op") {
      replay.operations.push_back(dpm::operationFromJson(v.at("op")));
    } else if (type == "mark") {
      Mark mark;
      mark.stage = static_cast<std::size_t>(v.at("stage").asNumber());
      mark.digest = v.at("digest").asString();
      replay.marks.push_back(std::move(mark));
    } else {
      throw adpm::Error("operation log '" + path + "' line " +
                        std::to_string(lineNo) + ": unknown record type '" +
                        type + "'");
    }
  }
  if (!sawOpen) {
    throw adpm::Error("operation log '" + path + "' has no header");
  }
  return replay;
}

}  // namespace adpm::service
