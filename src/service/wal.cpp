#include "service/wal.hpp"

#include <filesystem>
#include <fstream>
#include <iterator>
#include <string_view>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define ADPM_WAL_POSIX 1
#else
#define ADPM_WAL_POSIX 0
#endif

#include "dpm/operation_io.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace adpm::service {

namespace {

#if ADPM_WAL_POSIX
// Creating a file makes an entry in the parent directory's inode; fsyncing
// the file alone does not persist that entry.  Called once, when an
// OperationLog creates its file in sync mode, so a machine crash right after
// open() cannot forget the session's log existed.
void fsyncParentDir(const std::string& path) {
  std::string dir = std::filesystem::path(path).parent_path().string();
  if (dir.empty()) dir = ".";
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}
#endif

}  // namespace

OperationLog::OperationLog(std::string path, bool sync)
    : path_(std::move(path)), sync_(sync) {
  if (ADPM_FAULT_POINT("wal.open") != util::FaultAction::None) {
    throw adpm::FaultInjectedError("injected failure opening operation log '" +
                                   path_ + "'");
  }
  const bool existed = std::filesystem::exists(path_);
  out_ = std::fopen(path_.c_str(), "a");
  if (out_ == nullptr) {
    throw adpm::Error("cannot open operation log '" + path_ + "'");
  }
  // "a" leaves the initial stream position implementation-defined; pin the
  // durable-tail offset to the real end of file.
  std::fseek(out_, 0, SEEK_END);
  const long at = std::ftell(out_);
  tail_ = at > 0 ? static_cast<std::size_t>(at) : 0;
#if ADPM_WAL_POSIX
  if (!existed && sync_) fsyncParentDir(path_);
#else
  (void)existed;
#endif
}

OperationLog::~OperationLog() {
  if (out_ != nullptr) std::fclose(out_);
}

void OperationLog::appendLine(const std::string& line) {
  if (poisoned_) {
    throw adpm::Error("operation log '" + path_ +
                      "' is poisoned by an earlier torn write");
  }
  switch (ADPM_FAULT_POINT("wal.append")) {
    case util::FaultAction::Error:
      // Fails before any byte lands: the cleanest transient failure.
      throw adpm::FaultInjectedError(
          "injected failure appending to operation log '" + path_ + "'");
    case util::FaultAction::ShortWrite: {
      // Persist a *prefix* of the record and give up — the torn tail a real
      // crash mid-write leaves.  No rollback (that is the point), so the
      // log poisons itself against further appends.
      const std::size_t cut = line.size() / 2 + 1;
      std::fwrite(line.data(), 1, cut, out_);
      std::fflush(out_);
      poisoned_ = true;
      throw adpm::Error("injected short write tore operation log '" + path_ +
                        "' at offset " + std::to_string(tail_ + cut));
    }
    default:
      break;
  }

  bool ok = std::fwrite(line.data(), 1, line.size(), out_) == line.size() &&
            std::fputc('\n', out_) != EOF;
  // fflush hands the record to the OS: a *process* crash now loses at most
  // the record being appended, but an OS crash or power loss may still drop
  // acknowledged records.  sync_ upgrades the guarantee to storage
  // durability with one fsync per record.
  ok = ok && ADPM_FAULT_POINT("wal.flush") == util::FaultAction::None &&
       std::fflush(out_) == 0;
  if (!ok) {
    // Roll the file back to the last durable record so the append is
    // all-or-nothing: reopen (the FILE buffer may hold half the record) and
    // truncate.  Success makes the failure retryable; failure poisons the
    // log — appending after an un-rolled-back tear would interleave
    // garbage into the tail.
    std::fclose(out_);
    out_ = nullptr;
    bool rolledBack = false;
#if ADPM_WAL_POSIX
    rolledBack = ::truncate(path_.c_str(), static_cast<off_t>(tail_)) == 0;
#endif
    out_ = std::fopen(path_.c_str(), "a");
    if (rolledBack && out_ != nullptr) {
      throw adpm::TransientError("write to operation log '" + path_ +
                                 "' failed; rolled back to last durable "
                                 "record (offset " +
                                 std::to_string(tail_) + ")");
    }
    poisoned_ = true;
    throw adpm::Error("write to operation log '" + path_ +
                      "' failed and could not be rolled back");
  }
  if (sync_) {
    // A failed fsync leaves the page-cache state unknowable (the kernel may
    // have dropped the dirty pages), so the error is *not* retryable:
    // poison the log instead of pretending a retry could re-durable it.
    const bool injected =
        ADPM_FAULT_POINT("wal.fsync") != util::FaultAction::None;
#if ADPM_WAL_POSIX
    if (injected || ::fsync(::fileno(out_)) != 0) {
#else
    if (injected) {
#endif
      poisoned_ = true;
      throw adpm::Error("fsync failed on operation log '" + path_ + "'");
    }
  }
  tail_ += line.size() + 1;
  ++written_;
}

void OperationLog::appendRecord(const std::string& base) {
  // base is the canonical serialization without the crc member; the crc is
  // spliced in as the final member so a reader can strip it and re-serialize
  // the remaining members (insertion order is preserved) to verify.
  std::string line = base.substr(0, base.size() - 1);
  line += ",\"crc\":\"";
  line += util::fnv1a64Hex(base);
  line += "\"}";
  appendLine(line);
}

void OperationLog::appendOpen(const SessionConfig& config) {
  util::json::Value v{util::json::Object{}};
  v.set("t", "open");
  v.set("v", kVersion);
  v.set("session", config.id);
  v.set("adpm", config.adpm);
  v.set("scenario", config.scenarioName);
  v.set("dddl", config.scenarioDddl);
  appendRecord(util::json::serialize(v));
}

void OperationLog::appendOperation(const dpm::Operation& op) {
  util::json::Value v{util::json::Object{}};
  v.set("t", "op");
  v.set("op", dpm::operationToJson(op));
  appendRecord(util::json::serialize(v));
}

void OperationLog::appendMark(std::size_t stage, const std::string& digest) {
  util::json::Value v{util::json::Object{}};
  v.set("t", "mark");
  v.set("stage", stage);
  v.set("digest", digest);
  appendRecord(util::json::serialize(v));
}

OperationLog::Replay OperationLog::read(const std::string& path,
                                        RecoveryPolicy policy) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw adpm::Error("cannot read operation log '" + path + "'");
  }
  const std::string content{std::istreambuf_iterator<char>(in),
                            std::istreambuf_iterator<char>()};

  Replay replay;
  bool sawOpen = false;
  std::size_t lineNo = 0;
  std::size_t pos = 0;

  while (pos < content.size()) {
    const std::size_t nl = content.find('\n', pos);
    ++lineNo;
    std::string err;
    util::json::Value v;
    std::string type;

    if (nl == std::string::npos) {
      // A record the writer never finished (the '\n' lands last).  Even if
      // the bytes happen to parse, appending after it would concatenate
      // records, so it is torn by definition.
      err = "line " + std::to_string(lineNo) + " is torn (no newline)";
      pos = content.size();
    } else {
      const std::string_view line(content.data() + pos, nl - pos);
      pos = nl + 1;
      if (line.empty()) {
        replay.goodEndOffset = pos;
        continue;
      }
      try {
        v = util::json::parse(line);
      } catch (const adpm::Error& e) {
        err = "line " + std::to_string(lineNo) + ": " + e.what();
      }
      if (err.empty()) {
        if (const util::json::Value* crc = v.find("crc")) {
          if (crc->kind() != util::json::Kind::String) {
            err = "line " + std::to_string(lineNo) + ": malformed crc field";
          } else {
            util::json::Object stripped;
            for (const auto& [key, member] : v.asObject()) {
              if (key != "crc") stripped.emplace_back(key, member);
            }
            const std::string base =
                util::json::serialize(util::json::Value{std::move(stripped)});
            if (util::fnv1a64Hex(base) != crc->asString()) {
              err = "line " + std::to_string(lineNo) +
                    ": checksum mismatch (record is corrupt)";
            }
          }
        }
      }
      if (err.empty()) {
        const util::json::Value* t = v.find("t");
        if (t == nullptr || t->kind() != util::json::Kind::String) {
          err = "line " + std::to_string(lineNo) + ": record without a type";
        } else {
          type = t->asString();
        }
      }
    }

    if (err.empty() && type == "open") {
      if (sawOpen) {
        err = "line " + std::to_string(lineNo) + ": second header";
      } else {
        // Header problems are unrecoverable under either policy — with no
        // trustworthy (id, scenario) there is nothing to salvage.
        const int version = static_cast<int>(v.at("v").asNumber());
        if (version != kVersion) {
          throw adpm::Error("operation log '" + path +
                            "' has unsupported version " +
                            std::to_string(version));
        }
        try {
          replay.config.id = v.at("session").asString();
          replay.config.adpm = v.at("adpm").asBool();
          replay.config.scenarioName = v.at("scenario").asString();
          replay.config.scenarioDddl = v.at("dddl").asString();
        } catch (const adpm::Error& e) {
          throw adpm::Error("operation log '" + path + "' has a malformed "
                            "header: " + e.what());
        }
        sawOpen = true;
        replay.headerEndOffset = pos;
        replay.goodEndOffset = pos;
        continue;
      }
    }
    if (err.empty() && !sawOpen) {
      throw adpm::Error("operation log '" + path +
                        "' has records before the header");
    }
    if (err.empty()) {
      if (type == "op") {
        try {
          replay.operations.push_back(dpm::operationFromJson(v.at("op")));
          replay.opEndOffsets.push_back(pos);
        } catch (const adpm::Error& e) {
          err = "line " + std::to_string(lineNo) + ": " + e.what();
        }
      } else if (type == "mark") {
        try {
          Mark mark;
          mark.stage = static_cast<std::size_t>(v.at("stage").asNumber());
          mark.digest = v.at("digest").asString();
          mark.endOffset = pos;
          replay.marks.push_back(std::move(mark));
        } catch (const adpm::Error& e) {
          err = "line " + std::to_string(lineNo) + ": " + e.what();
        }
      } else {
        err = "line " + std::to_string(lineNo) + ": unknown record type '" +
              type + "'";
      }
    }

    if (!err.empty()) {
      if (policy == RecoveryPolicy::Strict || !sawOpen) {
        throw adpm::Error("operation log '" + path + "': " + err);
      }
      // Salvage: keep the intact prefix, drop this record and everything
      // after it — past a torn/corrupt record the operation *sequence* can
      // no longer be trusted, and replay needs the exact prefix.
      replay.truncatedTail = true;
      replay.droppedBytes = content.size() - replay.goodEndOffset;
      replay.tailError = err;
      break;
    }
    replay.goodEndOffset = pos;
  }

  if (!sawOpen) {
    throw adpm::Error("operation log '" + path + "' has no header");
  }
  return replay;
}

}  // namespace adpm::service
