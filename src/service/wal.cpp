#include "service/wal.hpp"

#include <fstream>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define ADPM_WAL_HAS_FSYNC 1
#else
#define ADPM_WAL_HAS_FSYNC 0
#endif

#include "dpm/operation_io.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace adpm::service {

OperationLog::OperationLog(std::string path, bool sync)
    : path_(std::move(path)),
      sync_(sync),
      out_(std::fopen(path_.c_str(), "a")) {
  if (out_ == nullptr) {
    throw adpm::Error("cannot open operation log '" + path_ + "'");
  }
}

OperationLog::~OperationLog() {
  if (out_ != nullptr) std::fclose(out_);
}

void OperationLog::appendLine(const std::string& line) {
  const bool ok =
      std::fwrite(line.data(), 1, line.size(), out_) == line.size() &&
      std::fputc('\n', out_) != EOF &&
      std::fflush(out_) == 0;
  if (!ok) {
    throw adpm::Error("short write to operation log '" + path_ + "'");
  }
  // fflush hands the record to the OS: a *process* crash now loses at most
  // the record being appended, but an OS crash or power loss may still drop
  // acknowledged records.  sync_ upgrades the guarantee to storage
  // durability with one fsync per record.
  if (sync_) {
#if ADPM_WAL_HAS_FSYNC
    if (::fsync(::fileno(out_)) != 0) {
      throw adpm::Error("fsync failed on operation log '" + path_ + "'");
    }
#endif
  }
  ++written_;
}

void OperationLog::appendOpen(const SessionConfig& config) {
  util::json::Value v{util::json::Object{}};
  v.set("t", "open");
  v.set("v", kVersion);
  v.set("session", config.id);
  v.set("adpm", config.adpm);
  v.set("scenario", config.scenarioName);
  v.set("dddl", config.scenarioDddl);
  appendLine(util::json::serialize(v));
}

void OperationLog::appendOperation(const dpm::Operation& op) {
  util::json::Value v{util::json::Object{}};
  v.set("t", "op");
  v.set("op", dpm::operationToJson(op));
  appendLine(util::json::serialize(v));
}

void OperationLog::appendMark(std::size_t stage, const std::string& digest) {
  util::json::Value v{util::json::Object{}};
  v.set("t", "mark");
  v.set("stage", stage);
  v.set("digest", digest);
  appendLine(util::json::serialize(v));
}

OperationLog::Replay OperationLog::read(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw adpm::Error("cannot read operation log '" + path + "'");
  }

  Replay replay;
  bool sawOpen = false;
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    if (line.empty()) continue;
    util::json::Value v;
    try {
      v = util::json::parse(line);
    } catch (const adpm::Error& e) {
      throw adpm::Error("operation log '" + path + "' line " +
                        std::to_string(lineNo) + ": " + e.what());
    }
    const std::string& type = v.at("t").asString();
    if (type == "open") {
      if (sawOpen) {
        throw adpm::Error("operation log '" + path + "' has two headers");
      }
      const int version = static_cast<int>(v.at("v").asNumber());
      if (version != kVersion) {
        throw adpm::Error("operation log '" + path +
                          "' has unsupported version " +
                          std::to_string(version));
      }
      replay.config.id = v.at("session").asString();
      replay.config.adpm = v.at("adpm").asBool();
      replay.config.scenarioName = v.at("scenario").asString();
      replay.config.scenarioDddl = v.at("dddl").asString();
      sawOpen = true;
      continue;
    }
    if (!sawOpen) {
      throw adpm::Error("operation log '" + path +
                        "' has records before the header");
    }
    if (type == "op") {
      replay.operations.push_back(dpm::operationFromJson(v.at("op")));
    } else if (type == "mark") {
      Mark mark;
      mark.stage = static_cast<std::size_t>(v.at("stage").asNumber());
      mark.digest = v.at("digest").asString();
      replay.marks.push_back(std::move(mark));
    } else {
      throw adpm::Error("operation log '" + path + "' line " +
                        std::to_string(lineNo) + ": unknown record type '" +
                        type + "'");
    }
  }
  if (!sawOpen) {
    throw adpm::Error("operation log '" + path + "' has no header");
  }
  return replay;
}

}  // namespace adpm::service
