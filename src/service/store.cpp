#include "service/store.hpp"

#include <algorithm>
#include <filesystem>
#include <set>
#include <thread>

#include "dddl/writer.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace adpm::service {

namespace {

bool safeId(const std::string& id) {
  if (id.empty() || id.size() > 128) return false;
  return std::all_of(id.begin(), id.end(), [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
  });
}

}  // namespace

SessionStore::SessionStore() : SessionStore(Options{}) {}

SessionStore::SessionStore(Options options)
    : options_(std::move(options)),
      retryRng_(options_.command.jitterSeed),
      bus_(options_.bus),
      executor_(options_.executor) {
  if (!options_.walDir.empty()) {
    std::filesystem::create_directories(options_.walDir);
  }
}

SessionStore::~SessionStore() {
  // Unblock any producer parked on a Block-policy queue before draining,
  // or drain() could wait forever on a strand task stuck in push().
  bus_.closeAll();
  executor_.drain();
}

std::string SessionStore::walPathOf(const std::string& id) const {
  return options_.walDir + "/" + id + ".wal";
}

void SessionStore::open(const std::string& id, const dpm::ScenarioSpec& spec,
                        bool adpm) {
  if (ADPM_FAULT_POINT("store.open") != util::FaultAction::None) {
    throw adpm::FaultInjectedError("injected failure opening session '" + id +
                                   "'");
  }
  if (!safeId(id)) {
    throw adpm::InvalidArgumentError("session id '" + id +
                                     "' is not filesystem-safe");
  }
  SessionConfig config;
  config.id = id;
  config.adpm = adpm;
  config.scenarioName = spec.name;
  // The log must be self-contained, so the scenario rides along as DDDL —
  // also pins the exact spec replay will instantiate.
  config.scenarioDddl = dddl::write(spec);

  // One critical section covers the duplicate-id check, the WAL-exists
  // check, the header write, and the map insertion: two racing open("x")
  // calls must not both write a header (OperationLog::read rejects a
  // two-header log as corrupt, which would make the session unrecoverable).
  util::LockGuard lock(mutex_);
  if (sessions_.contains(id)) {
    throw adpm::InvalidArgumentError("session '" + id + "' already open");
  }
  std::unique_ptr<SegmentedLog> log;
  if (!options_.walDir.empty()) {
    const std::string path = walPathOf(id);
    const SessionFiles existing = listSessionFiles(path);
    if (!existing.segments.empty() || !existing.checkpoints.empty()) {
      // close() keeps WALs and crashes leave them; a fresh open() always
      // writes a fresh header, so appending to a leftover chain would
      // corrupt it.  The caller decides: recover() the session or remove
      // its files (segments *and* checkpoints) first.
      throw adpm::InvalidArgumentError(
          "session '" + id + "' has existing log/checkpoint files at '" +
          path + "'; recover() it or remove them before reopening the id");
    }
    SegmentedLog::Options logOptions;
    logOptions.sync = options_.session.walSync;
    logOptions.segmentBytes = options_.session.segmentBytes;
    logOptions.segmentOps = options_.session.segmentOps;
    log = std::make_unique<SegmentedLog>(path, config, logOptions);
  }
  adoptLocked(id, std::make_unique<Session>(std::move(config), spec,
                                            std::move(log), options_.session));
}

std::vector<std::string> SessionStore::recover() {
  std::vector<std::string> recovered;
  std::vector<std::string> errors;
  std::vector<RecoveryEvent> events;
  {
    // Each call owns the whole report: a second recover() must not stack
    // its outcome on top of the first one's.
    util::LockGuard lock(mutex_);
    recoverErrors_.clear();
    recoverEvents_.clear();
  }
  if (options_.walDir.empty()) return recovered;

  // Discover session ids from every chain file (segments *and*
  // checkpoints): a session whose seq-0 segment was compacted away is
  // still recoverable from its newest checkpoint plus tail segments.
  std::set<std::string> idsOnDisk;  // deterministic recovery order
  {
    std::error_code ec;
    std::filesystem::directory_iterator dir(options_.walDir, ec);
    if (!ec) {
      for (const auto& entry : dir) {
        if (!entry.is_regular_file()) continue;
        const std::optional<WalFileName> parsed =
            parseWalFileName(entry.path().filename().string());
        if (parsed) idsOnDisk.insert(parsed->sessionId);
      }
    }
  }

  for (const std::string& id : idsOnDisk) {
    const std::string path = walPathOf(id);
    {
      // Skip live sessions *before* touching their files: re-replaying the
      // chain under a live session would re-report (and under Salvage
      // re-mutate) a log that is actively being appended to.
      util::LockGuard lock(mutex_);
      if (sessions_.contains(id)) continue;
    }
    // One bad session (corrupt, diverged, id raced in) must not abort
    // recovery of the remaining ones; it is skipped and reported instead.
    try {
      if (ADPM_FAULT_POINT("store.recover") != util::FaultAction::None) {
        throw adpm::FaultInjectedError("injected failure recovering '" +
                                       path + "'");
      }
      SalvageOutcome salvage;
      std::unique_ptr<Session> session = recoverSession(
          path, options_.session, options_.recovery, &salvage);
      {
        util::LockGuard lock(mutex_);
        if (sessions_.contains(id)) continue;  // open(id) raced in
        adoptLocked(id, std::move(session));
      }
      recovered.push_back(id);
      if (salvage.salvaged || salvage.checkpointFallbacks > 0 ||
          salvage.checkpointUsed) {
        RecoveryEvent event;
        event.path = path;
        event.detail = salvage.reason;
        event.salvaged = salvage.salvaged;
        event.keptStage = salvage.keptStage;
        event.droppedOperations = salvage.droppedOperations;
        event.droppedBytes = salvage.droppedBytes;
        event.checkpointUsed = salvage.checkpointUsed;
        event.checkpointSeq = salvage.checkpointSeq;
        event.checkpointStage = salvage.checkpointStage;
        event.checkpointFallbacks = salvage.checkpointFallbacks;
        event.segmentsReplayed = salvage.segmentsReplayed;
        event.operationsReplayed = salvage.operationsReplayed;
        events.push_back(std::move(event));
      }
    } catch (const adpm::Error& e) {
      errors.push_back(path + ": " + e.what());
      RecoveryEvent event;
      event.path = path;
      event.detail = e.what();
      event.sessionLost = true;
      events.push_back(std::move(event));
    }
  }
  util::LockGuard lock(mutex_);
  recoverErrors_ = std::move(errors);
  recoverEvents_ = std::move(events);
  return recovered;
}

std::vector<std::string> SessionStore::recoverErrors() const {
  util::LockGuard lock(mutex_);
  return recoverErrors_;
}

std::vector<RecoveryEvent> SessionStore::recoverReport() const {
  util::LockGuard lock(mutex_);
  return recoverEvents_;
}

void SessionStore::backoffBeforeRetry(unsigned attempt) {
  const CommandPolicy& policy = options_.command;
  double micros = static_cast<double>(policy.backoffBase.count());
  for (unsigned i = 1; i < attempt; ++i) micros *= 2.0;
  micros = std::min(micros, static_cast<double>(policy.backoffCap.count()));
  double factor = 1.0;
  {
    util::LockGuard lock(retryMutex_);
    ++retries_;
    if (policy.jitter > 0.0) {
      factor = retryRng_.uniform(1.0 - policy.jitter, 1.0 + policy.jitter);
    }
  }
  const auto delay =
      std::chrono::microseconds(static_cast<std::int64_t>(micros * factor));
  if (delay.count() > 0) std::this_thread::sleep_for(delay);
}

void SessionStore::noteTimeout() {
  util::LockGuard lock(retryMutex_);
  ++timeouts_;
}

std::size_t SessionStore::retries() const {
  util::LockGuard lock(retryMutex_);
  return retries_;
}

std::size_t SessionStore::timeouts() const {
  util::LockGuard lock(retryMutex_);
  return timeouts_;
}

void SessionStore::adoptLocked(const std::string& id,
                               std::unique_ptr<Session> session) {
  auto entry = std::make_shared<Entry>();
  entry->session = std::move(session);
  entry->strand = executor_.makeStrand();
  entry->session->setNotificationSink(
      [this, id](const std::vector<dpm::Notification>& batch) {
        bus_.publish(id, batch);
      });
  sessions_.emplace(id, std::move(entry));  // caller checked for duplicates
}

void SessionStore::close(const std::string& id) {
  std::shared_ptr<Entry> entry;
  {
    util::LockGuard lock(mutex_);
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) return;
    entry = std::move(it->second);
    sessions_.erase(it);
  }
  bus_.closeSession(id);
  // Queued commands still hold the entry via their captures; the session
  // object dies with the last of them.
}

std::shared_ptr<SessionStore::Entry> SessionStore::entryOf(
    const std::string& id) const {
  util::LockGuard lock(mutex_);
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    throw adpm::InvalidArgumentError("unknown session '" + id + "'");
  }
  return it->second;
}

std::vector<std::string> SessionStore::ids() const {
  util::LockGuard lock(mutex_);
  std::vector<std::string> out;
  out.reserve(sessions_.size());
  for (const auto& [id, entry] : sessions_) out.push_back(id);
  return out;
}

std::size_t SessionStore::sessionCount() const {
  util::LockGuard lock(mutex_);
  return sessions_.size();
}

bool SessionStore::has(const std::string& id) const {
  util::LockGuard lock(mutex_);
  return sessions_.contains(id);
}

std::future<dpm::DesignProcessManager::ExecResult>
SessionStore::applyOperation(const std::string& id, dpm::Operation op) {
  // The lambda keeps ownership of `op` and applies a *copy* per attempt, so
  // a TransientError retry replays the identical operation.
  return submit(id, "applyOperation", [op = std::move(op)](Session& session) {
    if (ADPM_FAULT_POINT("store.apply") != util::FaultAction::None) {
      throw adpm::FaultInjectedError("injected failure applying operation");
    }
    return session.apply(dpm::Operation(op));
  });
}

std::future<std::optional<constraint::GuidanceReport>>
SessionStore::queryGuidance(const std::string& id) {
  return submit(
      id, "queryGuidance",
      [](Session& session) -> std::optional<constraint::GuidanceReport> {
        const constraint::GuidanceReport* g =
            session.manager().latestGuidance();
        if (g == nullptr) return std::nullopt;
        return *g;
      });
}

std::future<Session::VerifyResult> SessionStore::verify(
    const std::string& id) {
  return submit(id, "verify",
                [](Session& session) { return session.verify(); });
}

std::future<SessionSnapshot> SessionStore::snapshot(const std::string& id) {
  return submit(id, "snapshot",
                [](Session& session) { return session.snapshot(); });
}

std::shared_ptr<NotificationBus::Queue> SessionStore::subscribe(
    const std::string& id, const std::string& designer) {
  // Hold the store lock across the existence check *and* the bus
  // registration: a concurrent close(id) then either runs after us (and
  // closes the new queue with the rest) or before us (and we throw) — never
  // a live queue left on a dead session, which would hang its consumer's
  // blocking pop() forever.  Lock order store→bus is consistent everywhere;
  // the bus never calls back into the store.
  util::LockGuard lock(mutex_);
  if (!sessions_.contains(id)) {
    throw adpm::InvalidArgumentError("unknown session '" + id + "'");
  }
  return bus_.subscribe(id, designer);
}

}  // namespace adpm::service
