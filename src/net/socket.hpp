// Thin POSIX TCP socket wrappers with fault-injection failpoints.
//
// Everything the net layer does with a file descriptor goes through these
// helpers, for two reasons: (a) the error handling is uniform (hard socket
// errors become ConnectionError, EAGAIN/EINTR are normalized for the
// non-blocking reactor), and (b) the `net.accept` / `net.read` / `net.write`
// failpoints (util/fault.hpp) live here, so the crash-torture methodology
// extends across the wire — an armed plan tears connections at
// deterministic points and the recovery story (client resync, server WAL
// salvage) is tested, not assumed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

namespace adpm::net {

/// RAII file descriptor.
class ScopedFd {
 public:
  ScopedFd() = default;
  explicit ScopedFd(int fd) : fd_(fd) {}
  ~ScopedFd() { reset(); }

  ScopedFd(const ScopedFd&) = delete;
  ScopedFd& operator=(const ScopedFd&) = delete;
  ScopedFd(ScopedFd&& other) noexcept : fd_(other.release()) {}
  ScopedFd& operator=(ScopedFd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }

  int get() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  int release() noexcept { return std::exchange(fd_, -1); }
  void reset();

 private:
  int fd_ = -1;
};

/// Binds and listens on host:port (TCP, SO_REUSEADDR).  port 0 binds an
/// ephemeral port — read it back with localPort().  Throws adpm::Error.
ScopedFd listenTcp(const std::string& host, std::uint16_t port);

/// The locally bound port of a listening/connected socket.
std::uint16_t localPort(int fd);

/// Connects to host:port with a timeout.  Throws ConnectionError on
/// failure/timeout.  The returned socket is blocking with TCP_NODELAY set
/// (request/response frames must not sit in Nagle's buffer).
ScopedFd connectTcp(const std::string& host, std::uint16_t port,
                    int timeoutMs);

void setNonBlocking(int fd, bool nonBlocking);

/// Result of one non-blocking read/write attempt.
enum class IoStatus : std::uint8_t {
  Ok,         ///< `n` bytes transferred (n > 0)
  WouldBlock, ///< no progress possible now (EAGAIN)
  Eof,        ///< orderly peer close (read only)
};

struct IoResult {
  IoStatus status = IoStatus::WouldBlock;
  std::size_t n = 0;
};

/// One read(2) attempt.  EINTR retries internally; hard errors (and the
/// armed `net.read` failpoint) throw ConnectionError.
IoResult readSome(int fd, char* buf, std::size_t cap);

/// One write(2) attempt (MSG_NOSIGNAL — a dead peer must error, not
/// SIGPIPE the server).  The `net.write` failpoint's ShortWrite action
/// transfers a prefix then throws, leaving a genuinely torn frame on the
/// wire.  Hard errors throw ConnectionError.
IoResult writeSome(int fd, const char* buf, std::size_t n);

/// Blocks until fd is readable (or writable with `forWrite`) or timeoutMs
/// elapses (negative = forever).  Returns false on timeout.  Throws
/// ConnectionError when the fd errors out.
bool waitFd(int fd, bool forWrite, int timeoutMs);

}  // namespace adpm::net
