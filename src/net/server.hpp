// TCP front-end for the design-session service.
//
// One Server exposes one service::SessionStore over the wire protocol
// (net/frame.hpp + net/protocol.hpp).  The reactor thread parses frames off
// every connection and dispatches:
//
//   * session commands (Apply/Guidance/Verify/Snapshot) are posted onto the
//     owning session's strand via SessionStore::withSession — the strand
//     executes the command with exclusive session access and sends the
//     Result/Error frame itself, so the reactor never blocks on a command
//     and a session's remote operations serialize exactly like local ones;
//   * Subscribe registers the connection with the NotificationBus and
//     spawns a pump that streams the queue as Notification push frames,
//     parking on the connection's write-backpressure gate when the peer
//     reads slowly — which fills the bus queue, which trips the bus's
//     degraded mode, which coalesces the stream into one ResyncRequired
//     marker (the PR-5 machinery, now end-to-end across the wire);
//   * Open/Status/CloseSession run inline on the reactor thread (rare,
//     cheap, or both).
//
// Failures round-trip the util/error.hpp taxonomy by name (see
// net/protocol.hpp): a queued-too-long command fails with Timeout *without
// executing*, a rolled-back WAL append fails Transient and the *client*
// retries — CommandPolicy semantics, moved to the other end of the wire.
//
// Shutdown is graceful by default: stop accepting, announce Shutdown to
// every peer (which stop submitting), drain the strands, flush and close
// the connections.  shutdown() reports whether the drain completed within
// its deadline — the CLI turns that into the exit code.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dpm/scenario.hpp"
#include "net/reactor.hpp"
#include "service/store.hpp"
#include "util/json.hpp"
#include "util/thread_annotations.hpp"

namespace adpm::net {

class Server {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    /// 0 = ephemeral; start() returns the bound port.
    std::uint16_t port = 0;
    /// Allow clients to open sessions (Open frames).  Off = the operator
    /// pre-opens sessions (or recovers them) and clients only drive them.
    bool allowOpen = true;
    /// Resolves an Open frame's scenario *name*; null = only DDDL-carrying
    /// opens are accepted.  (The net layer does not link the scenario
    /// registry; the CLI wires this up.)
    std::function<const dpm::ScenarioSpec*(const std::string&)> scenarioByName;
    /// Queue-time deadline for remote commands; 0 = the store's
    /// CommandPolicy timeout.
    std::chrono::milliseconds commandTimeout{0};
    Reactor::Options reactor{};
  };

  struct Stats {
    std::size_t accepted = 0;
    std::size_t closed = 0;
    std::size_t frames = 0;
    std::size_t results = 0;
    std::size_t errors = 0;          ///< Error frames sent (typed failures)
    std::size_t protocolErrors = 0;  ///< malformed frames/payloads (conn dropped)
    std::size_t timeouts = 0;        ///< commands shed by the queue deadline
    std::size_t pushes = 0;          ///< Notification frames sent
    std::size_t subscriptions = 0;
  };

  Server(service::SessionStore& store, Options options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the reactor thread.  Returns the port.
  std::uint16_t start();

  /// Graceful shutdown: stop accepting, push a Shutdown frame to every
  /// connection, wait up to `drainDeadline` for the strands to drain, then
  /// flush and close everything.  Returns true when the drain completed in
  /// time (a clean stop), false when the deadline forced the stop.
  bool shutdown(std::chrono::milliseconds drainDeadline);

  /// Forced stop: no drain, no farewell.
  void kill();

  std::uint16_t port() const noexcept { return port_.load(); }
  bool running() const noexcept { return running_.load(); }
  Stats stats() const;

 private:
  struct Gate {
    util::Mutex mutex;
    util::CondVar cv;
    /// False once the connection died or the server stops.
    bool open ADPM_GUARDED_BY(mutex) = true;
  };

  struct Pump {
    std::thread thread;
    std::shared_ptr<service::NotificationBus::Queue> queue;
    std::atomic<bool> done{false};
  };

  struct ConnState {
    std::shared_ptr<Gate> gate = std::make_shared<Gate>();
    std::vector<std::unique_ptr<Pump>> pumps;
  };

  void handleAccept(Reactor::ConnId conn);
  void handleFrame(Reactor::ConnId conn, Frame&& frame);
  void handleClose(Reactor::ConnId conn);
  void handleWritable(Reactor::ConnId conn);

  void dispatch(Reactor::ConnId conn, FrameType type,
                const util::json::Value& req, double reqId);
  void sendResult(Reactor::ConnId conn, util::json::Value body);
  void sendError(Reactor::ConnId conn, double reqId, const std::exception& e);
  void protocolFailure(Reactor::ConnId conn, const std::string& message);
  void startPump(Reactor::ConnId conn, const std::string& sessionId,
                 const std::string& designer,
                 std::shared_ptr<service::NotificationBus::Queue> queue);
  void pumpLoop(Reactor::ConnId conn, std::string sessionId,
                std::shared_ptr<service::NotificationBus::Queue> queue,
                std::shared_ptr<Gate> gate, Pump* self);
  void retireConn(Reactor::ConnId conn);
  void reapRetiredPumps();
  std::chrono::milliseconds effectiveTimeout() const;
  util::json::Value statusJson();

  service::SessionStore& store_;
  Options options_;
  std::unique_ptr<Reactor> reactor_;
  std::thread reactorThread_;
  /// Atomic: start() publishes the bound port while other threads (CLI
  /// status printers, tests) may already be polling port().
  std::atomic<std::uint16_t> port_{0};
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopping_{false};

  mutable util::Mutex mutex_;
  std::map<Reactor::ConnId, ConnState> conns_ ADPM_GUARDED_BY(mutex_);
  std::vector<std::unique_ptr<Pump>> retiredPumps_ ADPM_GUARDED_BY(mutex_);

  std::atomic<std::size_t> accepted_{0}, closed_{0}, frames_{0}, results_{0},
      errors_{0}, protocolErrors_{0}, timeouts_{0}, pushes_{0},
      subscriptions_{0};
};

}  // namespace adpm::net
