#include "net/server.hpp"

#include <chrono>
#include <exception>
#include <utility>

#include "dddl/parser.hpp"
#include "dddl/writer.hpp"
#include "dpm/operation_io.hpp"
#include "net/protocol.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace adpm::net {

namespace json = util::json;

Server::Server(service::SessionStore& store, Options options)
    : store_(store), options_(std::move(options)) {
  Reactor::Handlers handlers;
  handlers.onAccept = [this](Reactor::ConnId id) { handleAccept(id); };
  handlers.onFrame = [this](Reactor::ConnId id, Frame&& frame) {
    handleFrame(id, std::move(frame));
  };
  handlers.onClose = [this](Reactor::ConnId id, const std::string&) {
    handleClose(id);
  };
  handlers.onWritable = [this](Reactor::ConnId id) { handleWritable(id); };
  reactor_ = std::make_unique<Reactor>(options_.reactor, std::move(handlers));
}

Server::~Server() {
  if (running_.load()) kill();
  reapRetiredPumps();
  util::LockGuard lock(mutex_);
  for (auto& pump : retiredPumps_) {
    if (pump->thread.joinable()) pump->thread.join();
  }
}

std::uint16_t Server::start() {
  port_ = reactor_->listen(options_.host, options_.port);
  running_.store(true);
  reactorThread_ = std::thread([this] { reactor_->run(); });
  return port_;
}

Server::Stats Server::stats() const {
  Stats s;
  s.accepted = accepted_.load();
  s.closed = closed_.load();
  s.frames = frames_.load();
  s.results = results_.load();
  s.errors = errors_.load();
  s.protocolErrors = protocolErrors_.load();
  s.timeouts = timeouts_.load();
  s.pushes = pushes_.load();
  s.subscriptions = subscriptions_.load();
  return s;
}

std::chrono::milliseconds Server::effectiveTimeout() const {
  if (options_.commandTimeout.count() > 0) return options_.commandTimeout;
  return store_.options().command.timeout;
}

// -- connection lifecycle -----------------------------------------------------

void Server::handleAccept(Reactor::ConnId conn) {
  ++accepted_;
  {
    util::LockGuard lock(mutex_);
    conns_.emplace(conn, ConnState{});
  }
  reapRetiredPumps();
}

void Server::handleClose(Reactor::ConnId conn) {
  ++closed_;
  retireConn(conn);
}

void Server::handleWritable(Reactor::ConnId conn) {
  std::shared_ptr<Gate> gate;
  {
    util::LockGuard lock(mutex_);
    const auto it = conns_.find(conn);
    if (it == conns_.end()) return;
    gate = it->second.gate;
  }
  {
    util::LockGuard lock(gate->mutex);
  }
  gate->cv.notify_all();
}

void Server::retireConn(Reactor::ConnId conn) {
  ConnState state;
  {
    util::LockGuard lock(mutex_);
    const auto it = conns_.find(conn);
    if (it == conns_.end()) return;
    state = std::move(it->second);
    conns_.erase(it);
  }
  {
    util::LockGuard lock(state.gate->mutex);
    state.gate->open = false;
  }
  state.gate->cv.notify_all();
  for (auto& pump : state.pumps) pump->queue->close();
  {
    util::LockGuard lock(mutex_);
    for (auto& pump : state.pumps) retiredPumps_.push_back(std::move(pump));
  }
  reapRetiredPumps();
}

void Server::reapRetiredPumps() {
  // Pumps whose loop has exited get joined opportunistically (the join of a
  // finished thread is immediate); the rest wait for shutdown()/~Server.
  std::vector<std::unique_ptr<Pump>> done;
  {
    util::LockGuard lock(mutex_);
    auto it = retiredPumps_.begin();
    while (it != retiredPumps_.end()) {
      if ((*it)->done.load()) {
        done.push_back(std::move(*it));
        it = retiredPumps_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& pump : done) {
    if (pump->thread.joinable()) pump->thread.join();
  }
}

// -- frame dispatch (reactor thread) ------------------------------------------

void Server::handleFrame(Reactor::ConnId conn, Frame&& frame) {
  ++frames_;
  if (!isRequestFrame(frame.type)) {
    protocolFailure(conn, std::string("unexpected frame type ") +
                              frameTypeName(frame.type));
    return;
  }
  json::Value req;
  try {
    req = json::parse(frame.payload);
  } catch (const std::exception& e) {
    protocolFailure(conn,
                    std::string("unparseable request payload: ") + e.what());
    return;
  }
  const json::Value* reqField = req.find("req");
  if (reqField == nullptr || reqField->kind() != json::Kind::Number) {
    protocolFailure(conn, "request payload has no numeric 'req' id");
    return;
  }
  const double reqId = reqField->asNumber();
  try {
    dispatch(conn, frame.type, req, reqId);
  } catch (const std::exception& e) {
    sendError(conn, reqId, e);
  }
}

void Server::dispatch(Reactor::ConnId conn, FrameType type,
                      const json::Value& req, double reqId) {
  const bool mutating = type == FrameType::Open || type == FrameType::Apply ||
                        type == FrameType::Subscribe ||
                        type == FrameType::CloseSession;
  if (draining_.load() && mutating) {
    // The peer already got (or is about to get) the Shutdown frame; refuse
    // new work as Transient so a retrying client fails over, while reads
    // keep answering during the drain window.
    throw adpm::TransientError("server is draining");
  }

  switch (type) {
    case FrameType::Open: {
      if (!options_.allowOpen) {
        throw adpm::InvalidArgumentError(
            "remote session open is disabled on this server");
      }
      const std::string id = req.at("session").asString();
      bool adpm = true;
      if (const json::Value* a = req.find("adpm")) adpm = a->asBool();
      dpm::ScenarioSpec parsed;
      const dpm::ScenarioSpec* spec = nullptr;
      if (const json::Value* d = req.find("dddl")) {
        parsed = dddl::parse(d->asString());
        spec = &parsed;
      } else if (const json::Value* s = req.find("scenario")) {
        if (!options_.scenarioByName) {
          throw adpm::InvalidArgumentError(
              "this server has no scenario registry; open with 'dddl'");
        }
        spec = options_.scenarioByName(s->asString());
        if (spec == nullptr) {
          throw adpm::InvalidArgumentError("unknown scenario '" +
                                           s->asString() + "'");
        }
      } else {
        throw adpm::InvalidArgumentError(
            "open needs a 'dddl' or 'scenario' field");
      }
      // The canonical DDDL rendering is the contract that lets the client
      // build a bit-identical local shadow of the server's session.
      const std::string canonical = dddl::write(*spec);
      store_.open(id, *spec, adpm);
      json::Value body{json::Object{}};
      body.set("req", reqId);
      body.set("session", id);
      body.set("adpm", adpm);
      body.set("dddl", canonical);
      sendResult(conn, std::move(body));
      return;
    }

    case FrameType::Apply: {
      const std::string id = req.at("session").asString();
      dpm::Operation op = dpm::operationFromJson(req.at("op"));
      const auto received = std::chrono::steady_clock::now();
      const std::chrono::milliseconds timeout = effectiveTimeout();
      (void)store_.withSession(
          id, [this, conn, reqId, id, received, timeout,
               op = std::move(op)](service::Session& session) mutable {
            try {
              if (timeout.count() > 0 &&
                  std::chrono::steady_clock::now() - received >= timeout) {
                ++timeouts_;
                throw adpm::TimeoutError(
                    "command 'applyOperation' on session '" + id +
                    "' exceeded its deadline while queued");
              }
              const auto result = session.apply(std::move(op));
              json::Value body{json::Object{}};
              body.set("req", reqId);
              body.set("record", operationRecordToJson(result.record));
              body.set("notifications", result.notifications.size());
              sendResult(conn, std::move(body));
            } catch (const std::exception& e) {
              sendError(conn, reqId, e);
            }
          });
      return;
    }

    case FrameType::Guidance: {
      const std::string id = req.at("session").asString();
      (void)store_.withSession(
          id, [this, conn, reqId](service::Session& session) {
            try {
              json::Value body{json::Object{}};
              body.set("req", reqId);
              const constraint::GuidanceReport* g =
                  session.manager().latestGuidance();
              body.set("present", g != nullptr);
              if (g != nullptr) {
                body.set("properties", g->properties.size());
                body.set("violated", g->violated.size());
                body.set("extraEvaluations", g->extraEvaluations);
              }
              sendResult(conn, std::move(body));
            } catch (const std::exception& e) {
              sendError(conn, reqId, e);
            }
          });
      return;
    }

    case FrameType::Verify: {
      const std::string id = req.at("session").asString();
      (void)store_.withSession(
          id, [this, conn, reqId](service::Session& session) {
            try {
              const service::Session::VerifyResult result = session.verify();
              json::Array violated;
              violated.reserve(result.violated.size());
              for (const constraint::ConstraintId c : result.violated) {
                violated.push_back(
                    json::Value(static_cast<std::size_t>(c.value)));
              }
              json::Value body{json::Object{}};
              body.set("req", reqId);
              body.set("violated", std::move(violated));
              body.set("evaluations", result.evaluations);
              sendResult(conn, std::move(body));
            } catch (const std::exception& e) {
              sendError(conn, reqId, e);
            }
          });
      return;
    }

    case FrameType::Snapshot: {
      const std::string id = req.at("session").asString();
      bool withText = false;
      if (const json::Value* t = req.find("text")) withText = t->asBool();
      (void)store_.withSession(
          id, [this, conn, reqId, withText](service::Session& session) {
            try {
              json::Value body{json::Object{}};
              body.set("req", reqId);
              body.set("snapshot",
                       snapshotToJson(session.snapshot(), withText));
              sendResult(conn, std::move(body));
            } catch (const std::exception& e) {
              sendError(conn, reqId, e);
            }
          });
      return;
    }

    case FrameType::Subscribe: {
      const std::string id = req.at("session").asString();
      const std::string designer = req.at("designer").asString();
      auto queue = store_.subscribe(id, designer);
      startPump(conn, id, designer, std::move(queue));
      json::Value body{json::Object{}};
      body.set("req", reqId);
      body.set("session", id);
      body.set("designer", designer);
      body.set("subscribed", true);
      sendResult(conn, std::move(body));
      return;
    }

    case FrameType::Status: {
      json::Value body = statusJson();
      body.set("req", reqId);
      sendResult(conn, std::move(body));
      return;
    }

    case FrameType::CloseSession: {
      const std::string id = req.at("session").asString();
      store_.close(id);
      json::Value body{json::Object{}};
      body.set("req", reqId);
      body.set("session", id);
      body.set("closed", true);
      sendResult(conn, std::move(body));
      return;
    }

    default:
      protocolFailure(conn, std::string("unhandled request frame type ") +
                                frameTypeName(type));
  }
}

json::Value Server::statusJson() {
  json::Value v{json::Object{}};

  json::Array ids;
  for (const std::string& id : store_.ids()) ids.push_back(json::Value(id));
  v.set("sessions", std::move(ids));
  v.set("draining", draining_.load());

  json::Value store{json::Object{}};
  store.set("retries", store_.retries());
  store.set("timeouts", store_.timeouts());
  v.set("store", std::move(store));

  const service::NotificationBus& bus = store_.bus();
  json::Value busJson{json::Object{}};
  busJson.set("published", bus.published());
  busJson.set("delivered", bus.delivered());
  busJson.set("unrouted", bus.unrouted());
  busJson.set("dropped", bus.dropped());
  busJson.set("downgrades", bus.downgrades());
  busJson.set("coalesced", bus.coalesced());
  json::Array subscribers;
  for (const service::NotificationBus::SubscriberStats& s :
       bus.subscriberStats()) {
    json::Value sub{json::Object{}};
    sub.set("session", s.sessionId);
    sub.set("designer", s.designer);
    sub.set("depth", s.queueDepth);
    sub.set("capacity", s.queueCapacity);
    sub.set("dropped", s.dropped);
    sub.set("degraded", s.degraded);
    sub.set("downgrades", s.downgrades);
    sub.set("coalesced", s.coalesced);
    subscribers.push_back(std::move(sub));
  }
  busJson.set("subscribers", std::move(subscribers));
  v.set("bus", std::move(busJson));

  const Stats s = stats();
  json::Value server{json::Object{}};
  server.set("accepted", s.accepted);
  server.set("closed", s.closed);
  server.set("frames", s.frames);
  server.set("results", s.results);
  server.set("errors", s.errors);
  server.set("protocolErrors", s.protocolErrors);
  server.set("timeouts", s.timeouts);
  server.set("pushes", s.pushes);
  server.set("subscriptions", s.subscriptions);
  v.set("server", std::move(server));
  return v;
}

// -- responses ----------------------------------------------------------------

void Server::sendResult(Reactor::ConnId conn, json::Value body) {
  if (reactor_->send(conn, FrameType::Result, json::serialize(body))) {
    ++results_;
  }
}

void Server::sendError(Reactor::ConnId conn, double reqId,
                       const std::exception& e) {
  const char* name = wireErrorName(e);
  json::Value body{json::Object{}};
  body.set("req", reqId);
  body.set("error", name);
  body.set("message", std::string(e.what()));
  if (reactor_->send(conn, FrameType::Error, json::serialize(body))) {
    ++errors_;
  }
}

void Server::protocolFailure(Reactor::ConnId conn, const std::string& message) {
  ++protocolErrors_;
  json::Value body{json::Object{}};
  body.set("error", "Protocol");
  body.set("message", message);
  reactor_->send(conn, FrameType::Error, json::serialize(body));
  reactor_->close(conn, /*flushFirst=*/true);
}

// -- subscription pumps -------------------------------------------------------

void Server::startPump(Reactor::ConnId conn, const std::string& sessionId,
                       const std::string& designer,
                       std::shared_ptr<service::NotificationBus::Queue> queue) {
  (void)designer;
  ++subscriptions_;
  std::shared_ptr<Gate> gate;
  Pump* raw = nullptr;
  {
    util::LockGuard lock(mutex_);
    const auto it = conns_.find(conn);
    if (it == conns_.end()) {
      queue->close();
      return;
    }
    gate = it->second.gate;
    auto pump = std::make_unique<Pump>();
    pump->queue = queue;
    raw = pump.get();
    it->second.pumps.push_back(std::move(pump));
  }
  raw->thread = std::thread([this, conn, sessionId, queue = std::move(queue),
                             gate = std::move(gate), raw]() mutable {
    pumpLoop(conn, std::move(sessionId), std::move(queue), std::move(gate),
             raw);
  });
}

void Server::pumpLoop(Reactor::ConnId conn, std::string sessionId,
                      std::shared_ptr<service::NotificationBus::Queue> queue,
                      std::shared_ptr<Gate> gate, Pump* self) {
  for (;;) {
    std::optional<dpm::Notification> n = queue->pop();
    if (!n) break;  // queue closed and drained: session or connection gone
    const std::string payload =
        json::serialize(notificationToJson(sessionId, *n));
    bool alive;
    {
      // Backpressure: park while the connection's write buffer is above the
      // reactor's high-water mark.  While parked, this pump stops draining
      // its bus queue — which is exactly what arms the bus's degraded mode
      // for a persistently slow consumer.  The wait re-polls on a short
      // timer as well as on the onWritable signal.
      util::UniqueLock lock(gate->mutex);
      while (gate->open && !stopping_.load() &&
             reactor_->queuedBytes(conn) >= options_.reactor.writeHighWater) {
        (void)gate->cv.wait_for(lock, std::chrono::milliseconds(50));
      }
      alive = gate->open && !stopping_.load();
    }
    if (!alive) break;
    if (!reactor_->send(conn, FrameType::Notification, payload)) break;
    ++pushes_;
  }
  self->done.store(true);
}

// -- shutdown -----------------------------------------------------------------

bool Server::shutdown(std::chrono::milliseconds drainDeadline) {
  if (!running_.load()) return true;
  draining_.store(true);
  reactor_->stopListening();

  // Announce the stop: peers that see the Shutdown frame stop submitting,
  // which (together with the draining_ refusal above) bounds the drain.
  json::Value farewell{json::Object{}};
  farewell.set("reason", "drain");
  const std::string payload = json::serialize(farewell);
  std::vector<Reactor::ConnId> ids;
  {
    util::LockGuard lock(mutex_);
    ids.reserve(conns_.size());
    for (const auto& [id, state] : conns_) ids.push_back(id);
  }
  for (const Reactor::ConnId id : ids) {
    reactor_->send(id, FrameType::Shutdown, payload);
  }

  // Drain the strands with a deadline.  drain() blocks unconditionally, so
  // it runs on a helper thread; when the deadline forces the stop the helper
  // is detached — it finishes as soon as the stuck strand does, and the
  // process (this is the forced-exit path) is about to end anyway.
  struct DrainState {
    util::Mutex mutex;
    util::CondVar cv;
    bool done ADPM_GUARDED_BY(mutex) = false;
  };
  auto state = std::make_shared<DrainState>();
  std::thread drainer([this, state] {
    store_.drain();
    {
      util::LockGuard lock(state->mutex);
      state->done = true;
    }
    state->cv.notify_all();
  });
  bool drained;
  {
    const auto deadline = std::chrono::steady_clock::now() + drainDeadline;
    util::UniqueLock lock(state->mutex);
    while (!state->done &&
           state->cv.wait_until(lock, deadline) != std::cv_status::timeout) {
    }
    drained = state->done;
  }
  if (drained) {
    drainer.join();
  } else {
    drainer.detach();
  }

  // Stop the pumps and close every connection — flushing queued responses
  // and farewells when the drain completed, dropping them when it didn't.
  stopping_.store(true);
  {
    util::LockGuard lock(mutex_);
    for (auto& [id, connState] : conns_) connState.gate->cv.notify_all();
    ids.clear();
    for (const auto& [id, connState] : conns_) ids.push_back(id);
  }
  for (const Reactor::ConnId id : ids) {
    reactor_->close(id, /*flushFirst=*/drained);
  }
  const auto flushDeadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (reactor_->connectionCount() > 0 &&
         std::chrono::steady_clock::now() < flushDeadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  reactor_->stop();
  if (reactorThread_.joinable()) reactorThread_.join();
  // Reactor teardown destroyed the remaining connections, which retired
  // every pump; join them all.
  std::vector<std::unique_ptr<Pump>> pumps;
  {
    util::LockGuard lock(mutex_);
    pumps.swap(retiredPumps_);
  }
  for (auto& pump : pumps) {
    if (pump->thread.joinable()) pump->thread.join();
  }
  running_.store(false);
  return drained;
}

void Server::kill() {
  if (!running_.load()) return;
  draining_.store(true);
  stopping_.store(true);
  {
    util::LockGuard lock(mutex_);
    for (auto& [id, state] : conns_) state.gate->cv.notify_all();
  }
  reactor_->stop();
  if (reactorThread_.joinable()) reactorThread_.join();
  // In-flight strand commands capture `this` to send their responses; wait
  // for them (they finish promptly — their sends hit dead connections and
  // drop) so destroying the Server right after kill() is safe.
  store_.drain();
  std::vector<std::unique_ptr<Pump>> pumps;
  {
    util::LockGuard lock(mutex_);
    pumps.swap(retiredPumps_);
  }
  for (auto& pump : pumps) {
    if (pump->thread.joinable()) pump->thread.join();
  }
  running_.store(false);
}

}  // namespace adpm::net
