// Wire payload codecs: canonical-JSON request/response bodies.
//
// The wire payload of every frame is one canonical JSON document
// (util/json.hpp — insertion-ordered keys, %.17g doubles), built on the
// same codec the WAL journals operations with (dpm/operation_io.hpp).  A
// client's Apply payload and the server's journal record therefore carry
// the byte-identical operation encoding, and replay determinism extends
// across the process boundary: a remote client can maintain a local shadow
// manager and prove (by snapshot digest) that it is bit-identical to the
// server's session.
//
// Error taxonomy: failures round-trip as Error frames carrying the name of
// the util/error.hpp class ("Timeout", "Transient", "InvalidArgument",
// "Protocol", "Error"), so the client re-throws the *same type* the
// in-process API would have thrown — a remote caller's retry policy
// (CommandPolicy semantics) works unchanged.
#pragma once

#include <string>

#include "dpm/notification.hpp"
#include "dpm/operation.hpp"
#include "service/session.hpp"
#include "util/json.hpp"

namespace adpm::net {

// -- operation records (Apply responses) -------------------------------------

util::json::Value operationRecordToJson(const dpm::OperationRecord& record);
dpm::OperationRecord operationRecordFromJson(const util::json::Value& v);

// -- notifications (server-push frames) --------------------------------------

/// {"session":ID,"kind":NAME,"designer":D,"stage":N,
///  "constraint":C?,"property":P?,"text":T}
util::json::Value notificationToJson(const std::string& sessionId,
                                     const dpm::Notification& n);
dpm::Notification notificationFromJson(const util::json::Value& v);

dpm::NotificationKind notificationKindFromName(const std::string& name);

// -- snapshots ---------------------------------------------------------------

util::json::Value snapshotToJson(const service::SessionSnapshot& snap,
                                 bool withText);
service::SessionSnapshot snapshotFromJson(const util::json::Value& v);

// -- error taxonomy ----------------------------------------------------------

/// The wire name for an exception ("Timeout", "Transient",
/// "InvalidArgument", "Protocol", "Parse", "Error").
const char* wireErrorName(const std::exception& e) noexcept;

/// Rebuilds and throws the typed exception an Error frame encodes, so
/// remote failures are indistinguishable (by type) from local ones.
[[noreturn]] void throwWireError(const std::string& name,
                                 const std::string& message);

}  // namespace adpm::net
