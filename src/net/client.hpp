// Synchronous wire-protocol client.
//
// One Client is one TCP connection to a net::Server, offering the typed
// command surface of service::SessionStore over the wire: open / apply /
// guidance / verify / snapshot / subscribe / status / closeSession.  Calls
// are synchronous request/response; server pushes (Notification, Shutdown)
// that arrive while a response is awaited are dispatched inline, and pump()
// drains them between requests — so a subscriber never needs a second
// thread, and a single-threaded driver loop (the load generator, the CLI)
// stays single-threaded.
//
// Failure semantics mirror service::CommandPolicy from the far side of the
// wire: an Error frame re-throws the *typed* exception it encodes
// (net/protocol.hpp), and TransientError responses are retried here — with
// the same capped exponential backoff and seeded jitter the store uses —
// because a Transient failure is, by its contract, one where the command
// did NOT execute.  A ConnectionError is never silently retried: whether
// the in-flight command executed is unknown, and the caller must
// reconnect() and resynchronize from a snapshot (wire_load.cpp shows the
// stage-comparison resync).
//
// Not thread-safe: one Client, one driving thread.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "dpm/notification.hpp"
#include "dpm/operation.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "service/session.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace adpm::net {

class Client {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    int connectTimeoutMs = 5000;
    /// Per-attempt deadline for one response (TimeoutError past it).
    std::chrono::milliseconds requestTimeout{10000};
    /// CommandPolicy mirror: total attempts for TransientError responses.
    unsigned maxAttempts = 3;
    std::chrono::microseconds backoffBase{200};
    std::chrono::microseconds backoffCap{50000};
    double jitter = 0.5;
    std::uint64_t jitterSeed = 0x5eed;
    /// connectWithRetry(): total connection attempts before giving up —
    /// rides out a supervised server restart (crash → respawn) without the
    /// driver seeing more than latency.  1 = plain connect().
    unsigned reconnectAttempts = 1;
    /// Backoff before reconnect attempt k (1-based) is base·2^(k-1) capped
    /// at `reconnectBackoffCap` (no jitter — reconnects race a restarting
    /// listener, not each other).
    std::chrono::milliseconds reconnectBackoffBase{50};
    std::chrono::milliseconds reconnectBackoffCap{2000};
  };

  using NotificationHandler =
      std::function<void(const std::string& sessionId,
                         const dpm::Notification& notification)>;

  explicit Client(Options options);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects (or reconnects — any previous socket is dropped first, and
  /// the shutdown flag resets).  Throws ConnectionError.
  void connect();

  /// connect() with up to Options::reconnectAttempts tries under capped
  /// exponential backoff; throws the *last* ConnectionError when they are
  /// exhausted.  Reconnecting never resynchronizes state by itself — the
  /// caller still compares a fresh snapshot() against its shadow (the
  /// ResyncRequired dance in wire_load.cpp).
  void connectWithRetry();
  void close();
  bool connected() const noexcept { return fd_.valid(); }

  /// The server announced it is draining; submit no further mutations.
  bool serverShuttingDown() const noexcept { return shutdownSeen_; }

  /// Handler for pushed notifications (invoked inline from pump() and from
  /// response waits).  Set before subscribe().
  void onNotification(NotificationHandler handler) {
    handler_ = std::move(handler);
  }

  // -- typed commands ----------------------------------------------------------

  struct OpenResult {
    std::string session;
    bool adpm = true;
    /// The server's canonical DDDL rendering of the scenario — parse this
    /// (not your original text) to build a bit-identical local shadow.
    std::string dddl;
  };
  OpenResult openScenario(const std::string& session,
                          const std::string& scenario, bool adpm);
  OpenResult openDddl(const std::string& session, const std::string& dddl,
                      bool adpm);

  dpm::OperationRecord apply(const std::string& session,
                             const dpm::Operation& op);

  struct GuidanceSummary {
    bool present = false;
    std::size_t properties = 0;
    std::size_t violated = 0;
    std::size_t extraEvaluations = 0;
  };
  GuidanceSummary guidance(const std::string& session);

  struct VerifySummary {
    std::vector<constraint::ConstraintId> violated;
    std::size_t evaluations = 0;
  };
  VerifySummary verify(const std::string& session);

  service::SessionSnapshot snapshot(const std::string& session, bool withText);

  void subscribe(const std::string& session, const std::string& designer);

  /// The server's Status document (sessions, store/bus/server counters,
  /// per-subscriber queue stats).
  util::json::Value status();

  void closeSession(const std::string& session);

  /// Drains pushed frames, waiting up to waitMs (0 = only what is already
  /// buffered/readable) for the first one.  Returns frames dispatched.
  std::size_t pump(int waitMs);

  // -- counters ---------------------------------------------------------------

  std::size_t transientRetries() const noexcept { return transientRetries_; }
  std::size_t notificationsReceived() const noexcept { return notifications_; }
  /// connectWithRetry() attempts that failed before one succeeded.
  std::size_t reconnectRetries() const noexcept { return reconnectRetries_; }

 private:
  util::json::Value request(FrameType type, util::json::Value body);
  util::json::Value awaitResponse(double reqId,
                                  std::chrono::steady_clock::time_point deadline);
  void writeAll(const std::string& bytes);
  /// One complete frame; throws TimeoutError at the deadline and
  /// ConnectionError when the stream dies.
  Frame readFrame(std::chrono::steady_clock::time_point deadline);
  /// Dispatches a pushed frame; false when the frame is not a push.
  bool handlePush(const Frame& frame);
  void backoffBeforeRetry(unsigned attempt);
  [[noreturn]] void failConnection(const std::string& why);

  Options options_;
  ScopedFd fd_;
  FrameParser parser_;
  double nextReq_ = 0;
  NotificationHandler handler_;
  bool shutdownSeen_ = false;
  std::size_t transientRetries_ = 0;
  std::size_t notifications_ = 0;
  std::size_t reconnectRetries_ = 0;
  util::Rng rng_;
};

}  // namespace adpm::net
