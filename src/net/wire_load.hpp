// Load driver over the wire: TeamSim designers as remote clients.
//
// The in-process load generator (service/load.hpp) drives sessions on the
// store's own strands; this driver moves the clients to the far side of a
// TCP connection.  Each session gets its own connection and its own thread:
// the thread keeps a *local shadow* DesignProcessManager — built from the
// canonical DDDL the Open response returns — proposes operations with a
// TeamClient against the shadow, sends each operation as an Apply frame,
// and executes it locally only after the server acknowledged it.  Because δ
// is deterministic, the shadow and the server session walk bit-identical
// state trajectories, and the final snapshot-digest comparison *proves* it
// (digestMismatches counts any divergence — the cross-process determinism
// check).
//
// Failure handling exercises the full resilience surface: Transient errors
// are retried inside the Client (CommandPolicy mirrored client-side); a
// ConnectionError triggers reconnect-and-resync — the server's snapshot
// stage tells the driver whether the in-flight operation committed
// (stage == local+1 → catch the shadow up) or not (stage == local → resend)
// — and ResyncRequired pushes are counted as the degraded-delivery signal
// they are.
//
// Used by the `--connect` mode of the session-service CLI (one process per
// driver for the multi-process loopback workload) and by bench_service's
// clients-over-the-wire series.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "net/client.hpp"
#include "teamsim/options.hpp"

namespace adpm::net {

struct WireLoadOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Sessions driven by this process (one connection + thread each).
  std::size_t sessions = 4;
  /// Per-designer simulation knobs; session i runs with seed sim.seed + i.
  teamsim::SimulationOptions sim{};
  std::size_t maxOperationsPerSession = 20000;
  /// Subscribe one seat per designer and pump pushes between applies.
  bool subscribe = true;
  /// Session id prefix ("<prefix><i>") — must be unique per driver process.
  std::string idPrefix = "wire-";
  /// Scenario source: DDDL text sent with Open ('dddl'), or a server-side
  /// scenario name ('scenario') when dddl is empty.
  std::string dddl;
  std::string scenario;
  Client::Options client{};
  /// Compare the shadow digest against the server's final snapshot digest.
  bool verifyDigests = true;
  /// Reconnect-and-resync attempts per session before giving up.
  unsigned maxReconnects = 3;
};

struct WireLoadReport {
  std::size_t sessions = 0;
  std::size_t completedSessions = 0;  ///< designComplete on the shadow
  std::size_t operations = 0;         ///< applies acknowledged by the server
  std::size_t notificationsReceived = 0;
  std::size_t resyncsRequired = 0;  ///< ResyncRequired pushes (degraded mode)
  std::size_t digestMismatches = 0;
  std::size_t reconnects = 0;
  std::size_t transientRetries = 0;
  std::size_t failedSessions = 0;  ///< gave up (connection/protocol errors)
  /// why the first failed session gave up — one sample beats a bare count
  /// when a fleet fails far from a debugger (CI drills, chaos runs)
  std::string firstFailure;
  double wallSeconds = 0.0;
  double opsPerSecond = 0.0;
  /// Mean request/response round trip of the Apply frames.
  double applyRttMeanMicros = 0.0;
};

/// Drives `options.sessions` remote sessions to completion (or the cap).
/// Blocks until every driver thread finished.  Sessions stay open on the
/// server (snapshot/recover them as needed).
WireLoadReport runWireLoad(const WireLoadOptions& options);

}  // namespace adpm::net
