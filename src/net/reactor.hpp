// Non-blocking accept/read/write loop over poll(2).
//
// One Reactor owns one listening socket and all of its accepted
// connections.  run() turns the calling thread into the reactor thread:
// every socket is non-blocking, poll() multiplexes readiness, incoming
// bytes are fed through a FrameParser per connection, and complete frames
// are handed to the onFrame handler *on the reactor thread*.  Outbound
// frames go through send(), which is thread-safe — session strands and
// subscription pumps call it from pool threads; the bytes are queued on the
// connection's write buffer and the reactor is woken through a self-pipe to
// flush them.
//
// Backpressure is explicit: queuedBytes(conn) reports the unflushed
// outbound bytes, and when a buffer that had grown past `writeHighWater`
// drains back below `writeLowWater` the onWritable handler fires — the
// subscription pumps park on that signal, which stalls their bus queues,
// which trips the NotificationBus's degraded mode (service/bus.hpp).  A
// slow consumer therefore costs one coalesced ResyncRequired marker, never
// unbounded server memory and never a parked session strand.
//
// A protocol error (malformed frame) closes the connection after an
// optional farewell frame: a corrupt byte stream has no recoverable frame
// boundary.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "net/frame.hpp"
#include "net/socket.hpp"
#include "util/thread_annotations.hpp"

namespace adpm::net {

class Reactor {
 public:
  using ConnId = std::uint64_t;

  struct Options {
    /// Outbound bytes above which senders should pause (see queuedBytes).
    std::size_t writeHighWater = 1u << 20;
    /// Drain level at which onWritable fires for a previously-full conn.
    std::size_t writeLowWater = 64u << 10;
    std::size_t maxFramePayload = kMaxFramePayload;
  };

  struct Handlers {
    /// A connection was accepted (reactor thread).
    std::function<void(ConnId)> onAccept;
    /// One complete frame arrived (reactor thread).
    std::function<void(ConnId, Frame&&)> onFrame;
    /// The connection is gone — peer closed, hard error, protocol error, or
    /// explicit close() (reactor thread; the conn id is already invalid).
    std::function<void(ConnId, const std::string& reason)> onClose;
    /// The write buffer drained below the low-water mark after having been
    /// above the high-water mark (reactor thread).
    std::function<void(ConnId)> onWritable;
  };

  Reactor(Options options, Handlers handlers);
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Binds and listens; returns the bound port (useful with port 0).
  std::uint16_t listen(const std::string& host, std::uint16_t port);

  /// Stops accepting new connections (existing ones live on).  Thread-safe.
  void stopListening();

  /// Runs the event loop on the calling thread until stop().
  void run();

  /// Wakes and terminates run().  Thread-safe, idempotent.
  void stop();

  /// Queues one frame on the connection.  Thread-safe.  Returns false when
  /// the connection is unknown or already closing (the frame is dropped —
  /// the peer is gone, there is nobody to backpressure).
  bool send(ConnId conn, FrameType type, std::string_view payload);

  /// Unflushed outbound bytes (0 for unknown connections).  Thread-safe.
  std::size_t queuedBytes(ConnId conn) const;

  /// Closes a connection, flushing already-queued frames first when
  /// `flushFirst` (no further reads either way).  Thread-safe.
  void close(ConnId conn, bool flushFirst);

  std::size_t connectionCount() const;

 private:
  struct Conn {
    ScopedFd fd;
    FrameParser parser;
    std::string outbuf;        // unsent bytes (suffix of queued frames)
    std::size_t outPos = 0;    // consumed prefix of outbuf
    bool closing = false;      // no reads; flush then close
    bool wasAboveHighWater = false;
  };

  void wakeup();
  void handleAccept();
  /// Returns false when the connection died (and was erased).
  bool handleReadable(ConnId id);
  bool handleWritable(ConnId id);
  void destroyConn(ConnId id, const std::string& reason);
  std::size_t pendingOf(const Conn& c) const {
    return c.outbuf.size() - c.outPos;
  }

  Options options_;
  Handlers handlers_;

  mutable util::Mutex mutex_;
  ScopedFd listenFd_ ADPM_GUARDED_BY(mutex_);
  /// Self-pipe ends; written once in the constructor, read-only after.
  ScopedFd wakeRead_, wakeWrite_;
  /// The map is guarded; a Conn's *fields* (parser, outbuf, ...) are owned
  /// by the reactor thread once accepted — pointers that escape the lock
  /// are only dereferenced on that thread (see handleReadable).
  std::map<ConnId, std::unique_ptr<Conn>> conns_ ADPM_GUARDED_BY(mutex_);
  ConnId nextId_ ADPM_GUARDED_BY(mutex_) = 1;
  bool stop_ ADPM_GUARDED_BY(mutex_) = false;
  bool running_ ADPM_GUARDED_BY(mutex_) = false;
};

}  // namespace adpm::net
