#include "net/reactor.hpp"

#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#include <vector>

#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/json.hpp"

namespace adpm::net {

Reactor::Reactor(Options options, Handlers handlers)
    : options_(options), handlers_(std::move(handlers)) {
  int fds[2];
  if (::pipe2(fds, O_NONBLOCK | O_CLOEXEC) != 0) {
    throw adpm::Error(std::string("pipe2(): ") + std::strerror(errno));
  }
  wakeRead_ = ScopedFd(fds[0]);
  wakeWrite_ = ScopedFd(fds[1]);
}

Reactor::~Reactor() {
  // The owner must have stopped and joined the reactor thread; destroying
  // the fds here tears down whatever connections remain.
}

std::uint16_t Reactor::listen(const std::string& host, std::uint16_t port) {
  ScopedFd fd = listenTcp(host, port);
  setNonBlocking(fd.get(), true);
  const std::uint16_t bound = localPort(fd.get());
  util::LockGuard lock(mutex_);
  listenFd_ = std::move(fd);
  return bound;
}

void Reactor::stopListening() {
  {
    util::LockGuard lock(mutex_);
    listenFd_.reset();
  }
  wakeup();
}

void Reactor::stop() {
  {
    util::LockGuard lock(mutex_);
    stop_ = true;
  }
  wakeup();
}

void Reactor::wakeup() {
  const char byte = 1;
  // Full pipe is fine — the reactor is already due to wake.
  (void)!::write(wakeWrite_.get(), &byte, 1);
}

bool Reactor::send(ConnId conn, FrameType type, std::string_view payload) {
  const std::string bytes = encodeFrame(type, payload);
  {
    util::LockGuard lock(mutex_);
    const auto it = conns_.find(conn);
    if (it == conns_.end() || it->second->closing) return false;
    Conn& c = *it->second;
    c.outbuf.append(bytes);
    if (pendingOf(c) >= options_.writeHighWater) c.wasAboveHighWater = true;
  }
  wakeup();
  return true;
}

std::size_t Reactor::queuedBytes(ConnId conn) const {
  util::LockGuard lock(mutex_);
  const auto it = conns_.find(conn);
  return it == conns_.end() ? 0 : pendingOf(*it->second);
}

void Reactor::close(ConnId conn, bool flushFirst) {
  {
    util::LockGuard lock(mutex_);
    const auto it = conns_.find(conn);
    if (it == conns_.end()) return;
    Conn& c = *it->second;
    c.closing = true;
    if (!flushFirst) {
      c.outbuf.clear();
      c.outPos = 0;
    }
  }
  wakeup();
}

std::size_t Reactor::connectionCount() const {
  util::LockGuard lock(mutex_);
  return conns_.size();
}

void Reactor::destroyConn(ConnId id, const std::string& reason) {
  std::unique_ptr<Conn> dead;
  {
    util::LockGuard lock(mutex_);
    const auto it = conns_.find(id);
    if (it == conns_.end()) return;
    dead = std::move(it->second);
    conns_.erase(it);
  }
  dead.reset();  // closes the fd
  if (handlers_.onClose) handlers_.onClose(id, reason);
}

void Reactor::handleAccept() {
  for (;;) {
    int fd;
    {
      util::LockGuard lock(mutex_);
      if (!listenFd_.valid()) return;
      fd = ::accept(listenFd_.get(), nullptr, nullptr);
    }
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or a transient accept error: nothing to take now
    }
    if (ADPM_FAULT_POINT("net.accept") != util::FaultAction::None) {
      ::close(fd);  // injected accept failure: the client sees a reset
      continue;
    }
    setNonBlocking(fd, true);
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    ConnId id;
    {
      util::LockGuard lock(mutex_);
      id = nextId_++;
      auto conn = std::make_unique<Conn>();
      conn->fd = ScopedFd(fd);
      conn->parser = FrameParser(options_.maxFramePayload);
      conns_.emplace(id, std::move(conn));
    }
    if (handlers_.onAccept) handlers_.onAccept(id);
  }
}

bool Reactor::handleReadable(ConnId id) {
  int fd = -1;
  Conn* c = nullptr;
  {
    util::LockGuard lock(mutex_);
    const auto it = conns_.find(id);
    if (it == conns_.end() || it->second->closing) return true;
    c = it->second.get();
    fd = c->fd.get();
  }
  char buf[64 * 1024];
  IoResult r;
  try {
    r = readSome(fd, buf, sizeof buf);
  } catch (const ConnectionError& e) {
    destroyConn(id, e.what());
    return false;
  }
  if (r.status == IoStatus::WouldBlock) return true;
  if (r.status == IoStatus::Eof) {
    destroyConn(id, "peer closed the connection");
    return false;
  }
  // The parser is only ever touched on the reactor thread, and connections
  // are only erased on the reactor thread, so `c` stays valid across the
  // handler calls below even though the lock is released.
  c->parser.feed(buf, r.n);
  for (;;) {
    std::optional<Frame> frame;
    try {
      frame = c->parser.next();
    } catch (const ProtocolError& e) {
      // No recoverable frame boundary exists past this point: tell the peer
      // why (best effort) and drop the connection.
      util::json::Value err{util::json::Object{}};
      err.set("error", "Protocol");
      err.set("message", std::string(e.what()));
      send(id, FrameType::Error, util::json::serialize(err));
      close(id, /*flushFirst=*/true);
      return true;
    }
    if (!frame) return true;
    if (handlers_.onFrame) handlers_.onFrame(id, std::move(*frame));
    {
      // The handler may have initiated a close; stop parsing if so.
      util::LockGuard lock(mutex_);
      const auto it = conns_.find(id);
      if (it == conns_.end() || it->second->closing) return true;
    }
  }
}

bool Reactor::handleWritable(ConnId id) {
  std::string failure;
  bool fireWritable = false;
  bool closeNow = false;
  {
    util::LockGuard lock(mutex_);
    const auto it = conns_.find(id);
    if (it == conns_.end()) return true;
    Conn& c = *it->second;
    while (pendingOf(c) > 0) {
      IoResult r;
      try {
        r = writeSome(c.fd.get(), c.outbuf.data() + c.outPos, pendingOf(c));
      } catch (const ConnectionError& e) {
        failure = e.what();
        break;
      }
      if (r.status != IoStatus::Ok || r.n == 0) break;
      c.outPos += r.n;
    }
    if (failure.empty()) {
      if (pendingOf(c) == 0) {
        c.outbuf.clear();
        c.outPos = 0;
      } else if (c.outPos > 256 * 1024) {
        c.outbuf.erase(0, c.outPos);
        c.outPos = 0;
      }
      if (c.wasAboveHighWater && pendingOf(c) <= options_.writeLowWater) {
        c.wasAboveHighWater = false;
        fireWritable = true;
      }
      closeNow = c.closing && pendingOf(c) == 0;
    }
  }
  if (!failure.empty()) {
    destroyConn(id, failure);
    return false;
  }
  if (fireWritable && handlers_.onWritable) handlers_.onWritable(id);
  if (closeNow) {
    destroyConn(id, "closed after flush");
    return false;
  }
  return true;
}

void Reactor::run() {
  {
    util::LockGuard lock(mutex_);
    running_ = true;
  }
  std::vector<pollfd> fds;
  std::vector<ConnId> ids;  // ids[i] corresponds to fds[i + fixed]
  for (;;) {
    // Retire connections whose flush completed while we were busy.
    std::vector<ConnId> retire;
    {
      util::LockGuard lock(mutex_);
      if (stop_) break;
      for (const auto& [id, conn] : conns_) {
        if (conn->closing && pendingOf(*conn) == 0) retire.push_back(id);
      }
    }
    for (const ConnId id : retire) destroyConn(id, "closed");

    fds.clear();
    ids.clear();
    int listenIdx = -1;
    {
      util::LockGuard lock(mutex_);
      fds.push_back({wakeRead_.get(), POLLIN, 0});
      if (listenFd_.valid()) {
        listenIdx = static_cast<int>(fds.size());
        fds.push_back({listenFd_.get(), POLLIN, 0});
      }
      for (const auto& [id, conn] : conns_) {
        short events = 0;
        if (!conn->closing) events |= POLLIN;
        if (pendingOf(*conn) > 0) events |= POLLOUT;
        if (events == 0) continue;
        ids.push_back(id);
        fds.push_back({conn->fd.get(), events, 0});
      }
    }

    const int rc = ::poll(fds.data(), fds.size(), -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw adpm::Error(std::string("reactor poll(): ") +
                        std::strerror(errno));
    }

    if (fds[0].revents & POLLIN) {
      char drain[256];
      while (::read(wakeRead_.get(), drain, sizeof drain) > 0) {
      }
    }
    if (listenIdx >= 0 && (fds[listenIdx].revents & POLLIN)) handleAccept();

    const std::size_t fixed = fds.size() - ids.size();
    for (std::size_t i = 0; i < ids.size(); ++i) {
      const short revents = fds[fixed + i].revents;
      if (revents == 0) continue;
      if (revents & POLLOUT) {
        if (!handleWritable(ids[i])) continue;
      }
      if (revents & (POLLIN | POLLERR | POLLHUP)) {
        handleReadable(ids[i]);
      }
    }
  }
  // Stopped: tear down every remaining connection.
  std::vector<ConnId> leftovers;
  {
    util::LockGuard lock(mutex_);
    for (const auto& [id, conn] : conns_) leftovers.push_back(id);
  }
  for (const ConnId id : leftovers) destroyConn(id, "reactor stopped");
  util::LockGuard lock(mutex_);
  running_ = false;
}

}  // namespace adpm::net
