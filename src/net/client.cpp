#include "net/client.hpp"

#include <algorithm>
#include <cmath>
#include <thread>

#include "dpm/operation_io.hpp"
#include "net/protocol.hpp"
#include "util/error.hpp"

namespace adpm::net {

namespace json = util::json;
using Clock = std::chrono::steady_clock;

Client::Client(Options options)
    : options_(std::move(options)), rng_(options_.jitterSeed) {}

Client::~Client() { close(); }

void Client::connect() {
  close();
  fd_ = connectTcp(options_.host, options_.port, options_.connectTimeoutMs);
  parser_ = FrameParser();
  shutdownSeen_ = false;
}

void Client::connectWithRetry() {
  const unsigned attempts = std::max(1u, options_.reconnectAttempts);
  std::chrono::milliseconds backoff = options_.reconnectBackoffBase;
  for (unsigned attempt = 1;; ++attempt) {
    try {
      connect();
      return;
    } catch (const ConnectionError&) {
      if (attempt >= attempts) throw;
      ++reconnectRetries_;
      if (backoff.count() > 0) std::this_thread::sleep_for(backoff);
      backoff = std::min(backoff * 2, options_.reconnectBackoffCap);
    }
  }
}

void Client::close() { fd_.reset(); }

void Client::failConnection(const std::string& why) {
  close();
  throw ConnectionError(why);
}

// -- transport ----------------------------------------------------------------

void Client::writeAll(const std::string& bytes) {
  if (!fd_.valid()) failConnection("client is not connected");
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    IoResult r;
    try {
      r = writeSome(fd_.get(), bytes.data() + sent, bytes.size() - sent);
    } catch (const ConnectionError&) {
      close();
      throw;
    }
    if (r.status == IoStatus::WouldBlock) {
      // The socket is blocking; WouldBlock can only mean a transient stall.
      waitFd(fd_.get(), /*forWrite=*/true, /*timeoutMs=*/-1);
      continue;
    }
    sent += r.n;
  }
}

Frame Client::readFrame(Clock::time_point deadline) {
  for (;;) {
    std::optional<Frame> frame;
    try {
      frame = parser_.next();
    } catch (const ProtocolError&) {
      close();  // the stream cannot be resynchronized
      throw;
    }
    if (frame) return std::move(*frame);
    if (!fd_.valid()) failConnection("client is not connected");
    const auto now = Clock::now();
    if (now >= deadline) {
      throw adpm::TimeoutError("no response from " + options_.host +
                               " within the request timeout");
    }
    const auto leftMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - now)
                            .count();
    bool readable;
    try {
      readable = waitFd(fd_.get(), /*forWrite=*/false,
                        static_cast<int>(std::max<long long>(1, leftMs)));
    } catch (const ConnectionError&) {
      close();
      throw;
    }
    if (!readable) continue;  // deadline re-checked at loop top
    char buf[64 * 1024];
    IoResult r;
    try {
      r = readSome(fd_.get(), buf, sizeof buf);
    } catch (const ConnectionError&) {
      close();
      throw;
    }
    if (r.status == IoStatus::Eof) {
      failConnection("server closed the connection");
    }
    if (r.status == IoStatus::Ok) parser_.feed(buf, r.n);
  }
}

bool Client::handlePush(const Frame& frame) {
  switch (frame.type) {
    case FrameType::Notification: {
      ++notifications_;
      if (handler_) {
        const json::Value v = json::parse(frame.payload);
        handler_(v.at("session").asString(), notificationFromJson(v));
      }
      return true;
    }
    case FrameType::Shutdown:
      shutdownSeen_ = true;
      return true;
    default:
      return false;
  }
}

std::size_t Client::pump(int waitMs) {
  std::size_t dispatched = 0;
  auto deadline = Clock::now() + std::chrono::milliseconds(waitMs);
  for (;;) {
    // Drain everything already buffered without blocking.
    for (;;) {
      std::optional<Frame> frame;
      try {
        frame = parser_.next();
      } catch (const ProtocolError&) {
        close();
        throw;
      }
      if (!frame) break;
      if (handlePush(*frame)) {
        ++dispatched;
      }
      // A response frame here is stale (its request timed out); drop it.
    }
    if (!fd_.valid()) return dispatched;
    const auto now = Clock::now();
    const auto leftMs =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count();
    if (dispatched > 0 || leftMs <= 0) {
      // One non-blocking sweep for bytes that raced the drain above.
      if (!waitFd(fd_.get(), /*forWrite=*/false, 0)) return dispatched;
    } else if (!waitFd(fd_.get(), /*forWrite=*/false,
                       static_cast<int>(leftMs))) {
      return dispatched;
    }
    char buf[64 * 1024];
    IoResult r;
    try {
      r = readSome(fd_.get(), buf, sizeof buf);
    } catch (const ConnectionError&) {
      close();
      throw;
    }
    if (r.status == IoStatus::Eof) {
      close();
      return dispatched;
    }
    if (r.status == IoStatus::Ok) parser_.feed(buf, r.n);
  }
}

// -- request/response ---------------------------------------------------------

util::json::Value Client::awaitResponse(double reqId,
                                        Clock::time_point deadline) {
  for (;;) {
    Frame frame = readFrame(deadline);
    if (handlePush(frame)) continue;
    if (frame.type != FrameType::Result && frame.type != FrameType::Error) {
      failConnection(std::string("unexpected frame type ") +
                     frameTypeName(frame.type) + " while awaiting a response");
    }
    json::Value v;
    try {
      v = json::parse(frame.payload);
    } catch (const std::exception& e) {
      failConnection(std::string("unparseable response payload: ") + e.what());
    }
    if (frame.type == FrameType::Error) {
      const json::Value* rf = v.find("req");
      const json::Value* name = v.find("error");
      const json::Value* message = v.find("message");
      const std::string text =
          message != nullptr ? message->asString() : "remote error";
      if (rf == nullptr) {
        // An uncorrelated error is a protocol-level farewell: the server is
        // about to drop this connection.
        close();
        throw ProtocolError(text);
      }
      if (rf->asNumber() != reqId) continue;  // stale response: drop
      throwWireError(name != nullptr ? name->asString() : "Error", text);
    }
    const json::Value* rf = v.find("req");
    if (rf == nullptr || rf->asNumber() != reqId) continue;  // stale: drop
    return v;
  }
}

util::json::Value Client::request(FrameType type, json::Value body) {
  const double reqId = ++nextReq_;
  body.set("req", reqId);
  const std::string bytes = encodeFrame(type, json::serialize(body));
  for (unsigned attempt = 1;; ++attempt) {
    try {
      writeAll(bytes);
      return awaitResponse(reqId, Clock::now() + options_.requestTimeout);
    } catch (const adpm::TransientError&) {
      // The command did not execute (that is what Transient means on the
      // wire); retry with the store's backoff policy, client-side.
      if (attempt >= options_.maxAttempts) throw;
      ++transientRetries_;
      backoffBeforeRetry(attempt);
    }
  }
}

void Client::backoffBeforeRetry(unsigned attempt) {
  double micros = static_cast<double>(options_.backoffBase.count());
  for (unsigned i = 1; i < attempt; ++i) micros *= 2.0;
  micros = std::min(micros, static_cast<double>(options_.backoffCap.count()));
  double factor = 1.0;
  if (options_.jitter > 0.0) {
    factor = rng_.uniform(1.0 - options_.jitter, 1.0 + options_.jitter);
  }
  const auto delay =
      std::chrono::microseconds(static_cast<std::int64_t>(micros * factor));
  if (delay.count() > 0) std::this_thread::sleep_for(delay);
}

// -- typed commands -----------------------------------------------------------

namespace {

std::size_t asCount(const json::Value& v) {
  const double n = v.asNumber();
  if (n < 0 || n != std::floor(n)) {
    throw adpm::InvalidArgumentError("wire json: bad count");
  }
  return static_cast<std::size_t>(n);
}

}  // namespace

Client::OpenResult Client::openScenario(const std::string& session,
                                        const std::string& scenario,
                                        bool adpm) {
  json::Value body{json::Object{}};
  body.set("session", session);
  body.set("scenario", scenario);
  body.set("adpm", adpm);
  const json::Value v = request(FrameType::Open, std::move(body));
  return OpenResult{v.at("session").asString(), v.at("adpm").asBool(),
                    v.at("dddl").asString()};
}

Client::OpenResult Client::openDddl(const std::string& session,
                                    const std::string& dddl, bool adpm) {
  json::Value body{json::Object{}};
  body.set("session", session);
  body.set("dddl", dddl);
  body.set("adpm", adpm);
  const json::Value v = request(FrameType::Open, std::move(body));
  return OpenResult{v.at("session").asString(), v.at("adpm").asBool(),
                    v.at("dddl").asString()};
}

dpm::OperationRecord Client::apply(const std::string& session,
                                   const dpm::Operation& op) {
  json::Value body{json::Object{}};
  body.set("session", session);
  body.set("op", dpm::operationToJson(op));
  const json::Value v = request(FrameType::Apply, std::move(body));
  return operationRecordFromJson(v.at("record"));
}

Client::GuidanceSummary Client::guidance(const std::string& session) {
  json::Value body{json::Object{}};
  body.set("session", session);
  const json::Value v = request(FrameType::Guidance, std::move(body));
  GuidanceSummary summary;
  summary.present = v.at("present").asBool();
  if (summary.present) {
    summary.properties = asCount(v.at("properties"));
    summary.violated = asCount(v.at("violated"));
    summary.extraEvaluations = asCount(v.at("extraEvaluations"));
  }
  return summary;
}

Client::VerifySummary Client::verify(const std::string& session) {
  json::Value body{json::Object{}};
  body.set("session", session);
  const json::Value v = request(FrameType::Verify, std::move(body));
  VerifySummary summary;
  for (const json::Value& id : v.at("violated").asArray()) {
    summary.violated.push_back(
        constraint::ConstraintId{static_cast<std::uint32_t>(asCount(id))});
  }
  summary.evaluations = asCount(v.at("evaluations"));
  return summary;
}

service::SessionSnapshot Client::snapshot(const std::string& session,
                                          bool withText) {
  json::Value body{json::Object{}};
  body.set("session", session);
  body.set("text", withText);
  const json::Value v = request(FrameType::Snapshot, std::move(body));
  return snapshotFromJson(v.at("snapshot"));
}

void Client::subscribe(const std::string& session,
                       const std::string& designer) {
  json::Value body{json::Object{}};
  body.set("session", session);
  body.set("designer", designer);
  (void)request(FrameType::Subscribe, std::move(body));
}

util::json::Value Client::status() {
  return request(FrameType::Status, json::Value{json::Object{}});
}

void Client::closeSession(const std::string& session) {
  json::Value body{json::Object{}};
  body.set("session", session);
  (void)request(FrameType::CloseSession, std::move(body));
}

}  // namespace adpm::net
