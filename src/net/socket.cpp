#include "net/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "net/frame.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace adpm::net {

namespace {

[[noreturn]] void throwErrno(const std::string& what) {
  throw ConnectionError(what + ": " + std::strerror(errno));
}

sockaddr_in resolveV4(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string node = host.empty() ? "0.0.0.0" : host;
  if (node == "localhost") {
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  } else if (inet_pton(AF_INET, node.c_str(), &addr.sin_addr) != 1) {
    // Numeric IPv4 only: the service targets explicit loopback/LAN
    // addresses; name resolution would drag in blocking DNS.
    throw adpm::InvalidArgumentError("cannot parse IPv4 address '" + node +
                                     "'");
  }
  return addr;
}

}  // namespace

void ScopedFd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

ScopedFd listenTcp(const std::string& host, std::uint16_t port) {
  const sockaddr_in addr = resolveV4(host, port);
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throwErrno("socket()");
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    throwErrno("bind(" + host + ":" + std::to_string(port) + ")");
  }
  if (::listen(fd.get(), 128) != 0) throwErrno("listen()");
  return fd;
}

std::uint16_t localPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    throwErrno("getsockname()");
  }
  return ntohs(addr.sin_port);
}

ScopedFd connectTcp(const std::string& host, std::uint16_t port,
                    int timeoutMs) {
  const sockaddr_in addr = resolveV4(host, port);
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throwErrno("socket()");
  setNonBlocking(fd.get(), true);
  int rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                     sizeof addr);
  if (rc != 0) {
    if (errno != EINPROGRESS) {
      throwErrno("connect(" + host + ":" + std::to_string(port) + ")");
    }
    if (!waitFd(fd.get(), /*forWrite=*/true, timeoutMs)) {
      throw ConnectionError("connect(" + host + ":" + std::to_string(port) +
                            ") timed out after " + std::to_string(timeoutMs) +
                            "ms");
    }
    int err = 0;
    socklen_t len = sizeof err;
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
        err != 0) {
      throw ConnectionError("connect(" + host + ":" + std::to_string(port) +
                            ") failed: " + std::strerror(err ? err : errno));
    }
  }
  setNonBlocking(fd.get(), false);
  int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

void setNonBlocking(int fd, bool nonBlocking) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) throwErrno("fcntl(F_GETFL)");
  const int want = nonBlocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, want) != 0) throwErrno("fcntl(F_SETFL)");
}

IoResult readSome(int fd, char* buf, std::size_t cap) {
  if (ADPM_FAULT_POINT("net.read") != util::FaultAction::None) {
    throw ConnectionError("injected net.read failure");
  }
  for (;;) {
    const ssize_t n = ::read(fd, buf, cap);
    if (n > 0) return {IoStatus::Ok, static_cast<std::size_t>(n)};
    if (n == 0) return {IoStatus::Eof, 0};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {IoStatus::WouldBlock, 0};
    }
    throwErrno("read()");
  }
}

IoResult writeSome(int fd, const char* buf, std::size_t n) {
  const util::FaultAction fault = ADPM_FAULT_POINT("net.write");
  if (fault == util::FaultAction::ShortWrite && n > 1) {
    // Push a prefix onto the wire, then die: the peer sees a torn frame —
    // the tear a mid-write crash leaves, which its parser must survive.
    (void)::send(fd, buf, n / 2, MSG_NOSIGNAL);
    throw ConnectionError("injected net.write short-write failure");
  }
  if (fault != util::FaultAction::None) {
    throw ConnectionError("injected net.write failure");
  }
  for (;;) {
    const ssize_t w = ::send(fd, buf, n, MSG_NOSIGNAL);
    if (w >= 0) return {IoStatus::Ok, static_cast<std::size_t>(w)};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {IoStatus::WouldBlock, 0};
    }
    throwErrno("write()");
  }
}

bool waitFd(int fd, bool forWrite, int timeoutMs) {
  pollfd p{};
  p.fd = fd;
  p.events = forWrite ? POLLOUT : POLLIN;
  for (;;) {
    const int rc = ::poll(&p, 1, timeoutMs);
    if (rc > 0) {
      if (p.revents & POLLNVAL) {
        throw ConnectionError("poll() on a closed descriptor");
      }
      if (p.revents & POLLERR) {
        int err = 0;
        socklen_t len = sizeof err;
        (void)::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
        throw ConnectionError(std::string("socket error while waiting: ") +
                              (err != 0 ? std::strerror(err) : "unknown"));
      }
      return true;  // readable, writable, or HUP (read returns Eof)
    }
    if (rc == 0) return false;
    if (errno == EINTR) continue;
    throwErrno("poll()");
  }
}

}  // namespace adpm::net
