#include "net/frame.hpp"

namespace adpm::net {

const char* frameTypeName(FrameType t) noexcept {
  switch (t) {
    case FrameType::Open:
      return "Open";
    case FrameType::Apply:
      return "Apply";
    case FrameType::Guidance:
      return "Guidance";
    case FrameType::Verify:
      return "Verify";
    case FrameType::Snapshot:
      return "Snapshot";
    case FrameType::Subscribe:
      return "Subscribe";
    case FrameType::Status:
      return "Status";
    case FrameType::CloseSession:
      return "CloseSession";
    case FrameType::Result:
      return "Result";
    case FrameType::Error:
      return "Error";
    case FrameType::Notification:
      return "Notification";
    case FrameType::Shutdown:
      return "Shutdown";
  }
  return "Unknown";
}

bool isRequestFrame(FrameType t) noexcept {
  switch (t) {
    case FrameType::Open:
    case FrameType::Apply:
    case FrameType::Guidance:
    case FrameType::Verify:
    case FrameType::Snapshot:
    case FrameType::Subscribe:
    case FrameType::Status:
    case FrameType::CloseSession:
      return true;
    default:
      return false;
  }
}

std::string encodeFrame(FrameType type, std::string_view payload) {
  if (payload.size() > kMaxFramePayload) {
    throw ProtocolError("frame payload of " + std::to_string(payload.size()) +
                        " bytes exceeds the " +
                        std::to_string(kMaxFramePayload) + "-byte limit");
  }
  std::string out;
  out.reserve(4 + 1 + payload.size());
  putU32le(out, static_cast<std::uint32_t>(payload.size() + 1));
  out.push_back(static_cast<char>(type));
  out.append(payload);
  return out;
}

std::optional<Frame> FrameParser::next() {
  // Compact once the consumed prefix dominates, so a long-lived connection
  // does not grow its buffer without bound.
  if (pos_ > 0 && (pos_ >= buffer_.size() || pos_ > 64 * 1024)) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  const std::size_t avail = buffer_.size() - pos_;
  if (avail < 5) return std::nullopt;
  const auto* base =
      reinterpret_cast<const unsigned char*>(buffer_.data() + pos_);
  const std::uint32_t len = getU32le(base);
  if (len == 0) {
    throw ProtocolError("zero-length frame (a frame always carries its type "
                        "byte)");
  }
  if (static_cast<std::size_t>(len) - 1 > maxPayload_) {
    throw ProtocolError("frame of " + std::to_string(len) +
                        " bytes exceeds the " + std::to_string(maxPayload_) +
                        "-byte payload limit");
  }
  if (avail < 4u + len) return std::nullopt;
  Frame frame;
  frame.type = static_cast<FrameType>(base[4]);
  frame.payload.assign(buffer_, pos_ + 5, len - 1);
  pos_ += 4u + len;
  return frame;
}

}  // namespace adpm::net
