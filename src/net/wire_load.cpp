#include "net/wire_load.hpp"

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "dddl/parser.hpp"
#include "dpm/manager.hpp"
#include "dpm/scenario.hpp"
#include "net/frame.hpp"
#include "service/session.hpp"
#include "teamsim/client.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/thread_annotations.hpp"

namespace adpm::net {

namespace {

using Clock = std::chrono::steady_clock;

struct Totals {
  util::Mutex mutex;
  std::string firstFailure ADPM_GUARDED_BY(mutex);
  std::atomic<std::size_t> completed{0};
  std::atomic<std::size_t> operations{0};
  std::atomic<std::size_t> notifications{0};
  std::atomic<std::size_t> resyncs{0};
  std::atomic<std::size_t> digestMismatches{0};
  std::atomic<std::size_t> reconnects{0};
  std::atomic<std::size_t> transientRetries{0};
  std::atomic<std::size_t> failed{0};
  std::atomic<std::uint64_t> applyRttMicros{0};
};

struct ShadowSession {
  dpm::ScenarioSpec spec;
  std::unique_ptr<dpm::DesignProcessManager> dpm;
  std::optional<teamsim::TeamClient> team;

  /// Builds the shadow from the *server's* canonical DDDL: determinism of
  /// instantiate + bootstrap + δ makes it bit-identical to the session.
  void build(const std::string& dddl, const teamsim::SimulationOptions& sim) {
    spec = dddl::parse(dddl);
    dpm::DesignProcessManager::Options mo;
    mo.adpm = sim.adpm;
    dpm = std::make_unique<dpm::DesignProcessManager>(mo);
    dpm::instantiate(spec, *dpm);
    dpm->bootstrap();
    team.emplace(*dpm, sim);
  }
};

void subscribeSeats(Client& client, const std::string& id,
                    const dpm::ScenarioSpec& spec) {
  std::set<std::string> designers;
  for (const dpm::ScenarioSpec::Prob& p : spec.problems) {
    if (!p.owner.empty()) designers.insert(p.owner);
  }
  for (const std::string& designer : designers) {
    client.subscribe(id, designer);
  }
}

void driveSession(const WireLoadOptions& options, std::size_t index,
                  Totals& totals) {
  const std::string id = options.idPrefix + std::to_string(index);
  teamsim::SimulationOptions sim = options.sim;
  sim.seed = options.sim.seed + index;

  Client::Options clientOptions = options.client;
  clientOptions.host = options.host;
  clientOptions.port = options.port;
  Client client(clientOptions);
  client.onNotification(
      [&totals](const std::string&, const dpm::Notification& n) {
        totals.notifications.fetch_add(1, std::memory_order_relaxed);
        if (n.kind == dpm::NotificationKind::ResyncRequired) {
          totals.resyncs.fetch_add(1, std::memory_order_relaxed);
        }
      });

  ShadowSession shadow;
  try {
    client.connectWithRetry();
    const Client::OpenResult open =
        options.dddl.empty()
            ? client.openScenario(id, options.scenario, sim.adpm)
            : client.openDddl(id, options.dddl, sim.adpm);
    shadow.build(open.dddl, sim);
    if (options.subscribe) subscribeSeats(client, id, shadow.spec);

    std::size_t ops = 0;
    unsigned reconnectsLeft = options.maxReconnects;
    // Reconnect and resync in one guarded step: dial with capped backoff,
    // re-establish the push stream, and fetch the authoritative snapshot.
    // A connection that dies anywhere in that sequence spends one unit of
    // budget and starts over rather than failing the session: right after
    // a server crash the kernel can hand out connections the dying
    // listener had completed into its backlog — they look established and
    // reset on first use.
    const auto reconnect = [&]() -> service::SessionSnapshot {
      for (;;) {
        if (reconnectsLeft == 0) {
          throw ConnectionError("reconnect budget spent");
        }
        --reconnectsLeft;
        totals.reconnects.fetch_add(1, std::memory_order_relaxed);
        try {
          client.connectWithRetry();
        } catch (const std::exception& e) {
          throw ConnectionError(std::string("reconnect failed: ") + e.what());
        }
        try {
          if (options.subscribe) subscribeSeats(client, id, shadow.spec);
          return client.snapshot(id, false);
        } catch (const ConnectionError&) {
          // stillborn connection or the server died again; spend another
        }
      }
    };
    while (ops < options.maxOperationsPerSession &&
           !client.serverShuttingDown()) {
      std::optional<dpm::Operation> op = shadow.team->propose(*shadow.dpm);
      if (!op) break;  // every designer idle: complete or deadlocked

      // Apply remotely, then mirror locally.  A ConnectionError leaves the
      // outcome ambiguous; the reconnect path disambiguates by comparing
      // the server's stage against the shadow's.
      bool applied = false;
      while (!applied) {
        try {
          const auto t0 = Clock::now();
          (void)client.apply(id, *op);
          const auto rtt = std::chrono::duration_cast<std::chrono::microseconds>(
              Clock::now() - t0);
          totals.applyRttMicros.fetch_add(
              static_cast<std::uint64_t>(rtt.count()),
              std::memory_order_relaxed);
          applied = true;
        } catch (const ConnectionError&) {
          const service::SessionSnapshot snap = reconnect();
          if (snap.stage == shadow.dpm->stage() + 1) {
            applied = true;  // the in-flight apply committed server-side
          } else if (snap.stage != shadow.dpm->stage()) {
            throw adpm::Error(
                "session '" + id + "' diverged across reconnect (server at " +
                std::to_string(snap.stage) + ", shadow at " +
                std::to_string(shadow.dpm->stage()) + ")");
          }
          // stage == shadow stage: the apply never committed; resend it.
        }
      }
      const dpm::DesignProcessManager::ExecResult local =
          shadow.dpm->execute(std::move(*op));
      shadow.team->observe(*shadow.dpm, local.record);
      ++ops;
      if (options.subscribe) {
        try {
          client.pump(0);
        } catch (const ConnectionError&) {
          // The last apply was acknowledged, so nothing is in flight —
          // the server journaled it before acking and its recovery will
          // reach the shadow's stage; just re-establish the stream.
          (void)reconnect();
        }
      }
    }

    totals.operations.fetch_add(ops, std::memory_order_relaxed);
    if (shadow.dpm->designComplete()) {
      totals.completed.fetch_add(1, std::memory_order_relaxed);
    }

    if (options.verifyDigests) {
      service::SessionSnapshot snap;
      try {
        snap = client.snapshot(id, false);
      } catch (const ConnectionError&) {
        snap = reconnect();
      }
      const std::string localDigest =
          util::fnv1a64Hex(service::snapshotText(*shadow.dpm));
      if (snap.digest != localDigest || snap.stage != shadow.dpm->stage()) {
        totals.digestMismatches.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (options.subscribe) {
      try {
        client.pump(0);
      } catch (const ConnectionError&) {
        // Push-stream teardown after the work is done costs counters only.
      }
    }
  } catch (const std::exception& e) {
    totals.failed.fetch_add(1, std::memory_order_relaxed);
    util::LockGuard lock(totals.mutex);
    if (totals.firstFailure.empty()) {
      totals.firstFailure = "session '" + id + "': " + e.what();
    }
  }
  totals.transientRetries.fetch_add(client.transientRetries(),
                                    std::memory_order_relaxed);
}

}  // namespace

WireLoadReport runWireLoad(const WireLoadOptions& options) {
  WireLoadReport report;
  report.sessions = options.sessions;
  if (options.sessions == 0) return report;

  Totals totals;
  const auto start = Clock::now();
  std::vector<std::thread> drivers;
  drivers.reserve(options.sessions);
  for (std::size_t i = 0; i < options.sessions; ++i) {
    drivers.emplace_back(
        [&options, i, &totals] { driveSession(options, i, totals); });
  }
  for (std::thread& t : drivers) t.join();
  const auto stop = Clock::now();

  report.completedSessions = totals.completed.load();
  report.operations = totals.operations.load();
  report.notificationsReceived = totals.notifications.load();
  report.resyncsRequired = totals.resyncs.load();
  report.digestMismatches = totals.digestMismatches.load();
  report.reconnects = totals.reconnects.load();
  report.transientRetries = totals.transientRetries.load();
  report.failedSessions = totals.failed.load();
  {
    util::LockGuard lock(totals.mutex);
    report.firstFailure = totals.firstFailure;
  }
  report.wallSeconds = std::chrono::duration<double>(stop - start).count();
  if (report.wallSeconds > 0.0) {
    report.opsPerSecond =
        static_cast<double>(report.operations) / report.wallSeconds;
  }
  if (report.operations > 0) {
    report.applyRttMeanMicros =
        static_cast<double>(totals.applyRttMicros.load()) /
        static_cast<double>(report.operations);
  }
  return report;
}

}  // namespace adpm::net
