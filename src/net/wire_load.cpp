#include "net/wire_load.hpp"

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "dddl/parser.hpp"
#include "dpm/manager.hpp"
#include "dpm/scenario.hpp"
#include "net/frame.hpp"
#include "service/session.hpp"
#include "teamsim/client.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace adpm::net {

namespace {

using Clock = std::chrono::steady_clock;

struct Totals {
  std::atomic<std::size_t> completed{0};
  std::atomic<std::size_t> operations{0};
  std::atomic<std::size_t> notifications{0};
  std::atomic<std::size_t> resyncs{0};
  std::atomic<std::size_t> digestMismatches{0};
  std::atomic<std::size_t> reconnects{0};
  std::atomic<std::size_t> transientRetries{0};
  std::atomic<std::size_t> failed{0};
  std::atomic<std::uint64_t> applyRttMicros{0};
};

struct ShadowSession {
  dpm::ScenarioSpec spec;
  std::unique_ptr<dpm::DesignProcessManager> dpm;
  std::optional<teamsim::TeamClient> team;

  /// Builds the shadow from the *server's* canonical DDDL: determinism of
  /// instantiate + bootstrap + δ makes it bit-identical to the session.
  void build(const std::string& dddl, const teamsim::SimulationOptions& sim) {
    spec = dddl::parse(dddl);
    dpm::DesignProcessManager::Options mo;
    mo.adpm = sim.adpm;
    dpm = std::make_unique<dpm::DesignProcessManager>(mo);
    dpm::instantiate(spec, *dpm);
    dpm->bootstrap();
    team.emplace(*dpm, sim);
  }
};

void subscribeSeats(Client& client, const std::string& id,
                    const dpm::ScenarioSpec& spec) {
  std::set<std::string> designers;
  for (const dpm::ScenarioSpec::Prob& p : spec.problems) {
    if (!p.owner.empty()) designers.insert(p.owner);
  }
  for (const std::string& designer : designers) {
    client.subscribe(id, designer);
  }
}

void driveSession(const WireLoadOptions& options, std::size_t index,
                  Totals& totals) {
  const std::string id = options.idPrefix + std::to_string(index);
  teamsim::SimulationOptions sim = options.sim;
  sim.seed = options.sim.seed + index;

  Client::Options clientOptions = options.client;
  clientOptions.host = options.host;
  clientOptions.port = options.port;
  Client client(clientOptions);
  client.onNotification(
      [&totals](const std::string&, const dpm::Notification& n) {
        totals.notifications.fetch_add(1, std::memory_order_relaxed);
        if (n.kind == dpm::NotificationKind::ResyncRequired) {
          totals.resyncs.fetch_add(1, std::memory_order_relaxed);
        }
      });

  ShadowSession shadow;
  try {
    client.connect();
    const Client::OpenResult open =
        options.dddl.empty()
            ? client.openScenario(id, options.scenario, sim.adpm)
            : client.openDddl(id, options.dddl, sim.adpm);
    shadow.build(open.dddl, sim);
    if (options.subscribe) subscribeSeats(client, id, shadow.spec);

    std::size_t ops = 0;
    unsigned reconnectsLeft = options.maxReconnects;
    while (ops < options.maxOperationsPerSession &&
           !client.serverShuttingDown()) {
      std::optional<dpm::Operation> op = shadow.team->propose(*shadow.dpm);
      if (!op) break;  // every designer idle: complete or deadlocked

      // Apply remotely, then mirror locally.  A ConnectionError leaves the
      // outcome ambiguous; the reconnect path disambiguates by comparing
      // the server's stage against the shadow's.
      bool applied = false;
      while (!applied) {
        try {
          const auto t0 = Clock::now();
          (void)client.apply(id, *op);
          const auto rtt = std::chrono::duration_cast<std::chrono::microseconds>(
              Clock::now() - t0);
          totals.applyRttMicros.fetch_add(
              static_cast<std::uint64_t>(rtt.count()),
              std::memory_order_relaxed);
          applied = true;
        } catch (const ConnectionError&) {
          if (reconnectsLeft == 0) throw;
          --reconnectsLeft;
          totals.reconnects.fetch_add(1, std::memory_order_relaxed);
          client.connect();
          if (options.subscribe) subscribeSeats(client, id, shadow.spec);
          const service::SessionSnapshot snap = client.snapshot(id, false);
          if (snap.stage == shadow.dpm->stage() + 1) {
            applied = true;  // the in-flight apply committed server-side
          } else if (snap.stage != shadow.dpm->stage()) {
            throw adpm::Error(
                "session '" + id + "' diverged across reconnect (server at " +
                std::to_string(snap.stage) + ", shadow at " +
                std::to_string(shadow.dpm->stage()) + ")");
          }
          // stage == shadow stage: the apply never committed; resend it.
        }
      }
      const dpm::DesignProcessManager::ExecResult local =
          shadow.dpm->execute(std::move(*op));
      shadow.team->observe(*shadow.dpm, local.record);
      ++ops;
      if (options.subscribe) client.pump(0);
    }

    totals.operations.fetch_add(ops, std::memory_order_relaxed);
    if (shadow.dpm->designComplete()) {
      totals.completed.fetch_add(1, std::memory_order_relaxed);
    }

    if (options.verifyDigests) {
      const service::SessionSnapshot snap = client.snapshot(id, false);
      const std::string localDigest =
          util::fnv1a64Hex(service::snapshotText(*shadow.dpm));
      if (snap.digest != localDigest || snap.stage != shadow.dpm->stage()) {
        totals.digestMismatches.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (options.subscribe) client.pump(0);
  } catch (const std::exception&) {
    totals.failed.fetch_add(1, std::memory_order_relaxed);
  }
  totals.transientRetries.fetch_add(client.transientRetries(),
                                    std::memory_order_relaxed);
}

}  // namespace

WireLoadReport runWireLoad(const WireLoadOptions& options) {
  WireLoadReport report;
  report.sessions = options.sessions;
  if (options.sessions == 0) return report;

  Totals totals;
  const auto start = Clock::now();
  std::vector<std::thread> drivers;
  drivers.reserve(options.sessions);
  for (std::size_t i = 0; i < options.sessions; ++i) {
    drivers.emplace_back(
        [&options, i, &totals] { driveSession(options, i, totals); });
  }
  for (std::thread& t : drivers) t.join();
  const auto stop = Clock::now();

  report.completedSessions = totals.completed.load();
  report.operations = totals.operations.load();
  report.notificationsReceived = totals.notifications.load();
  report.resyncsRequired = totals.resyncs.load();
  report.digestMismatches = totals.digestMismatches.load();
  report.reconnects = totals.reconnects.load();
  report.transientRetries = totals.transientRetries.load();
  report.failedSessions = totals.failed.load();
  report.wallSeconds = std::chrono::duration<double>(stop - start).count();
  if (report.wallSeconds > 0.0) {
    report.opsPerSecond =
        static_cast<double>(report.operations) / report.wallSeconds;
  }
  if (report.operations > 0) {
    report.applyRttMeanMicros =
        static_cast<double>(totals.applyRttMicros.load()) /
        static_cast<double>(report.operations);
  }
  return report;
}

}  // namespace adpm::net
