#include "net/protocol.hpp"

#include <cmath>

#include "dpm/operation_io.hpp"
#include "net/frame.hpp"
#include "util/error.hpp"

namespace adpm::net {

namespace {

std::uint32_t asId(const util::json::Value& v, const char* what) {
  const double n = v.asNumber();
  if (n < 0 || n != std::floor(n)) {
    throw adpm::InvalidArgumentError(std::string("wire json: bad ") + what);
  }
  return static_cast<std::uint32_t>(n);
}

std::size_t asCount(const util::json::Value& v, const char* what) {
  return static_cast<std::size_t>(asId(v, what));
}

util::json::Array idArray(const std::vector<constraint::ConstraintId>& ids) {
  util::json::Array out;
  out.reserve(ids.size());
  for (const constraint::ConstraintId id : ids) {
    out.push_back(util::json::Value(static_cast<std::size_t>(id.value)));
  }
  return out;
}

std::vector<constraint::ConstraintId> idVector(const util::json::Value& v,
                                               const char* what) {
  std::vector<constraint::ConstraintId> out;
  for (const util::json::Value& id : v.asArray()) {
    out.push_back(constraint::ConstraintId{asId(id, what)});
  }
  return out;
}

}  // namespace

util::json::Value operationRecordToJson(const dpm::OperationRecord& record) {
  util::json::Value v{util::json::Object{}};
  v.set("stage", record.stage);
  v.set("op", dpm::operationToJson(record.op));
  v.set("evaluations", record.evaluations);
  v.set("found", idArray(record.violationsFound));
  v.set("after", record.violationsKnownAfter);
  v.set("spin", record.spin);
  v.set("generated", idArray(record.constraintsGenerated));
  return v;
}

dpm::OperationRecord operationRecordFromJson(const util::json::Value& v) {
  dpm::OperationRecord record;
  record.stage = asCount(v.at("stage"), "stage");
  record.op = dpm::operationFromJson(v.at("op"));
  record.evaluations = asCount(v.at("evaluations"), "evaluations");
  record.violationsFound = idVector(v.at("found"), "violation id");
  record.violationsKnownAfter = asCount(v.at("after"), "violation count");
  record.spin = v.at("spin").asBool();
  record.constraintsGenerated = idVector(v.at("generated"), "constraint id");
  return record;
}

util::json::Value notificationToJson(const std::string& sessionId,
                                     const dpm::Notification& n) {
  util::json::Value v{util::json::Object{}};
  v.set("session", sessionId);
  v.set("kind", dpm::notificationKindName(n.kind));
  v.set("designer", n.designer);
  v.set("stage", n.stage);
  if (n.constraintId) {
    v.set("constraint", static_cast<std::size_t>(n.constraintId->value));
  }
  if (n.propertyId) {
    v.set("property", static_cast<std::size_t>(n.propertyId->value));
  }
  v.set("text", n.text);
  return v;
}

dpm::NotificationKind notificationKindFromName(const std::string& name) {
  using K = dpm::NotificationKind;
  for (const K k : {K::ViolationDetected, K::ViolationResolved,
                    K::FeasibleSubspaceReduced, K::ProblemSolved,
                    K::RequirementChanged, K::ResyncRequired}) {
    if (name == dpm::notificationKindName(k)) return k;
  }
  throw adpm::InvalidArgumentError("wire json: unknown notification kind '" +
                                   name + "'");
}

dpm::Notification notificationFromJson(const util::json::Value& v) {
  dpm::Notification n;
  n.kind = notificationKindFromName(v.at("kind").asString());
  n.designer = v.at("designer").asString();
  n.stage = asCount(v.at("stage"), "stage");
  if (const util::json::Value* c = v.find("constraint")) {
    n.constraintId = constraint::ConstraintId{asId(*c, "constraint id")};
  }
  if (const util::json::Value* p = v.find("property")) {
    n.propertyId = constraint::PropertyId{asId(*p, "property id")};
  }
  n.text = v.at("text").asString();
  return n;
}

util::json::Value snapshotToJson(const service::SessionSnapshot& snap,
                                 bool withText) {
  util::json::Value v{util::json::Object{}};
  v.set("id", snap.id);
  v.set("stage", snap.stage);
  v.set("complete", snap.complete);
  v.set("evaluations", snap.evaluations);
  v.set("violations", snap.violations);
  v.set("digest", snap.digest);
  if (withText) v.set("text", snap.text);
  return v;
}

service::SessionSnapshot snapshotFromJson(const util::json::Value& v) {
  service::SessionSnapshot snap;
  snap.id = v.at("id").asString();
  snap.stage = asCount(v.at("stage"), "stage");
  snap.complete = v.at("complete").asBool();
  snap.evaluations = asCount(v.at("evaluations"), "evaluations");
  snap.violations = asCount(v.at("violations"), "violations");
  snap.digest = v.at("digest").asString();
  if (const util::json::Value* text = v.find("text")) {
    snap.text = text->asString();
  }
  return snap;
}

const char* wireErrorName(const std::exception& e) noexcept {
  // Ordered most-derived first: FaultInjectedError is a TransientError, and
  // TimeoutError/TransientError/InvalidArgumentError are all adpm::Error.
  if (dynamic_cast<const adpm::TimeoutError*>(&e)) return "Timeout";
  if (dynamic_cast<const adpm::TransientError*>(&e)) return "Transient";
  if (dynamic_cast<const adpm::InvalidArgumentError*>(&e)) {
    return "InvalidArgument";
  }
  if (dynamic_cast<const ProtocolError*>(&e)) return "Protocol";
  if (dynamic_cast<const adpm::ParseError*>(&e)) return "Parse";
  if (dynamic_cast<const adpm::Error*>(&e)) return "Error";
  return "Internal";
}

void throwWireError(const std::string& name, const std::string& message) {
  if (name == "Timeout") throw adpm::TimeoutError(message);
  if (name == "Transient") throw adpm::TransientError(message);
  if (name == "InvalidArgument") throw adpm::InvalidArgumentError(message);
  if (name == "Protocol") throw ProtocolError(message);
  // "Parse", "Error", "Internal" and anything unrecognized: the base type —
  // not retryable, not a caller bug by construction.
  throw adpm::Error(message);
}

}  // namespace adpm::net
