// Length-prefixed binary framing for the TCP wire protocol.
//
// One frame on the wire is
//
//   [u32 len][u8 type][payload bytes]
//
// where `len` is the little-endian byte count of everything after the
// length word (1 type byte + payload), `type` is a FrameType, and the
// payload is one canonical-JSON document (util/json.hpp) — the same
// encoding the WAL journals, so a request's payload and its journal record
// are byte-compatible.  Integers are serialized with explicit little-endian
// helpers (no memcpy-of-struct, no host-endian assumptions), so the format
// is identical across architectures.
//
// Framing errors are *protocol* errors: a zero-length frame, a length above
// kMaxFramePayload, or trailing garbage means the peer is broken or
// malicious, and the connection is closed (after an Error frame when
// possible) rather than resynchronized — there is no reliable way to find
// the next frame boundary in a corrupt byte stream.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "util/error.hpp"

namespace adpm::net {

/// The peer violated the wire protocol (malformed frame, bad handshake,
/// unparseable payload).  Never retried: the connection is closed.
class ProtocolError : public adpm::Error {
 public:
  explicit ProtocolError(const std::string& what) : Error(what) {}
};

/// The transport failed mid-conversation (peer closed, socket error,
/// injected net.* fault).  Whether an in-flight command executed is unknown;
/// clients resynchronize from a session snapshot after reconnecting.
class ConnectionError : public adpm::Error {
 public:
  explicit ConnectionError(const std::string& what) : Error(what) {}
};

enum class FrameType : std::uint8_t {
  // -- requests (client → server) --------------------------------------------
  Open = 1,       ///< create a session from a scenario name or DDDL text
  Apply = 2,      ///< apply one design operation θ
  Guidance = 3,   ///< query mined guidance presence/summary (λ=T)
  Verify = 4,     ///< batch-verify all runnable constraints
  Snapshot = 5,   ///< canonical snapshot (digest, optionally full text)
  Subscribe = 6,  ///< stream this (session, designer)'s notifications
  Status = 7,     ///< server/bus/store counters
  CloseSession = 8,

  // -- responses & pushes (server → client) ----------------------------------
  Result = 16,        ///< successful response, correlated by "req"
  Error = 17,         ///< failed response; payload carries the error taxonomy
  Notification = 18,  ///< server push: one bus notification (or ResyncRequired)
  Shutdown = 19,      ///< server push: draining; no further requests accepted
};

const char* frameTypeName(FrameType t) noexcept;
bool isRequestFrame(FrameType t) noexcept;

/// Hard cap on one frame's payload; anything larger is a protocol error
/// (a length word of garbage must not make the reader allocate 4 GiB).
inline constexpr std::size_t kMaxFramePayload = 16u << 20;

// -- explicit little-endian integer helpers ----------------------------------

inline void putU32le(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

inline std::uint32_t getU32le(const unsigned char* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

struct Frame {
  FrameType type{};
  std::string payload;
};

/// Serializes one frame, length prefix included.
std::string encodeFrame(FrameType type, std::string_view payload);

/// Incremental frame extractor over an arbitrary byte stream.  feed() bytes
/// as they arrive, then drain complete frames with next(); a frame split
/// across any number of reads reassembles transparently.  Throws
/// ProtocolError on a structurally invalid length word — the caller must
/// drop the connection, the stream cannot be resynchronized.
class FrameParser {
 public:
  explicit FrameParser(std::size_t maxPayload = kMaxFramePayload)
      : maxPayload_(maxPayload) {}

  void feed(const char* data, std::size_t n) { buffer_.append(data, n); }

  /// One complete frame, or nullopt while the buffer holds only a partial
  /// frame.
  std::optional<Frame> next();

  /// Bytes buffered but not yet returned as frames (a torn tail when the
  /// connection closes).
  std::size_t pendingBytes() const noexcept { return buffer_.size() - pos_; }

 private:
  std::size_t maxPayload_;
  std::string buffer_;
  std::size_t pos_ = 0;  // consumed prefix, compacted lazily
};

}  // namespace adpm::net
