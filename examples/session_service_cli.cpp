// Design-session service runner: host a fleet of concurrent design sessions
// (TeamSim designers as clients) on a worker pool, with durable operation
// logs and crash recovery.
//
//   $ ./session_service_cli --scenario sensing --sessions 8 --threads 4
//   $ ./session_service_cli --scenario receiver --sessions 4 --wal-dir /tmp/wal
//   $ ./session_service_cli --wal-dir /tmp/wal --recover      # after a crash
//
// With --connect the fleet moves to the far side of a TCP connection: the
// same TeamSim designers drive sessions hosted by a session_server_cli
// process, one connection per session, each keeping a local shadow manager
// whose final digest must match the server's (the cross-process determinism
// check).
//
//   $ ./session_service_cli --connect 127.0.0.1:7101 --sessions 4 --seed 3
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "dddl/writer.hpp"
#include "gen/generator.hpp"
#include "gen/registry.hpp"
#include "net/wire_load.hpp"
#include "service/load.hpp"
#include "service/store.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/table.hpp"

using namespace adpm;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: session_service_cli [options]\n"
      "  --scenario <name>              registered scenario (see dddl_tool\n"
      "                                 list); includes generated zoo presets\n"
      "  --gen <paramfile.json>         generate the scenario from a\n"
      "                                 paramfile instead (works with\n"
      "                                 --connect: the generated DDDL is\n"
      "                                 shipped over the wire)\n"
      "  --gen-seed <n>                 generator seed override\n"
      "  --sessions <n>                 concurrent sessions (default 8)\n"
      "  --threads <n>                  worker threads (default 4)\n"
      "  --deterministic                single-threaded inline execution\n"
      "  --adpm | --conventional        process flow (default ADPM)\n"
      "  --seed <n>                     base seed; session i uses seed+i\n"
      "  --max-ops <n>                  per-session operation cap\n"
      "  --wal-dir <dir>                journal sessions to <dir>/<id>.wal\n"
      "  --recover                      rebuild sessions from --wal-dir and\n"
      "                                 print their replayed state (no load);\n"
      "                                 exits 1 if any session was lost\n"
      "  --salvage                      recover damaged logs by truncating to\n"
      "                                 the longest trustworthy prefix\n"
      "  --fault-plan <spec>            arm failpoints, e.g.\n"
      "                                 'wal.append=short-write:every=3'\n"
      "                                 (needs -DADPM_FAULT_INJECTION=ON)\n"
      "  --connect <host:port>          drive the sessions over the wire\n"
      "                                 against a session_server_cli instead\n"
      "                                 of an in-process store (sends the\n"
      "                                 scenario as DDDL; verifies shadow\n"
      "                                 digests; exits 1 on divergence)\n"
      "  --id-prefix <prefix>           session id prefix for --connect\n"
      "                                 (default 'wire-'; must be unique per\n"
      "                                 driver process)\n"
      "  --max-reconnects <n>           reconnect-and-resync attempts per\n"
      "                                 session (default 3)\n"
      "  --reconnect-attempts <n>       connection tries per reconnect under\n"
      "                                 capped backoff — rides out a\n"
      "                                 supervised server restart (default "
      "1)\n");
  return 2;
}

void printSessions(service::SessionStore& store) {
  util::TextTable t;
  t.header({"session", "stage", "complete", "evals", "violations", "digest"});
  for (const std::string& id : store.ids()) {
    const service::SessionSnapshot snap = store.snapshot(id).get();
    t.row({snap.id, std::to_string(snap.stage), snap.complete ? "yes" : "no",
           std::to_string(snap.evaluations), std::to_string(snap.violations),
           snap.digest});
  }
  std::printf("%s", t.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenarioName = "sensing";
  std::string genFile;
  std::uint64_t genSeed = 0;
  bool haveGenSeed = false;
  std::size_t sessions = 8;
  unsigned threads = 4;
  bool deterministic = false;
  bool adpm = true;
  std::uint64_t seed = 1;
  std::size_t maxOps = 20000;
  std::string walDir;
  bool recover = false;
  bool salvage = false;
  std::string faultPlan;
  std::string connect;
  std::string idPrefix = "wire-";
  unsigned maxReconnects = 3;
  unsigned reconnectAttempts = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--scenario") {
      scenarioName = next();
    } else if (arg == "--gen") {
      genFile = next();
    } else if (arg == "--gen-seed") {
      genSeed = std::strtoull(next(), nullptr, 10);
      haveGenSeed = true;
    } else if (arg == "--sessions") {
      sessions = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--threads") {
      threads = static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--deterministic") {
      deterministic = true;
    } else if (arg == "--adpm") {
      adpm = true;
    } else if (arg == "--conventional") {
      adpm = false;
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--max-ops") {
      maxOps = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--wal-dir") {
      walDir = next();
    } else if (arg == "--recover") {
      recover = true;
    } else if (arg == "--salvage") {
      salvage = true;
    } else if (arg == "--fault-plan") {
      faultPlan = next();
    } else if (arg == "--connect") {
      connect = next();
    } else if (arg == "--id-prefix") {
      idPrefix = next();
    } else if (arg == "--max-reconnects") {
      maxReconnects = static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--reconnect-attempts") {
      reconnectAttempts =
          static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
    } else {
      return usage();
    }
  }

  try {
    if (!faultPlan.empty()) {
#if defined(ADPM_FAULT_INJECTION) && ADPM_FAULT_INJECTION
      util::FaultRegistry::instance().armFromSpec(faultPlan);
#else
      std::fprintf(stderr,
                   "--fault-plan ignored: binary built without "
                   "-DADPM_FAULT_INJECTION=ON\n");
#endif
    }

    dpm::ScenarioSpec spec;
    if (!genFile.empty()) {
      const gen::GenParams params = gen::loadParams(genFile);
      spec = (haveGenSeed ? gen::generate(params, genSeed)
                          : gen::generate(params))
                 .spec;
      scenarioName = spec.name;
    } else {
      spec = gen::scenarioByName(scenarioName);
    }

    if (!connect.empty()) {
      const std::size_t colon = connect.rfind(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr, "--connect needs host:port\n");
        return 2;
      }
      net::WireLoadOptions wire;
      wire.host = connect.substr(0, colon);
      wire.port = static_cast<std::uint16_t>(
          std::strtoul(connect.c_str() + colon + 1, nullptr, 10));
      wire.sessions = sessions;
      wire.sim.adpm = adpm;
      wire.sim.seed = seed;
      wire.maxOperationsPerSession = maxOps;
      wire.idPrefix = idPrefix;
      wire.maxReconnects = maxReconnects;
      wire.client.reconnectAttempts = reconnectAttempts;
      // Ship the scenario as DDDL so any server accepts it, registry or not;
      // the server replies with its canonical rendering for the shadow.
      wire.dddl = dddl::write(spec);

      const net::WireLoadReport report = runWireLoad(wire);
      std::printf(
          "wire: target=%s scenario=%s flow=%s sessions=%zu\n"
          "completed=%zu operations=%zu notifications=%zu resyncs=%zu\n"
          "reconnects=%zu transientRetries=%zu failed=%zu "
          "digestMismatches=%zu\n"
          "wall=%.3fs ops/sec=%.0f applyRtt=%.0fus\n",
          connect.c_str(), scenarioName.c_str(),
          adpm ? "ADPM" : "conventional", report.sessions,
          report.completedSessions, report.operations,
          report.notificationsReceived, report.resyncsRequired,
          report.reconnects, report.transientRetries, report.failedSessions,
          report.digestMismatches, report.wallSeconds, report.opsPerSecond,
          report.applyRttMeanMicros);
      if (!report.firstFailure.empty()) {
        std::fprintf(stderr, "first failure: %s\n",
                     report.firstFailure.c_str());
      }
      return (report.digestMismatches == 0 && report.failedSessions == 0) ? 0
                                                                          : 1;
    }

    service::SessionStore::Options options;
    options.executor.threads = threads;
    options.executor.deterministic = deterministic;
    options.walDir = walDir;
    if (salvage) options.recovery = service::RecoveryPolicy::Salvage;

    if (recover) {
      if (walDir.empty()) {
        std::fprintf(stderr, "--recover needs --wal-dir\n");
        return 2;
      }
      service::SessionStore store{std::move(options)};
      const std::vector<std::string> ids = store.recover();
      std::printf("recovered %zu session(s) from %s\n", ids.size(),
                  walDir.c_str());
      bool lost = false;
      for (const service::RecoveryEvent& event : store.recoverReport()) {
        if (event.sessionLost) {
          lost = true;
          std::fprintf(stderr, "lost: %s: %s\n", event.path.c_str(),
                       event.detail.c_str());
        } else if (event.salvaged) {
          std::fprintf(stderr,
                       "salvaged: %s: kept %zu stage(s), dropped %zu "
                       "operation(s) / %zu byte(s)%s%s\n",
                       event.path.c_str(), event.keptStage,
                       event.droppedOperations, event.droppedBytes,
                       event.detail.empty() ? "" : ": ",
                       event.detail.c_str());
        }
      }
      printSessions(store);
      return lost ? 1 : 0;
    }

    service::SessionStore store{std::move(options)};
    service::LoadOptions load;
    load.sessions = sessions;
    load.sim.adpm = adpm;
    load.sim.seed = seed;
    load.maxOperationsPerSession = maxOps;

    const service::LoadReport report = runLoad(store, spec, load);

    const std::string workers =
        deterministic ? "inline" : std::to_string(threads);
    std::printf(
        "scenario=%s flow=%s sessions=%zu workers=%s\n"
        "completed=%zu operations=%zu evaluations=%zu\n"
        "notifications: published=%zu delivered=%zu dropped=%zu\n"
        "wall=%.3fs ops/sec=%.0f sessions/sec=%.2f\n\n",
        scenarioName.c_str(), adpm ? "ADPM" : "conventional", report.sessions,
        workers.c_str(), report.completedSessions, report.operations, report.evaluations,
        report.notificationsPublished, report.notificationsDelivered,
        report.notificationsDropped, report.wallSeconds, report.opsPerSecond,
        report.sessionsPerSecond);
    printSessions(store);
    if (!walDir.empty()) {
      std::printf("\noperation logs in %s (re-run with --recover to replay)\n",
                  walDir.c_str());
    }
    return 0;
  } catch (const adpm::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
