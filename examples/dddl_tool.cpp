// DDDL command-line tool: dump the built-in scenarios as DDDL text, or
// parse and validate a DDDL file.
//
//   $ ./dddl_tool dump sensing > sensing.dddl     # export a built-in case
//   $ ./dddl_tool dump receiver
//   $ ./dddl_tool dump walkthrough
//   $ ./dddl_tool check sensing.dddl              # parse + validate a file
//   $ ./dddl_tool roundtrip receiver              # write -> parse -> verify
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "dddl/parser.hpp"
#include "dddl/writer.hpp"
#include "scenarios/accelerometer.hpp"
#include "scenarios/receiver.hpp"
#include "scenarios/sensing.hpp"
#include "scenarios/walkthrough.hpp"
#include "util/error.hpp"

using namespace adpm;

namespace {

dpm::ScenarioSpec builtin(const std::string& name) {
  if (name == "sensing") return scenarios::sensingSystemScenario();
  if (name == "receiver") return scenarios::receiverScenario();
  if (name == "receiver4") return scenarios::receiverLargeTeamScenario();
  if (name == "accelerometer") return scenarios::accelerometerScenario();
  if (name == "walkthrough") return scenarios::walkthroughScenario();
  throw adpm::InvalidArgumentError(
      "unknown scenario '" + name +
      "' (expected sensing, receiver, receiver4, accelerometer or "
      "walkthrough)");
}

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  dddl_tool dump <sensing|receiver|receiver4|accelerometer|walkthrough>\n"
               "  dddl_tool check <file.dddl>\n"
               "  dddl_tool roundtrip <scenario>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string command = argv[1];
  const std::string arg = argv[2];

  try {
    if (command == "dump") {
      std::printf("%s", dddl::write(builtin(arg)).c_str());
      return 0;
    }
    if (command == "check") {
      std::ifstream in(arg);
      if (!in) {
        std::fprintf(stderr, "cannot open '%s'\n", arg.c_str());
        return 1;
      }
      std::ostringstream text;
      text << in.rdbuf();
      const dpm::ScenarioSpec spec = dddl::parse(text.str());
      std::printf("OK: scenario '%s' — %zu objects, %zu properties, "
                  "%zu constraints, %zu problems, %zu requirements\n",
                  spec.name.c_str(), spec.objects.size(),
                  spec.properties.size(), spec.constraints.size(),
                  spec.problems.size(), spec.requirements.size());
      return 0;
    }
    if (command == "roundtrip") {
      const dpm::ScenarioSpec original = builtin(arg);
      const std::string text = dddl::write(original);
      const dpm::ScenarioSpec reparsed = dddl::parse(text);
      const bool same = reparsed.properties.size() == original.properties.size() &&
                        reparsed.constraints.size() == original.constraints.size() &&
                        reparsed.problems.size() == original.problems.size();
      std::printf("%s: %zu chars of DDDL, %s\n", arg.c_str(), text.size(),
                  same ? "round-trip OK" : "ROUND-TRIP MISMATCH");
      return same ? 0 : 1;
    }
  } catch (const adpm::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
