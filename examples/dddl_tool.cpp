// DDDL command-line tool: dump registered scenarios as DDDL text, parse and
// validate DDDL files, generate scenarios from paramfiles, and run a
// propagation check.
//
//   $ ./dddl_tool list                            # registered scenarios
//   $ ./dddl_tool dump sensing > sensing.dddl     # export a scenario
//   $ ./dddl_tool dump zoo-medium                 # generated zoo preset
//   $ ./dddl_tool check sensing.dddl              # parse + validate a file
//   $ ./dddl_tool check --stats sensing.dddl      # + structural statistics
//   $ ./dddl_tool roundtrip receiver              # write -> parse -> verify
//   $ ./dddl_tool gen scenarios/zoo/zoo-toy.json  # paramfile -> DDDL
//   $ ./dddl_tool gen zoo-toy --seed 7            # preset name works too
//   $ ./dddl_tool propagate zoo-toy               # initial-state propagation
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "constraint/propagate.hpp"
#include "dddl/parser.hpp"
#include "dddl/writer.hpp"
#include "gen/generator.hpp"
#include "gen/presets.hpp"
#include "gen/registry.hpp"
#include "gen/stats.hpp"
#include "util/error.hpp"

using namespace adpm;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  dddl_tool list\n"
               "  dddl_tool dump <scenario>\n"
               "  dddl_tool check [--stats] <file.dddl|scenario>\n"
               "  dddl_tool roundtrip <file.dddl|scenario>\n"
               "  dddl_tool gen <paramfile.json|preset> [--seed N] [-o <out>]\n"
               "  dddl_tool propagate <file.dddl|scenario>\n"
               "scenarios: %s\n",
               gen::registeredScenarioNames().c_str());
  return 2;
}

bool readFile(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream text;
  text << in.rdbuf();
  out = text.str();
  return true;
}

/// Resolves `arg` to a spec: an on-disk DDDL file wins, then the registry.
dpm::ScenarioSpec resolveSpec(const std::string& arg) {
  std::string text;
  if (readFile(arg, text)) return dddl::parse(text);
  if (gen::isRegisteredScenario(arg)) return gen::scenarioByName(arg);
  throw InvalidArgumentError("'" + arg +
                             "' is neither a readable file nor a registered "
                             "scenario (expected " +
                             gen::registeredScenarioNames() + ")");
}

int cmdList() {
  for (const gen::RegistryEntry& entry : gen::scenarioRegistry()) {
    std::printf("%-14s %-9s %s\n", entry.name.c_str(), entry.kind.c_str(),
                entry.description.c_str());
  }
  return 0;
}

int cmdCheck(const std::string& arg, bool stats) {
  const dpm::ScenarioSpec spec = resolveSpec(arg);
  std::printf("OK: scenario '%s' — %zu objects, %zu properties, "
              "%zu constraints, %zu problems, %zu requirements\n",
              spec.name.c_str(), spec.objects.size(), spec.properties.size(),
              spec.constraints.size(), spec.problems.size(),
              spec.requirements.size());
  if (stats) {
    std::printf("%s",
                gen::formatStats(gen::computeStats(spec), spec.name).c_str());
  }
  return 0;
}

int cmdGen(int argc, char** argv) {
  std::string source;
  std::string outPath;
  std::uint64_t seed = 0;
  bool haveSeed = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
      haveSeed = true;
    } else if ((arg == "-o" || arg == "--out") && i + 1 < argc) {
      outPath = argv[++i];
    } else if (source.empty()) {
      source = arg;
    } else {
      return usage();
    }
  }
  if (source.empty()) return usage();

  std::string text;
  gen::GenParams params;
  if (readFile(source, text)) {
    try {
      params = gen::parseParams(text);
    } catch (const Error& e) {
      throw InvalidArgumentError(source + ": " + e.what());
    }
  } else {
    params = gen::zooPreset(source);
  }
  const gen::GeneratedScenario result =
      haveSeed ? gen::generate(params, seed) : gen::generate(params);
  const std::string dddlText = dddl::write(result.spec);
  if (outPath.empty()) {
    std::printf("%s", dddlText.c_str());
  } else {
    std::ofstream out(outPath, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", outPath.c_str());
      return 1;
    }
    out << dddlText;
    std::fprintf(stderr, "wrote %s: %zu bytes, %zu constraints\n",
                 outPath.c_str(), dddlText.size(),
                 result.spec.constraints.size());
  }
  return 0;
}

int cmdPropagate(const std::string& arg) {
  const dpm::ScenarioSpec spec = resolveSpec(arg);
  dpm::DesignProcessManager mgr(
      dpm::DesignProcessManager::Options{.adpm = true});
  dpm::instantiate(spec, mgr);
  const constraint::Propagator prop;
  const constraint::PropagationResult result = prop.run(mgr.network());
  std::printf("%s: %zu properties, %zu constraints (%zu active), "
              "%zu revises, %zu passes, %zu violated\n",
              spec.name.c_str(), spec.properties.size(),
              spec.constraints.size(),
              mgr.network().activeConstraintCount(), result.evaluations,
              result.passes, result.violated.size());
  return result.anyViolation() ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];

  try {
    if (command == "list") return cmdList();
    if (command == "gen") return cmdGen(argc, argv);
    if (argc < 3) return usage();

    if (command == "dump") {
      std::printf("%s", dddl::write(gen::scenarioByName(argv[2])).c_str());
      return 0;
    }
    if (command == "check") {
      const bool stats = std::strcmp(argv[2], "--stats") == 0;
      if (stats && argc < 4) return usage();
      return cmdCheck(stats ? argv[3] : argv[2], stats);
    }
    if (command == "roundtrip") {
      const dpm::ScenarioSpec original = resolveSpec(argv[2]);
      const std::string text = dddl::write(original);
      const dpm::ScenarioSpec reparsed = dddl::parse(text);
      const bool same =
          dddl::write(reparsed) == text &&
          reparsed.properties.size() == original.properties.size() &&
          reparsed.constraints.size() == original.constraints.size() &&
          reparsed.problems.size() == original.problems.size();
      std::printf("%s: %zu chars of DDDL, %s\n", argv[2], text.size(),
                  same ? "round-trip OK" : "ROUND-TRIP MISMATCH");
      return same ? 0 : 1;
    }
    if (command == "propagate") return cmdPropagate(argv[2]);
  } catch (const adpm::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
