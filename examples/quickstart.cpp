// Quickstart: the ADPM library in ~80 lines.
//
// Builds a miniature two-team design problem (the paper's receiver power /
// gain budget from Section 2.1), runs one TeamSim simulation under each
// flow, and prints the comparison.
//
//   $ ./quickstart
#include <cstdio>

#include "dpm/scenario.hpp"
#include "teamsim/engine.hpp"
#include "teamsim/statwindow.hpp"

using namespace adpm;

dpm::ScenarioSpec makeScenario() {
  dpm::ScenarioSpec s;
  s.name = "quickstart";

  // Design objects: the system plus two concurrently-designed subsystems.
  s.addObject("system");
  s.addObject("frontend", "system");
  s.addObject("deserializer", "system");

  // Properties (design variables and requirements).  a_i with range E_i.
  const auto pm = s.addProperty("P_M", "system",
                                interval::Domain::continuous(50, 300), "mW");
  const auto gmin = s.addProperty("G_min", "system",
                                  interval::Domain::continuous(10, 100));
  const auto pf = s.addProperty("P_f", "frontend",
                                interval::Domain::continuous(0, 200), "mW");
  const auto gf = s.addProperty("G_f", "frontend",
                                interval::Domain::continuous(1, 20));
  const auto ps = s.addProperty("P_s", "deserializer",
                                interval::Domain::continuous(0, 200), "mW");
  const auto gs = s.addProperty("G_s", "deserializer",
                                interval::Domain::continuous(1, 20));

  // Constraints.  The paper's example c1: P_f + P_s <= P_M, plus a gain
  // budget and simple power models tying gain to power in each subsystem.
  s.addConstraint({"power-budget", s.pvar(pf) + s.pvar(ps),
                   constraint::Relation::Le, s.pvar(pm), {}});
  s.addConstraint({"gain-budget", s.pvar(gf) * s.pvar(gs),
                   constraint::Relation::Ge, s.pvar(gmin), {}});
  s.addConstraint({"fe-power-model", s.pvar(pf), constraint::Relation::Eq,
                   10.0 * s.pvar(gf), {}});
  s.addConstraint({"ser-power-model", s.pvar(ps), constraint::Relation::Eq,
                   5.0 * s.pvar(gs), {}});

  // Problems (I_i, O_i, T_i) and their owners.
  const auto top = s.addProblem({"Top", "system", "team-leader",
                                 {}, {pm, gmin}, {0, 1},
                                 std::nullopt, {}, true});
  s.addProblem({"Frontend", "frontend", "alice", {pm}, {pf, gf}, {2},
                top, {}, true});
  s.addProblem({"Deserializer", "deserializer", "bob", {pm}, {ps, gs}, {3},
                top, {}, true});

  // Initial top-level requirements.
  s.require(pm, 150.0);
  s.require(gmin, 30.0);
  return s;
}

int main() {
  const dpm::ScenarioSpec scenario = makeScenario();

  for (const bool adpm : {false, true}) {
    teamsim::SimulationOptions options;
    options.adpm = adpm;  // the paper's lambda flag
    options.seed = 2001;

    teamsim::SimulationEngine engine(scenario, options);
    const teamsim::SimulationResult result = engine.run();

    std::printf("\n%s\n", teamsim::renderStatisticsWindow(engine).c_str());
    std::printf("completed=%s operations=%zu evaluations=%zu spins=%zu\n",
                result.completed ? "yes" : "no", result.operations,
                result.evaluations, result.spins);
  }
  return 0;
}
