// The MEMS pressure-sensing design case (paper, Section 3.2, case 1), run
// under both process flows with live statistics, plus the Fig. 8-style
// statistics window and history strips.
//
//   $ ./sensing_system [seed]
#include <cstdio>
#include <cstdlib>

#include "scenarios/sensing.hpp"
#include "teamsim/engine.hpp"
#include "teamsim/statwindow.hpp"

using namespace adpm;

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  const dpm::ScenarioSpec scenario = scenarios::sensingSystemScenario();
  std::printf("Scenario '%s': %zu properties, %zu constraints, %zu problems\n",
              scenario.name.c_str(), scenario.properties.size(),
              scenario.constraints.size(), scenario.problems.size());

  for (const bool adpm : {false, true}) {
    teamsim::SimulationOptions options;
    options.adpm = adpm;
    options.seed = seed;

    teamsim::SimulationEngine engine(scenario, options);
    const teamsim::SimulationResult result = engine.run();

    std::printf("\n%s\n", teamsim::renderStatisticsWindow(engine).c_str());
    std::printf("%s",
                teamsim::renderHistoryStrip(engine.trace(), "violationsFound")
                    .c_str());
    std::printf("%s",
                teamsim::renderHistoryStrip(engine.trace(), "evaluations")
                    .c_str());
    std::printf("%s",
                teamsim::renderHistoryStrip(engine.trace(), "spins").c_str());

    // Final design values for the completed run.
    if (result.completed) {
      std::printf("\nFinal design (%s):\n",
                  adpm ? "ADPM" : "conventional");
      const auto& net = engine.manager().network();
      for (const auto pid : net.propertyIds()) {
        const auto& p = net.property(pid);
        if (p.bound()) {
          std::printf("  %-14s = %-12g %s\n", p.name.c_str(), *p.value,
                      p.unit.c_str());
        }
      }
    }
  }
  return 0;
}
