// The paper's Section 2.4 walkthrough, scripted end to end, printing the
// Minerva III browser views of Figs. 2, 3 and 4 from live state.
//
// Cast: a team leader, a device engineer (MEMS filter) and an analog circuit
// designer (LNA + mixer).  Story beats:
//   1. the device engineer adjusts the beam length to ~13 um to hit the
//      channel frequency and completes an initial filter,
//   2. the circuit designer inspects the object browser (Fig. 2): the load
//      inductor has the smallest feasible window, so it is designed first,
//   3. the constraint & property browser (Fig. 3) shows Diff-pair-W in 3
//      constraints (beta = 3); the designer sizes it to the smallest
//      potentially feasible value, 2.5 um, to save power,
//   4. the total-gain requirement is violated; the team leader then tightens
//      the input impedance requirement to 40 Ohm, adding a second violation
//      (Fig. 4: Diff-pair-W has 2 connected violations, alpha = 2),
//   5. widening the differential pair to 3.5 um fixes both violations in a
//      single operation.
#include <cstdio>

#include "dpm/browser.hpp"
#include "dpm/scenario.hpp"
#include "scenarios/walkthrough.hpp"

using namespace adpm;

namespace {

void banner(const char* text) {
  std::printf("\n==== %s ====\n", text);
}

dpm::Operation synthesis(dpm::ProblemId problem, const char* designer,
                         std::size_t property, double value) {
  dpm::Operation op;
  op.kind = dpm::OperatorKind::Synthesis;
  op.problem = problem;
  op.designer = designer;
  op.assignments.emplace_back(
      constraint::PropertyId{static_cast<std::uint32_t>(property)}, value);
  return op;
}

void reportViolations(const dpm::DesignProcessManager& mgr) {
  const auto violations = mgr.knownViolations();
  if (violations.empty()) {
    std::printf("  (no violations)\n");
    return;
  }
  for (const auto cid : violations) {
    std::printf("  VIOLATED: %s  [%s]\n",
                mgr.network().constraint(cid).name().c_str(),
                mgr.network().constraint(cid).str().c_str());
  }
}

}  // namespace

int main() {
  const dpm::ScenarioSpec spec = scenarios::walkthroughScenario();
  const scenarios::WalkthroughIds ids = scenarios::walkthroughIds(spec);

  dpm::DesignProcessManager mgr(dpm::DesignProcessManager::Options{.adpm = true});
  dpm::instantiate(spec, mgr);
  mgr.bootstrap();

  const auto lnaProblem =
      dpm::ProblemId{static_cast<std::uint32_t>(ids.lnaProblem)};
  const auto filterProblem =
      dpm::ProblemId{static_cast<std::uint32_t>(ids.filterProblem)};
  const auto topProblem =
      dpm::ProblemId{static_cast<std::uint32_t>(ids.topProblem)};

  banner("1. Device engineer sets the resonator beam length to 13 um");
  mgr.execute(synthesis(filterProblem, "device-engineer", ids.beamLength, 13.0));
  mgr.execute(synthesis(filterProblem, "device-engineer", ids.centerFreq,
                        20600.0 / (13.0 * 13.0)));
  mgr.execute(synthesis(filterProblem, "device-engineer", ids.insertionLoss,
                        248.6 / 13.0));
  reportViolations(mgr);

  banner("2. Object browser: subspaces not found infeasible (Fig. 2)");
  std::printf("%s", dpm::renderObjectBrowser(mgr, "LNA+Mixer").c_str());

  banner("3. Constraint & property browser (Fig. 3)");
  std::printf("%s", dpm::renderConstraintBrowser(mgr, "circuit-designer").c_str());

  banner("4. Circuit designer picks the inductor (0.2 uH), then sizes the "
         "pair at 2.5 um");
  mgr.execute(synthesis(lnaProblem, "circuit-designer", ids.freqInd, 0.2));
  mgr.execute(synthesis(lnaProblem, "circuit-designer", ids.diffPairW, 2.5));
  mgr.execute(synthesis(lnaProblem, "circuit-designer", ids.lnaGain,
                        104.0 * 2.5 * 0.2));
  mgr.execute(synthesis(lnaProblem, "circuit-designer", ids.lnaPower,
                        54.08 * 2.5));
  mgr.execute(synthesis(lnaProblem, "circuit-designer", ids.lnaZin,
                        125.0 / 2.5));
  std::printf("The chosen values lead to a violation of the global gain "
              "requirement:\n");
  reportViolations(mgr);

  banner("5. Team leader tightens the input impedance requirement to 40 Ohm");
  mgr.execute(synthesis(topProblem, "team-leader", ids.maxZin, 40.0));
  reportViolations(mgr);

  banner("6. Conflict-resolution view (Fig. 4): alpha(Diff-pair-W) = 2");
  std::printf("%s", dpm::renderConstraintBrowser(mgr, "circuit-designer").c_str());

  banner("7. Widening the differential pair to 3.5 um fixes both violations");
  dpm::Operation repair =
      synthesis(lnaProblem, "circuit-designer", ids.diffPairW, 3.5);
  repair.triggeredBy = *mgr.network().findConstraint("TotalGain-C13");
  mgr.execute(repair);
  // The derived LNA figures follow their models (tool re-runs).
  mgr.execute(synthesis(lnaProblem, "circuit-designer", ids.lnaGain,
                        104.0 * 3.5 * 0.2));
  mgr.execute(synthesis(lnaProblem, "circuit-designer", ids.lnaPower,
                        54.08 * 3.5));
  mgr.execute(synthesis(lnaProblem, "circuit-designer", ids.lnaZin,
                        125.0 / 3.5));
  reportViolations(mgr);
  std::printf("Both violations have been fixed with a single sizing "
              "iteration, as in the paper's Section 2.4.3.\n");

  banner("Final state");
  std::printf("%s", dpm::renderObjectBrowser(mgr, "LNA+Mixer").c_str());
  std::printf("design complete: %s\n", mgr.designComplete() ? "yes" : "no");
  return 0;
}
