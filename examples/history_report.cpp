// Design-history mining: replay a finished TeamSim run through the journaled
// H_n (paper §2.1) and print a post-mortem report — who did what, which
// properties churned, when violations appeared and how long they lived, and
// where the design spins happened.
//
//   $ ./history_report [adpm|conventional] [seed]
#include <cstdio>
#include <cstring>
#include <string>

#include "scenarios/receiver.hpp"
#include "teamsim/engine.hpp"
#include "util/table.hpp"

using namespace adpm;

int main(int argc, char** argv) {
  teamsim::SimulationOptions options;
  options.adpm = !(argc > 1 && std::strcmp(argv[1], "conventional") == 0);
  options.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 4;

  const dpm::ScenarioSpec spec = scenarios::receiverScenario();
  teamsim::SimulationEngine engine(spec, options);
  const teamsim::SimulationResult result = engine.run();
  const dpm::DesignProcessManager& mgr = engine.manager();
  const dpm::DesignHistory& h = mgr.designHistory();

  std::printf("Run: %s, seed %llu — %s in %zu operations\n\n",
              options.adpm ? "ADPM" : "conventional",
              static_cast<unsigned long long>(options.seed),
              result.completed ? "completed" : "DID NOT COMPLETE",
              result.operations);

  // Per-designer effort.
  util::TextTable effort;
  effort.header({"Designer", "Operations", "First op", "Last op"});
  for (const std::string& designer : mgr.designers()) {
    const auto stages = h.stagesBy(designer);
    effort.row({designer, std::to_string(stages.size()),
                stages.empty() ? "-" : std::to_string(stages.front()),
                stages.empty() ? "-" : std::to_string(stages.back())});
  }
  std::printf("Per-designer effort:\n%s\n", effort.render().c_str());

  // Property churn: the most reassigned properties.
  util::TextTable churn;
  churn.header({"Property", "Assignments", "Stages", "Final value"});
  struct Row {
    std::string name;
    std::size_t count;
    std::string stages;
    std::string finalValue;
  };
  std::vector<Row> rows;
  for (const auto pid : mgr.network().propertyIds()) {
    const std::size_t count = h.assignmentCount(pid);
    if (count == 0) continue;
    const auto stages = h.assignmentStages(pid);
    std::string stageText;
    for (std::size_t i = 0; i < stages.size() && i < 6; ++i) {
      if (i) stageText += ",";
      stageText += std::to_string(stages[i]);
    }
    if (stages.size() > 6) stageText += ",...";
    const auto final = h.valueAt(pid, h.stages());
    rows.push_back({mgr.network().property(pid).name, count, stageText,
                    final ? util::formatNumber(*final) : "-"});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.count > b.count; });
  for (const Row& r : rows) {
    churn.row({r.name, std::to_string(r.count), r.stages, r.finalValue});
  }
  std::printf("Property churn (most reassigned first):\n%s\n",
              churn.render().c_str());

  // Violation lifetimes.
  util::TextTable viols;
  viols.header({"Constraint", "First violated at op", "Cross-subsystem"});
  for (const auto cid : mgr.network().constraintIds()) {
    const auto first = h.firstViolation(cid);
    if (!first) continue;
    viols.row({mgr.network().constraint(cid).name(), std::to_string(*first),
               mgr.crossSubsystem(cid) ? "yes" : ""});
  }
  std::printf("Violations:\n%s\n", viols.render().c_str());

  // Spins.
  const auto spins = h.spinStages();
  std::printf("Design spins (%zu): ", spins.size());
  for (std::size_t i = 0; i < spins.size(); ++i) {
    std::printf("%s%zu", i ? ", " : "", spins[i]);
  }
  std::printf("\n");
  return result.completed ? 0 : 1;
}
