// TeamSim command-line runner: run any registered scenario, a DDDL file, or
// a generated scenario from a paramfile under either process flow, with
// optional per-operation tracing.
//
//   $ ./teamsim_cli --scenario receiver --adpm --seed 42 --trace
//   $ ./teamsim_cli --scenario zoo-small --conventional --seeds 30
//   $ ./teamsim_cli --file myscenario.dddl --adpm
//   $ ./teamsim_cli --gen scenarios/zoo/zoo-toy.json --gen-seed 7 --adpm
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "dddl/parser.hpp"
#include "gen/generator.hpp"
#include "gen/registry.hpp"
#include "teamsim/experiment.hpp"
#include "teamsim/export.hpp"
#include "teamsim/graphviz.hpp"
#include "teamsim/statwindow.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

using namespace adpm;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: teamsim_cli [options]\n"
      "  --scenario <name>                           registered scenario\n"
      "  --file <path.dddl>                          DDDL scenario file\n"
      "  --gen <paramfile.json>                      generate from paramfile\n"
      "  --gen-seed <n>                              generator seed override\n"
      "  --adpm | --conventional                     process flow (default ADPM)\n"
      "  --seed <n>                                  single-run seed (default 1)\n"
      "  --seeds <n>                                 run a sweep of n seeds\n"
      "  --max-ops <n>                               operation cap (default 5000)\n"
      "  --trace                                     per-operation trace\n"
      "  --export <trace.csv>                        write the trace as CSV\n"
      "  --dot <network.dot>                         Graphviz constraint network\n");
  return 2;
}

void printTrace(const teamsim::SimulationEngine& engine) {
  util::TextTable t;
  t.header({"op", "designer", "kind", "viol.found", "viol.known", "evals",
            "spin", "rationale"});
  const auto& history = engine.manager().history();
  for (const auto& s : engine.trace()) {
    const std::string& rationale =
        s.opIndex <= history.size() ? history[s.opIndex - 1].op.rationale
                                    : std::string();
    t.row({std::to_string(s.opIndex), s.designer,
           dpm::operatorKindName(s.kind), std::to_string(s.violationsFound),
           std::to_string(s.violationsKnown), std::to_string(s.evaluations),
           s.spin ? "*" : "", rationale});
  }
  std::printf("%s", t.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenarioName = "receiver";
  std::string file;
  std::string genFile;
  std::uint64_t genSeed = 0;
  bool haveGenSeed = false;
  bool adpm = true;
  std::uint64_t seed = 1;
  std::size_t seeds = 0;
  std::size_t maxOps = 5000;
  bool trace = false;
  std::string exportPath;
  std::string dotPath;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--scenario") {
      scenarioName = next();
    } else if (arg == "--file") {
      file = next();
    } else if (arg == "--gen") {
      genFile = next();
    } else if (arg == "--gen-seed") {
      genSeed = std::strtoull(next(), nullptr, 10);
      haveGenSeed = true;
    } else if (arg == "--adpm") {
      adpm = true;
    } else if (arg == "--conventional") {
      adpm = false;
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--seeds") {
      seeds = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--max-ops") {
      maxOps = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--trace") {
      trace = true;
    } else if (arg == "--export") {
      exportPath = next();
    } else if (arg == "--dot") {
      dotPath = next();
    } else {
      return usage();
    }
  }

  try {
    dpm::ScenarioSpec spec;
    if (!genFile.empty()) {
      const gen::GenParams params = gen::loadParams(genFile);
      spec = (haveGenSeed ? gen::generate(params, genSeed)
                          : gen::generate(params))
                 .spec;
    } else if (!file.empty()) {
      std::ifstream in(file);
      if (!in) {
        std::fprintf(stderr, "cannot open '%s'\n", file.c_str());
        return 1;
      }
      std::ostringstream text;
      text << in.rdbuf();
      spec = dddl::parse(text.str());
    } else {
      spec = gen::scenarioByName(scenarioName);
    }

    teamsim::SimulationOptions options;
    options.adpm = adpm;
    options.seed = seed;
    options.maxOperations = maxOps;

    if (seeds > 0) {
      const teamsim::CellStats cell = teamsim::runSeedSweep(
          spec, options, seeds, seed,
          spec.name + (adpm ? "/ADPM" : "/conventional"));
      std::printf("%s: %zu/%zu completed\n", cell.label.c_str(),
                  cell.completed, cell.runs);
      std::printf("  operations  %.1f +/- %.1f  [%g, %g]\n",
                  cell.operations.mean(), cell.operations.stddev(),
                  cell.operations.min(), cell.operations.max());
      std::printf("  evaluations %.1f +/- %.1f\n", cell.evaluations.mean(),
                  cell.evaluations.stddev());
      std::printf("  spins       %.2f\n", cell.spins.mean());
      return 0;
    }

    teamsim::SimulationEngine engine(spec, options);
    const teamsim::SimulationResult result = engine.run();
    if (trace) printTrace(engine);
    if (!exportPath.empty()) {
      std::ofstream out(exportPath);
      teamsim::writeTraceCsv(out, engine.trace());
      std::printf("trace written to %s\n", exportPath.c_str());
    }
    if (!dotPath.empty()) {
      std::ofstream out(dotPath);
      out << teamsim::toGraphviz(engine.manager());
      std::printf("constraint network written to %s\n", dotPath.c_str());
    }
    std::printf("%s\n", teamsim::renderStatisticsWindow(engine).c_str());
    return result.completed ? 0 : 1;
  } catch (const adpm::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
