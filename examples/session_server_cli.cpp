// TCP design-session server: hosts a service::SessionStore behind the wire
// protocol (src/net) for multi-process clients.
//
//   $ ./session_server_cli --port 7101 --threads 4 --wal-dir /tmp/wal
//   $ ./session_server_cli --port 0 --port-file /tmp/port   # ephemeral port
//   $ ./session_server_cli --wal-dir /tmp/wal --recover     # resume after a crash
//   $ ./session_server_cli --self-check                     # loopback smoke
//
// Clients are session_service_cli --connect (the wire load driver) or any
// net::Client user.  SIGINT/SIGTERM trigger a graceful shutdown: stop
// accepting, announce Shutdown to every peer, drain the session strands
// (flushing their WAL appends), then flush and close the connections.  The
// exit code reports how that went:
//
//   0  clean drain (every queued command ran and every WAL is sealed)
//   3  forced stop (the drain deadline expired; queued work was abandoned)
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/server.hpp"
#include "net/wire_load.hpp"
#include "gen/registry.hpp"
#include "service/store.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/table.hpp"

using namespace adpm;

namespace {

std::atomic<int> g_signal{0};

void onSignal(int sig) { g_signal.store(sig); }

int usage() {
  std::fprintf(
      stderr,
      "usage: session_server_cli [options]\n"
      "  --host <addr>             bind address (default 127.0.0.1)\n"
      "  --port <n>                TCP port; 0 = ephemeral (default 0)\n"
      "  --port-file <path>        write the bound port to <path>\n"
      "  --threads <n>             worker threads (default 4)\n"
      "  --wal-dir <dir>           journal sessions to <dir>/<id>.wal\n"
      "  --recover                 rebuild sessions from --wal-dir at start\n"
      "  --salvage                 recover damaged logs by truncation\n"
      "  --segment-ops <n>         rotate WAL segments past <n> operations\n"
      "  --segment-bytes <n>       rotate WAL segments past <n> bytes\n"
      "  --checkpoint-every <n>    durable state checkpoint every <n> ops\n"
      "  --checkpoint-keep <n>     checkpoints retained by compaction "
      "(default 2)\n"
      "  --no-open                 refuse remote Open frames\n"
      "  --command-timeout-ms <n>  queue-time deadline for remote commands\n"
      "  --drain-timeout-ms <n>    graceful-shutdown drain budget "
      "(default 5000)\n"
      "  --fault-plan <spec>       arm failpoints, e.g. "
      "'net.write=short-write:every=50'\n"
      "  --self-check              loopback smoke: serve, drive 4 wire\n"
      "                            sessions in-process, verify digests, "
      "drain\n");
  return 2;
}

/// Registry for the server's Open-by-name path; specs are cached so the
/// resolver can hand out stable pointers.
const dpm::ScenarioSpec* resolveScenario(const std::string& name) {
  static std::map<std::string, dpm::ScenarioSpec> cache;
  static std::mutex mutex;
  std::lock_guard<std::mutex> lock(mutex);
  auto it = cache.find(name);
  if (it == cache.end()) {
    try {
      it = cache.emplace(name, gen::scenarioByName(name)).first;
    } catch (const adpm::Error&) {
      return nullptr;
    }
  }
  return &it->second;
}

void printSessions(service::SessionStore& store) {
  util::TextTable t;
  t.header({"session", "stage", "complete", "evals", "violations", "digest"});
  for (const std::string& id : store.ids()) {
    const service::SessionSnapshot snap = store.snapshot(id).get();
    t.row({snap.id, std::to_string(snap.stage), snap.complete ? "yes" : "no",
           std::to_string(snap.evaluations), std::to_string(snap.violations),
           snap.digest});
  }
  std::printf("%s", t.render().c_str());
}

int selfCheck(service::SessionStore& store, net::Server& server,
              std::uint16_t port, std::chrono::milliseconds drainBudget) {
  net::WireLoadOptions load;
  load.port = port;
  load.sessions = 4;
  load.scenario = "sensing";
  load.idPrefix = "selfcheck-";
  load.sim.seed = 7;
  const net::WireLoadReport report = runWireLoad(load);
  const bool drained = server.shutdown(drainBudget);
  std::printf(
      "self-check: sessions=%zu completed=%zu operations=%zu "
      "notifications=%zu digestMismatches=%zu failed=%zu drained=%s\n",
      report.sessions, report.completedSessions, report.operations,
      report.notificationsReceived, report.digestMismatches,
      report.failedSessions, drained ? "yes" : "no");
  printSessions(store);
  const bool ok = report.completedSessions == report.sessions &&
                  report.digestMismatches == 0 && report.failedSessions == 0 &&
                  drained;
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string portFile;
  unsigned threads = 4;
  std::string walDir;
  bool recover = false;
  bool salvage = false;
  std::size_t segmentOps = 0;
  std::size_t segmentBytes = 0;
  std::size_t checkpointEvery = 0;
  std::size_t checkpointKeep = 2;
  bool allowOpen = true;
  long commandTimeoutMs = 0;
  long drainTimeoutMs = 5000;
  std::string faultPlan;
  bool selfCheckMode = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--host") {
      host = next();
    } else if (arg == "--port") {
      port = static_cast<std::uint16_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--port-file") {
      portFile = next();
    } else if (arg == "--threads") {
      threads = static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--wal-dir") {
      walDir = next();
    } else if (arg == "--recover") {
      recover = true;
    } else if (arg == "--salvage") {
      salvage = true;
    } else if (arg == "--segment-ops") {
      segmentOps = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--segment-bytes") {
      segmentBytes = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--checkpoint-every") {
      checkpointEvery = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--checkpoint-keep") {
      checkpointKeep = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--no-open") {
      allowOpen = false;
    } else if (arg == "--command-timeout-ms") {
      commandTimeoutMs = std::strtol(next(), nullptr, 10);
    } else if (arg == "--drain-timeout-ms") {
      drainTimeoutMs = std::strtol(next(), nullptr, 10);
    } else if (arg == "--fault-plan") {
      faultPlan = next();
    } else if (arg == "--self-check") {
      selfCheckMode = true;
    } else {
      return usage();
    }
  }

  try {
    if (!faultPlan.empty()) {
#if defined(ADPM_FAULT_INJECTION) && ADPM_FAULT_INJECTION
      util::FaultRegistry::instance().armFromSpec(faultPlan);
#else
      std::fprintf(stderr,
                   "--fault-plan ignored: binary built without "
                   "-DADPM_FAULT_INJECTION=ON\n");
#endif
    }

    service::SessionStore::Options storeOptions;
    storeOptions.executor.threads = threads;
    storeOptions.walDir = walDir;
    storeOptions.session.segmentOps = segmentOps;
    storeOptions.session.segmentBytes = segmentBytes;
    storeOptions.session.checkpointEvery = checkpointEvery;
    storeOptions.session.checkpointKeep = checkpointKeep;
    if (salvage) storeOptions.recovery = service::RecoveryPolicy::Salvage;
    service::SessionStore store{std::move(storeOptions)};

    if (recover) {
      if (walDir.empty()) {
        std::fprintf(stderr, "--recover needs --wal-dir\n");
        return 2;
      }
      const std::vector<std::string> ids = store.recover();
      std::printf("recovered %zu session(s) from %s\n", ids.size(),
                  walDir.c_str());
      for (const service::RecoveryEvent& event : store.recoverReport()) {
        if (event.sessionLost) {
          std::fprintf(stderr, "lost: %s: %s\n", event.path.c_str(),
                       event.detail.c_str());
          continue;
        }
        if (event.salvaged) {
          std::fprintf(stderr, "salvaged: %s: kept %zu stage(s)\n",
                       event.path.c_str(), event.keptStage);
        }
        if (event.checkpointUsed) {
          std::printf(
              "checkpoint: %s: restored seq %zu at stage %zu, replayed "
              "%zu op(s) across %zu segment(s)\n",
              event.path.c_str(), event.checkpointSeq, event.checkpointStage,
              event.operationsReplayed, event.segmentsReplayed);
        }
        if (event.checkpointFallbacks > 0) {
          std::fprintf(stderr,
                       "checkpoint: %s: %zu damaged checkpoint(s) degraded "
                       "to an older one or full replay\n",
                       event.path.c_str(), event.checkpointFallbacks);
        }
      }
    }

    net::Server::Options serverOptions;
    serverOptions.host = host;
    serverOptions.port = port;
    serverOptions.allowOpen = allowOpen;
    serverOptions.scenarioByName = resolveScenario;
    serverOptions.commandTimeout = std::chrono::milliseconds(commandTimeoutMs);
    net::Server server(store, serverOptions);
    const std::uint16_t bound = server.start();

    if (!portFile.empty()) {
      // Written atomically (temp + rename): a supervisor polling the file
      // must never read a half-written port number.
      const std::string tmp = portFile + ".tmp";
      std::FILE* f = std::fopen(tmp.c_str(), "w");
      bool ok = f != nullptr;
      if (f) {
        ok = std::fprintf(f, "%u\n", static_cast<unsigned>(bound)) > 0;
        ok = std::fclose(f) == 0 && ok;
      }
      if (ok) ok = std::rename(tmp.c_str(), portFile.c_str()) == 0;
      if (!ok) {
        std::remove(tmp.c_str());
        std::fprintf(stderr, "cannot write --port-file %s\n",
                     portFile.c_str());
        server.kill();
        return 2;
      }
    }
    std::printf("listening on %s:%u\n", host.c_str(),
                static_cast<unsigned>(bound));
    std::fflush(stdout);

    if (selfCheckMode) {
      return selfCheck(store, server, bound,
                       std::chrono::milliseconds(drainTimeoutMs));
    }

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    while (g_signal.load() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    const int sig = g_signal.load();
    std::printf("received %s; draining (budget %ld ms)\n",
                sig == SIGINT ? "SIGINT" : "SIGTERM", drainTimeoutMs);
    std::fflush(stdout);

    const bool drained =
        server.shutdown(std::chrono::milliseconds(drainTimeoutMs));
    const net::Server::Stats stats = server.stats();
    std::printf(
        "served: conns=%zu frames=%zu results=%zu errors=%zu pushes=%zu "
        "subscriptions=%zu protocolErrors=%zu timeouts=%zu\n",
        stats.accepted, stats.frames, stats.results, stats.errors,
        stats.pushes, stats.subscriptions, stats.protocolErrors,
        stats.timeouts);
    printSessions(store);
    if (!walDir.empty()) {
      std::printf("operation logs in %s (restart with --recover to resume)\n",
                  walDir.c_str());
    }
    std::printf("%s\n", drained ? "clean drain" : "forced stop");
    return drained ? 0 : 3;
  } catch (const adpm::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
