#!/usr/bin/env bash
# Run the google-benchmark suites and record machine-readable results,
# seeding the repo's performance trajectory.
#
#   scripts/bench_json.sh [build-dir] [benchmark-filter]
#
# Writes BENCH_propagation.json and BENCH_service.json in the repository
# root.  The interesting counters:
#   * BM_MineGuidance .../mode:0 vs mode:1 — expression sweeps per mine
#     (sweeps_per_mine) and wall time, reference tree-walk engine vs the
#     compiled-AD fast engine with a cold cache (the Θ(Σβᵢ) → Θ(nc) claim);
#   * mode:2 — the fast engine over an unchanged box (generation-keyed cache
#     hit, the what-if reporting steady state);
#   * BM_PropagationFixpoint / BM_Hc4Revise — the zero-allocation hot path;
#   * BM_ServiceFleet workers:1/2/4 — ops_per_sec and sessions_per_sec of
#     the concurrent session service; the 4-vs-1 worker ratio is the scaling
#     claim (needs >1 hardware thread to mean anything);
#   * BM_ServiceFleetJournaled — the same fleet with the write-ahead log on.
# Build in Release (or the default RelWithDebInfo) before trusting numbers.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
filter="${2:-}"

run_suite() {
  local bench="$1" out="$2"
  if [ ! -x "$bench" ]; then
    echo "error: $bench not built (cmake --build $build)" >&2
    exit 1
  fi
  local args=(--benchmark_format=json --benchmark_out="$out"
              --benchmark_out_format=json)
  if [ -n "$filter" ]; then
    args+=("--benchmark_filter=$filter")
  fi
  "$bench" "${args[@]}"
  echo "wrote $out"
}

run_suite "$build/bench/bench_propagation" "$repo/BENCH_propagation.json"
run_suite "$build/bench/bench_service" "$repo/BENCH_service.json"
