#!/usr/bin/env bash
# Run the google-benchmark propagation suite and record machine-readable
# results, seeding the repo's performance trajectory.
#
#   scripts/bench_json.sh [build-dir] [benchmark-filter]
#
# Writes BENCH_propagation.json in the repository root.  The interesting
# counters:
#   * BM_MineGuidance .../mode:0 vs mode:1 — expression sweeps per mine
#     (sweeps_per_mine) and wall time, reference tree-walk engine vs the
#     compiled-AD fast engine with a cold cache (the Θ(Σβᵢ) → Θ(nc) claim);
#   * mode:2 — the fast engine over an unchanged box (generation-keyed cache
#     hit, the what-if reporting steady state);
#   * BM_PropagationFixpoint / BM_Hc4Revise — the zero-allocation hot path.
# Build in Release (or the default RelWithDebInfo) before trusting numbers.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
filter="${2:-}"

bench="$build/bench/bench_propagation"
if [ ! -x "$bench" ]; then
  echo "error: $bench not built (cmake --build $build --target bench_propagation)" >&2
  exit 1
fi

args=(--benchmark_format=json --benchmark_out="$repo/BENCH_propagation.json"
      --benchmark_out_format=json)
if [ -n "$filter" ]; then
  args+=("--benchmark_filter=$filter")
fi

"$bench" "${args[@]}"
echo "wrote $repo/BENCH_propagation.json"
