#!/usr/bin/env bash
# Run the google-benchmark suites and record machine-readable results,
# seeding the repo's performance trajectory.
#
#   scripts/bench_json.sh [build-dir] [benchmark-filter]
#
# Writes BENCH_propagation.json and BENCH_service.json in the repository
# root.  The interesting counters:
#   * BM_MineGuidance .../mode:0 vs mode:1 — expression sweeps per mine
#     (sweeps_per_mine) and wall time, reference tree-walk engine vs the
#     compiled-AD fast engine with a cold cache (the Θ(Σβᵢ) → Θ(nc) claim);
#   * mode:2 — the fast engine over an unchanged box (generation-keyed cache
#     hit, the what-if reporting steady state);
#   * BM_PropagationFixpoint / BM_Hc4Revise — the zero-allocation hot path;
#   * BM_ServiceFleet workers:1/2/4 — ops_per_sec and sessions_per_sec of
#     the concurrent session service; the 4-vs-1 worker ratio is the scaling
#     claim (needs >1 hardware thread to mean anything);
#   * BM_ServiceFleetJournaled — the same fleet with the write-ahead log on;
#   * BM_Recovery ops:64/640 x ckpt_every:0/48 — crash-recovery wall time
#     and ops_replayed/segments_replayed; with checkpointing on the 640-op
#     point must stay flat relative to the 64-op one (bounded recovery),
#     without it the cost is linear in the log length;
#   * BM_ServiceWire clients:1/2/4 — the fleet driven over TCP (one
#     connection + shadow per session): end-to-end ops_per_sec, mean Apply
#     RTT, and NotificationBus downgrades under write backpressure.
#
# Numbers from a Debug, sanitizer, or fault-injection build are
# meaningless; the script refuses those configurations unless
# ADPM_BENCH_ALLOW_DEBUG=1 is set, in which case results are written with a
# `.debug.json` suffix so they can never be mistaken for (or committed
# over) trustworthy ones.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
filter="${2:-}"

cache="$build/CMakeCache.txt"
if [ ! -f "$cache" ]; then
  echo "error: $cache not found (configure the build first: cmake -B $build)" >&2
  exit 1
fi

cache_val() {
  sed -n "s/^$1:[A-Z]*=//p" "$cache" | head -n1
}

build_type="$(cache_val CMAKE_BUILD_TYPE)"
untrusted_reasons=()
case "$build_type" in
  # An empty cache entry means the project default, which CMakeLists.txt
  # pins to RelWithDebInfo.
  ""|Release|RelWithDebInfo|MinSizeRel) ;;
  *) untrusted_reasons+=("CMAKE_BUILD_TYPE='$build_type' is not an optimized build") ;;
esac
for opt in ADPM_SANITIZE ADPM_TSAN ADPM_FAULT_INJECTION; do
  case "$(cache_val "$opt")" in
    ON|TRUE|1|YES) untrusted_reasons+=("$opt is ON") ;;
  esac
done

suffix=".json"
if [ "${#untrusted_reasons[@]}" -gt 0 ]; then
  echo "warning: benchmark numbers from $build are NOT trustworthy:" >&2
  for reason in "${untrusted_reasons[@]}"; do
    echo "  - $reason" >&2
  done
  if [ "${ADPM_BENCH_ALLOW_DEBUG:-0}" != "1" ]; then
    echo "refusing to run; rebuild with -DCMAKE_BUILD_TYPE=Release (or set" >&2
    echo "ADPM_BENCH_ALLOW_DEBUG=1 to run anyway — results will be tagged" >&2
    echo "with a .debug.json suffix and must not replace the committed ones)" >&2
    exit 1
  fi
  suffix=".debug.json"
  echo "ADPM_BENCH_ALLOW_DEBUG=1: running anyway, tagging outputs *${suffix}" >&2
fi

run_suite() {
  local bench="$1" out="$2"
  if [ ! -x "$bench" ]; then
    echo "error: $bench not built (cmake --build $build)" >&2
    exit 1
  fi
  local args=(--benchmark_format=json --benchmark_out="$out"
              --benchmark_out_format=json)
  if [ -n "$filter" ]; then
    args+=("--benchmark_filter=$filter")
  fi
  "$bench" "${args[@]}"
  # The cache checks above cover *our* flags; the JSON context records how
  # the google-benchmark library itself was packaged, which they cannot see.
  # A debug libbenchmark inflates harness overhead even under -O2 project
  # code, so surface it rather than letting the context field pass silently.
  if grep -q '"library_build_type": "debug"' "$out"; then
    echo "warning: $out: the installed google-benchmark library is a debug" >&2
    echo "build (context.library_build_type); absolute timings include" >&2
    echo "un-optimized harness overhead even though the benchmarked code" >&2
    echo "is optimized — compare series within this file only" >&2
  fi
  echo "wrote $out"
}

run_suite "$build/bench/bench_propagation" "$repo/BENCH_propagation${suffix}"
run_suite "$build/bench/bench_service" "$repo/BENCH_service${suffix}"
