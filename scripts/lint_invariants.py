#!/usr/bin/env python3
"""Project-invariant linter: repo rules the compiler cannot check.

Rules (each scoped to src/ unless noted):

  failpoints     Every ADPM_FAULT_POINT("name") in src/ is documented in
                 docs/FAILPOINTS.md, and every name documented there still
                 exists in src/ (two-way check).
  canonical-json util::json::serialize is the canonical-JSON producer; only
                 the allowlisted wire/persistence files may call it, so no
                 module grows a second, subtly different encoder.
  raw-io         Durability and stdio primitives (fsync/fwrite/fopen/
                 truncate/...) appear only in the WAL, the salvage path,
                 and net/ — everything else must go through those layers.
  std-mutex      std::mutex-family types appear only inside
                 util/thread_annotations.hpp; raw primitives are invisible
                 to Clang's thread-safety analysis.

Matching happens on comment- and string-stripped source (except the
failpoint scan, which reads names out of string literals), so prose
mentioning "std::mutex" or an error message containing "fsync" does not
trip a rule.

Exit status: 0 clean, 1 findings, 2 usage/environment error.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
FAILPOINT_DOC = REPO / "docs" / "FAILPOINTS.md"

# -- rule configuration -------------------------------------------------------

# Files allowed to produce canonical JSON (util::json::serialize callers).
# dpm/operation_io owns operation encoding; wal persists records; gen/params
# emits run manifests; net frames results/notifications onto the wire.
CANONICAL_JSON_ALLOW = {
    "dpm/operation_io.cpp",
    "gen/params.cpp",
    "net/client.cpp",
    "net/reactor.cpp",
    "net/server.cpp",
    "service/wal.cpp",
}

# Durability/stdio tokens and the files allowed to use them.  service/wal.cpp
# owns the append/flush/fsync/rollback path; service/session.cpp owns salvage
# truncation; net/ owns socket I/O.
RAW_IO_TOKENS = (
    "fsync",
    "fdatasync",
    "fwrite",
    "fflush",
    "fopen",
    "fclose",
    "fileno",
    "truncate",
    "resize_file",
)
RAW_IO_ALLOW_FILES = {"service/wal.cpp", "service/session.cpp"}
RAW_IO_ALLOW_DIRS = ("net/",)

# std locking primitives; only the annotated wrappers may touch them.
STD_MUTEX_RE = re.compile(
    r"\bstd::(?:mutex|timed_mutex|recursive_mutex|shared_mutex|"
    r"lock_guard|unique_lock|shared_lock|scoped_lock|condition_variable"
    r"(?:_any)?)\b"
)
STD_MUTEX_ALLOW = {"util/thread_annotations.hpp"}

FAULT_POINT_RE = re.compile(r'ADPM_FAULT_POINT\(\s*"([^"]+)"\s*\)')
# Names in the FAILPOINTS.md table: a backticked name in the first column.
DOC_NAME_RE = re.compile(r"^\|\s*`([a-z]+\.[a-z_]+)`", re.MULTILINE)


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving line numbers."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            end = text.find("\n", i)
            i = n if end == -1 else end
        elif c == "/" and nxt == "*":
            end = text.find("*/", i + 2)
            stop = n if end == -1 else end + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:stop]))
            i = stop
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            out.append(quote + " " * max(0, j - i - 1))
            if j < n:
                out.append(quote)
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def source_files():
    return sorted(
        p
        for p in SRC.rglob("*")
        if p.suffix in {".cpp", ".hpp", ".h", ".cc"} and p.is_file()
    )


def rel(p: Path) -> str:
    return p.relative_to(SRC).as_posix()


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def check_failpoints(files) -> list[str]:
    findings = []
    in_src: dict[str, str] = {}
    for p in files:
        text = p.read_text()
        for m in FAULT_POINT_RE.finditer(text):
            in_src.setdefault(m.group(1), f"{rel(p)}:{line_of(text, m.start())}")
    if not FAILPOINT_DOC.is_file():
        return [f"failpoints: {FAILPOINT_DOC.relative_to(REPO)} is missing"]
    in_doc = set(DOC_NAME_RE.findall(FAILPOINT_DOC.read_text()))
    for name in sorted(set(in_src) - in_doc):
        findings.append(
            f"failpoints: src/{in_src[name]}: ADPM_FAULT_POINT(\"{name}\") "
            f"is not documented in docs/FAILPOINTS.md"
        )
    for name in sorted(in_doc - set(in_src)):
        findings.append(
            f"failpoints: docs/FAILPOINTS.md lists `{name}` but no such "
            f"failpoint exists in src/"
        )
    return findings


def check_token_rule(files, rule, pattern, allowed) -> list[str]:
    findings = []
    for p in files:
        name = rel(p)
        if allowed(name):
            continue
        stripped = strip_comments_and_strings(p.read_text())
        for m in pattern.finditer(stripped):
            findings.append(
                f"{rule}: src/{name}:{line_of(stripped, m.start())}: "
                f"'{m.group(0)}' is only allowed in "
                f"{allowed.__doc__}"
            )
    return findings


def main() -> int:
    if not SRC.is_dir():
        print(f"lint_invariants: {SRC} not found", file=sys.stderr)
        return 2
    files = source_files()

    def json_allowed(name: str) -> bool:
        """the canonical JSON producer allowlist (see CANONICAL_JSON_ALLOW)"""
        return name in CANONICAL_JSON_ALLOW

    def raw_io_allowed(name: str) -> bool:
        """service/wal.cpp, service/session.cpp (salvage), and net/"""
        return name in RAW_IO_ALLOW_FILES or name.startswith(RAW_IO_ALLOW_DIRS)

    def mutex_allowed(name: str) -> bool:
        """util/thread_annotations.hpp (the annotated wrappers)"""
        return name in STD_MUTEX_ALLOW

    raw_io_re = re.compile(
        r"(?:\bstd::|::)?\b(?:" + "|".join(RAW_IO_TOKENS) + r")\s*\("
    )
    json_re = re.compile(r"\bjson::serialize\s*\(")

    findings = []
    findings += check_failpoints(files)
    findings += check_token_rule(files, "canonical-json", json_re, json_allowed)
    findings += check_token_rule(files, "raw-io", raw_io_re, raw_io_allowed)
    findings += check_token_rule(files, "std-mutex", STD_MUTEX_RE, mutex_allowed)

    for f in findings:
        print(f)
    if findings:
        print(f"lint_invariants: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"lint_invariants: OK ({len(files)} files checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
