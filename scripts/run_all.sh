#!/usr/bin/env bash
# Build, test, and regenerate every figure of the reproduction.
#
#   scripts/run_all.sh [build-dir]
#
# Leaves test_output.txt and bench_output.txt in the repository root and the
# fig7/fig10 CSV+gnuplot artifacts in the current directory.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"

cmake -B "$build" -G Ninja "$repo"
cmake --build "$build"

ctest --test-dir "$build" 2>&1 | tee "$repo/test_output.txt"

{
  for bench in "$build"/bench/*; do
    # Not `A && B || continue` (SC2015): skip anything that is not an
    # executable regular file, including the unexpanded glob itself.
    if [ ! -f "$bench" ] || [ ! -x "$bench" ]; then continue; fi
    echo "==== $(basename "$bench") ===="
    "$bench"
    echo
  done
} 2>&1 | tee "$repo/bench_output.txt"

echo "done: test_output.txt, bench_output.txt"
