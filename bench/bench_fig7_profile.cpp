// Fig. 7: violations found and constraint evaluations per executed design
// operation, conventional vs ADPM, on a simplified design case.
//
// "Fig. 7 (a) shows the number of violations found upon each executed
// operation.  The solid line corresponds to a simulation run with the new
// ADPM features turned off.  The dotted curve corresponds to a run with all
// features turned on.  Observe that using ADPM a smaller number of
// violations is found, violations start later, and violations stop
// happening earlier. ... as Fig. 7 (b) shows, ADPM requires more constraint
// evaluations per executed operation ... In terms of the total number of
// constraint evaluations, though, ADPM presents a smaller penalty."
//
// Output: one CSV-like series per sub-figure plus the summary the paper
// derives from the curves.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <vector>

#include "scenarios/sensing.hpp"
#include "teamsim/engine.hpp"
#include "teamsim/export.hpp"

using namespace adpm;

namespace {

teamsim::SimulationResult run(bool adpm, std::uint64_t seed) {
  teamsim::SimulationOptions options;
  options.adpm = adpm;
  options.seed = seed;
  teamsim::SimulationEngine engine(scenarios::sensingSystemScenario(), options);
  return engine.run();
}

struct Profile {
  std::vector<std::size_t> violations;   // per op
  std::vector<std::size_t> evaluations;  // per op
  std::size_t firstViolationOp = 0;      // 0 = none
  std::size_t lastViolationOp = 0;
  std::size_t totalViolations = 0;
  std::size_t totalEvaluations = 0;
};

Profile profileOf(const teamsim::SimulationResult& r) {
  Profile p;
  for (const auto& s : r.trace) {
    p.violations.push_back(s.violationsFound);
    p.evaluations.push_back(s.evaluations);
    p.totalViolations += s.violationsFound;
    p.totalEvaluations += s.evaluations;
    if (s.violationsFound > 0) {
      if (p.firstViolationOp == 0) p.firstViolationOp = s.opIndex;
      p.lastViolationOp = s.opIndex;
    }
  }
  return p;
}

}  // namespace

int main() {
  // The paper plots one representative seeded run per flow on "a simplified
  // design case"; we use the sensing system.  Any completing seed shows the
  // same qualitative shape; this one is representative of the medians.
  const std::uint64_t seed = 2;
  const teamsim::SimulationResult conventional = run(false, seed);
  const teamsim::SimulationResult adpm = run(true, seed);

  // Plot-ready artifacts (the paper piped these into Gnuplot).
  {
    std::ofstream csv("fig7_profile.csv");
    teamsim::writeProfileCsv(csv, conventional.trace, adpm.trace);
    std::ofstream plot("fig7_profile.gnuplot");
    plot << teamsim::gnuplotProfileScript("fig7_profile.csv");
  }
  const Profile pc = profileOf(conventional);
  const Profile pa = profileOf(adpm);

  std::printf("# Fig. 7(a): number of violations found upon each operation\n");
  std::printf("op,conventional,adpm\n");
  const std::size_t n = std::max(pc.violations.size(), pa.violations.size());
  for (std::size_t i = 0; i < n; ++i) {
    std::printf("%zu,%zu,%zu\n", i + 1,
                i < pc.violations.size() ? pc.violations[i] : 0,
                i < pa.violations.size() ? pa.violations[i] : 0);
  }

  std::printf("\n# Fig. 7(b): constraint evaluations per executed operation\n");
  std::printf("op,conventional,adpm\n");
  for (std::size_t i = 0; i < n; ++i) {
    std::printf("%zu,%zu,%zu\n", i + 1,
                i < pc.evaluations.size() ? pc.evaluations[i] : 0,
                i < pa.evaluations.size() ? pa.evaluations[i] : 0);
  }

  std::printf("\n# Shape summary (the paper's reading of the curves)\n");
  std::printf("metric,conventional,adpm\n");
  std::printf("operations-to-complete,%zu,%zu\n", conventional.operations,
              adpm.operations);
  std::printf("violations-found-total,%zu,%zu\n", pc.totalViolations,
              pa.totalViolations);
  std::printf("first-violation-op,%zu,%zu\n", pc.firstViolationOp,
              pa.firstViolationOp);
  std::printf("last-violation-op,%zu,%zu\n", pc.lastViolationOp,
              pa.lastViolationOp);
  std::printf("evaluations-total,%zu,%zu\n", pc.totalEvaluations,
              pa.totalEvaluations);
  std::printf("evaluations-per-op,%.2f,%.2f\n",
              conventional.evaluationsPerOperation(),
              adpm.evaluationsPerOperation());

  std::printf("\n# Expected shape: ADPM finds fewer violations, stops\n");
  std::printf("# violating earlier, completes in fewer operations, and pays\n");
  std::printf("# a higher per-operation evaluation count.  (The paper also\n");
  std::printf("# reads 'violations start later' off its curves; in this\n");
  std::printf("# reproduction ADPM detects conflicts the moment they arise\n");
  std::printf("# while the conventional flow cannot see any violation before\n");
  std::printf("# its first verification run, so the absolute start order\n");
  std::printf("# inverts — see EXPERIMENTS.md.)\n");
  const bool fewerViolations = pa.totalViolations <= pc.totalViolations;
  const bool stopsEarlier = pa.lastViolationOp <= pc.lastViolationOp;
  const bool fewerOps = adpm.operations < conventional.operations;
  const bool higherPerOp = adpm.evaluationsPerOperation() >
                           conventional.evaluationsPerOperation();
  std::printf("shape-check: fewer-violations=%s stops-earlier=%s "
              "fewer-operations=%s higher-evals-per-op=%s\n",
              fewerViolations ? "yes" : "NO", stopsEarlier ? "yes" : "NO",
              fewerOps ? "yes" : "NO", higherPerOp ? "yes" : "NO");
  std::printf("wrote fig7_profile.csv and fig7_profile.gnuplot\n");
  return (fewerViolations && stopsEarlier && fewerOps && higherPerOp) ? 0 : 1;
}
