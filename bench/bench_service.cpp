// Throughput of the concurrent design-session service (google-benchmark).
//
// Each iteration mounts a fleet of sessions (TeamSim designers as clients)
// on a fresh store and drives every session to completion; the counters
// report aggregate operations/sec and sessions/sec as seen by runLoad's
// steady clock.  The worker-count argument sweeps the executor pool
// (1/2/4), so the scaling curve — ops/sec at 4 workers over ops/sec at 1 —
// falls directly out of BENCH_service.json.  The deterministic arg (-1)
// measures the zero-thread inline mode as the serial baseline.  Note that
// the machine must actually have >1 hardware thread for the upper points
// to scale; on a single-core container the curve is flat by construction.
#include <benchmark/benchmark.h>

#include <chrono>
#include <filesystem>
#include <string>

#include "dddl/writer.hpp"
#include "gen/generator.hpp"
#include "gen/presets.hpp"
#include "net/server.hpp"
#include "net/wire_load.hpp"
#include "scenarios/sensing.hpp"
#include "service/load.hpp"
#include "service/store.hpp"

using namespace adpm;

namespace {

constexpr std::size_t kSessions = 8;

void BM_ServiceFleet(benchmark::State& state) {
  const dpm::ScenarioSpec spec = scenarios::sensingSystemScenario();
  const int workers = static_cast<int>(state.range(0));

  std::size_t operations = 0;
  std::size_t sessions = 0;
  double wall = 0.0;
  for (auto _ : state) {
    service::SessionStore::Options options;
    if (workers < 0) {
      options.executor.deterministic = true;
    } else {
      options.executor.threads = static_cast<unsigned>(workers);
    }
    service::SessionStore store{std::move(options)};

    service::LoadOptions load;
    load.sessions = kSessions;
    load.sim.adpm = true;
    load.sim.seed = 1;
    const service::LoadReport report = runLoad(store, spec, load);
    benchmark::DoNotOptimize(report.operations);
    operations += report.operations;
    sessions += report.completedSessions;
    wall += report.wallSeconds;
  }
  if (wall > 0.0) {
    state.counters["ops_per_sec"] =
        benchmark::Counter(static_cast<double>(operations) / wall);
    state.counters["sessions_per_sec"] =
        benchmark::Counter(static_cast<double>(sessions) / wall);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(operations));
}
BENCHMARK(BM_ServiceFleet)
    ->Arg(-1)  // deterministic inline baseline
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->ArgNames({"workers"})
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void BM_ServiceFleetJournaled(benchmark::State& state) {
  // Same fleet with the write-ahead log on: the price of durability.
  const dpm::ScenarioSpec spec = scenarios::sensingSystemScenario();
  const std::string walDir =
      (std::filesystem::temp_directory_path() / "adpm_bench_wal").string();
  std::size_t operations = 0;
  double wall = 0.0;
  for (auto _ : state) {
    std::filesystem::remove_all(walDir);
    service::SessionStore::Options options;
    options.executor.threads = static_cast<unsigned>(state.range(0));
    options.walDir = walDir;
    service::SessionStore store{std::move(options)};

    service::LoadOptions load;
    load.sessions = kSessions;
    load.sim.adpm = true;
    load.sim.seed = 1;
    const service::LoadReport report = runLoad(store, spec, load);
    operations += report.operations;
    wall += report.wallSeconds;
  }
  std::filesystem::remove_all(walDir);
  if (wall > 0.0) {
    state.counters["ops_per_sec"] =
        benchmark::Counter(static_cast<double>(operations) / wall);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(operations));
}
BENCHMARK(BM_ServiceFleetJournaled)
    ->Arg(4)
    ->ArgNames({"workers"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Size sweep: the same fleet on generated zoo scenarios of increasing
// constraint count (the `constraints` counter is the x-axis).  Per-session
// operations are capped tightly: on the larger networks each operation costs
// milliseconds of propagation, so the cap keeps an iteration bounded while
// still measuring the per-operation service cost at that size (ops_per_sec
// is a rate, not a completion count — zoo-toy finishes, the rest won't).
void BM_ServiceFleetGenerated(benchmark::State& state) {
  static constexpr const char* kPresets[] = {"zoo-toy", "zoo-small",
                                             "zoo-medium"};
  const dpm::ScenarioSpec spec =
      gen::generate(
          gen::zooPreset(kPresets[static_cast<std::size_t>(state.range(0))]))
          .spec;

  std::size_t operations = 0;
  double wall = 0.0;
  for (auto _ : state) {
    service::SessionStore::Options options;
    options.executor.threads = 4;
    service::SessionStore store{std::move(options)};

    service::LoadOptions load;
    load.sessions = 4;
    load.sim.adpm = true;
    load.sim.seed = 1;
    load.maxOperationsPerSession = 100;
    const service::LoadReport report = runLoad(store, spec, load);
    benchmark::DoNotOptimize(report.operations);
    operations += report.operations;
    wall += report.wallSeconds;
  }
  state.counters["constraints"] =
      benchmark::Counter(static_cast<double>(spec.constraints.size()));
  if (wall > 0.0) {
    state.counters["ops_per_sec"] =
        benchmark::Counter(static_cast<double>(operations) / wall);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(operations));
}
BENCHMARK(BM_ServiceFleetGenerated)
    ->DenseRange(0, 2)
    ->ArgNames({"zoo"})
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void BM_ServiceWire(benchmark::State& state) {
  // Clients over the wire: the same fleet, but every designer drives its
  // session through a TCP connection against a net::Server (one connection
  // + shadow manager per session, loopback).  ops_per_sec is the end-to-end
  // wire throughput; apply_rtt_us the mean Apply request/response round
  // trip; bus_downgrades counts subscription streams the NotificationBus
  // collapsed into ResyncRequired under write backpressure.
  const std::string dddlText = dddl::write(scenarios::sensingSystemScenario());
  const std::size_t clients = static_cast<std::size_t>(state.range(0));

  std::size_t operations = 0;
  std::size_t downgrades = 0;
  double wall = 0.0;
  double rttWeighted = 0.0;
  for (auto _ : state) {
    service::SessionStore::Options options;
    options.executor.threads = 4;
    service::SessionStore store{std::move(options)};
    net::Server server(store, net::Server::Options{});
    const std::uint16_t port = server.start();

    net::WireLoadOptions load;
    load.port = port;
    load.sessions = clients;
    load.dddl = dddlText;
    load.sim.adpm = true;
    load.sim.seed = 1;
    const net::WireLoadReport report = runWireLoad(load);
    benchmark::DoNotOptimize(report.operations);
    operations += report.operations;
    wall += report.wallSeconds;
    rttWeighted +=
        report.applyRttMeanMicros * static_cast<double>(report.operations);
    downgrades += store.bus().downgrades();
    server.shutdown(std::chrono::seconds(5));
  }
  if (wall > 0.0) {
    state.counters["ops_per_sec"] =
        benchmark::Counter(static_cast<double>(operations) / wall);
  }
  if (operations > 0) {
    state.counters["apply_rtt_us"] =
        benchmark::Counter(rttWeighted / static_cast<double>(operations));
  }
  state.counters["bus_downgrades"] =
      benchmark::Counter(static_cast<double>(downgrades));
  state.SetItemsProcessed(static_cast<std::int64_t>(operations));
}
BENCHMARK(BM_ServiceWire)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->ArgNames({"clients"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
