// Throughput of the concurrent design-session service (google-benchmark).
//
// Each iteration mounts a fleet of sessions (TeamSim designers as clients)
// on a fresh store and drives every session to completion; the counters
// report aggregate operations/sec and sessions/sec as seen by runLoad's
// steady clock.  The worker-count argument sweeps the executor pool
// (1/2/4), so the scaling curve — ops/sec at 4 workers over ops/sec at 1 —
// falls directly out of BENCH_service.json.  The deterministic arg (-1)
// measures the zero-thread inline mode as the serial baseline.  Note that
// the machine must actually have >1 hardware thread for the upper points
// to scale; on a single-core container the curve is flat by construction.
#include <benchmark/benchmark.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <string>

#include "dddl/writer.hpp"
#include "gen/generator.hpp"
#include "gen/presets.hpp"
#include "net/server.hpp"
#include "net/wire_load.hpp"
#include "scenarios/sensing.hpp"
#include "service/load.hpp"
#include "service/store.hpp"

using namespace adpm;

namespace {

constexpr std::size_t kSessions = 8;

void BM_ServiceFleet(benchmark::State& state) {
  const dpm::ScenarioSpec spec = scenarios::sensingSystemScenario();
  const int workers = static_cast<int>(state.range(0));

  std::size_t operations = 0;
  std::size_t sessions = 0;
  double wall = 0.0;
  for (auto _ : state) {
    service::SessionStore::Options options;
    if (workers < 0) {
      options.executor.deterministic = true;
    } else {
      options.executor.threads = static_cast<unsigned>(workers);
    }
    service::SessionStore store{std::move(options)};

    service::LoadOptions load;
    load.sessions = kSessions;
    load.sim.adpm = true;
    load.sim.seed = 1;
    const service::LoadReport report = runLoad(store, spec, load);
    benchmark::DoNotOptimize(report.operations);
    operations += report.operations;
    sessions += report.completedSessions;
    wall += report.wallSeconds;
  }
  if (wall > 0.0) {
    state.counters["ops_per_sec"] =
        benchmark::Counter(static_cast<double>(operations) / wall);
    state.counters["sessions_per_sec"] =
        benchmark::Counter(static_cast<double>(sessions) / wall);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(operations));
}
BENCHMARK(BM_ServiceFleet)
    ->Arg(-1)  // deterministic inline baseline
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->ArgNames({"workers"})
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void BM_ServiceFleetJournaled(benchmark::State& state) {
  // Same fleet with the write-ahead log on: the price of durability.
  const dpm::ScenarioSpec spec = scenarios::sensingSystemScenario();
  const std::string walDir =
      (std::filesystem::temp_directory_path() / "adpm_bench_wal").string();
  std::size_t operations = 0;
  double wall = 0.0;
  for (auto _ : state) {
    std::filesystem::remove_all(walDir);
    service::SessionStore::Options options;
    options.executor.threads = static_cast<unsigned>(state.range(0));
    options.walDir = walDir;
    service::SessionStore store{std::move(options)};

    service::LoadOptions load;
    load.sessions = kSessions;
    load.sim.adpm = true;
    load.sim.seed = 1;
    const service::LoadReport report = runLoad(store, spec, load);
    operations += report.operations;
    wall += report.wallSeconds;
  }
  std::filesystem::remove_all(walDir);
  if (wall > 0.0) {
    state.counters["ops_per_sec"] =
        benchmark::Counter(static_cast<double>(operations) / wall);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(operations));
}
BENCHMARK(BM_ServiceFleetJournaled)
    ->Arg(4)
    ->ArgNames({"workers"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Size sweep: the same fleet on generated zoo scenarios of increasing
// constraint count (the `constraints` counter is the x-axis).  Per-session
// operations are capped tightly: on the larger networks each operation costs
// milliseconds of propagation, so the cap keeps an iteration bounded while
// still measuring the per-operation service cost at that size (ops_per_sec
// is a rate, not a completion count — zoo-toy finishes, the rest won't).
void BM_ServiceFleetGenerated(benchmark::State& state) {
  static constexpr const char* kPresets[] = {"zoo-toy", "zoo-small",
                                             "zoo-medium"};
  const dpm::ScenarioSpec spec =
      gen::generate(
          gen::zooPreset(kPresets[static_cast<std::size_t>(state.range(0))]))
          .spec;

  std::size_t operations = 0;
  double wall = 0.0;
  for (auto _ : state) {
    service::SessionStore::Options options;
    options.executor.threads = 4;
    service::SessionStore store{std::move(options)};

    service::LoadOptions load;
    load.sessions = 4;
    load.sim.adpm = true;
    load.sim.seed = 1;
    load.maxOperationsPerSession = 100;
    const service::LoadReport report = runLoad(store, spec, load);
    benchmark::DoNotOptimize(report.operations);
    operations += report.operations;
    wall += report.wallSeconds;
  }
  state.counters["constraints"] =
      benchmark::Counter(static_cast<double>(spec.constraints.size()));
  if (wall > 0.0) {
    state.counters["ops_per_sec"] =
        benchmark::Counter(static_cast<double>(operations) / wall);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(operations));
}
BENCHMARK(BM_ServiceFleetGenerated)
    ->DenseRange(0, 2)
    ->ArgNames({"zoo"})
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// Recovery cost: O(work since the last checkpoint), not O(session
// lifetime).  A session of `ops` operations is recorded once per arg pair
// (outside the timing loop), then recovered repeatedly.  With checkpointing
// off, recovery replays the whole log, so the 640-op point costs ~10x the
// 64-op one; with a checkpoint every 48 operations both points replay the
// same short tail and the series is flat — the bounded-recovery claim,
// directly measurable as ops_replayed and wall time in BENCH_service.json.
void BM_Recovery(benchmark::State& state) {
  const std::size_t opsInLog = static_cast<std::size_t>(state.range(0));
  const std::size_t checkpointEvery = static_cast<std::size_t>(state.range(1));

  const dpm::ScenarioSpec spec = scenarios::sensingSystemScenario();
  service::SessionConfig cfg;
  cfg.id = "bench";
  cfg.adpm = true;
  cfg.scenarioName = spec.name;
  cfg.scenarioDddl = dddl::write(spec);

  service::Session::Options opts;
  opts.markEvery = 16;
  opts.segmentOps = 64;
  opts.checkpointEvery = checkpointEvery;
  opts.checkpointKeep = 2;

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("adpm_bench_recovery_" + std::to_string(opsInLog) + "_" +
       std::to_string(checkpointEvery));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string base = (dir / "bench.wal").string();
  {
    service::SegmentedLog::Options lo;
    lo.segmentOps = opts.segmentOps;
    service::Session session(
        cfg, spec, std::make_unique<service::SegmentedLog>(base, cfg, lo),
        opts);
    const std::size_t props = session.manager().network().propertyCount();
    for (std::size_t i = 0; i < opsInLog; ++i) {
      // Deterministic synthetic stream: round-robin property rebinds keep δ
      // (and with λ=T the full propagation + guidance pipeline) busy for as
      // many operations as the log length calls for.
      dpm::Operation op;
      op.kind = dpm::OperatorKind::Synthesis;
      op.problem = dpm::ProblemId{0};
      op.designer = "gen";
      op.assignments.emplace_back(
          constraint::PropertyId{static_cast<std::uint32_t>(i % props)},
          0.25 + 0.125 * static_cast<double>(i % 7));
      session.apply(std::move(op));
    }
  }

  std::size_t opsReplayed = 0;
  std::size_t segmentsReplayed = 0;
  bool checkpointUsed = false;
  for (auto _ : state) {
    service::SalvageOutcome out;
    const auto recovered = service::recoverSession(
        base, opts, service::RecoveryPolicy::Strict, &out);
    benchmark::DoNotOptimize(recovered->stage());
    opsReplayed = out.operationsReplayed;
    segmentsReplayed = out.segmentsReplayed;
    checkpointUsed = out.checkpointUsed;
  }
  std::filesystem::remove_all(dir);

  state.counters["ops_in_log"] =
      benchmark::Counter(static_cast<double>(opsInLog));
  state.counters["ops_replayed"] =
      benchmark::Counter(static_cast<double>(opsReplayed));
  state.counters["segments_replayed"] =
      benchmark::Counter(static_cast<double>(segmentsReplayed));
  state.counters["checkpoint_used"] =
      benchmark::Counter(checkpointUsed ? 1.0 : 0.0);
  state.SetItemsProcessed(static_cast<std::int64_t>(
      opsReplayed * static_cast<std::size_t>(state.iterations())));
}
BENCHMARK(BM_Recovery)
    ->Args({64, 0})
    ->Args({640, 0})
    ->Args({64, 48})
    ->Args({640, 48})
    ->ArgNames({"ops", "ckpt_every"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_ServiceWire(benchmark::State& state) {
  // Clients over the wire: the same fleet, but every designer drives its
  // session through a TCP connection against a net::Server (one connection
  // + shadow manager per session, loopback).  ops_per_sec is the end-to-end
  // wire throughput; apply_rtt_us the mean Apply request/response round
  // trip; bus_downgrades counts subscription streams the NotificationBus
  // collapsed into ResyncRequired under write backpressure.
  const std::string dddlText = dddl::write(scenarios::sensingSystemScenario());
  const std::size_t clients = static_cast<std::size_t>(state.range(0));

  std::size_t operations = 0;
  std::size_t downgrades = 0;
  double wall = 0.0;
  double rttWeighted = 0.0;
  for (auto _ : state) {
    service::SessionStore::Options options;
    options.executor.threads = 4;
    service::SessionStore store{std::move(options)};
    net::Server server(store, net::Server::Options{});
    const std::uint16_t port = server.start();

    net::WireLoadOptions load;
    load.port = port;
    load.sessions = clients;
    load.dddl = dddlText;
    load.sim.adpm = true;
    load.sim.seed = 1;
    const net::WireLoadReport report = runWireLoad(load);
    benchmark::DoNotOptimize(report.operations);
    operations += report.operations;
    wall += report.wallSeconds;
    rttWeighted +=
        report.applyRttMeanMicros * static_cast<double>(report.operations);
    downgrades += store.bus().downgrades();
    server.shutdown(std::chrono::seconds(5));
  }
  if (wall > 0.0) {
    state.counters["ops_per_sec"] =
        benchmark::Counter(static_cast<double>(operations) / wall);
  }
  if (operations > 0) {
    state.counters["apply_rtt_us"] =
        benchmark::Counter(rttWeighted / static_cast<double>(operations));
  }
  state.counters["bus_downgrades"] =
      benchmark::Counter(static_cast<double>(downgrades));
  state.SetItemsProcessed(static_cast<std::int64_t>(operations));
}
BENCHMARK(BM_ServiceWire)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->ArgNames({"clients"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
