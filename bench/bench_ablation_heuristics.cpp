// Ablation: which of ADPM's §2.3 heuristics carries the Fig. 9 improvement?
//
// The paper's conclusions attribute the speed-up to constraint-based
// heuristic support as a whole; DESIGN.md calls out per-heuristic ablation
// as a design question.  Each row disables exactly one ingredient of the
// ADPM designer and re-runs the receiver and sensing sweeps:
//   * subspace ordering   (§2.3.1: smallest feasible subspace first)
//   * feasible values     (§2.3.1/f_v: bind inside v_F)
//   * alpha repair        (§2.3.3/f_a: most-connected-violations first)
//   * direction voting    (f_a/f_v: monotone direction votes)
// plus a repair-delta sweep (the paper: "delta values around 100 times
// smaller than the size of E_i worked well").
#include <cstdio>
#include <functional>

#include "scenarios/receiver.hpp"
#include "scenarios/sensing.hpp"
#include "teamsim/experiment.hpp"
#include "util/table.hpp"

using namespace adpm;

namespace {
constexpr std::size_t kSeeds = 20;

teamsim::CellStats sweep(const dpm::ScenarioSpec& spec,
                         const teamsim::SimulationOptions& options) {
  return teamsim::runSeedSweep(spec, options, kSeeds);
}

void report(util::TextTable& t, const char* label,
            const teamsim::CellStats& sensing,
            const teamsim::CellStats& receiver) {
  t.row({label,
         util::formatNumber(sensing.operations.mean(), 4),
         std::to_string(sensing.completed) + "/" + std::to_string(sensing.runs),
         util::formatNumber(receiver.operations.mean(), 4),
         std::to_string(receiver.completed) + "/" +
             std::to_string(receiver.runs)});
}

}  // namespace

int main() {
  const dpm::ScenarioSpec sensing = scenarios::sensingSystemScenario();
  const dpm::ScenarioSpec receiver = scenarios::receiverScenario();

  util::TextTable t;
  t.header({"Configuration", "Sensing ops", "done", "Receiver ops", "done"});

  struct Variant {
    const char* label;
    std::function<void(teamsim::SimulationOptions&)> tweak;
  };
  const Variant variants[] = {
      {"ADPM (all heuristics)", [](teamsim::SimulationOptions&) {}},
      {"  - subspace ordering",
       [](teamsim::SimulationOptions& o) { o.useSubspaceOrdering = false; }},
      {"  - feasible values",
       [](teamsim::SimulationOptions& o) { o.useFeasibleValues = false; }},
      {"  - alpha repair",
       [](teamsim::SimulationOptions& o) { o.useAlphaRepair = false; }},
      {"  - direction voting",
       [](teamsim::SimulationOptions& o) { o.useDirectionVoting = false; }},
      {"Conventional (no ADPM)",
       [](teamsim::SimulationOptions& o) { o.adpm = false; }},
      {"Conventional, no boundary solve",
       [](teamsim::SimulationOptions& o) {
         o.adpm = false;
         o.useBoundarySolve = false;
         o.maxOperations = 40000;  // pure delta stepping crawls
       }},
  };

  for (const Variant& v : variants) {
    teamsim::SimulationOptions options;
    options.adpm = true;
    v.tweak(options);
    const auto s = sweep(sensing, options);
    const auto r = sweep(receiver, options);
    report(t, v.label, s, r);
  }
  std::printf("# ADPM heuristic ablation (%zu seeds per cell)\n\n%s\n",
              kSeeds, t.render().c_str());

  // Repair-delta sweep (paper §3.1.1 footnote).
  util::TextTable d;
  d.header({"deltaDivisor (|E|/delta)", "Sensing ops", "Receiver ops"});
  for (const double divisor : {25.0, 50.0, 100.0, 200.0, 400.0}) {
    teamsim::SimulationOptions options;
    options.adpm = true;
    options.deltaDivisor = divisor;
    const auto s = sweep(sensing, options);
    const auto r = sweep(receiver, options);
    d.row({util::formatNumber(divisor, 4),
           util::formatNumber(s.operations.mean(), 4),
           util::formatNumber(r.operations.mean(), 4)});
  }
  std::printf("# Repair delta sweep (ADPM)\n\n%s", d.render().c_str());
  return 0;
}
