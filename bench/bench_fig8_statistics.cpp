// Fig. 8: TeamSim's design process statistics window.
//
// "Key statistics are dynamically displayed, including the number of
// constraints, the number of violations, the number of constraint
// evaluations, and the cumulative number of design spins."
//
// The bench replays a receiver-case simulation and prints the statistics
// window at regular checkpoints (the paper's window updates live during the
// run), then the final panel plus history strips of each displayed series.
#include <cstdio>

#include "scenarios/receiver.hpp"
#include "teamsim/engine.hpp"
#include "teamsim/statwindow.hpp"

using namespace adpm;

int main() {
  teamsim::SimulationOptions options;
  options.adpm = true;
  options.seed = 11;

  teamsim::SimulationEngine engine(scenarios::receiverScenario(), options);

  std::size_t nextCheckpoint = 10;
  while (!engine.complete() && engine.operations() < options.maxOperations) {
    if (!engine.step()) break;
    if (engine.operations() == nextCheckpoint) {
      std::printf("---- checkpoint: after %zu operations ----\n",
                  engine.operations());
      std::printf("%s\n", teamsim::renderStatisticsWindow(engine).c_str());
      nextCheckpoint += 10;
    }
  }

  std::printf("---- final ----\n");
  std::printf("%s\n", teamsim::renderStatisticsWindow(engine).c_str());

  std::printf("history (per-operation series downsampled, # = peak):\n");
  std::printf("%s", teamsim::renderHistoryStrip(engine.trace(),
                                                "violationsKnown").c_str());
  std::printf("%s", teamsim::renderHistoryStrip(engine.trace(),
                                                "evaluations").c_str());
  std::printf("%s", teamsim::renderHistoryStrip(engine.trace(),
                                                "spins").c_str());

  // The same run in the conventional flow, for the side-by-side the paper's
  // screenshots implied.
  teamsim::SimulationOptions conv = options;
  conv.adpm = false;
  teamsim::SimulationEngine convEngine(scenarios::receiverScenario(), conv);
  convEngine.run();
  std::printf("\n---- same scenario, conventional flow ----\n");
  std::printf("%s\n", teamsim::renderStatisticsWindow(convEngine).c_str());
  std::printf("%s", teamsim::renderHistoryStrip(convEngine.trace(),
                                                "violationsKnown").c_str());
  std::printf("%s", teamsim::renderHistoryStrip(convEngine.trace(),
                                                "spins").c_str());
  return engine.complete() && convEngine.complete() ? 0 : 1;
}
