// Extension: the Fig. 9 protocol across *all* design cases, including the
// two beyond the paper (the 4-designer receiver and the accelerometer) —
// the paper's future work asks to "evaluate other types of problems".
//
// The interesting read is whether the paper's headline shape (conventional
// needs ≥2x the designer operations; ADPM trades them for tool runs; spins
// nearly vanish) generalises beyond the two cases it was demonstrated on.
#include <cstdio>

#include "scenarios/accelerometer.hpp"
#include "scenarios/receiver.hpp"
#include "scenarios/sensing.hpp"
#include "teamsim/experiment.hpp"
#include "util/table.hpp"

using namespace adpm;

namespace {
constexpr std::size_t kSeeds = 30;
}

int main() {
  struct Case {
    const char* label;
    dpm::ScenarioSpec spec;
  };
  const Case cases[] = {
      {"sensing (paper case 1)", scenarios::sensingSystemScenario()},
      {"receiver (paper case 2)", scenarios::receiverScenario()},
      {"receiver, 4 designers (ext)", scenarios::receiverLargeTeamScenario()},
      {"accelerometer (ext)", scenarios::accelerometerScenario()},
  };

  std::printf("# Fig. 9 protocol across all cases (%zu seeds/cell)\n\n",
              kSeeds);
  util::TextTable t;
  t.header({"Case", "Conv ops", "ADPM ops", "Ops ratio", "Evals ratio",
            "Spin ratio", "Completed"});
  bool allShapesHold = true;
  for (const Case& c : cases) {
    const teamsim::Comparison cmp =
        teamsim::compareApproaches(c.spec, teamsim::SimulationOptions{},
                                   kSeeds);
    t.row({c.label,
           util::formatNumber(cmp.conventional.operations.mean(), 4),
           util::formatNumber(cmp.adpm.operations.mean(), 4),
           util::formatNumber(cmp.operationRatio(), 3),
           util::formatNumber(cmp.evaluationRatio(), 3),
           util::formatNumber(cmp.spinRatio(), 3),
           std::to_string(cmp.conventional.completed) + "+" +
               std::to_string(cmp.adpm.completed) + "/" +
               std::to_string(2 * kSeeds)});
    allShapesHold = allShapesHold && cmp.operationRatio() >= 2.0 &&
                    cmp.evaluationRatio() > 1.0 && cmp.spinRatio() < 0.5 &&
                    cmp.conventional.completed == cmp.conventional.runs &&
                    cmp.adpm.completed >= cmp.adpm.runs - 1;
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("shape-check: paper-shape-generalises=%s\n",
              allShapesHold ? "yes" : "NO");
  return allShapesHold ? 0 : 1;
}
