// Micro-benchmarks for the constraint substrate (google-benchmark).
//
// Not a paper figure: these quantify the cost of the primitives behind
// ADPM's "computational penalty" — one HC4 revise, one full propagation
// fixpoint, the single-pass ablation, and a what-if (relaxed) propagation —
// on both evaluation networks.  DESIGN.md lists the fixpoint-vs-single-pass
// choice as an ablation; the speed side of that trade-off lives here.
#include <benchmark/benchmark.h>

#include "constraint/miner.hpp"
#include "constraint/propagate.hpp"
#include "dpm/scenario.hpp"
#include "expr/sweep.hpp"
#include "gen/generator.hpp"
#include "gen/presets.hpp"
#include "scenarios/receiver.hpp"
#include "scenarios/sensing.hpp"
#include "teamsim/engine.hpp"

using namespace adpm;

namespace {

std::unique_ptr<dpm::DesignProcessManager> makeManager(bool receiver) {
  auto mgr = std::make_unique<dpm::DesignProcessManager>(
      dpm::DesignProcessManager::Options{.adpm = true});
  dpm::instantiate(receiver ? scenarios::receiverScenario()
                            : scenarios::sensingSystemScenario(),
                   *mgr);
  return mgr;
}

void BM_Hc4Revise(benchmark::State& state) {
  auto mgr = makeManager(state.range(0) != 0);
  auto& net = mgr->network();
  auto box = net.currentBox();
  std::size_t i = 0;
  const auto ids = net.constraintIds();
  for (auto _ : state) {
    auto& c = net.constraint(ids[i % ids.size()]);
    auto working = box;
    benchmark::DoNotOptimize(
        c.compiled().revise(c.target(), {working.data(), working.size()}));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Hc4Revise)->Arg(0)->Arg(1)->ArgNames({"receiver"});

void BM_PropagationFixpoint(benchmark::State& state) {
  auto mgr = makeManager(state.range(0) != 0);
  constraint::Propagator prop;
  for (auto _ : state) {
    benchmark::DoNotOptimize(prop.run(mgr->network()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PropagationFixpoint)->Arg(0)->Arg(1)->ArgNames({"receiver"});

void BM_PropagationSinglePass(benchmark::State& state) {
  auto mgr = makeManager(state.range(0) != 0);
  constraint::Propagator prop{
      constraint::Propagator::Options{.fixpoint = false}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(prop.run(mgr->network()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PropagationSinglePass)->Arg(0)->Arg(1)->ArgNames({"receiver"});

void BM_WhatIfRelaxed(benchmark::State& state) {
  auto mgr = makeManager(state.range(0) != 0);
  auto& net = mgr->network();
  // Bind a representative free variable so the relaxed run has work to do.
  const auto pid = net.propertyIds().at(7);
  net.bind(pid, net.property(pid).initial.hull().mid());
  constraint::Propagator prop;
  for (auto _ : state) {
    benchmark::DoNotOptimize(prop.runRelaxed(net, pid));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WhatIfRelaxed)->Arg(0)->Arg(1)->ArgNames({"receiver"});

void BM_MinerFullPass(benchmark::State& state) {
  auto mgr = makeManager(state.range(0) != 0);
  constraint::Propagator prop;
  constraint::HeuristicMiner miner;
  for (auto _ : state) {
    const auto r = prop.run(mgr->network());
    benchmark::DoNotOptimize(miner.mine(mgr->network(), r));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MinerFullPass)->Arg(0)->Arg(1)->ArgNames({"receiver"});

// The DCM's per-operation mining pass, isolated.  Three engines:
//   mode 0 — Reference: evaluate + symbolic monotonicity walk per
//            (property, constraint) incidence, Θ(Σβᵢ) expression sweeps;
//   mode 1 — Fast/cold: one fused compiled-AD sweep per constraint, the
//            box generation bumped every iteration so the cache never hits,
//            Θ(nc) sweeps — this isolates the AD-sweep win;
//   mode 2 — Fast/cached: unchanged box (what-if reporting / repeated
//            browser refreshes), Θ(0) sweeps after the first mine.
// The `sweeps_per_mine` counter is the Θ-claim made observable; wall time
// is the actual win.  Charged evaluations are identical in all modes (the
// differential tests enforce it).
void BM_MineGuidance(benchmark::State& state) {
  const bool receiver = state.range(0) != 0;
  const int mode = static_cast<int>(state.range(1));
  auto mgr = makeManager(receiver);
  auto& net = mgr->network();
  constraint::Propagator prop;
  const auto propagation = prop.run(net);

  constraint::HeuristicMiner::Options options;
  options.engine = mode == 0 ? constraint::MinerEngine::Reference
                             : constraint::MinerEngine::Fast;
  const constraint::HeuristicMiner miner{options};

  // An unbound property whose no-op unbind bumps the box generation without
  // changing the box — the cache-invalidation knob for the cold mode.
  const auto unboundPid = [&]() {
    for (const auto pid : net.propertyIds()) {
      if (!net.property(pid).bound()) return pid;
    }
    return net.propertyIds().front();
  }();

  expr::resetSweepCount();
  std::uint64_t mines = 0;
  for (auto _ : state) {
    if (mode == 1) net.unbind(unboundPid);
    benchmark::DoNotOptimize(miner.mine(net, propagation));
    ++mines;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["sweeps_per_mine"] = benchmark::Counter(
      mines == 0 ? 0.0
                 : static_cast<double>(expr::sweepCount()) /
                       static_cast<double>(mines));
}
BENCHMARK(BM_MineGuidance)
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({0, 2})
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({1, 2})
    ->ArgNames({"receiver", "mode"});

// Size sweep over the generated scenario zoo (~10 → ~6000 constraints).
// Zoom levels are forced eager so the whole network is active and the
// constraint count really is the series' x-axis; the `constraints` /
// `properties` counters carry it into BENCH_propagation.json.
void BM_PropagationGeneratedSweep(benchmark::State& state) {
  static constexpr const char* kPresets[] = {"zoo-toy", "zoo-small",
                                             "zoo-medium", "zoo-large",
                                             "zoo-xl"};
  gen::GenParams params =
      gen::zooPreset(kPresets[static_cast<std::size_t>(state.range(0))]);
  for (auto& level : params.zoom) level.deferred = false;

  auto mgr = std::make_unique<dpm::DesignProcessManager>(
      dpm::DesignProcessManager::Options{.adpm = true});
  dpm::instantiate(gen::generate(params).spec, *mgr);
  constraint::Propagator prop;
  for (auto _ : state) {
    benchmark::DoNotOptimize(prop.run(mgr->network()));
  }
  state.counters["constraints"] = benchmark::Counter(
      static_cast<double>(mgr->network().constraintIds().size()));
  state.counters["properties"] = benchmark::Counter(
      static_cast<double>(mgr->network().propertyIds().size()));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PropagationGeneratedSweep)
    ->DenseRange(0, 4)
    ->ArgNames({"zoo"})
    ->Unit(benchmark::kMillisecond);

void BM_FullSimulation(benchmark::State& state) {
  const bool receiver = state.range(0) != 0;
  const bool adpm = state.range(1) != 0;
  const dpm::ScenarioSpec spec = receiver
                                     ? scenarios::receiverScenario()
                                     : scenarios::sensingSystemScenario();
  std::uint64_t seed = 1;
  for (auto _ : state) {
    teamsim::SimulationOptions options;
    options.adpm = adpm;
    options.seed = seed++;
    teamsim::SimulationEngine engine(spec, options);
    benchmark::DoNotOptimize(engine.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FullSimulation)
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({1, 0})
    ->Args({1, 1})
    ->ArgNames({"receiver", "adpm"})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
