// Micro-benchmarks for the constraint substrate (google-benchmark).
//
// Not a paper figure: these quantify the cost of the primitives behind
// ADPM's "computational penalty" — one HC4 revise, one full propagation
// fixpoint, the single-pass ablation, and a what-if (relaxed) propagation —
// on both evaluation networks.  DESIGN.md lists the fixpoint-vs-single-pass
// choice as an ablation; the speed side of that trade-off lives here.
#include <benchmark/benchmark.h>

#include "constraint/miner.hpp"
#include "constraint/propagate.hpp"
#include "dpm/scenario.hpp"
#include "scenarios/receiver.hpp"
#include "scenarios/sensing.hpp"
#include "teamsim/engine.hpp"

using namespace adpm;

namespace {

std::unique_ptr<dpm::DesignProcessManager> makeManager(bool receiver) {
  auto mgr = std::make_unique<dpm::DesignProcessManager>(
      dpm::DesignProcessManager::Options{.adpm = true});
  dpm::instantiate(receiver ? scenarios::receiverScenario()
                            : scenarios::sensingSystemScenario(),
                   *mgr);
  return mgr;
}

void BM_Hc4Revise(benchmark::State& state) {
  auto mgr = makeManager(state.range(0) != 0);
  auto& net = mgr->network();
  auto box = net.currentBox();
  std::size_t i = 0;
  const auto ids = net.constraintIds();
  for (auto _ : state) {
    auto& c = net.constraint(ids[i % ids.size()]);
    auto working = box;
    benchmark::DoNotOptimize(
        c.compiled().revise(c.target(), {working.data(), working.size()}));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Hc4Revise)->Arg(0)->Arg(1)->ArgNames({"receiver"});

void BM_PropagationFixpoint(benchmark::State& state) {
  auto mgr = makeManager(state.range(0) != 0);
  constraint::Propagator prop;
  for (auto _ : state) {
    benchmark::DoNotOptimize(prop.run(mgr->network()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PropagationFixpoint)->Arg(0)->Arg(1)->ArgNames({"receiver"});

void BM_PropagationSinglePass(benchmark::State& state) {
  auto mgr = makeManager(state.range(0) != 0);
  constraint::Propagator prop{
      constraint::Propagator::Options{.fixpoint = false}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(prop.run(mgr->network()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PropagationSinglePass)->Arg(0)->Arg(1)->ArgNames({"receiver"});

void BM_WhatIfRelaxed(benchmark::State& state) {
  auto mgr = makeManager(state.range(0) != 0);
  auto& net = mgr->network();
  // Bind a representative free variable so the relaxed run has work to do.
  const auto pid = net.propertyIds().at(7);
  net.bind(pid, net.property(pid).initial.hull().mid());
  constraint::Propagator prop;
  for (auto _ : state) {
    benchmark::DoNotOptimize(prop.runRelaxed(net, pid));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WhatIfRelaxed)->Arg(0)->Arg(1)->ArgNames({"receiver"});

void BM_MinerFullPass(benchmark::State& state) {
  auto mgr = makeManager(state.range(0) != 0);
  constraint::Propagator prop;
  constraint::HeuristicMiner miner;
  for (auto _ : state) {
    const auto r = prop.run(mgr->network());
    benchmark::DoNotOptimize(miner.mine(mgr->network(), r));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MinerFullPass)->Arg(0)->Arg(1)->ArgNames({"receiver"});

void BM_FullSimulation(benchmark::State& state) {
  const bool receiver = state.range(0) != 0;
  const bool adpm = state.range(1) != 0;
  const dpm::ScenarioSpec spec = receiver
                                     ? scenarios::receiverScenario()
                                     : scenarios::sensingSystemScenario();
  std::uint64_t seed = 1;
  for (auto _ : state) {
    teamsim::SimulationOptions options;
    options.adpm = adpm;
    options.seed = seed++;
    teamsim::SimulationEngine engine(spec, options);
    benchmark::DoNotOptimize(engine.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FullSimulation)
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({1, 0})
    ->Args({1, 1})
    ->ArgNames({"receiver", "adpm"})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
