// Fig. 10: variation of design operations with specification tightness.
//
// "To examine ADPM's robustness with respect to problem hardness, we swept
// the tightness of top-level requirements.  Fig. 10 shows the variation in
// the number of executed operations with the tightness of the gain
// requirement in the receiver problem.  This variation appears to be larger
// when using the conventional approach, which suggests that the new ADPM
// approach is more robust."
#include <cstdio>
#include <fstream>
#include <vector>

#include "scenarios/receiver.hpp"
#include "teamsim/experiment.hpp"
#include "teamsim/export.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace adpm;

namespace {
constexpr std::size_t kSeeds = 20;
const double kGainSweep[] = {21.0, 23.0, 25.0, 27.0, 29.0, 31.0};
}  // namespace

int main() {
  std::printf("# Fig. 10: operations vs tightness of the gain requirement\n");
  std::printf("# receiver case, %zu seeds per point\n\n", kSeeds);

  util::TextTable t;
  t.header({"Gain-min (dB)", "Conv ops", "Conv stddev", "ADPM ops",
            "ADPM stddev", "Completed (conv/adpm)"});

  std::vector<double> convMeans;
  std::vector<double> adpmMeans;
  std::vector<teamsim::SweepPoint> points;
  for (const double gain : kGainSweep) {
    scenarios::ReceiverConfig cfg;
    cfg.gainMin = gain;
    const dpm::ScenarioSpec spec = scenarios::receiverScenario(cfg);
    const teamsim::SimulationOptions base;
    const teamsim::Comparison cmp =
        teamsim::compareApproaches(spec, base, kSeeds);
    convMeans.push_back(cmp.conventional.operations.mean());
    adpmMeans.push_back(cmp.adpm.operations.mean());
    points.push_back({gain, cmp.conventional, cmp.adpm});
    t.row({util::formatNumber(gain, 3),
           util::formatNumber(cmp.conventional.operations.mean(), 4),
           util::formatNumber(cmp.conventional.operations.stddev(), 4),
           util::formatNumber(cmp.adpm.operations.mean(), 4),
           util::formatNumber(cmp.adpm.operations.stddev(), 4),
           std::to_string(cmp.conventional.completed) + "/" +
               std::to_string(cmp.adpm.completed)});
  }
  std::printf("%s\n", t.render().c_str());

  // "Variation appears to be larger when using the conventional approach":
  // compare the spread of the per-tightness means across the sweep.
  const double convSpread = util::stddev(convMeans);
  const double adpmSpread = util::stddev(adpmMeans);
  const double convRange =
      *std::max_element(convMeans.begin(), convMeans.end()) -
      *std::min_element(convMeans.begin(), convMeans.end());
  const double adpmRange =
      *std::max_element(adpmMeans.begin(), adpmMeans.end()) -
      *std::min_element(adpmMeans.begin(), adpmMeans.end());

  std::printf("variation across the sweep (stddev of means): conventional "
              "%.1f, ADPM %.1f\n", convSpread, adpmSpread);
  std::printf("variation across the sweep (range of means):  conventional "
              "%.1f, ADPM %.1f\n", convRange, adpmRange);
  const bool robust = adpmSpread < convSpread && adpmRange < convRange;
  {
    std::ofstream csv("fig10_tightness.csv");
    teamsim::writeSweepCsv(csv, "gain_min_db", points);
    std::ofstream plot("fig10_tightness.gnuplot");
    plot << teamsim::gnuplotSweepScript("fig10_tightness.csv",
                                        "minimum gain requirement (dB)");
  }
  std::printf("shape-check: adpm-more-robust=%s\n", robust ? "yes" : "NO");
  std::printf("wrote fig10_tightness.csv and fig10_tightness.gnuplot\n");
  return robust ? 0 : 1;
}
