// Fig. 9(a): number of design operations required to complete each design
// case, conventional vs ADPM, plus the spin comparison from the text.
//
// "Over 60 simulations were executed varying the value of the random seed.
// As Fig. 9 (a) shows, at least twice as many operations on average were
// required to complete the designs using the conventional approach compared
// to ADPM. ... The reduction in the number of operations is more
// significant for the receiver problem. ... the average number of spins
// performed using ADPM was 7% of the number of spins performed using the
// conventional approach. ... ADPM's results were at least 3 times less
// variable."
#include <cstdio>
#include <fstream>

#include "scenarios/receiver.hpp"
#include "scenarios/sensing.hpp"
#include "teamsim/experiment.hpp"
#include "teamsim/export.hpp"
#include "util/table.hpp"

using namespace adpm;

namespace {
constexpr std::size_t kSeeds = 60;  // the paper's "over 60 simulations"
}

int main() {
  const teamsim::SimulationOptions base;
  const teamsim::Comparison sensing = teamsim::compareApproaches(
      scenarios::sensingSystemScenario(), base, kSeeds);
  const teamsim::Comparison receiver = teamsim::compareApproaches(
      scenarios::receiverScenario(), base, kSeeds);

  std::printf("# Fig. 9(a): design operations to complete (%zu seeds/cell)\n\n",
              kSeeds);
  util::TextTable t;
  t.header({"Case", "Approach", "Ops (mean)", "Ops (stddev)", "Spins (mean)",
            "Completed"});
  auto row = [&](const char* name, const teamsim::CellStats& c,
                 const char* mode) {
    t.row({name, mode, util::formatNumber(c.operations.mean(), 4),
           util::formatNumber(c.operations.stddev(), 4),
           util::formatNumber(c.spins.mean(), 4),
           std::to_string(c.completed) + "/" + std::to_string(c.runs)});
  };
  row("sensing-system", sensing.conventional, "Conventional");
  row("sensing-system", sensing.adpm, "ADPM");
  t.rule();
  row("wireless-receiver", receiver.conventional, "Conventional");
  row("wireless-receiver", receiver.adpm, "ADPM");
  std::printf("%s\n", t.render().c_str());

  util::TextTable d;
  d.header({"Derived metric", "sensing", "receiver", "paper's claim"});
  d.row({"ops ratio (conv/ADPM)",
         util::formatNumber(sensing.operationRatio(), 3),
         util::formatNumber(receiver.operationRatio(), 3),
         ">= 2, larger for receiver"});
  d.row({"stddev ratio (conv/ADPM)",
         util::formatNumber(sensing.variabilityRatio(), 3),
         util::formatNumber(receiver.variabilityRatio(), 3),
         ">= 3 (ADPM more predictable)"});
  d.row({"spin ratio (ADPM/conv)",
         util::formatNumber(sensing.spinRatio(), 3),
         util::formatNumber(receiver.spinRatio(), 3),
         "~0.07 on average"});
  const double blendedSpin =
      (sensing.adpm.spins.mean() + receiver.adpm.spins.mean()) /
      (sensing.conventional.spins.mean() +
       receiver.conventional.spins.mean());
  d.row({"blended spin ratio", util::formatNumber(blendedSpin, 3), "",
         "~0.07"});
  std::printf("%s", d.render().c_str());

  const bool opsOk = sensing.operationRatio() >= 2.0 &&
                     receiver.operationRatio() >= 2.0;
  const bool orderOk = receiver.operationRatio() > sensing.operationRatio();
  const bool varOk = sensing.variabilityRatio() >= 3.0 &&
                     receiver.variabilityRatio() >= 3.0;
  const bool spinOk = blendedSpin < 0.2;
  {
    std::vector<teamsim::CellStats> cells{
        sensing.conventional, sensing.adpm, receiver.conventional,
        receiver.adpm};
    cells[0].label = "sensing/conventional";
    cells[1].label = "sensing/ADPM";
    cells[2].label = "receiver/conventional";
    cells[3].label = "receiver/ADPM";
    std::ofstream csv("fig9a_operations.csv");
    teamsim::writeCellsCsv(csv, cells);
  }
  std::printf("\nshape-check: ops>=2x=%s receiver-larger=%s stddev>=3x=%s "
              "spins-small=%s\n",
              opsOk ? "yes" : "NO", orderOk ? "yes" : "NO",
              varOk ? "yes" : "NO", spinOk ? "yes" : "NO");
  return (opsOk && orderOk && varOk && spinOk) ? 0 : 1;
}
