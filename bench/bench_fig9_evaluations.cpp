// Fig. 9(b): number of constraint evaluations, conventional vs ADPM.
//
// "The average number of evaluations required by ADPM in our simulations
// was much higher than those required by the conventional approach. ... The
// computational penalty is smaller for the wireless receiver problem. ...
// the average number of evaluations per executed operation reflects a
// larger penalty than the penalty given by the total number of
// evaluations."
#include <cstdio>
#include <fstream>

#include "scenarios/receiver.hpp"
#include "scenarios/sensing.hpp"
#include "teamsim/experiment.hpp"
#include "teamsim/export.hpp"
#include "util/table.hpp"

using namespace adpm;

namespace {
constexpr std::size_t kSeeds = 60;
}

int main() {
  const teamsim::SimulationOptions base;
  const teamsim::Comparison sensing = teamsim::compareApproaches(
      scenarios::sensingSystemScenario(), base, kSeeds);
  const teamsim::Comparison receiver = teamsim::compareApproaches(
      scenarios::receiverScenario(), base, kSeeds);

  std::printf("# Fig. 9(b): constraint evaluations (%zu seeds/cell)\n\n",
              kSeeds);
  util::TextTable t;
  t.header({"Case", "Approach", "Total evals (mean)", "Evals/op (mean)"});
  auto row = [&](const char* name, const teamsim::CellStats& c,
                 const char* mode) {
    t.row({name, mode, util::formatNumber(c.evaluations.mean(), 5),
           util::formatNumber(c.evaluationsPerOperation.mean(), 4)});
  };
  row("sensing-system", sensing.conventional, "Conventional");
  row("sensing-system", sensing.adpm, "ADPM");
  t.rule();
  row("wireless-receiver", receiver.conventional, "Conventional");
  row("wireless-receiver", receiver.adpm, "ADPM");
  std::printf("%s\n", t.render().c_str());

  const double sTotal = sensing.evaluationRatio();
  const double rTotal = receiver.evaluationRatio();
  const double sPerOp = sensing.adpm.evaluationsPerOperation.mean() /
                        sensing.conventional.evaluationsPerOperation.mean();
  const double rPerOp = receiver.adpm.evaluationsPerOperation.mean() /
                        receiver.conventional.evaluationsPerOperation.mean();

  util::TextTable d;
  d.header({"Derived metric", "sensing", "receiver", "paper's claim"});
  d.row({"total-evals ratio (ADPM/conv)", util::formatNumber(sTotal, 3),
         util::formatNumber(rTotal, 3),
         "much higher; smaller for receiver"});
  d.row({"evals-per-op ratio (ADPM/conv)", util::formatNumber(sPerOp, 3),
         util::formatNumber(rPerOp, 3), "larger than the total ratio"});
  std::printf("%s", d.render().c_str());

  const bool muchHigher = sTotal > 1.5 && rTotal > 1.5;
  const bool receiverSmaller = rTotal < sTotal;
  const bool perOpLarger = sPerOp > sTotal && rPerOp > rTotal;
  {
    std::vector<teamsim::CellStats> cells{
        sensing.conventional, sensing.adpm, receiver.conventional,
        receiver.adpm};
    cells[0].label = "sensing/conventional";
    cells[1].label = "sensing/ADPM";
    cells[2].label = "receiver/conventional";
    cells[3].label = "receiver/ADPM";
    std::ofstream csv("fig9b_evaluations.csv");
    teamsim::writeCellsCsv(csv, cells);
  }
  std::printf("\nshape-check: adpm-much-higher=%s receiver-penalty-smaller=%s "
              "per-op-larger-than-total=%s\n",
              muchHigher ? "yes" : "NO", receiverSmaller ? "yes" : "NO",
              perOpLarger ? "yes" : "NO");
  return (muchHigher && receiverSmaller && perOpLarger) ? 0 : 1;
}
