// Behavioural tests for the simulated-designer model (paper Section 3.1.1).
#include "teamsim/designer.hpp"

#include <gtest/gtest.h>

#include "dpm/scenario.hpp"

namespace adpm::teamsim {
namespace {

using constraint::ConstraintId;
using constraint::PropertyId;
using constraint::Relation;
using interval::Domain;

// A one-designer problem with a free variable, a derived property and both
// a model and a spec, rigged so each heuristic's effect is observable.
struct Rig {
  dpm::ScenarioSpec spec;
  std::size_t w, power, narrow, wide;

  Rig() {
    spec.name = "rig";
    spec.addObject("o");
    w = spec.addProperty("w", "o", Domain::continuous(1, 9));
    power = spec.addProperty("power", "o", Domain::continuous(0, 100));
    // Two more outputs with very different feasible-window sizes.
    narrow = spec.addProperty("narrow", "o", Domain::continuous(0, 100));
    wide = spec.addProperty("wide", "o", Domain::continuous(0, 100));
    spec.addConstraint({"power-model", spec.pvar(power), Relation::Eq,
                        10.0 * spec.pvar(w), {}});
    spec.addConstraint({"power-spec", spec.pvar(power), Relation::Le,
                        expr::Expr::constant(60.0), {}});
    // narrow ends up in [40, 45]; wide stays [0, 100].
    spec.addConstraint({"narrow-lo", spec.pvar(narrow), Relation::Ge,
                        expr::Expr::constant(40.0), {}});
    spec.addConstraint({"narrow-hi", spec.pvar(narrow), Relation::Le,
                        expr::Expr::constant(45.0), {}});
    spec.addProblem({"P", "o", "dana", {}, {w, power, narrow, wide},
                     {0, 1, 2, 3}, std::nullopt, {}, true});
  }
};

dpm::Operation mustOp(std::optional<dpm::Operation> op) {
  EXPECT_TRUE(op.has_value());
  return *op;
}

TEST(SimulatedDesigner, AdpmBindsSmallestWindowFreeVariableFirst) {
  Rig rig;
  dpm::DesignProcessManager mgr(dpm::DesignProcessManager::Options{.adpm = true});
  dpm::instantiate(rig.spec, mgr);
  mgr.bootstrap();

  SimulationOptions options;
  SimulatedDesigner dana("dana", options, 99);
  const dpm::Operation op = mustOp(dana.nextOperation(mgr));
  EXPECT_EQ(op.kind, dpm::OperatorKind::Synthesis);
  ASSERT_EQ(op.assignments.size(), 1u);
  // Derived `power` binds last; among free variables, `narrow` has the
  // relatively smallest feasible window ([40,45] of [0,100]) and w is next
  // ([1,6] of [1,9] via power <= 60).
  EXPECT_EQ(op.assignments[0].first.value,
            static_cast<std::uint32_t>(rig.narrow));
  // The value respects the propagated window with some inward margin.
  EXPECT_GT(op.assignments[0].second, 40.0 - 1e-9);
  EXPECT_LT(op.assignments[0].second, 45.0 + 1e-9);
}

TEST(SimulatedDesigner, ConventionalBindsFreeVariablesBeforeDerived) {
  Rig rig;
  dpm::DesignProcessManager mgr(
      dpm::DesignProcessManager::Options{.adpm = false});
  dpm::instantiate(rig.spec, mgr);

  SimulationOptions options;
  options.adpm = false;
  SimulatedDesigner dana("dana", options, 4);
  const dpm::Operation first = mustOp(dana.nextOperation(mgr));
  ASSERT_EQ(first.assignments.size(), 1u);
  // Never the derived `power` first.
  EXPECT_NE(first.assignments[0].first.value,
            static_cast<std::uint32_t>(rig.power));
}

TEST(SimulatedDesigner, DerivedPropertyBindsToExactModelValue) {
  Rig rig;
  dpm::DesignProcessManager mgr(dpm::DesignProcessManager::Options{.adpm = true});
  dpm::instantiate(rig.spec, mgr);
  mgr.bootstrap();

  SimulationOptions options;
  SimulatedDesigner dana("dana", options, 7);
  // Drive the designer until it binds `power`; the value must equal 10*w.
  for (int i = 0; i < 10; ++i) {
    auto op = dana.nextOperation(mgr);
    if (!op) break;
    const bool isPower =
        op->assignments.size() == 1 &&
        op->assignments[0].first.value == static_cast<std::uint32_t>(rig.power);
    if (isPower) {
      const auto& wProp = mgr.network().property(
          PropertyId{static_cast<std::uint32_t>(rig.w)});
      ASSERT_TRUE(wProp.bound());
      EXPECT_DOUBLE_EQ(op->assignments[0].second, 10.0 * *wProp.value);
      return;
    }
    mgr.execute(*op);
  }
  FAIL() << "designer never bound the derived property";
}

TEST(SimulatedDesigner, RepairsKnownViolationBeforeBinding) {
  Rig rig;
  dpm::DesignProcessManager mgr(dpm::DesignProcessManager::Options{.adpm = true});
  dpm::instantiate(rig.spec, mgr);
  // Force a violation: w = 9 -> power-model pins power at 90 > 60.
  dpm::Operation seed;
  seed.kind = dpm::OperatorKind::Synthesis;
  seed.problem = dpm::ProblemId{0};
  seed.designer = "dana";
  seed.assignments.emplace_back(PropertyId{static_cast<std::uint32_t>(rig.w)},
                                9.0);
  seed.assignments.emplace_back(
      PropertyId{static_cast<std::uint32_t>(rig.power)}, 90.0);
  mgr.execute(seed);
  ASSERT_GT(mgr.knownViolationCount(), 0u);

  SimulationOptions options;
  SimulatedDesigner dana("dana", options, 13);
  const dpm::Operation op = mustOp(dana.nextOperation(mgr));
  // The next operation is a repair (it carries a triggering violation), not
  // a fresh binding of narrow/wide.
  EXPECT_TRUE(op.triggeredBy.has_value());
}

TEST(SimulatedDesigner, IdleWhenEverythingSolved) {
  Rig rig;
  dpm::DesignProcessManager mgr(dpm::DesignProcessManager::Options{.adpm = true});
  dpm::instantiate(rig.spec, mgr);
  mgr.bootstrap();

  SimulationOptions options;
  SimulatedDesigner dana("dana", options, 21);
  for (int i = 0; i < 40 && !mgr.designComplete(); ++i) {
    auto op = dana.nextOperation(mgr);
    ASSERT_TRUE(op.has_value()) << "designer idle before completion";
    mgr.execute(*op);
  }
  EXPECT_TRUE(mgr.designComplete());
  EXPECT_FALSE(dana.nextOperation(mgr).has_value());
}

TEST(SimulatedDesigner, ConventionalRequestsVerificationWhenBound) {
  Rig rig;
  dpm::DesignProcessManager mgr(
      dpm::DesignProcessManager::Options{.adpm = false});
  dpm::instantiate(rig.spec, mgr);

  SimulationOptions options;
  options.adpm = false;
  SimulatedDesigner dana("dana", options, 5);
  bool sawVerification = false;
  for (int i = 0; i < 60 && !mgr.designComplete(); ++i) {
    auto op = dana.nextOperation(mgr);
    if (!op) break;
    if (op->kind == dpm::OperatorKind::Verification) sawVerification = true;
    mgr.execute(*op);
  }
  EXPECT_TRUE(sawVerification);
  EXPECT_TRUE(mgr.designComplete());
}

TEST(SimulatedDesigner, NeverTouchesFrozenRequirements) {
  dpm::ScenarioSpec spec;
  spec.name = "frozen";
  spec.addObject("o");
  const auto req = spec.addProperty("req", "o", Domain::continuous(0, 10));
  const auto x = spec.addProperty("x", "o", Domain::continuous(0, 10));
  spec.addConstraint({"spec", spec.pvar(x), Relation::Le, spec.pvar(req), {}});
  spec.addProblem({"P", "o", "dana", {}, {req, x}, {0}, std::nullopt, {}, true});
  spec.require(req, 5.0);

  dpm::DesignProcessManager mgr(dpm::DesignProcessManager::Options{.adpm = true});
  dpm::instantiate(spec, mgr);
  mgr.bootstrap();

  SimulationOptions options;
  SimulatedDesigner dana("dana", options, 77);
  for (int i = 0; i < 20; ++i) {
    auto op = dana.nextOperation(mgr);
    if (!op) break;
    for (const auto& [pid, value] : op->assignments) {
      (void)value;
      EXPECT_NE(pid.value, static_cast<std::uint32_t>(req))
          << "designer rebound a frozen requirement";
    }
    mgr.execute(*op);
  }
}

TEST(SimulatedDesigner, PreferenceBreaksBindingTies) {
  // One free property with no directional constraint signal: with prefer
  // low, the ADPM designer binds near the bottom of its feasible window.
  dpm::ScenarioSpec spec;
  spec.name = "pref";
  spec.addObject("o");
  const auto x = spec.addProperty("x", "o", Domain::continuous(0, 10));
  spec.properties[x].preference = -1;
  spec.addProblem({"P", "o", "dana", {}, {x}, {}, std::nullopt, {}, true});

  dpm::DesignProcessManager mgr(dpm::DesignProcessManager::Options{.adpm = true});
  dpm::instantiate(spec, mgr);
  mgr.bootstrap();

  SimulationOptions options;
  SimulatedDesigner dana("dana", options, 3);
  const auto op = dana.nextOperation(mgr);
  ASSERT_TRUE(op.has_value());
  ASSERT_EQ(op->assignments.size(), 1u);
  // Margin jitter keeps it off the exact bound, but it lands in the lower
  // half of the range.
  EXPECT_LT(op->assignments[0].second, 5.0);
}

TEST(SimulatedDesigner, ConventionalBindingBiasedByPreference) {
  dpm::ScenarioSpec spec;
  spec.name = "pref2";
  spec.addObject("o");
  const auto x = spec.addProperty("x", "o", Domain::continuous(0, 10));
  spec.properties[x].preference = 1;  // prefer high
  spec.addProblem({"P", "o", "dana", {}, {x}, {}, std::nullopt, {}, true});

  // Across many seeds, all conventional first binds land in the top half.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    dpm::DesignProcessManager mgr(
        dpm::DesignProcessManager::Options{.adpm = false});
    dpm::instantiate(spec, mgr);
    SimulationOptions options;
    options.adpm = false;
    SimulatedDesigner dana("dana", options, seed);
    const auto op = dana.nextOperation(mgr);
    ASSERT_TRUE(op.has_value());
    EXPECT_GE(op->assignments[0].second, 5.0) << "seed " << seed;
  }
}

}  // namespace
}  // namespace adpm::teamsim
