#include "teamsim/statwindow.hpp"

#include <gtest/gtest.h>

#include "scenarios/walkthrough.hpp"
#include "teamsim/graphviz.hpp"
#include "util/error.hpp"

namespace adpm::teamsim {
namespace {

SimulationEngine finished(bool adpm, std::uint64_t seed = 3) {
  SimulationOptions options;
  options.adpm = adpm;
  options.seed = seed;
  SimulationEngine engine(scenarios::walkthroughScenario(), options);
  engine.run();
  return engine;
}

TEST(StatWindow, ShowsNotificationsRow) {
  const SimulationEngine engine = finished(true);
  const std::string panel = renderStatisticsWindow(engine);
  EXPECT_NE(panel.find("Notifications sent"), std::string::npos);
}

TEST(StatWindow, BreaksOperationsDownByKind) {
  const SimulationEngine engine = finished(false, 5);  // conventional: all 3
  const std::string panel = renderStatisticsWindow(engine);
  EXPECT_NE(panel.find("synthesis / verification / decomposition"),
            std::string::npos);
  // The conventional walkthrough issues at least one of each kind.
  std::size_t synth = 0, verify = 0, decompose = 0;
  for (const auto& s : engine.trace()) {
    synth += s.kind == dpm::OperatorKind::Synthesis;
    verify += s.kind == dpm::OperatorKind::Verification;
    decompose += s.kind == dpm::OperatorKind::Decomposition;
  }
  EXPECT_GT(synth, 0u);
  EXPECT_GT(verify, 0u);
  EXPECT_EQ(synth + verify + decompose, engine.trace().size());
}

TEST(StatWindow, ConstraintCountIsActiveCount) {
  // Before any decomposition, staged constraints are not displayed.
  SimulationOptions options;
  options.adpm = true;
  SimulationEngine engine(scenarios::walkthroughScenario(), options);
  const std::string panel = renderStatisticsWindow(engine);
  const std::string expected =
      std::to_string(engine.manager().network().activeConstraintCount());
  EXPECT_NE(panel.find(expected), std::string::npos);
}

TEST(HistoryStrip, GlyphsScaleWithPeak) {
  std::vector<OpStat> trace(10);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    trace[i].opIndex = i + 1;
    trace[i].violationsFound = i;  // ramp 0..9
  }
  const std::string strip = renderHistoryStrip(trace, "violationsFound", 10);
  // The peak bucket renders the densest glyph; the zero bucket a space.
  EXPECT_NE(strip.find('@'), std::string::npos);
  EXPECT_NE(strip.find("peak 9"), std::string::npos);
}

TEST(HistoryStrip, DownsamplesLongTraces) {
  std::vector<OpStat> trace(500);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    trace[i].opIndex = i + 1;
    trace[i].evaluations = (i == 250) ? 100 : 1;
  }
  const std::string strip = renderHistoryStrip(trace, "evaluations", 50);
  // 500 ops compressed into <= 50 glyph columns (plus the label).
  const auto colon = strip.find(": ");
  ASSERT_NE(colon, std::string::npos);
  EXPECT_LE(strip.size() - colon - 3, 50u);  // minus ": " and trailing \n
}

TEST(Graphviz, StagedConstraintsRenderDashed) {
  // Before decomposition the walkthrough has no staged constraints, so use
  // a fresh engine on the sensing case where children defer.
  SimulationOptions options;
  options.adpm = true;
  SimulationEngine engine(scenarios::walkthroughScenario(), options);
  // The walkthrough's problems start ready; instead check that the export
  // of a mid-run engine parses structurally: every edge references a node.
  engine.run();
  const std::string dot = toGraphviz(engine.manager());
  std::size_t edges = 0;
  for (std::size_t pos = dot.find(" -- "); pos != std::string::npos;
       pos = dot.find(" -- ", pos + 1)) {
    ++edges;
  }
  // Each constraint contributes one edge per argument.
  std::size_t expected = 0;
  const auto& net = engine.manager().network();
  for (const auto cid : net.constraintIds()) {
    expected += net.constraint(cid).arguments().size();
  }
  EXPECT_EQ(edges, expected);
}

}  // namespace
}  // namespace adpm::teamsim
