#include "teamsim/experiment.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

#include "scenarios/receiver.hpp"
#include "scenarios/sensing.hpp"
#include "scenarios/walkthrough.hpp"
#include "teamsim/statwindow.hpp"

namespace adpm::teamsim {
namespace {

TEST(Experiment, SeedSweepAggregates) {
  SimulationOptions base;
  base.adpm = true;
  const CellStats cell = runSeedSweep(scenarios::walkthroughScenario(), base,
                                      8, 1, "walkthrough/ADPM");
  EXPECT_EQ(cell.runs, 8u);
  EXPECT_EQ(cell.completed, 8u);
  EXPECT_DOUBLE_EQ(cell.completionRate(), 1.0);
  EXPECT_GT(cell.operations.mean(), 0.0);
  EXPECT_GT(cell.evaluations.mean(), 0.0);
  EXPECT_EQ(cell.operations.count(), 8u);
  EXPECT_EQ(cell.label, "walkthrough/ADPM");
}

TEST(Experiment, ComparisonShapesMatchThePaper) {
  // A reduced version of the Fig. 9 protocol on the sensing case: the full
  // 60-seed sweep lives in bench/, this sanity-checks the directional claims
  // with a smaller sample.
  SimulationOptions base;
  const Comparison cmp =
      compareApproaches(scenarios::sensingSystemScenario(), base, 10);

  EXPECT_EQ(cmp.adpm.completed, cmp.adpm.runs);
  EXPECT_EQ(cmp.conventional.completed, cmp.conventional.runs);

  // Conventional needs more designer operations...
  EXPECT_GT(cmp.operationRatio(), 1.3);
  // ...while ADPM consumes more constraint evaluations (tool runs).
  EXPECT_GT(cmp.evaluationRatio(), 1.5);
  // ADPM spins are a small fraction of conventional's.
  EXPECT_LT(cmp.spinRatio(), 0.7);
}

void expectSameCell(const CellStats& parallel, const CellStats& serial) {
  EXPECT_EQ(parallel.runs, serial.runs);
  EXPECT_EQ(parallel.completed, serial.completed);
  EXPECT_EQ(parallel.operations.count(), serial.operations.count());
  // Welford merges associate differently across shards, so aggregates match
  // to floating-point association, not bit-exactly.
  EXPECT_NEAR(parallel.operations.mean(), serial.operations.mean(), 1e-9);
  EXPECT_NEAR(parallel.operations.stddev(), serial.operations.stddev(), 1e-9);
  EXPECT_NEAR(parallel.evaluations.mean(), serial.evaluations.mean(), 1e-9);
  EXPECT_NEAR(parallel.evaluations.stddev(), serial.evaluations.stddev(),
              1e-9);
  EXPECT_NEAR(parallel.evaluationsPerOperation.mean(),
              serial.evaluationsPerOperation.mean(), 1e-9);
  EXPECT_NEAR(parallel.spins.mean(), serial.spins.mean(), 1e-9);
  EXPECT_NEAR(parallel.spins.stddev(), serial.spins.stddev(), 1e-9);
  EXPECT_NEAR(parallel.violationsFound.mean(), serial.violationsFound.mean(),
              1e-9);
}

TEST(Experiment, ParallelSweepMatchesSerialOnReceiver) {
  // Per-run seeds are identical under the static shard partition, so the
  // merged parallel aggregates must equal the serial sweep's on the paper's
  // main (receiver) case — for both flows, since the parallel driver is how
  // the large sweeps run.
  SimulationOptions base;
  base.adpm = true;
  const auto spec = scenarios::receiverScenario();
  expectSameCell(runSeedSweepParallel(spec, base, 6, 1, "p", 3),
                 runSeedSweep(spec, base, 6, 1, "s"));

  base.adpm = false;  // conventional has real run-to-run variance
  expectSameCell(runSeedSweepParallel(spec, base, 6, 1, "p", 3),
                 runSeedSweep(spec, base, 6, 1, "s"));

  // Degenerate thread counts collapse to the serial path unchanged.
  base.adpm = true;
  expectSameCell(runSeedSweepParallel(spec, base, 1, 1, "p", 8),
                 runSeedSweep(spec, base, 1, 1, "s"));
}

TEST(Experiment, ParallelSweepAutoThreadCountMatchesSerial) {
  // threads=0 means "use hardware_concurrency()" — which the standard
  // allows to report 0 ("not computable", e.g. restrictive cgroups).  The
  // sweep must clamp that to one worker and still produce the serial
  // result, never divide by zero or spawn nothing.
  SimulationOptions base;
  base.adpm = true;
  const auto spec = scenarios::walkthroughScenario();
  expectSameCell(runSeedSweepParallel(spec, base, 4, 1, "auto", 0),
                 runSeedSweep(spec, base, 4, 1, "serial"));
}

TEST(Comparison, RatioGuards) {
  Comparison cmp;
  // Empty cells: every ratio degrades gracefully.
  EXPECT_EQ(cmp.operationRatio(), 0.0);
  EXPECT_EQ(cmp.evaluationRatio(), 0.0);
  EXPECT_EQ(cmp.spinRatio(), 0.0);
  EXPECT_EQ(cmp.variabilityRatio(), 1.0);  // 0/0 variability: neutral

  // Perfectly repeatable ADPM vs varying conventional: infinite ratio.
  cmp.adpm.operations.add(10);
  cmp.adpm.operations.add(10);
  cmp.conventional.operations.add(10);
  cmp.conventional.operations.add(30);
  EXPECT_TRUE(std::isinf(cmp.variabilityRatio()));
  EXPECT_NEAR(cmp.operationRatio(), 2.0, 1e-12);
}

TEST(StatWindow, RendersPanel) {
  SimulationOptions base;
  base.adpm = true;
  base.seed = 5;
  SimulationEngine engine(scenarios::walkthroughScenario(), base);
  engine.run();
  const std::string panel = renderStatisticsWindow(engine);
  EXPECT_NE(panel.find("Design Process Statistics"), std::string::npos);
  EXPECT_NE(panel.find("Executed operations"), std::string::npos);
  EXPECT_NE(panel.find("Cumulative design spins"), std::string::npos);
  EXPECT_NE(panel.find("ADPM"), std::string::npos);
  EXPECT_NE(panel.find("Design complete"), std::string::npos);
}

TEST(StatWindow, HistoryStripHandlesMetrics) {
  SimulationOptions base;
  base.adpm = false;
  SimulationEngine engine(scenarios::walkthroughScenario(), base);
  engine.run();
  for (const char* metric :
       {"violationsFound", "violationsKnown", "evaluations", "spins"}) {
    const std::string strip = renderHistoryStrip(engine.trace(), metric);
    EXPECT_NE(strip.find(metric), std::string::npos);
  }
  EXPECT_THROW(renderHistoryStrip(engine.trace(), "bogus"),
               adpm::InvalidArgumentError);
  EXPECT_EQ(renderHistoryStrip({}, "spins"), "(no operations)\n");
}

}  // namespace
}  // namespace adpm::teamsim
