#include "teamsim/engine.hpp"
#include "teamsim/experiment.hpp"

#include <gtest/gtest.h>

#include "scenarios/receiver.hpp"
#include "scenarios/sensing.hpp"
#include "scenarios/walkthrough.hpp"

namespace adpm::teamsim {
namespace {

SimulationOptions opts(bool adpm, std::uint64_t seed) {
  SimulationOptions o;
  o.adpm = adpm;
  o.seed = seed;
  return o;
}

TEST(SimulationEngine, AdpmCompletesWalkthrough) {
  SimulationEngine engine(scenarios::walkthroughScenario(), opts(true, 7));
  const SimulationResult r = engine.run();
  EXPECT_TRUE(r.completed);
  EXPECT_GT(r.operations, 0u);
  EXPECT_GT(r.evaluations, 0u);
  EXPECT_EQ(r.trace.size(), r.operations);
}

TEST(SimulationEngine, ConventionalCompletesWalkthrough) {
  SimulationEngine engine(scenarios::walkthroughScenario(), opts(false, 7));
  const SimulationResult r = engine.run();
  EXPECT_TRUE(r.completed);
  // The conventional flow must have issued verification operations.
  bool sawVerification = false;
  for (const auto& s : r.trace) {
    if (s.kind == dpm::OperatorKind::Verification) sawVerification = true;
  }
  EXPECT_TRUE(sawVerification);
}

class CompletesAcrossSeeds
    : public ::testing::TestWithParam<std::tuple<const char*, bool, int>> {};

TEST_P(CompletesAcrossSeeds, RunCompletes) {
  const auto& [name, adpm, seed] = GetParam();
  const dpm::ScenarioSpec spec =
      std::string(name) == "sensing" ? scenarios::sensingSystemScenario()
                                     : scenarios::receiverScenario();
  SimulationEngine engine(spec, opts(adpm, static_cast<std::uint64_t>(seed)));
  const SimulationResult r = engine.run();
  EXPECT_TRUE(r.completed)
      << name << " adpm=" << adpm << " seed=" << seed << " ops="
      << r.operations;
  // Completion means every constraint genuinely holds at the final point.
  auto& net = engine.manager().network();
  for (constraint::ConstraintId cid : net.constraintIds()) {
    EXPECT_NE(net.evaluate(cid), constraint::Status::Violated)
        << net.constraint(cid).name();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CompletesAcrossSeeds,
    ::testing::Combine(::testing::Values("sensing", "receiver"),
                       ::testing::Bool(), ::testing::Values(1, 2, 3, 4, 5)));

TEST(SimulationEngine, DeterministicForSameSeed) {
  SimulationEngine a(scenarios::sensingSystemScenario(), opts(true, 42));
  SimulationEngine b(scenarios::sensingSystemScenario(), opts(true, 42));
  const SimulationResult ra = a.run();
  const SimulationResult rb = b.run();
  EXPECT_EQ(ra.operations, rb.operations);
  EXPECT_EQ(ra.evaluations, rb.evaluations);
  EXPECT_EQ(ra.spins, rb.spins);
  ASSERT_EQ(ra.trace.size(), rb.trace.size());
  for (std::size_t i = 0; i < ra.trace.size(); ++i) {
    EXPECT_EQ(ra.trace[i].designer, rb.trace[i].designer);
    EXPECT_EQ(ra.trace[i].evaluations, rb.trace[i].evaluations);
  }
}

TEST(SimulationEngine, SeedsChangeTheProcess) {
  SimulationEngine a(scenarios::sensingSystemScenario(), opts(false, 1));
  SimulationEngine b(scenarios::sensingSystemScenario(), opts(false, 2));
  const SimulationResult ra = a.run();
  const SimulationResult rb = b.run();
  // Different random seeds should virtually never produce identical traces.
  EXPECT_TRUE(ra.operations != rb.operations ||
              ra.evaluations != rb.evaluations);
}

TEST(SimulationEngine, TraceAccountingIsConsistent) {
  SimulationEngine engine(scenarios::receiverScenario(), opts(true, 3));
  const SimulationResult r = engine.run();
  ASSERT_FALSE(r.trace.size() == 0);
  std::size_t evalSum = engine.bootstrapEvaluations();
  std::size_t spinCount = 0;
  for (std::size_t i = 0; i < r.trace.size(); ++i) {
    const OpStat& s = r.trace[i];
    EXPECT_EQ(s.opIndex, i + 1);
    evalSum += s.evaluations;
    if (s.spin) ++spinCount;
    EXPECT_EQ(s.cumulativeEvaluations, evalSum);
    EXPECT_EQ(s.cumulativeSpins, spinCount);
  }
  EXPECT_EQ(evalSum, r.evaluations);
  EXPECT_EQ(spinCount, r.spins);
}

TEST(SimulationEngine, StepReturnsFalseWhenEveryoneIdle) {
  SimulationEngine engine(scenarios::walkthroughScenario(), opts(true, 1));
  engine.run();
  EXPECT_TRUE(engine.complete());
  EXPECT_FALSE(engine.step());
}

TEST(SimulationEngine, OperationCapStopsRunawayRuns) {
  SimulationOptions o = opts(false, 1);
  o.maxOperations = 5;
  SimulationEngine engine(scenarios::receiverScenario(), o);
  const SimulationResult r = engine.run();
  EXPECT_LE(r.operations, 5u);
  EXPECT_FALSE(r.completed);
}

TEST(SimulationEngine, OwnerlessScenarioIdlesImmediately) {
  dpm::ScenarioSpec spec;
  spec.name = "ownerless";
  spec.addObject("o");
  spec.addProperty("x", "o", interval::Domain::continuous(0, 1));
  spec.addProblem({"p", "o", /*owner=*/"", {}, {0}, {}, std::nullopt, {},
                   true});
  SimulationEngine engine(spec, opts(true, 1));
  const SimulationResult r = engine.run();
  EXPECT_EQ(r.operations, 0u);
  EXPECT_FALSE(r.completed);  // nobody can bind x
}

TEST(SimulationEngine, NonpositiveDeltaDivisorIsGuarded) {
  SimulationOptions o = opts(true, 5);
  o.deltaDivisor = 0.0;  // would divide by zero without the guard
  SimulationEngine engine(scenarios::sensingSystemScenario(), o);
  const SimulationResult r = engine.run();
  EXPECT_TRUE(r.completed);
}

TEST(OptimizationPhase, ImprovesPreferredVariablesWhileStayingSound) {
  // The receiver's I-bias prefers low (power economy).  With an
  // optimization budget the completed design must end with a strictly
  // smaller bias current than the feasibility-only run, still satisfying
  // every constraint.
  SimulationOptions plain = opts(true, 9);
  SimulationOptions optimizing = plain;
  optimizing.optimizationPasses = 8;

  SimulationEngine a(scenarios::receiverScenario(), plain);
  SimulationEngine b(scenarios::receiverScenario(), optimizing);
  const SimulationResult ra = a.run();
  const SimulationResult rb = b.run();
  ASSERT_TRUE(ra.completed);
  ASSERT_TRUE(rb.completed);
  EXPECT_GT(rb.operations, ra.operations);  // improvement costs operations

  const auto pid = *b.manager().network().findProperty("I-bias");
  const double biasPlain = *a.manager().network().property(pid).value;
  const double biasOptimized = *b.manager().network().property(pid).value;
  EXPECT_LT(biasOptimized, biasPlain);

  auto& net = b.manager().network();
  for (const auto cid : net.constraintIds()) {
    EXPECT_NE(net.evaluate(cid), constraint::Status::Violated)
        << net.constraint(cid).name();
  }
}

TEST(OptimizationPhase, DisabledByDefault) {
  SimulationEngine engine(scenarios::receiverScenario(), opts(true, 9));
  const SimulationResult r = engine.run();
  EXPECT_TRUE(r.completed);
  for (const auto& s : r.trace) {
    // No rationale mentions optimization when the budget is zero.
    (void)s;
  }
  const auto& history = engine.manager().history();
  for (const auto& rec : history) {
    EXPECT_EQ(rec.op.rationale.find("optimize"), std::string::npos);
  }
}

class BlunderRobustness
    : public ::testing::TestWithParam<std::tuple<bool, int>> {};

TEST_P(BlunderRobustness, ProcessRecoversFromInjectedErrors) {
  const auto& [adpm, seed] = GetParam();
  SimulationOptions o = opts(adpm, static_cast<std::uint64_t>(seed));
  o.blunderRate = 0.15;  // roughly one in seven bindings is garbage
  SimulationEngine engine(scenarios::sensingSystemScenario(), o);
  const SimulationResult r = engine.run();
  EXPECT_TRUE(r.completed) << "adpm=" << adpm << " seed=" << seed;
  // The final design is still sound.
  auto& net = engine.manager().network();
  for (const auto cid : net.constraintIds()) {
    EXPECT_NE(net.evaluate(cid), constraint::Status::Violated)
        << net.constraint(cid).name();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BlunderRobustness,
    ::testing::Combine(::testing::Bool(), ::testing::Values(1, 2, 3, 4)));

TEST(BlunderRobustness, ErrorsCostOperations) {
  // Injected blunders create conflicts that must be repaired: on average the
  // ADPM runs get longer, never shorter, across a small sweep.
  SimulationOptions clean = opts(true, 1);
  SimulationOptions sloppy = clean;
  sloppy.blunderRate = 0.25;
  const CellStats a =
      runSeedSweep(scenarios::sensingSystemScenario(), clean, 10);
  const CellStats b =
      runSeedSweep(scenarios::sensingSystemScenario(), sloppy, 10);
  EXPECT_EQ(a.completed, a.runs);
  EXPECT_EQ(b.completed, b.runs);
  EXPECT_GT(b.operations.mean(), a.operations.mean());
}

}  // namespace
}  // namespace adpm::teamsim
