// Focused rigs for the designer's repair machinery: boundary solving,
// step clamping against known constraints, evidence-freshness gating, and
// the attempts rotation.  Each rig isolates one mechanism.
#include <gtest/gtest.h>

#include "dpm/scenario.hpp"
#include "teamsim/designer.hpp"

namespace adpm::teamsim {
namespace {

using constraint::ConstraintId;
using constraint::PropertyId;
using constraint::Relation;
using interval::Domain;

dpm::Operation synth(std::uint32_t prob, const char* designer,
                     std::uint32_t pid, double v) {
  dpm::Operation op;
  op.kind = dpm::OperatorKind::Synthesis;
  op.problem = dpm::ProblemId{prob};
  op.designer = designer;
  op.assignments.emplace_back(PropertyId{pid}, v);
  return op;
}

dpm::Operation verifyOp(std::uint32_t prob, const char* designer) {
  dpm::Operation op;
  op.kind = dpm::OperatorKind::Verification;
  op.problem = dpm::ProblemId{prob};
  op.designer = designer;
  return op;
}

TEST(DesignerMechanics, BoundarySolveLandsNearCrossing) {
  // Conventional flow, derived chain: power == 0.5*x^2, spec power <= 50.
  // With x bound to 12 (power 72, violated), the boundary solve should land
  // x just under sqrt(100) = 10 in one operation — not crawl by deltas.
  dpm::ScenarioSpec spec;
  spec.name = "bsolve";
  spec.addObject("o");
  const auto x = spec.addProperty("x", "o", Domain::continuous(0, 20));
  const auto power = spec.addProperty("power", "o", Domain::continuous(0, 250));
  spec.addConstraint({"model", spec.pvar(power), Relation::Eq,
                      0.5 * expr::sqr(spec.pvar(x)), {}});
  spec.addConstraint({"spec", spec.pvar(power), Relation::Le,
                      expr::Expr::constant(50.0), {}});
  spec.addProblem({"P", "o", "dana", {}, {x, power}, {0, 1},
                   std::nullopt, {}, true});

  dpm::DesignProcessManager mgr(
      dpm::DesignProcessManager::Options{.adpm = false});
  dpm::instantiate(spec, mgr);
  mgr.execute(synth(0, "dana", static_cast<std::uint32_t>(x), 12.0));
  mgr.execute(synth(0, "dana", static_cast<std::uint32_t>(power), 72.0));
  mgr.execute(verifyOp(0, "dana"));
  ASSERT_GT(mgr.knownViolationCount(), 0u);

  SimulationOptions options;
  options.adpm = false;
  SimulatedDesigner dana("dana", options, 3);
  // Drive the repairs; within a handful of operations x must land below 10.
  for (int i = 0; i < 12; ++i) {
    auto op = dana.nextOperation(mgr);
    ASSERT_TRUE(op.has_value());
    mgr.execute(*op);
    if (mgr.designComplete()) break;
  }
  EXPECT_TRUE(mgr.designComplete());
  const double xFinal =
      *mgr.network().property(PropertyId{static_cast<std::uint32_t>(x)}).value;
  EXPECT_LE(xFinal, 10.0 + 1e-6);
  EXPECT_GT(xFinal, 8.5);  // a boundary solve, not a blind plunge
}

TEST(DesignerMechanics, StepClampStopsAtKnownBoundary) {
  // ADPM: a violated budget pushes y down, but it cannot be fixed by y at
  // all (the frozen requirement z dominates the sum), so neither the
  // what-if window nor the 1-D boundary solve apply and the designer falls
  // back to delta stepping.  A second, currently satisfied floor constraint
  // must cap the plunge: the clamp never lets y cross the floor.
  dpm::ScenarioSpec spec;
  spec.name = "clamp";
  spec.addObject("sys");
  spec.addObject("o", "sys");
  const auto y = spec.addProperty("y", "o", Domain::continuous(0, 100));
  const auto z = spec.addProperty("z", "sys", Domain::continuous(0, 100));
  // floor: y >= 40 (the known boundary the repair must respect).
  spec.addConstraint({"floor", spec.pvar(y), Relation::Ge,
                      expr::Expr::constant(40.0), {}});
  // budget: y + z <= 30 with z frozen at 50 — violated for every y, so no
  // boundary crossing exists inside y's range.
  spec.addConstraint({"budget", spec.pvar(y) + spec.pvar(z), Relation::Le,
                      expr::Expr::constant(30.0), {}});
  spec.addProblem({"Top", "sys", "lead", {}, {z}, {1},
                   std::nullopt, {}, true});
  spec.addProblem({"P", "o", "dana", {z}, {y}, {0},
                   std::optional<std::size_t>{0}, {}, true});
  spec.require(z, 50.0);

  dpm::DesignProcessManager mgr(dpm::DesignProcessManager::Options{.adpm = true});
  dpm::instantiate(spec, mgr);
  mgr.execute(synth(1, "dana", static_cast<std::uint32_t>(y), 70.0));
  ASSERT_GT(mgr.knownViolationCount(), 0u);  // budget violated

  SimulationOptions options;
  SimulatedDesigner dana("dana", options, 7);
  double lowest = 70.0;
  for (int i = 0; i < 25; ++i) {
    auto op = dana.nextOperation(mgr);
    if (!op || op->assignments.empty()) break;
    mgr.execute(*op);
    const auto& p = mgr.network().property(
        PropertyId{static_cast<std::uint32_t>(y)});
    if (p.bound()) lowest = std::min(lowest, *p.value);
  }
  // Despite adaptive step growth, the clamp keeps y at or above the floor.
  EXPECT_GE(lowest, 40.0 - 1e-6);
  EXPECT_LT(lowest, 70.0);  // it did move
}

TEST(DesignerMechanics, StaleEvidenceSuppressesRepairUntilVerified) {
  // Conventional: a violated cross spec reads derived values; once the
  // designer rebinds an upstream variable the old verdict is stale and the
  // next action must be verification, not another repair.
  dpm::ScenarioSpec spec;
  spec.name = "fresh";
  spec.addObject("sys");
  spec.addObject("o", "sys");
  const auto x = spec.addProperty("x", "o", Domain::continuous(0, 10));
  const auto d = spec.addProperty("d", "o", Domain::continuous(0, 30));
  const auto cap = spec.addProperty("cap", "sys", Domain::continuous(1, 30));
  spec.addConstraint({"model", spec.pvar(d), Relation::Eq,
                      2.0 * spec.pvar(x), {}});
  spec.addConstraint({"spec", spec.pvar(d), Relation::Le, spec.pvar(cap), {}});
  const auto top = spec.addProblem({"Top", "sys", "lead", {}, {cap}, {1},
                                    std::nullopt, {}, true});
  spec.addProblem({"P", "o", "dana", {cap}, {x, d}, {0}, top, {}, true});
  spec.require(cap, 10.0);

  dpm::DesignProcessManager mgr(
      dpm::DesignProcessManager::Options{.adpm = false});
  dpm::instantiate(spec, mgr);
  mgr.execute(synth(1, "dana", static_cast<std::uint32_t>(x), 9.0));
  mgr.execute(synth(1, "dana", static_cast<std::uint32_t>(d), 18.0));
  mgr.execute(verifyOp(1, "dana"));
  mgr.execute(verifyOp(0, "lead"));  // spec violated: 18 > 10
  ASSERT_GT(mgr.knownViolationCount(), 0u);

  SimulationOptions options;
  options.adpm = false;
  SimulatedDesigner dana("dana", options, 5);
  // First action: a repair (evidence fresh).
  auto op1 = dana.nextOperation(mgr);
  ASSERT_TRUE(op1.has_value());
  EXPECT_EQ(op1->kind, dpm::OperatorKind::Synthesis);
  EXPECT_TRUE(op1->triggeredBy.has_value());
  mgr.execute(*op1);

  // The spec's verdict is now stale through the model chain: the next
  // designer action must be verification, not a further repair.
  auto op2 = dana.nextOperation(mgr);
  ASSERT_TRUE(op2.has_value());
  EXPECT_EQ(op2->kind, dpm::OperatorKind::Verification)
      << "acted on stale evidence";
}

TEST(DesignerMechanics, AttemptsRotationTriesAlternateKnobs) {
  // Two knobs influence a violated spec; the first choice cannot fix it
  // (its admissible range is exhausted).  After a few futile attempts the
  // rotation must hand the repair to the other knob.
  dpm::ScenarioSpec spec;
  spec.name = "rotate";
  spec.addObject("o");
  const auto a = spec.addProperty("a", "o", Domain::continuous(0, 1));
  const auto b = spec.addProperty("b", "o", Domain::continuous(0, 100));
  // a + b <= 10: with b bound at 60, only b can realistically fix it
  // (a's entire range moves the sum by at most 1).
  spec.addConstraint({"sum", spec.pvar(a) + spec.pvar(b), Relation::Le,
                      expr::Expr::constant(10.0), {}});
  spec.addProblem({"P", "o", "dana", {}, {a, b}, {0},
                   std::nullopt, {}, true});

  dpm::DesignProcessManager mgr(dpm::DesignProcessManager::Options{.adpm = true});
  dpm::instantiate(spec, mgr);
  mgr.execute(synth(0, "dana", static_cast<std::uint32_t>(a), 0.5));
  mgr.execute(synth(0, "dana", static_cast<std::uint32_t>(b), 60.0));
  ASSERT_GT(mgr.knownViolationCount(), 0u);

  SimulationOptions options;
  SimulatedDesigner dana("dana", options, 11);
  bool touchedB = false;
  for (int i = 0; i < 15 && !mgr.designComplete(); ++i) {
    auto op = dana.nextOperation(mgr);
    ASSERT_TRUE(op.has_value());
    for (const auto& [pid, value] : op->assignments) {
      (void)value;
      touchedB = touchedB || pid.value == static_cast<std::uint32_t>(b);
    }
    mgr.execute(*op);
  }
  EXPECT_TRUE(touchedB) << "rotation never tried the knob that can fix it";
  EXPECT_TRUE(mgr.designComplete());
}

}  // namespace
}  // namespace adpm::teamsim
