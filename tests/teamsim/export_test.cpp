#include "teamsim/export.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "scenarios/walkthrough.hpp"
#include "teamsim/graphviz.hpp"
#include "util/strings.hpp"

namespace adpm::teamsim {
namespace {

SimulationEngine runEngine(bool adpm) {
  SimulationOptions options;
  options.adpm = adpm;
  options.seed = 3;
  SimulationEngine engine(scenarios::walkthroughScenario(), options);
  engine.run();
  return engine;
}

TEST(ExportTrace, CsvHasHeaderAndOneRowPerOperation) {
  const SimulationEngine engine = runEngine(true);
  std::ostringstream out;
  writeTraceCsv(out, engine.trace());
  const auto lines = util::split(out.str(), '\n');
  // header + N rows + trailing empty field from final newline
  EXPECT_EQ(lines.size(), engine.trace().size() + 2);
  EXPECT_TRUE(util::startsWith(lines[0], "op,designer,kind"));
  EXPECT_TRUE(util::startsWith(lines[1], "1,"));
}

TEST(ExportProfile, PadsShorterRunWithZeros) {
  const SimulationEngine conv = runEngine(false);
  const SimulationEngine adpm = runEngine(true);
  ASSERT_GT(conv.trace().size(), adpm.trace().size());

  std::ostringstream out;
  writeProfileCsv(out, conv.trace(), adpm.trace());
  const auto lines = util::split(out.str(), '\n');
  EXPECT_EQ(lines.size(), conv.trace().size() + 2);
  // A row beyond the ADPM run's end has zeros in the ADPM columns.
  const auto lateRow = util::split(lines[adpm.trace().size() + 2], ',');
  ASSERT_EQ(lateRow.size(), 5u);
  EXPECT_EQ(lateRow[2], "0");
  EXPECT_EQ(lateRow[4], "0");
}

TEST(ExportCells, WritesAggregates) {
  SimulationOptions base;
  base.adpm = true;
  const CellStats cell = runSeedSweep(scenarios::walkthroughScenario(), base,
                                      4, 1, "walkthrough/ADPM");
  std::ostringstream out;
  writeCellsCsv(out, {cell});
  const std::string text = out.str();
  EXPECT_NE(text.find("walkthrough/ADPM"), std::string::npos);
  EXPECT_NE(text.find("ops_mean"), std::string::npos);
  const auto lines = util::split(text, '\n');
  EXPECT_EQ(lines.size(), 3u);  // header + row + trailing
}

TEST(ExportSweep, WritesSweepPoints) {
  SweepPoint p;
  p.x = 24.0;
  p.conventional.operations.add(100);
  p.conventional.operations.add(140);
  p.adpm.operations.add(30);
  p.adpm.operations.add(32);
  std::ostringstream out;
  writeSweepCsv(out, "gain_min_db", {p});
  const std::string text = out.str();
  EXPECT_NE(text.find("gain_min_db"), std::string::npos);
  EXPECT_NE(text.find("120"), std::string::npos);  // conventional mean
  EXPECT_NE(text.find("31"), std::string::npos);   // adpm mean
}

TEST(ExportGnuplot, ScriptsReferenceDataFiles) {
  const std::string profile = gnuplotProfileScript("fig7.csv");
  EXPECT_NE(profile.find("fig7.csv"), std::string::npos);
  EXPECT_NE(profile.find("multiplot"), std::string::npos);
  EXPECT_NE(profile.find("Fig. 7(a)"), std::string::npos);

  const std::string sweep = gnuplotSweepScript("fig10.csv", "gain (dB)");
  EXPECT_NE(sweep.find("fig10.csv"), std::string::npos);
  EXPECT_NE(sweep.find("gain (dB)"), std::string::npos);
  EXPECT_NE(sweep.find("yerrorlines"), std::string::npos);
}

TEST(Graphviz, ExportsNetworkWithStatusesAndClusters) {
  SimulationOptions options;
  options.adpm = true;
  options.seed = 3;
  SimulationEngine engine(scenarios::walkthroughScenario(), options);
  engine.run();
  const std::string dot = toGraphviz(engine.manager());
  EXPECT_NE(dot.find("graph constraint_network {"), std::string::npos);
  EXPECT_NE(dot.find("subgraph cluster_"), std::string::npos);
  EXPECT_NE(dot.find("label=\"LNA+Mixer\""), std::string::npos);
  EXPECT_NE(dot.find("shape=box"), std::string::npos);
  EXPECT_NE(dot.find(" -- "), std::string::npos);
  // Everything ended satisfied: at least one green node, no red.
  EXPECT_NE(dot.find("palegreen"), std::string::npos);
  EXPECT_EQ(dot.find("salmon"), std::string::npos);
}

TEST(ParallelSweep, MatchesSerialAggregates) {
  SimulationOptions base;
  base.adpm = false;  // conventional has real variance to compare
  const CellStats serial =
      runSeedSweep(scenarios::walkthroughScenario(), base, 12, 1, "s");
  const CellStats parallel = runSeedSweepParallel(
      scenarios::walkthroughScenario(), base, 12, 1, "p", 4);
  EXPECT_EQ(parallel.runs, serial.runs);
  EXPECT_EQ(parallel.completed, serial.completed);
  EXPECT_NEAR(parallel.operations.mean(), serial.operations.mean(), 1e-9);
  EXPECT_NEAR(parallel.operations.stddev(), serial.operations.stddev(), 1e-9);
  EXPECT_NEAR(parallel.evaluations.mean(), serial.evaluations.mean(), 1e-9);
  EXPECT_NEAR(parallel.spins.mean(), serial.spins.mean(), 1e-9);
}

}  // namespace
}  // namespace adpm::teamsim
