#include "teamsim/client.hpp"

#include <gtest/gtest.h>

#include "dpm/manager.hpp"
#include "dpm/scenario.hpp"
#include "scenarios/sensing.hpp"
#include "teamsim/engine.hpp"

namespace adpm::teamsim {
namespace {

TEST(TeamClient, HostedRunMatchesInProcessEngine) {
  SimulationOptions options;
  options.adpm = true;
  options.seed = 5;
  const dpm::ScenarioSpec spec = scenarios::sensingSystemScenario();

  // In-process reference: the engine drives its own DPM to completion.
  SimulationEngine engine(spec, options);
  const SimulationResult reference = engine.run();
  ASSERT_TRUE(reference.completed);

  // Hosted run: same seed derivation, one propose/apply/observe round trip
  // per operation, the host owning the manager.
  dpm::DesignProcessManager dpm(options.managerOptions());
  dpm::instantiate(spec, dpm);
  dpm.bootstrap();
  TeamClient client(dpm, options);
  EXPECT_EQ(client.designerCount(), 3u);

  std::size_t ops = 0;
  while (ops < options.maxOperations) {
    std::optional<dpm::Operation> op = client.propose(dpm);
    if (!op) break;
    const auto result = dpm.execute(std::move(*op));
    client.observe(dpm, result.record);
    ++ops;
  }

  EXPECT_TRUE(dpm.designComplete());
  EXPECT_EQ(ops, reference.operations);
  EXPECT_EQ(client.operationsProposed(), reference.operations);
  EXPECT_EQ(dpm.network().evaluationCount(), reference.evaluations);
}

TEST(TeamClient, ProposeIsIdleOnCompletedDesign) {
  SimulationOptions options;
  options.seed = 2;
  const dpm::ScenarioSpec spec = scenarios::sensingSystemScenario();
  dpm::DesignProcessManager dpm(options.managerOptions());
  dpm::instantiate(spec, dpm);
  dpm.bootstrap();
  TeamClient client(dpm, options);
  while (auto op = client.propose(dpm)) {
    client.observe(dpm, dpm.execute(std::move(*op)).record);
  }
  EXPECT_TRUE(dpm.designComplete());
  // Once everyone is idle the client stays idle.
  EXPECT_EQ(client.propose(dpm), std::nullopt);
}

}  // namespace
}  // namespace adpm::teamsim
