// SessionStore's typed command API, exercised in deterministic mode (every
// command runs inline, so futures are ready on return and assertions are
// bit-stable).
#include "service/store.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "dpm/scenario.hpp"
#include "util/error.hpp"

namespace adpm::service {
namespace {

namespace fs = std::filesystem;

using constraint::PropertyId;
using constraint::Relation;
using interval::Domain;

dpm::ScenarioSpec twoTeamScenario() {
  dpm::ScenarioSpec s;
  s.name = "two-team";
  s.addObject("sys");
  s.addObject("a", "sys");
  s.addObject("b", "sys");
  const auto cap = s.addProperty("cap", "sys", Domain::continuous(10, 100));
  const auto x = s.addProperty("x", "a", Domain::continuous(0, 100));
  const auto y = s.addProperty("y", "b", Domain::continuous(0, 100));
  s.addConstraint(
      {"budget", s.pvar(x) + s.pvar(y), Relation::Le, s.pvar(cap), {}});
  s.addProblem({"Top", "sys", "lead", {}, {cap}, {0}, std::nullopt, {}, true});
  s.addProblem({"A", "a", "ana", {cap}, {x}, {0},
                std::optional<std::size_t>{0}, {}, true});
  s.addProblem({"B", "b", "ben", {cap}, {y}, {0},
                std::optional<std::size_t>{0}, {}, true});
  s.require(cap, 50.0);
  return s;
}

dpm::Operation synth(std::uint32_t prob, const char* designer,
                     std::uint32_t pid, double v) {
  dpm::Operation op;
  op.kind = dpm::OperatorKind::Synthesis;
  op.problem = dpm::ProblemId{prob};
  op.designer = designer;
  op.assignments.emplace_back(PropertyId{pid}, v);
  return op;
}

SessionStore deterministicStore() {
  SessionStore::Options o;
  o.executor.deterministic = true;
  return SessionStore(std::move(o));
}

TEST(SessionStore, OpenApplySnapshot) {
  SessionStore store = deterministicStore();
  store.open("s1", twoTeamScenario(), /*adpm=*/true);
  EXPECT_TRUE(store.has("s1"));
  EXPECT_EQ(store.sessionCount(), 1u);
  EXPECT_EQ(store.ids(), (std::vector<std::string>{"s1"}));

  const auto result = store.applyOperation("s1", synth(1, "ana", 1, 30.0)).get();
  EXPECT_EQ(result.record.stage, 1u);
  const SessionSnapshot snap = store.snapshot("s1").get();
  EXPECT_EQ(snap.id, "s1");
  EXPECT_EQ(snap.stage, 1u);
  EXPECT_FALSE(snap.text.empty());
  EXPECT_EQ(snap.digest.size(), 16u);
}

TEST(SessionStore, DuplicateAndUnsafeIdsAreRejected) {
  SessionStore store = deterministicStore();
  store.open("s1", twoTeamScenario(), true);
  EXPECT_THROW(store.open("s1", twoTeamScenario(), true),
               adpm::InvalidArgumentError);
  EXPECT_THROW(store.open("", twoTeamScenario(), true),
               adpm::InvalidArgumentError);
  EXPECT_THROW(store.open("../escape", twoTeamScenario(), true),
               adpm::InvalidArgumentError);
  EXPECT_THROW(store.open("a/b", twoTeamScenario(), true),
               adpm::InvalidArgumentError);
  EXPECT_THROW(store.open(std::string(200, 'x'), twoTeamScenario(), true),
               adpm::InvalidArgumentError);
}

TEST(SessionStore, UnknownSessionThrowsOnCommand) {
  SessionStore store = deterministicStore();
  EXPECT_THROW(store.snapshot("ghost"), adpm::InvalidArgumentError);
  EXPECT_THROW(store.applyOperation("ghost", synth(1, "ana", 1, 1.0)),
               adpm::InvalidArgumentError);
  EXPECT_THROW(store.subscribe("ghost", "ana"), adpm::InvalidArgumentError);
}

TEST(SessionStore, QueryGuidanceReflectsLambda) {
  SessionStore store = deterministicStore();
  store.open("t", twoTeamScenario(), /*adpm=*/true);
  store.open("f", twoTeamScenario(), /*adpm=*/false);
  store.applyOperation("t", synth(1, "ana", 1, 30.0)).get();
  store.applyOperation("f", synth(1, "ana", 1, 30.0)).get();

  const auto guidanceT = store.queryGuidance("t").get();
  ASSERT_TRUE(guidanceT.has_value());
  EXPECT_FALSE(guidanceT->properties.empty());
  // λ=F runs no propagation/mining: guidance is empty by construction.
  EXPECT_FALSE(store.queryGuidance("f").get().has_value());
}

TEST(SessionStore, VerifyReportsViolationsOfBoundConstraints) {
  SessionStore store = deterministicStore();
  store.open("s", twoTeamScenario(), /*adpm=*/false);
  store.applyOperation("s", synth(1, "ana", 1, 30.0)).get();
  store.applyOperation("s", synth(2, "ben", 2, 40.0)).get();  // 30+40 > 50

  const Session::VerifyResult verdict = store.verify("s").get();
  ASSERT_EQ(verdict.violated.size(), 1u);
  EXPECT_EQ(verdict.violated[0].value, 0u);
  EXPECT_GT(verdict.evaluations, 0u);
}

TEST(SessionStore, SubscribersReceiveNotificationFanOut) {
  SessionStore store = deterministicStore();
  store.open("s", twoTeamScenario(), /*adpm=*/true);
  auto ana = store.subscribe("s", "ana");
  auto ben = store.subscribe("s", "ben");

  store.applyOperation("s", synth(1, "ana", 1, 30.0)).get();
  store.applyOperation("s", synth(2, "ben", 2, 40.0)).get();

  // The budget violation involves x (ana) and y (ben): both seats hear it.
  bool anaViolation = false;
  while (auto n = ana->tryPop()) {
    if (n->kind == dpm::NotificationKind::ViolationDetected) {
      anaViolation = true;
    }
  }
  bool benViolation = false;
  while (auto n = ben->tryPop()) {
    if (n->kind == dpm::NotificationKind::ViolationDetected) {
      benViolation = true;
    }
  }
  EXPECT_TRUE(anaViolation);
  EXPECT_TRUE(benViolation);
  EXPECT_GT(store.bus().published(), 0u);
  EXPECT_GT(store.bus().delivered(), 0u);
}

TEST(SessionStore, CloseForgetsTheSessionButKeepsTheWal) {
  const fs::path dir =
      fs::temp_directory_path() / "adpm_store_test_close";
  fs::remove_all(dir);
  {
    SessionStore::Options o;
    o.executor.deterministic = true;
    o.walDir = dir.string();
    SessionStore store{std::move(o)};
    store.open("s", twoTeamScenario(), true);
    auto queue = store.subscribe("s", "ana");
    store.applyOperation("s", synth(1, "ana", 1, 30.0)).get();

    store.close("s");
    EXPECT_FALSE(store.has("s"));
    EXPECT_TRUE(queue->closed());
    EXPECT_THROW(store.snapshot("s"), adpm::InvalidArgumentError);
    store.close("s");  // idempotent
    EXPECT_TRUE(fs::exists(dir / "s.wal"));

    // The id cannot be reused while the old WAL exists: open() always
    // writes a fresh header, and a two-header log is unrecoverable, so the
    // store refuses instead of silently corrupting the file.
    EXPECT_THROW(store.open("s", twoTeamScenario(), true),
                 adpm::InvalidArgumentError);
    EXPECT_FALSE(store.has("s"));

    // After removing the leftover log the id is free again.
    fs::remove(dir / "s.wal");
    store.open("s", twoTeamScenario(), true);
    EXPECT_EQ(store.snapshot("s").get().stage, 0u);
  }
  fs::remove_all(dir);
}

TEST(SessionStore, QueuedTooLongCommandFailsWithTimeoutError) {
  SessionStore::Options o;
  o.executor.threads = 1;  // one worker: the sleeper blocks the strand
  o.command.timeout = std::chrono::milliseconds(1);
  SessionStore store{std::move(o)};
  store.open("s", twoTeamScenario(), true);

  // Occupy the session's strand (withSession bypasses the policy), then
  // queue a typed command behind it; by the time the strand dequeues the
  // command its deadline has long passed.
  auto sleeper = store.withSession("s", [](Session&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    return 0;
  });
  auto late = store.applyOperation("s", synth(1, "ana", 1, 30.0));
  sleeper.get();
  EXPECT_THROW(late.get(), adpm::TimeoutError);
  EXPECT_EQ(store.timeouts(), 1u);

  // The shed command was never executed: the session is still at stage 0
  // and a fresh command (queued while the strand is idle) runs normally.
  EXPECT_EQ(store.snapshot("s").get().stage, 0u);
  EXPECT_EQ(store.retries(), 0u);
}

TEST(SessionStore, RecoverReportIsEmptyOnCleanRecovery) {
  const fs::path dir = fs::temp_directory_path() / "adpm_store_test_report";
  fs::remove_all(dir);
  {
    SessionStore::Options o;
    o.executor.deterministic = true;
    o.walDir = dir.string();
    {
      SessionStore store{SessionStore::Options(o)};
      store.open("s", twoTeamScenario(), true);
      store.applyOperation("s", synth(1, "ana", 1, 30.0)).get();
    }
    SessionStore store{std::move(o)};
    EXPECT_EQ(store.recover(), (std::vector<std::string>{"s"}));
    EXPECT_TRUE(store.recoverErrors().empty());
    EXPECT_TRUE(store.recoverReport().empty());
  }
  fs::remove_all(dir);
}

TEST(SessionStore, VolatileStoreHasNoLog) {
  SessionStore store = deterministicStore();
  store.open("s", twoTeamScenario(), true);
  EXPECT_TRUE(store.recover().empty());
  store.applyOperation("s", synth(1, "ana", 1, 30.0)).get();
  EXPECT_EQ(store.snapshot("s").get().stage, 1u);
}

}  // namespace
}  // namespace adpm::service
