#include "service/bus.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace adpm::service {
namespace {

dpm::Notification note(const char* designer, std::size_t stage = 1) {
  dpm::Notification n;
  n.kind = dpm::NotificationKind::ViolationDetected;
  n.designer = designer;
  n.stage = stage;
  n.text = "ViolationDetected: budget";
  return n;
}

TEST(NotificationBus, RoutesByDesignerWithinSession) {
  NotificationBus bus;
  auto ana = bus.subscribe("s1", "ana");
  auto ben = bus.subscribe("s1", "ben");

  bus.publish("s1", {note("ana"), note("ben"), note("ana")});
  EXPECT_EQ(bus.published(), 3u);
  EXPECT_EQ(bus.delivered(), 3u);
  EXPECT_EQ(bus.unrouted(), 0u);
  EXPECT_EQ(ana->size(), 2u);
  EXPECT_EQ(ben->size(), 1u);
  EXPECT_EQ(ana->tryPop()->designer, "ana");
}

TEST(NotificationBus, SessionsAreIsolated) {
  NotificationBus bus;
  auto s1 = bus.subscribe("s1", "ana");
  auto s2 = bus.subscribe("s2", "ana");
  bus.publish("s1", {note("ana")});
  EXPECT_EQ(s1->size(), 1u);
  EXPECT_EQ(s2->size(), 0u);
}

TEST(NotificationBus, UnsubscribedDesignerCountsAsUnrouted) {
  NotificationBus bus;
  auto ana = bus.subscribe("s1", "ana");
  bus.publish("s1", {note("ana"), note("nobody")});
  EXPECT_EQ(bus.delivered(), 1u);
  EXPECT_EQ(bus.unrouted(), 1u);
  // No subscriber at all for the session: everything is unrouted.
  bus.publish("ghost", {note("ana")});
  EXPECT_EQ(bus.unrouted(), 2u);
}

TEST(NotificationBus, EverySubscriberOfASeatGetsEveryNotification) {
  NotificationBus bus;
  auto first = bus.subscribe("s1", "ana");
  auto second = bus.subscribe("s1", "ana");
  bus.publish("s1", {note("ana")});
  EXPECT_EQ(first->size(), 1u);
  EXPECT_EQ(second->size(), 1u);
  EXPECT_EQ(bus.delivered(), 2u);  // two queue acceptances of one event
}

TEST(NotificationBus, DropOldestOverflowIsCounted) {
  NotificationBus bus;
  auto q = bus.subscribe("s1", "ana", 2, util::OverflowPolicy::DropOldest);
  for (std::size_t i = 0; i < 5; ++i) bus.publish("s1", {note("ana", i)});
  EXPECT_EQ(bus.dropped(), 3u);
  EXPECT_EQ(q->size(), 2u);
  EXPECT_EQ(q->tryPop()->stage, 3u);  // oldest survivors
  EXPECT_EQ(q->tryPop()->stage, 4u);

  // Closing the session retires the queue without losing the count.
  bus.closeSession("s1");
  EXPECT_EQ(bus.dropped(), 3u);
}

TEST(NotificationBus, BlockPolicyBackpressuresPublisher) {
  NotificationBus bus;
  auto q = bus.subscribe("s1", "ana", 1, util::OverflowPolicy::Block);
  bus.publish("s1", {note("ana", 1)});

  std::thread producer(
      [&bus] { bus.publish("s1", {note("ana", 2)}); });  // waits for space
  EXPECT_EQ(q->pop()->stage, 1u);
  producer.join();
  EXPECT_EQ(q->pop()->stage, 2u);
  EXPECT_EQ(bus.dropped(), 0u);
}

TEST(NotificationBus, CloseSessionUnblocksPublisherAndClosesQueues) {
  NotificationBus bus;
  auto q = bus.subscribe("s1", "ana", 1, util::OverflowPolicy::Block);
  bus.publish("s1", {note("ana", 1)});

  std::thread producer([&bus] {
    // Parked on the full Block queue until closeSession wakes it; the
    // refused push is neither delivered nor dropped.
    bus.publish("s1", {note("ana", 2)});
  });
  bus.closeSession("s1");
  producer.join();
  EXPECT_TRUE(q->closed());
  // The pre-close item stays poppable.
  EXPECT_EQ(q->pop()->stage, 1u);
  EXPECT_EQ(q->pop(), std::nullopt);
}

TEST(NotificationBus, CloseAllClosesEverySession) {
  NotificationBus bus;
  auto a = bus.subscribe("s1", "ana");
  auto b = bus.subscribe("s2", "ben");
  bus.closeAll();
  EXPECT_TRUE(a->closed());
  EXPECT_TRUE(b->closed());
}

TEST(NotificationBus, EmptyBatchIsFree) {
  NotificationBus bus;
  bus.publish("s1", {});
  EXPECT_EQ(bus.published(), 0u);
  EXPECT_EQ(bus.unrouted(), 0u);
}

TEST(NotificationBus, DegradesToResyncMarkerAtHighWater) {
  NotificationBus::Options options;
  options.queueCapacity = 8;
  options.degradeHighWater = 3;
  NotificationBus bus(options);
  auto q = bus.subscribe("s1", "ana");

  // Fill to just below the high-water mark: normal delivery.
  for (std::size_t i = 1; i <= 3; ++i) bus.publish("s1", {note("ana", i)});
  EXPECT_EQ(bus.downgrades(), 0u);
  EXPECT_EQ(q->size(), 3u);

  // Depth has reached the mark: the next publish downgrades the subscriber —
  // one ResyncRequired marker is enqueued instead of the event.
  bus.publish("s1", {note("ana", 4)});
  EXPECT_EQ(bus.downgrades(), 1u);
  EXPECT_EQ(bus.coalesced(), 1u);
  EXPECT_EQ(q->size(), 4u);

  // While degraded, further events coalesce into the pending marker.
  bus.publish("s1", {note("ana", 5), note("ana", 6)});
  EXPECT_EQ(bus.downgrades(), 1u);
  EXPECT_EQ(bus.coalesced(), 3u);
  EXPECT_EQ(q->size(), 4u);
  EXPECT_EQ(bus.dropped(), 0u);  // degraded != silent shedding

  // The consumer sees the per-event prefix, then the marker.
  EXPECT_EQ(q->pop()->stage, 1u);
  EXPECT_EQ(q->pop()->stage, 2u);
  EXPECT_EQ(q->pop()->stage, 3u);
  const auto marker = q->pop();
  ASSERT_TRUE(marker.has_value());
  EXPECT_EQ(marker->kind, dpm::NotificationKind::ResyncRequired);
  EXPECT_EQ(marker->stage, 4u);
}

TEST(NotificationBus, ResumesPerEventDeliveryAtLowWater) {
  NotificationBus::Options options;
  options.queueCapacity = 8;
  options.degradeHighWater = 2;
  options.resumeLowWater = 0;  // defaults to hwm/2 == 1
  NotificationBus bus(options);
  auto q = bus.subscribe("s1", "ana");

  bus.publish("s1", {note("ana", 1), note("ana", 2)});
  bus.publish("s1", {note("ana", 3)});  // queue at hwm: downgrade + marker
  EXPECT_EQ(bus.downgrades(), 1u);
  EXPECT_EQ(q->size(), 3u);

  // Drain past the low-water mark, then publish again: delivery resumes.
  EXPECT_EQ(q->pop()->stage, 1u);
  EXPECT_EQ(q->pop()->stage, 2u);
  EXPECT_EQ(q->pop()->kind, dpm::NotificationKind::ResyncRequired);
  bus.publish("s1", {note("ana", 4)});
  EXPECT_EQ(bus.downgrades(), 1u);  // no second downgrade
  const auto resumed = q->tryPop();
  ASSERT_TRUE(resumed.has_value());
  EXPECT_EQ(resumed->kind, dpm::NotificationKind::ViolationDetected);
  EXPECT_EQ(resumed->stage, 4u);
}

TEST(NotificationBus, DegradedModeNeverBlocksThePublisher) {
  // The whole point of degraded mode: a saturated Block queue would park the
  // producing strand; with a high-water mark it must not.
  NotificationBus::Options options;
  options.queueCapacity = 4;
  options.overflow = util::OverflowPolicy::Block;
  options.degradeHighWater = 3;
  NotificationBus bus(options);
  auto q = bus.subscribe("s1", "ana");

  // 10 publishes into a capacity-4 Block queue with nobody consuming: if any
  // push blocked, this loop would hang the test.
  for (std::size_t i = 1; i <= 10; ++i) bus.publish("s1", {note("ana", i)});
  EXPECT_EQ(bus.downgrades(), 1u);
  EXPECT_GE(bus.coalesced(), 6u);
  EXPECT_LE(q->size(), 4u);
}

TEST(NotificationBus, HighWaterMarkIsClampedBelowCapacity) {
  // hwm >= capacity would leave no room for the resync marker; the bus
  // clamps it so the marker always fits.
  NotificationBus::Options options;
  options.queueCapacity = 2;
  options.degradeHighWater = 99;
  NotificationBus bus(options);
  auto q = bus.subscribe("s1", "ana");

  bus.publish("s1", {note("ana", 1)});   // size 1 == capacity-1: downgrade
  bus.publish("s1", {note("ana", 2)});   // coalesced
  EXPECT_EQ(bus.downgrades(), 1u);
  EXPECT_EQ(q->size(), 2u);  // event + marker, nothing dropped
  EXPECT_EQ(bus.dropped(), 0u);
}

TEST(NotificationBus, DegradationIsPerSubscriber) {
  NotificationBus::Options options;
  options.queueCapacity = 8;
  options.degradeHighWater = 2;
  NotificationBus bus(options);
  auto slow = bus.subscribe("s1", "ana");
  auto fast = bus.subscribe("s1", "ben");

  for (std::size_t i = 1; i <= 5; ++i) {
    bus.publish("s1", {note("ana", i)});  // ana's queue fills, nobody drains
    bus.publish("s1", {note("ben", i)});
    while (fast->tryPop()) {  // ben consumes eagerly, stays healthy
    }
  }
  EXPECT_EQ(bus.downgrades(), 1u);  // only ana
}

}  // namespace
}  // namespace adpm::service
