// Bounded crash recovery: durable state checkpoints + tail-only replay.
//
// The universal oracle everywhere below: a recovered session's canonical
// snapshot text must be bit-identical to a clean replay of the same
// operation prefix — checkpoints may only change how *much* is replayed,
// never what state comes out.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "dddl/writer.hpp"
#include "dpm/manager.hpp"
#include "dpm/state_io.hpp"
#include "scenarios/sensing.hpp"
#include "service/session.hpp"
#include "service/store.hpp"
#include "service/wal.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace adpm::service {
namespace {

namespace fs = std::filesystem;

/// Deterministic synthetic operation stream: round-robin property rebinds.
/// applySynthesis accepts any in-range property for any problem, so this is
/// a legal (if designerless-ly mechanical) collaborative-design transcript.
dpm::Operation synthOp(std::size_t i, std::size_t propertyCount) {
  dpm::Operation op;
  op.kind = dpm::OperatorKind::Synthesis;
  op.problem = dpm::ProblemId{0};
  op.designer = "gen";
  op.assignments.emplace_back(
      constraint::PropertyId{static_cast<std::uint32_t>(i % propertyCount)},
      0.25 + 0.125 * static_cast<double>(i % 7));
  return op;
}

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("adpm_ckpt_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    spec_ = scenarios::sensingSystemScenario();
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string basePath(const char* id) const {
    return (dir_ / (std::string(id) + ".wal")).string();
  }

  SessionConfig makeConfig(const char* id, bool adpm) const {
    SessionConfig c;
    c.id = id;
    c.adpm = adpm;
    c.scenarioName = spec_.name;
    c.scenarioDddl = dddl::write(spec_);
    return c;
  }

  /// Options for the checkpointed tests: segments of 8 ops, checkpoint at
  /// every segment boundary, keep 2 — 30 ops land checkpoints at stages
  /// 8/16/24 and compaction deletes segments 0 and 1.
  static Session::Options checkpointedOptions() {
    Session::Options o;
    o.markEvery = 2;
    o.segmentOps = 8;
    o.checkpointEvery = 8;
    o.checkpointKeep = 2;
    return o;
  }

  /// Runs `count` synthetic ops through a journaled session and returns the
  /// final snapshot text (the bit-identity oracle).
  std::string runJournaled(const char* id, bool adpm, std::size_t count,
                           const Session::Options& options) {
    const SessionConfig cfg = makeConfig(id, adpm);
    SegmentedLog::Options lo;
    lo.segmentBytes = options.segmentBytes;
    lo.segmentOps = options.segmentOps;
    auto log = std::make_unique<SegmentedLog>(basePath(id), cfg, lo);
    Session session(cfg, spec_, std::move(log), options);
    const std::size_t props = session.manager().network().propertyCount();
    for (std::size_t i = 0; i < count; ++i) {
      session.apply(synthOp(i, props));
    }
    return session.snapshot().text;
  }

  static void flipByte(const std::string& path, std::size_t at) {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good()) << path;
    f.seekg(static_cast<std::streamoff>(at));
    char c = 0;
    f.get(c);
    f.seekp(static_cast<std::streamoff>(at));
    f.put(static_cast<char>(c ^ 0x10));
  }

  fs::path dir_;
  dpm::ScenarioSpec spec_;
};

// -- ManagerState serialization ----------------------------------------------

TEST_F(CheckpointTest, ManagerStateJsonRoundTripIsBitIdentical) {
  for (const bool adpm : {true, false}) {
    const SessionConfig cfg = makeConfig(adpm ? "rt-t" : "rt-f", adpm);
    Session live(cfg, spec_, nullptr);
    const std::size_t props = live.manager().network().propertyCount();
    for (std::size_t i = 0; i < 13; ++i) live.replayApply(synthOp(i, props));

    // export → json → text → json → restore must reproduce the state
    // bit-for-bit (the snapshot text renders every double as %.17g).
    const std::string wire =
        util::json::serialize(dpm::managerStateToJson(live.manager().exportState()));
    Session restored(cfg, spec_, nullptr);
    restored.manager().restoreState(
        dpm::managerStateFromJson(util::json::parse(wire)));
    EXPECT_EQ(restored.snapshot().text, live.snapshot().text)
        << "λ=" << (adpm ? "T" : "F");
    EXPECT_EQ(restored.stage(), 13u);

    // ...and δ continues identically from the restored state.
    for (std::size_t i = 13; i < 21; ++i) {
      live.replayApply(synthOp(i, props));
      restored.replayApply(synthOp(i, props));
    }
    EXPECT_EQ(restored.snapshot().text, live.snapshot().text)
        << "λ=" << (adpm ? "T" : "F") << " after continuation";
  }
}

// -- bounded recovery ---------------------------------------------------------

TEST_F(CheckpointTest, CheckpointedRecoveryReplaysOnlyTheTail) {
  for (const bool adpm : {true, false}) {
    const char* id = adpm ? "tail-t" : "tail-f";
    const Session::Options opts = checkpointedOptions();
    const std::string liveText = runJournaled(id, adpm, 30, opts);

    // Compaction ran at the stage-24 checkpoint: segments 0 and 1 are gone,
    // so recovery *cannot* be replaying from stage 0.
    EXPECT_FALSE(fs::exists(segmentPath(basePath(id), 0)));
    EXPECT_FALSE(fs::exists(segmentPath(basePath(id), 1)));

    SalvageOutcome out;
    std::unique_ptr<Session> recovered =
        recoverSession(basePath(id), opts, RecoveryPolicy::Strict, &out);
    EXPECT_TRUE(out.checkpointUsed);
    EXPECT_EQ(out.checkpointSeq, 3u);
    EXPECT_EQ(out.checkpointStage, 24u);
    EXPECT_EQ(out.operationsReplayed, 6u);  // ops 25..30 only
    EXPECT_EQ(out.segmentsReplayed, 1u);
    EXPECT_EQ(out.checkpointFallbacks, 0u);
    EXPECT_FALSE(out.salvaged);
    EXPECT_EQ(recovered->stage(), 30u);
    EXPECT_EQ(recovered->snapshot().text, liveText)
        << "λ=" << (adpm ? "T" : "F");
  }
}

TEST_F(CheckpointTest, CorruptNewestCheckpointFallsBackToRunnerUp) {
  const char* id = "fallback";
  const Session::Options opts = checkpointedOptions();
  const std::string liveText = runJournaled(id, /*adpm=*/true, 30, opts);

  const std::string newest = checkpointPath(basePath(id), 3);
  ASSERT_TRUE(fs::exists(newest));
  flipByte(newest, fs::file_size(newest) / 2);

  SalvageOutcome out;
  std::unique_ptr<Session> recovered =
      recoverSession(basePath(id), opts, RecoveryPolicy::Salvage, &out);
  EXPECT_TRUE(out.checkpointUsed);
  EXPECT_EQ(out.checkpointSeq, 2u);  // the runner-up, not the damaged one
  EXPECT_EQ(out.checkpointStage, 16u);
  EXPECT_EQ(out.checkpointFallbacks, 1u);
  EXPECT_EQ(out.operationsReplayed, 14u);  // ops 17..30
  EXPECT_EQ(out.segmentsReplayed, 2u);
  EXPECT_EQ(recovered->stage(), 30u);
  EXPECT_EQ(recovered->snapshot().text, liveText);
  // Salvage discards the file it could not trust; Strict would have left it.
  EXPECT_FALSE(fs::exists(newest));
}

TEST_F(CheckpointTest, CorruptCheckpointDegradesUnderStrictToo) {
  const char* id = "strict-fb";
  const Session::Options opts = checkpointedOptions();
  const std::string liveText = runJournaled(id, /*adpm=*/true, 30, opts);

  const std::string newest = checkpointPath(basePath(id), 3);
  flipByte(newest, fs::file_size(newest) / 2);

  // Checkpoints are an optimization, never a correctness dependency: even
  // Strict (which refuses any *segment* damage) degrades checkpoint damage.
  SalvageOutcome out;
  std::unique_ptr<Session> recovered =
      recoverSession(basePath(id), opts, RecoveryPolicy::Strict, &out);
  EXPECT_EQ(out.checkpointSeq, 2u);
  EXPECT_EQ(out.checkpointFallbacks, 1u);
  EXPECT_EQ(recovered->snapshot().text, liveText);
  EXPECT_TRUE(fs::exists(newest));  // Strict never mutates the disk
}

TEST_F(CheckpointTest, EveryCheckpointCorruptAfterCompactionLosesSession) {
  const char* id = "lost";
  const Session::Options opts = checkpointedOptions();
  runJournaled(id, /*adpm=*/true, 30, opts);

  // Compaction deleted segments 0 and 1 because checkpoints 2 and 3 cover
  // them; with *both* checkpoints destroyed the surviving segments start at
  // stage 16 and there is genuinely nothing to rebuild from.
  flipByte(checkpointPath(basePath(id), 2), 40);
  flipByte(checkpointPath(basePath(id), 3), 40);
  EXPECT_THROW(recoverSession(basePath(id), opts, RecoveryPolicy::Strict),
               adpm::Error);
  EXPECT_THROW(recoverSession(basePath(id), opts, RecoveryPolicy::Salvage),
               adpm::Error);
}

TEST_F(CheckpointTest, DigestMismatchFallsBackToFullReplay) {
  const char* id = "digest";
  Session::Options opts;
  opts.markEvery = 2;
  opts.segmentOps = 8;
  opts.checkpointEvery = 16;  // exactly one checkpoint over 20 ops
  opts.checkpointKeep = 2;
  const std::string liveText = runJournaled(id, /*adpm=*/true, 20, opts);

  // One checkpoint < checkpointKeep, so compaction must not have deleted
  // any segment: the full-replay fallback is still possible.
  ASSERT_TRUE(fs::exists(segmentPath(basePath(id), 0)));

  // Forge a crc-valid checkpoint whose digest does not match its own state:
  // the only way to catch it is to restore and verify, which recovery does
  // before trusting any checkpoint.
  const std::string ckPath = checkpointPath(basePath(id), 1);
  Checkpoint forged = readCheckpoint(ckPath);
  forged.digest = "0000000000000bad";
  writeCheckpoint(basePath(id), forged, /*sync=*/false);

  SalvageOutcome out;
  std::unique_ptr<Session> recovered =
      recoverSession(basePath(id), opts, RecoveryPolicy::Salvage, &out);
  EXPECT_FALSE(out.checkpointUsed);
  EXPECT_EQ(out.checkpointFallbacks, 1u);
  EXPECT_EQ(out.operationsReplayed, 20u);  // the whole log
  EXPECT_EQ(out.segmentsReplayed, 3u);
  EXPECT_EQ(recovered->stage(), 20u);
  EXPECT_EQ(recovered->snapshot().text, liveText);
  EXPECT_FALSE(fs::exists(ckPath));
}

// -- store-level recovery -----------------------------------------------------

SessionStore::Options storeOptions(const fs::path& dir, bool salvage) {
  SessionStore::Options o;
  o.executor.deterministic = true;
  o.walDir = dir.string();
  o.session.markEvery = 2;
  o.session.segmentOps = 8;
  o.session.checkpointEvery = 8;
  o.session.checkpointKeep = 2;
  if (salvage) o.recovery = RecoveryPolicy::Salvage;
  return o;
}

TEST_F(CheckpointTest, StoreRecoversFromCheckpointAndReportsIt) {
  std::string liveDigest;
  {
    SessionStore store{storeOptions(dir_, false)};
    store.open("s", spec_, /*adpm=*/true);
    for (std::size_t i = 0; i < 30; ++i) {
      store.applyOperation("s", synthOp(i, spec_.properties.size())).get();
    }
    liveDigest = store.snapshot("s").get().digest;
  }
  // Segments 0 and 1 were compacted away: this recovery is checkpoint-based
  // by construction, not by luck.
  EXPECT_FALSE(fs::exists(segmentPath((dir_ / "s.wal").string(), 0)));

  SessionStore store{storeOptions(dir_, false)};
  const std::vector<std::string> ids = store.recover();
  ASSERT_EQ(ids, (std::vector<std::string>{"s"}));
  EXPECT_EQ(store.snapshot("s").get().digest, liveDigest);
  EXPECT_EQ(store.snapshot("s").get().stage, 30u);

  const std::vector<RecoveryEvent> report = store.recoverReport();
  ASSERT_EQ(report.size(), 1u);
  EXPECT_TRUE(report[0].checkpointUsed);
  EXPECT_EQ(report[0].checkpointSeq, 3u);
  EXPECT_EQ(report[0].checkpointStage, 24u);
  EXPECT_EQ(report[0].operationsReplayed, 6u);
  EXPECT_EQ(report[0].segmentsReplayed, 1u);
  EXPECT_FALSE(report[0].sessionLost);
}

TEST_F(CheckpointTest, StoreReportsCheckpointFallbackEvents) {
  {
    SessionStore store{storeOptions(dir_, false)};
    store.open("s", spec_, true);
    for (std::size_t i = 0; i < 30; ++i) {
      store.applyOperation("s", synthOp(i, spec_.properties.size())).get();
    }
  }
  const std::string newest = checkpointPath((dir_ / "s.wal").string(), 3);
  flipByte(newest, fs::file_size(newest) / 2);

  SessionStore store{storeOptions(dir_, true)};
  store.recover();
  const std::vector<RecoveryEvent> report = store.recoverReport();
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(report[0].checkpointFallbacks, 1u);
  EXPECT_TRUE(report[0].checkpointUsed);
  EXPECT_EQ(report[0].checkpointSeq, 2u);
  EXPECT_EQ(store.snapshot("s").get().stage, 30u);
}

TEST_F(CheckpointTest, StoreRecoverTwiceDoesNotDoubleReport) {
  std::string liveDigest;
  {
    SessionStore store{storeOptions(dir_, true)};
    store.open("s", spec_, true);
    for (std::size_t i = 0; i < 30; ++i) {
      store.applyOperation("s", synthOp(i, spec_.properties.size())).get();
    }
    liveDigest = store.snapshot("s").get().digest;
  }
  // Damage the newest checkpoint so the first recover() has something to
  // report; the second recover() must report *nothing* — not the same event
  // again (the regression this test pins down).
  const std::string newest = checkpointPath((dir_ / "s.wal").string(), 3);
  flipByte(newest, fs::file_size(newest) / 2);

  SessionStore store{storeOptions(dir_, true)};
  EXPECT_EQ(store.recover().size(), 1u);
  EXPECT_EQ(store.recoverReport().size(), 1u);

  EXPECT_TRUE(store.recover().empty());  // "s" is live: nothing to do
  EXPECT_TRUE(store.recoverReport().empty());
  EXPECT_TRUE(store.recoverErrors().empty());
  EXPECT_EQ(store.snapshot("s").get().stage, 30u);
  EXPECT_EQ(store.snapshot("s").get().digest, liveDigest);
}

}  // namespace
}  // namespace adpm::service
